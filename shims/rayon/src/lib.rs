//! Offline stand-in for `rayon` built on `std::thread::scope`.
//!
//! Covers the data-parallel slice this workspace uses: `par_iter()` /
//! `into_par_iter()` on slices, `Vec`s, and `Range<usize>`, followed by
//! `map(...)` and an order-preserving `collect()` (into `Vec<T>` or
//! `Result<Vec<T>, E>`), plus `join` and `current_num_threads`.
//!
//! Semantics that callers may rely on:
//!
//! * **Deterministic ordering** — `collect()` returns results in input
//!   order regardless of thread interleaving (same guarantee as rayon's
//!   indexed parallel iterators).
//! * **Eager evaluation** — `map` runs when `collect` is called; a
//!   `Result` collect does not short-circuit remaining items (unlike
//!   rayon), it just returns the first error in input order.
//! * **Panic propagation** — a panicking closure panics the caller.
//!
//! Thread count comes from `RAYON_NUM_THREADS` or
//! `available_parallelism()`; with one thread everything runs inline on
//! the calling thread with identical results.
//!
//! Swap the workspace dependency back to crates.io `rayon` when network
//! access is available.

/// The number of worker threads parallel operations will use.
#[must_use]
pub fn current_num_threads() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        })
}

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon-shim: joined closure panicked"))
    })
}

fn parallel_map<T: Send, U: Send>(items: Vec<T>, f: impl Fn(T) -> U + Sync) -> Vec<U> {
    let threads = current_num_threads();
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let len = items.len();
    let chunk_size = len.div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::new();
    let mut items = items;
    while !items.is_empty() {
        let rest = items.split_off(items.len().min(chunk_size));
        chunks.push(std::mem::replace(&mut items, rest));
    }
    let f = &f;
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| s.spawn(move || chunk.into_iter().map(f).collect::<Vec<U>>()))
            .collect();
        let mut out = Vec::with_capacity(len);
        for h in handles {
            out.extend(h.join().expect("rayon-shim: worker panicked"));
        }
        out
    })
}

/// An in-flight parallel iterator (materialized item list).
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Maps every item through `f` (runs in parallel at `collect`).
    pub fn map<U: Send, F: Fn(T) -> U + Sync + Send>(self, f: F) -> MapParIter<T, U, F> {
        MapParIter {
            items: self.items,
            f,
            _out: std::marker::PhantomData,
        }
    }

    /// Accepted for rayon API parity; chunking is automatic here.
    #[must_use]
    pub fn with_min_len(self, _len: usize) -> Self {
        self
    }

    /// Collects the items (no-op map).
    pub fn collect<C: FromParIter<T>>(self) -> C {
        C::from_ordered(self.items)
    }
}

/// A mapped parallel iterator, ready to collect.
pub struct MapParIter<T, U, F> {
    items: Vec<T>,
    f: F,
    _out: std::marker::PhantomData<fn() -> U>,
}

impl<T: Send, U: Send, F: Fn(T) -> U + Sync + Send> MapParIter<T, U, F> {
    /// Accepted for rayon API parity; chunking is automatic here.
    #[must_use]
    pub fn with_min_len(self, _len: usize) -> Self {
        self
    }

    /// Executes the map across worker threads and collects in input
    /// order.
    pub fn collect<C: FromParIter<U>>(self) -> C {
        C::from_ordered(parallel_map(self.items, self.f))
    }
}

/// Conversion from an ordered item list (mirror of
/// `rayon::iter::FromParallelIterator`).
pub trait FromParIter<T> {
    /// Builds the collection from items already in input order.
    fn from_ordered(items: Vec<T>) -> Self;
}

impl<T> FromParIter<T> for Vec<T> {
    fn from_ordered(items: Vec<T>) -> Self {
        items
    }
}

impl<T, E> FromParIter<Result<T, E>> for Result<Vec<T>, E> {
    fn from_ordered(items: Vec<Result<T, E>>) -> Self {
        items.into_iter().collect()
    }
}

/// Types convertible into an owning parallel iterator.
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// Types whose references iterate in parallel (`.par_iter()`).
pub trait IntoParallelRefIterator<'a> {
    /// The borrowed element type.
    type Item: Send + 'a;
    /// Borrowing parallel iterator.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// The usual glob-import surface.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ordering_is_preserved() {
        let input: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = input.par_iter().map(|&x| x * 3).collect();
        let expected: Vec<u64> = (0..1000).map(|x| x * 3).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn ordering_with_forced_threads() {
        // The chunk-stitch path must preserve order even when the work per
        // item is skewed.
        std::env::set_var("RAYON_NUM_THREADS", "4");
        let out: Vec<usize> = (0..503)
            .into_par_iter()
            .map(|i| {
                if i % 97 == 0 {
                    std::thread::sleep(std::time::Duration::from_micros(50));
                }
                i * 2
            })
            .collect();
        std::env::remove_var("RAYON_NUM_THREADS");
        assert_eq!(out, (0..503).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn result_collect_takes_first_error_in_order() {
        std::env::set_var("RAYON_NUM_THREADS", "4");
        let out: Result<Vec<u32>, String> = (0..100)
            .into_par_iter()
            .map(|i| {
                if i % 30 == 29 {
                    Err(format!("e{i}"))
                } else {
                    Ok(i as u32)
                }
            })
            .collect();
        std::env::remove_var("RAYON_NUM_THREADS");
        assert_eq!(out, Err("e29".to_owned()));
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 2 + 2, || "ok");
        assert_eq!((a, b), (4, "ok"));
    }
}
