//! No-op derive macros standing in for `serde_derive` in offline builds.
//!
//! The real derives generate `Serialize`/`Deserialize` impls; here the
//! traits (in the sibling `serde` shim) are blanket-implemented for every
//! type, so the derives only need to *exist* and accept the `#[serde(...)]`
//! helper attributes.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and `#[serde(...)]` attributes; emits
/// nothing (the shim `serde::Serialize` trait is blanket-implemented).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and `#[serde(...)]` attributes; emits
/// nothing (the shim `serde::Deserialize` trait is blanket-implemented).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
