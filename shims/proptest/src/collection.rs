//! Collection strategies (subset of `proptest::collection`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Size specification for [`vec`]: a fixed size or a half-open range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { min: n, max: n + 1 }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        Self {
            min: *r.start(),
            max: *r.end() + 1,
        }
    }
}

/// Strategy generating `Vec`s of values from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u64;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `proptest::collection::vec` — a `Vec` strategy with the given element
/// strategy and size range.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::Config;

    #[test]
    fn vec_sizes_and_elements_in_range() {
        let strat = vec(1.0_f64..2.0, 3..7);
        crate::test_runner::run_cases(&Config::with_cases(100), "vec_unit", |rng| {
            let v = strat.generate(rng);
            assert!((3..7).contains(&v.len()));
            assert!(v.iter().all(|x| (1.0..2.0).contains(x)));
            (String::new(), Ok(()))
        });
    }
}
