//! Case execution: configuration, the deterministic RNG, and the
//! pass/reject/fail loop.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Per-test configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of successful cases required.
    pub cases: u32,
    /// Maximum rejected (`prop_assume!`) cases before giving up, as a
    /// multiple of `cases`.
    pub max_global_rejects: u32,
}

impl Default for Config {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        Self {
            cases,
            max_global_rejects: 1024,
        }
    }
}

impl Config {
    /// A config running `cases` successful cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` failed — draw a fresh case.
    Reject(String),
    /// `prop_assert*!` failed — the property is violated.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given message.
    #[must_use]
    pub fn fail(msg: impl Into<String>) -> Self {
        Self::Fail(msg.into())
    }

    /// A rejection with the given reason.
    #[must_use]
    pub fn reject(msg: impl Into<String>) -> Self {
        Self::Reject(msg.into())
    }
}

/// The RNG handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    fn for_test(name: &str) -> Self {
        let base = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0x5EED_1999_u64);
        // FNV-1a over the test name keeps seeds distinct per test.
        let mut h = 0xcbf2_9ce4_8422_2325_u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self(StdRng::seed_from_u64(base ^ h))
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        let v = (self.next_u64() >> 11) as f64;
        v / (1u64 << 53) as f64
    }

    /// A uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics when `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        self.next_u64() % bound
    }
}

/// Runs one property to completion, panicking on the first failing case.
///
/// # Panics
///
/// Panics when a case fails or too many cases are rejected.
pub fn run_cases(
    config: &Config,
    name: &str,
    mut case: impl FnMut(&mut TestRng) -> (String, Result<(), TestCaseError>),
) {
    let mut rng = TestRng::for_test(name);
    let mut passed = 0_u32;
    let mut rejected = 0_u32;
    let mut case_index = 0_u64;
    while passed < config.cases {
        case_index += 1;
        let (shown, outcome) = case(&mut rng);
        match outcome {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected <= config.max_global_rejects,
                    "proptest `{name}`: too many prop_assume! rejections \
                     ({rejected} after {passed} passes)"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest `{name}` failed at case {case_index}: {msg}\n\
                     inputs: {shown}\n\
                     (deterministic shim: re-running reproduces this case; no shrinking)"
                );
            }
        }
    }
}
