//! Offline stand-in for `proptest`.
//!
//! Implements the slice of the proptest 1.x API this workspace uses —
//! `proptest!` with an optional `#![proptest_config(...)]`, range and
//! regex-string strategies, `proptest::collection::vec`, `any::<bool>()`,
//! `prop_assert*`/`prop_assume!` — on top of a deterministic RNG.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking** — a failing case reports its generated inputs
//!   verbatim instead of a minimized counterexample.
//! * **Deterministic seeding** — each test derives its seed from its name
//!   (override with `PROPTEST_SEED`), so runs are reproducible without
//!   `proptest-regressions` files (existing regression files are ignored).
//! * **Regex strategies** support the subset used here: char classes,
//!   `\PC` (printable), literals, and `* + ? {m} {m,n}` quantifiers.
//!
//! Swap the workspace dependency back to crates.io `proptest` when network
//! access is available; the test sources need no changes.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The `proptest::prelude` equivalent.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    /// Mirror of proptest's `prelude::prop` module alias.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests. See the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Internal: expands each `fn name(arg in strategy, ...) { body }` item.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg = $cfg;
            $crate::test_runner::run_cases(&__cfg, stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                let __shown = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let __out: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                (__shown, __out)
            });
        }
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($l:expr, $r:expr $(,)?) => {{
        let (l, r) = (&$l, &$r);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($l:expr, $r:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$l, &$r);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($l:expr, $r:expr $(,)?) => {{
        let (l, r) = (&$l, &$r);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Rejects the current case (generates a replacement) when `cond` fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}
