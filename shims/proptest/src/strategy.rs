//! Value-generation strategies (subset of `proptest::strategy`).

use crate::test_runner::TestRng;

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U: std::fmt::Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: std::fmt::Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + (self.end() - self.start()) * rng.unit_f64()
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                lo + rng.below(span) as $t
            }
        }
    )*};
}
int_strategy!(usize, u64, u32, u16, u8, i64, i32);

/// Types with a canonical strategy (subset of `proptest::arbitrary`).
pub trait Arbitrary: Sized + std::fmt::Debug {
    /// Draws one arbitrary value.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        // Finite, sign-symmetric, spanning many magnitudes.
        let mag = (-30.0 + 60.0 * rng.unit_f64()) * std::f64::consts::LN_10;
        let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
        sign * mag.exp()
    }
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(usize, u64, u32, u16, u8, i64, i32);

/// The canonical strategy of an [`Arbitrary`] type.
#[derive(Debug, Clone)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// String strategies from a regex-like pattern (subset: char classes,
/// `\PC`, literals; quantifiers `* + ? {m} {m,n}`).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

#[derive(Debug)]
enum Atom {
    /// Any printable char (`\PC`): ASCII graphic, space, or a small
    /// sample of non-ASCII printables to keep parsers honest.
    Printable,
    /// An explicit class of chars (expanded from `[...]`).
    Class(Vec<char>),
    /// A literal char.
    Literal(char),
}

fn printable(rng: &mut TestRng) -> char {
    // Mostly ASCII printable, occasionally some non-ASCII printables.
    const EXOTIC: &[char] = &['é', 'Ω', '☃', '中', '\u{200B}', 'ß', '¿'];
    if rng.below(8) == 0 {
        EXOTIC[rng.below(EXOTIC.len() as u64) as usize]
    } else {
        char::from_u32(0x20 + rng.below(0x5F) as u32).unwrap_or(' ')
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        // Parse one atom.
        let atom = match chars[i] {
            '\\' if chars.get(i + 1) == Some(&'P') && chars.get(i + 2) == Some(&'C') => {
                i += 3;
                Atom::Printable
            }
            '\\' if i + 1 < chars.len() => {
                i += 2;
                Atom::Literal(chars[i - 1])
            }
            '[' => {
                let close = chars[i + 1..]
                    .iter()
                    .position(|&c| c == ']')
                    .map_or(chars.len(), |p| i + 1 + p);
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                        for c in lo..=hi {
                            if let Some(c) = char::from_u32(c) {
                                set.push(c);
                            }
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                Atom::Class(set)
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        // Parse an optional quantifier.
        let (min, max) = match chars.get(i) {
            Some('*') => {
                i += 1;
                (0_u64, 32_u64)
            }
            Some('+') => {
                i += 1;
                (1, 32)
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('{') => {
                let close = chars[i + 1..]
                    .iter()
                    .position(|&c| c == '}')
                    .map_or(chars.len(), |p| i + 1 + p);
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                let parts: Vec<&str> = body.splitn(2, ',').collect();
                let lo: u64 = parts[0].trim().parse().unwrap_or(0);
                let hi: u64 = parts.get(1).map_or(lo, |s| s.trim().parse().unwrap_or(lo));
                (lo, hi)
            }
            _ => (1, 1),
        };
        let count = min + rng.below(max - min + 1);
        for _ in 0..count {
            match &atom {
                Atom::Printable => out.push(printable(rng)),
                Atom::Class(set) if !set.is_empty() => {
                    out.push(set[rng.below(set.len() as u64) as usize]);
                }
                Atom::Class(_) => {}
                Atom::Literal(c) => out.push(*c),
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::Config;

    fn rng() -> TestRng {
        // Any fixed name works for unit tests.
        let cfg = Config::with_cases(1);
        let mut out = None;
        crate::test_runner::run_cases(&cfg, "strategy_unit", |r| {
            out = Some(r.clone());
            (String::new(), Ok(()))
        });
        out.unwrap()
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let x = (2.5_f64..7.5).generate(&mut r);
            assert!((2.5..7.5).contains(&x));
            let n = (3_usize..9).generate(&mut r);
            assert!((3..9).contains(&n));
        }
    }

    #[test]
    fn class_pattern_respects_length_and_alphabet() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[a-z]{3,12}".generate(&mut r);
            assert!((3..=12).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }
    }

    #[test]
    fn printable_star_generates_varied_strings() {
        let mut r = rng();
        let mut lengths = std::collections::HashSet::new();
        for _ in 0..100 {
            let s = "\\PC*".generate(&mut r);
            assert!(
                s.chars().all(|c| !c.is_control() || c == '\u{200B}'),
                "{s:?}"
            );
            lengths.insert(s.chars().count());
        }
        assert!(lengths.len() > 3, "should vary in length");
    }
}
