//! Offline stand-in for the [`loom`](https://docs.rs/loom) concurrency
//! model checker.
//!
//! The real loom runs a model closure under a controlled scheduler and
//! *exhaustively* enumerates thread interleavings (and, with its
//! C11-faithful atomics, weak-memory outcomes). This build environment
//! has no network access, so this shim keeps loom's API surface — the
//! slice `hotwire-obs` uses — but explores interleavings by **stress**:
//! [`model`] re-runs the closure many times on real OS threads, and the
//! shimmed atomic types inject pseudo-random `yield_now` preemptions
//! (reseeded every run) before each operation to perturb the schedule.
//!
//! Intentional behavioral differences from the real crate:
//!
//! * **Not exhaustive.** A passing run raises confidence; it is not a
//!   proof. The `// SAFETY(ordering):` justifications in `crates/obs`
//!   therefore argue from the memory model directly and cite these
//!   models as corroborating evidence, not as the proof itself.
//! * **Orderings are executed, not modeled.** `Ordering::Relaxed` maps
//!   onto the host's real relaxed operations (on x86-64 the hardware is
//!   stronger than the model), so relaxed-memory reorderings that only
//!   weaker hardware exhibits are not explored. The Miri CI job covers
//!   part of that gap.
//! * **Const-constructible atomics.** Real loom atomics cannot live in
//!   `static`s without `loom::lazy_static!`; these wrappers keep std's
//!   `const fn new`, so the facade in `crates/obs/src/sync.rs` swaps in
//!   without restructuring the registry's statics.
//!
//! The iteration count defaults to 64 and can be raised with the
//! `LOOM_ITERS` environment variable (the CI loom job uses a larger
//! value than the local default).

use std::sync::atomic::AtomicU64 as StdAtomicU64;
use std::sync::atomic::Ordering as StdOrdering;

/// Scheduler state: the current run's seed (0 = no model active, all
/// yield injection disabled) and a global operation ticket.
static SEED: StdAtomicU64 = StdAtomicU64::new(0);
static TICKET: StdAtomicU64 = StdAtomicU64::new(0);

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Possibly preempts the calling thread; called before every shimmed
/// atomic operation while a model is running.
fn maybe_yield() {
    let seed = SEED.load(StdOrdering::Relaxed);
    if seed == 0 {
        return;
    }
    let ticket = TICKET.fetch_add(1, StdOrdering::Relaxed);
    // Yield on roughly a third of operations, in a pattern that differs
    // every model iteration (the seed changes) and every operation.
    if splitmix64(ticket ^ seed).is_multiple_of(3) {
        std::thread::yield_now();
    }
}

fn iterations() -> u64 {
    std::env::var("LOOM_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(64)
}

/// Runs `f` repeatedly under the stress scheduler (see the crate docs
/// for how this differs from real loom's exhaustive exploration).
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    for iter in 1..=iterations() {
        SEED.store(splitmix64(iter) | 1, StdOrdering::Relaxed);
        f();
    }
    SEED.store(0, StdOrdering::Relaxed);
}

/// Threads participating in a model (thin wrappers over [`std::thread`]).
pub mod thread {
    pub use std::thread::{yield_now, JoinHandle};

    /// Spawns a model thread (std spawn plus a scheduling perturbation).
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        super::maybe_yield();
        std::thread::spawn(f)
    }
}

/// Synchronization primitives usable inside a model.
pub mod sync {
    pub use std::sync::{Arc, Mutex, MutexGuard};

    /// Atomic types that inject scheduler preemptions around every
    /// operation. Memory orderings are passed through to std (executed,
    /// not modeled — see the crate docs).
    pub mod atomic {
        pub use std::sync::atomic::{fence, Ordering};

        macro_rules! atomic_shim {
            ($(#[$meta:meta])* $name:ident, $std:ty, $int:ty) => {
                $(#[$meta])*
                #[derive(Debug, Default)]
                pub struct $name($std);

                impl $name {
                    /// Creates a new atomic (const, unlike real loom).
                    pub const fn new(v: $int) -> Self {
                        Self(<$std>::new(v))
                    }

                    /// Atomic load with a scheduling perturbation.
                    pub fn load(&self, order: Ordering) -> $int {
                        crate::maybe_yield();
                        self.0.load(order)
                    }

                    /// Atomic store with a scheduling perturbation.
                    pub fn store(&self, v: $int, order: Ordering) {
                        crate::maybe_yield();
                        self.0.store(v, order);
                    }

                    /// Atomic add, returning the previous value.
                    pub fn fetch_add(&self, v: $int, order: Ordering) -> $int {
                        crate::maybe_yield();
                        self.0.fetch_add(v, order)
                    }

                    /// Atomic min, returning the previous value.
                    pub fn fetch_min(&self, v: $int, order: Ordering) -> $int {
                        crate::maybe_yield();
                        self.0.fetch_min(v, order)
                    }

                    /// Atomic max, returning the previous value.
                    pub fn fetch_max(&self, v: $int, order: Ordering) -> $int {
                        crate::maybe_yield();
                        self.0.fetch_max(v, order)
                    }

                    /// Atomic compare-exchange.
                    pub fn compare_exchange(
                        &self,
                        current: $int,
                        new: $int,
                        success: Ordering,
                        failure: Ordering,
                    ) -> Result<$int, $int> {
                        crate::maybe_yield();
                        self.0.compare_exchange(current, new, success, failure)
                    }
                }
            };
        }

        atomic_shim!(
            /// `u8` atomic with preemption injection.
            AtomicU8,
            std::sync::atomic::AtomicU8,
            u8
        );
        atomic_shim!(
            /// `u32` atomic with preemption injection.
            AtomicU32,
            std::sync::atomic::AtomicU32,
            u32
        );
        atomic_shim!(
            /// `u64` atomic with preemption injection.
            AtomicU64,
            std::sync::atomic::AtomicU64,
            u64
        );
        atomic_shim!(
            /// `usize` atomic with preemption injection.
            AtomicUsize,
            std::sync::atomic::AtomicUsize,
            usize
        );

        /// `bool` atomic with preemption injection.
        #[derive(Debug, Default)]
        pub struct AtomicBool(std::sync::atomic::AtomicBool);

        impl AtomicBool {
            /// Creates a new atomic (const, unlike real loom).
            pub const fn new(v: bool) -> Self {
                Self(std::sync::atomic::AtomicBool::new(v))
            }

            /// Atomic load with a scheduling perturbation.
            pub fn load(&self, order: Ordering) -> bool {
                crate::maybe_yield();
                self.0.load(order)
            }

            /// Atomic store with a scheduling perturbation.
            pub fn store(&self, v: bool, order: Ordering) {
                crate::maybe_yield();
                self.0.store(v, order);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicU64, Ordering};
    use super::*;

    #[test]
    fn model_runs_and_counts_exactly() {
        static TOTAL: AtomicU64 = AtomicU64::new(0);
        model(|| {
            let before = TOTAL.load(Ordering::Relaxed);
            let handles: Vec<_> = (0..4)
                .map(|_| thread::spawn(|| TOTAL.fetch_add(1, Ordering::Relaxed)))
                .collect();
            for h in handles {
                h.join().expect("model thread panicked");
            }
            assert_eq!(TOTAL.load(Ordering::Relaxed), before + 4);
        });
        assert!(TOTAL.load(Ordering::Relaxed) >= 4);
    }

    #[test]
    fn seed_clears_after_model() {
        model(|| {});
        assert_eq!(SEED.load(StdOrdering::Relaxed), 0);
    }
}
