//! Offline stand-in for `serde`.
//!
//! This build environment has no network access and no crates.io cache, so
//! the workspace points `serde` at this shim. The repository only uses
//! serde for `#[derive(Serialize, Deserialize)]` markers (no code actually
//! serializes through serde yet — the tech-file format is hand-written
//! text), so the traits are empty and blanket-implemented and the derives
//! are no-ops. Swap the workspace dependency back to the real crates.io
//! `serde` when network access is available; no call-site changes needed.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (blanket-implemented).
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait mirroring `serde::Deserialize<'de>` (blanket-implemented).
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
