//! Offline stand-in for `rand` covering the slice of the 0.8 API this
//! workspace uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::{gen, gen_range, gen_bool}` over primitive ranges.
//!
//! The generator is xoshiro256** seeded through splitmix64 — deterministic
//! across platforms, which is all the benches and tests need. Not
//! cryptographic. Swap the workspace dependency back to crates.io `rand`
//! when network access is available.

/// A seedable random number generator (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling support for `Rng::gen_range` (subset of `rand`'s
/// `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing extension methods (subset of `rand::Rng`).
pub trait Rng: RngCore + Sized {
    /// A uniform sample from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// A uniform `f64` in `[0, 1)`.
    fn gen(&mut self) -> f64 {
        uniform_f64(self.next_u64())
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        uniform_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + Sized> Rng for T {}

#[inline]
fn uniform_f64(bits: u64) -> f64 {
    // 53 random mantissa bits → [0, 1).
    #[allow(clippy::cast_precision_loss)]
    let v = (bits >> 11) as f64;
    v / (1u64 << 53) as f64
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u128;
                let v = (rng.next_u64() as u128) % span;
                self.start + v as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                lo + v as $t
            }
        }
    )*};
}
int_range!(usize, u64, u32, i64, i32);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * uniform_f64(rng.next_u64())
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + (hi - lo) * uniform_f64(rng.next_u64())
    }
}

/// Named generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, as rand_core does.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias so `SmallRng` call sites also work.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = a.gen_range(3.0_f64..9.0);
            assert!((3.0..9.0).contains(&x));
            assert_eq!(x, b.gen_range(3.0_f64..9.0));
            let n = a.gen_range(5_usize..17);
            assert!((5..17).contains(&n));
            let _ = b.gen_range(5_usize..17);
        }
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0_f64..1.0)).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }
}
