//! Offline stand-in for `criterion`.
//!
//! Implements the measurement API this workspace's benches use —
//! `Criterion`, `benchmark_group`/`sample_size`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros — with a simple but honest
//! timer: per benchmark it auto-scales the iteration count to a target
//! sample duration, collects `sample_size` samples, and reports the
//! median/mean/min per-iteration time.
//!
//! Extras over a plain stopwatch:
//!
//! * Every run appends machine-readable results to
//!   `target/criterion-shim/<bench-binary>.json` (override the directory
//!   with `CRITERION_SHIM_DIR`), so baselines like `BENCH_solver.json`
//!   can be assembled without parsing terminal output.
//! * A positional CLI argument filters benchmarks by substring, matching
//!   `cargo bench -- <filter>` usage; criterion's own flags are ignored.
//!
//! Swap the workspace dependency back to crates.io `criterion` when
//! network access is available.

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target duration of one sample batch (tunable via
/// `CRITERION_SHIM_SAMPLE_MS`).
fn target_sample_duration() -> Duration {
    let ms = std::env::var("CRITERION_SHIM_SAMPLE_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_u64);
    Duration::from_millis(ms)
}

/// One benchmark's collected statistics, in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Full benchmark id (`group/function` or bare function name).
    pub id: String,
    /// Iterations per sample.
    pub iters_per_sample: u64,
    /// Number of samples taken.
    pub samples: usize,
    /// Median ns/iter.
    pub median_ns: f64,
    /// Mean ns/iter.
    pub mean_ns: f64,
    /// Fastest-sample ns/iter.
    pub min_ns: f64,
}

/// The benchmark driver.
pub struct Criterion {
    filter: Option<String>,
    default_sample_size: usize,
    records: Vec<BenchRecord>,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench passes `--bench` (and sometimes criterion flags);
        // treat the first non-flag argument as a substring filter.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty());
        Self {
            filter,
            default_sample_size: 10,
            records: Vec::new(),
        }
    }
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Benchmarks a closure under a bare name.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let sample_size = self.default_sample_size;
        self.run_one(id.to_owned(), sample_size, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: String, sample_size: usize, mut f: F) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        // Calibration pass: one iteration, to pick iters_per_sample.
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let once = bencher.elapsed.max(Duration::from_nanos(1));
        let target = target_sample_duration();
        let iters_per_sample = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(sample_size);
        for _ in 0..sample_size {
            let mut bencher = Bencher {
                iters: iters_per_sample,
                elapsed: Duration::ZERO,
            };
            f(&mut bencher);
            #[allow(clippy::cast_precision_loss)]
            let ns = bencher.elapsed.as_nanos() as f64 / iters_per_sample as f64;
            per_iter_ns.push(ns);
        }
        per_iter_ns.sort_by(f64::total_cmp);
        let median = per_iter_ns[per_iter_ns.len() / 2];
        let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
        let min = per_iter_ns[0];
        println!(
            "{id:<56} time: [{} {} {}]  ({iters_per_sample} iters × {sample_size} samples)",
            format_ns(min),
            format_ns(median),
            format_ns(per_iter_ns[per_iter_ns.len() - 1]),
        );
        self.records.push(BenchRecord {
            id,
            iters_per_sample,
            samples: sample_size,
            median_ns: median,
            mean_ns: mean,
            min_ns: min,
        });
    }

    /// All records measured so far.
    #[must_use]
    pub fn records(&self) -> &[BenchRecord] {
        &self.records
    }

    /// Writes the JSON results file; called by `criterion_main!`.
    pub fn finalize(&self) {
        if self.records.is_empty() {
            return;
        }
        let dir = std::env::var("CRITERION_SHIM_DIR")
            .unwrap_or_else(|_| "target/criterion-shim".to_owned());
        let bin = std::env::args()
            .next()
            .map(|p| {
                std::path::Path::new(&p)
                    .file_stem()
                    .map_or_else(|| "bench".to_owned(), |s| s.to_string_lossy().into_owned())
            })
            .unwrap_or_else(|| "bench".to_owned());
        // Strip the -<hash> suffix cargo appends to bench binaries.
        let bin = bin
            .rsplit_once('-')
            .filter(|(_, h)| h.len() == 16 && h.chars().all(|c| c.is_ascii_hexdigit()))
            .map_or(bin.clone(), |(stem, _)| stem.to_owned());
        if std::fs::create_dir_all(&dir).is_err() {
            return;
        }
        let path = format!("{dir}/{bin}.json");
        let mut out = String::from("{\n  \"benchmarks\": [\n");
        for (i, r) in self.records.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"id\": {}, \"median_ns\": {:.1}, \"mean_ns\": {:.1}, \
                 \"min_ns\": {:.1}, \"iters_per_sample\": {}, \"samples\": {}}}{}\n",
                json_string(&r.id),
                r.median_ns,
                r.mean_ns,
                r.min_ns,
                r.iters_per_sample,
                r.samples,
                if i + 1 == self.records.len() { "" } else { "," },
            ));
        }
        out.push_str("  ]\n}\n");
        if let Ok(mut f) = std::fs::File::create(&path) {
            let _ = f.write_all(out.as_bytes());
            println!("\nwrote {path}");
        }
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn format_ns(ns: f64) -> String {
    if ns >= 1.0e9 {
        format!("{:.3} s", ns / 1.0e9)
    } else if ns >= 1.0e6 {
        format!("{:.3} ms", ns / 1.0e6)
    } else if ns >= 1.0e3 {
        format!("{:.3} µs", ns / 1.0e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Overrides the per-sample measurement time (accepted for
    /// compatibility; the shim auto-scales instead).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks a closure under `group/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().0);
        let n = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size);
        self.criterion.run_one(full, n, f);
        self
    }

    /// Benchmarks a closure that receives a shared input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (no-op; kept for API parity).
    pub fn finish(self) {}
}

/// A benchmark identifier.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        Self(format!("{name}/{parameter}"))
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self(s.to_owned())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self(s)
    }
}

/// Measures the closure passed to [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` runs of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares `main` running the given groups and writing the JSON summary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
            c.finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_scaling() {
        let mut c = Criterion {
            filter: None,
            default_sample_size: 5,
            records: Vec::new(),
        };
        c.bench_function("spin", |b| b.iter(|| (0..100).sum::<u64>()));
        assert_eq!(c.records().len(), 1);
        let r = &c.records()[0];
        assert!(r.median_ns > 0.0);
        assert!(r.iters_per_sample >= 1);
    }

    #[test]
    fn group_ids_include_group_name() {
        let mut c = Criterion {
            filter: None,
            default_sample_size: 3,
            records: Vec::new(),
        };
        let mut g = c.benchmark_group("grp");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::from_parameter(42), &42, |b, &x| {
            b.iter(|| x * 2)
        });
        g.finish();
        assert_eq!(c.records()[0].id, "grp/42");
    }
}
