//! Generate a complete thermally-aware current-density design-rule sign-off
//! document for a technology — the workflow a reliability engineer would
//! run when a new process (or a new low-k dielectric candidate) lands.
//!
//! Covers: both NTRS nodes, Cu and AlCu, conservative and aggressive j₀,
//! all built-in dielectrics, and a custom tech file parsed from text.
//!
//! Run with: `cargo run --example design_rule_tables`

use hotwire::core::rules::{DesignRuleSpec, DesignRuleTable, DutyCycleCase};
use hotwire::tech::{format, presets, Dielectric};
use hotwire::units::CurrentDensity;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The paper's Tables 2/3 for the built-in presets.
    for tech in [presets::ntrs_250nm(), presets::ntrs_100nm()] {
        for (label, j0) in [
            ("conservative j0 = 0.6 MA/cm²", 6.0e5),
            ("aggressive Cu j0 = 1.8 MA/cm²", 1.8e6),
        ] {
            println!("=== {} — {label} ===", tech.name());
            let spec =
                DesignRuleSpec::paper_defaults(&tech, 2, CurrentDensity::from_amps_per_cm2(j0));
            let table = DesignRuleTable::generate(&spec)?;
            println!("{table}");
        }
    }

    // 2. A custom process read from a tech file, with an exotic dielectric
    //    matrix and extra duty-cycle cases.
    let custom_techfile = "\
technology fab-x-028um
feature_size_um 0.28
vdd 2.5
clock_ghz 0.6
tref_c 110
metal custom CuX rho_uohm_cm 1.9 at_c 110 tcr 0.0062 kth 380 density 8900 cp 390 melt_k 1350 lf 2.0e5 q_ev 0.75 n 2 j0_a_cm2 9.0e5
dielectric inter oxide
dielectric intra custom xerogel er 1.9 kth 0.18
driver r0_ohm 11000 cg_ff 2.6 cp_ff 2.4
layer M1 w_um 0.40 pitch_um 0.80 t_um 0.60 ild_um 1.0
layer M2 w_um 0.45 pitch_um 0.95 t_um 0.70 ild_um 0.7
layer M3 w_um 0.60 pitch_um 1.30 t_um 0.85 ild_um 0.7
layer M4 w_um 1.00 pitch_um 2.10 t_um 1.10 ild_um 0.9
";
    let custom = format::parse(custom_techfile)?;
    println!("=== custom process {} (from tech file) ===", custom.name());
    let spec = DesignRuleSpec {
        technology: &custom,
        layers: vec!["M3".into(), "M4".into()],
        dielectrics: vec![
            Dielectric::oxide(),
            Dielectric::siof(),
            custom.intra_level_dielectric().clone(),
        ],
        duty_cycles: vec![
            DutyCycleCase::signal(),
            DutyCycleCase {
                label: "Bursty Lines (r = 0.02)".into(),
                r: 0.02,
            },
            DutyCycleCase::power(),
        ],
        j0: custom.metal().em().design_rule_j0,
        phi: hotwire::thermal::impedance::QUASI_2D_PHI,
        line_length: hotwire::units::Length::from_micrometers(1000.0),
    };
    let table = DesignRuleTable::generate(&spec)?;
    println!("{table}");

    println!(
        "Reading: each block is directly comparable to the paper's Tables 2–4 — \
         oxide > HSQ/SiOF > aggressive low-k, upper levels always stricter."
    );
    Ok(())
}
