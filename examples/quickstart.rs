//! Quickstart: the paper's core question for one wire.
//!
//! Given a global Cu signal line on the top metal of the NTRS 0.25 µm
//! process, what is its self-consistent operating temperature and the
//! maximum peak current density it may carry — and how wrong would a
//! designer be who applied the EM rule alone?
//!
//! Run with: `cargo run --example quickstart`

use hotwire::core::{rules::layer_stack, SelfConsistentProblem};
use hotwire::tech::{presets, Dielectric};
use hotwire::thermal::impedance::LineGeometry;
use hotwire::units::Length;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = presets::ntrs_250nm();
    let layer = tech.layer("M6").expect("0.25 µm preset has six levels");
    println!(
        "Technology {} — layer {} (W = {:.2} µm, t_m = {:.2} µm)",
        tech.name(),
        layer.name(),
        layer.width().to_micrometers(),
        layer.thickness().to_micrometers()
    );

    let line = LineGeometry::new(
        layer.width(),
        layer.thickness(),
        Length::from_micrometers(1000.0),
    )?;

    println!(
        "\n{:<12}{:>10}{:>16}{:>18}{:>12}",
        "dielectric", "duty r", "T_m [°C]", "j_peak [MA/cm²]", "EM-only ×"
    );
    for dielectric in [
        Dielectric::oxide(),
        Dielectric::hsq(),
        Dielectric::polyimide(),
    ] {
        for r in [1.0, 0.1, 0.01] {
            let problem = SelfConsistentProblem::builder()
                .metal(tech.metal().clone())
                .line(line)
                .stack(layer_stack(&tech, layer.index(), &dielectric)?)
                .duty_cycle(r)
                .reference_temperature(tech.reference_temperature())
                .build()?;
            let sol = problem.solve()?;
            let penalty = problem.em_only_peak() / sol.j_peak;
            println!(
                "{:<12}{:>10.2}{:>16.1}{:>18.2}{:>12.2}",
                dielectric.name(),
                r,
                sol.metal_temperature.to_celsius().value(),
                sol.j_peak.to_mega_amps_per_cm2(),
                penalty,
            );
        }
    }

    println!(
        "\nReading: at low duty cycles the self-consistent rule is up to ~2× \
         tighter than the naive EM rule, and low-k gap fill tightens it further — \
         the paper's central result."
    );
    Ok(())
}
