//! Sign off a power-distribution grid against the paper's "Power Lines
//! (r = 1.0)" design rules: solve the mesh for IR drop and per-strap
//! current densities, check them against the self-consistent limit for
//! the strap's metal level, and fix violations by adding pads.
//!
//! Run with: `cargo run --example power_grid_signoff`

use hotwire::circuit::power_grid::{PowerGrid, PowerGridSpec};
use hotwire::core::rules::{DesignRuleSpec, DesignRuleTable, DutyCycleCase};
use hotwire::tech::{presets, Dielectric};
use hotwire::units::{Current, CurrentDensity, Resistance};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = presets::ntrs_250nm();
    let strap_layer = tech.layer("M6").expect("six-level preset");
    // straps are drawn 4× minimum width for power delivery
    let strap_width = strap_layer.width() * 4.0;
    let cross_section = strap_layer.cross_section_at_width(strap_width);
    let pitch = hotwire::units::Length::from_micrometers(100.0);
    let rho = tech.metal().resistivity(tech.reference_temperature());
    let segment_r = rho.bar_resistance(pitch, cross_section);

    // The thermally-aware EM limit for M6 power straps with HSQ gap fill:
    let table = DesignRuleTable::generate(&DesignRuleSpec {
        dielectrics: vec![Dielectric::hsq()],
        duty_cycles: vec![DutyCycleCase::power()],
        ..DesignRuleSpec::paper_defaults(&tech, 1, tech.metal().em().design_rule_j0)
    })?;
    let j_limit = table
        .entry("Power Lines (r = 1.0)", "M6", "HSQ")
        .expect("generated above")
        .solution
        .j_peak;
    println!(
        "M6 power-strap EM limit (self-consistent, r = 1.0, HSQ): {:.2} MA/cm²",
        j_limit.to_mega_amps_per_cm2()
    );
    println!(
        "strap: {:.1} µm wide, segment R = {:.3} Ω per {:.0} µm of pitch\n",
        strap_width.to_micrometers(),
        segment_r.value(),
        pitch.to_micrometers()
    );

    let base = PowerGridSpec {
        rows: 9,
        cols: 9,
        segment_resistance: Resistance::new(segment_r.value()),
        strap_cross_section: cross_section,
        vdd: tech.vdd(),
        sink_per_node: Current::from_milliamps(3.0),
        pads: vec![(0, 0)],
    };

    for (label, pads) in [
        ("1 corner pad", vec![(0, 0)]),
        ("4 corner pads", vec![(0, 0), (0, 8), (8, 0), (8, 8)]),
        (
            "4 corners + center pad",
            vec![(0, 0), (0, 8), (8, 0), (8, 8), (4, 4)],
        ),
    ] {
        let spec = PowerGridSpec {
            pads,
            ..base.clone()
        };
        let report = PowerGrid::build(&spec)?.analyze()?;
        let worst = report.worst_segment();
        let violations = report.violations(j_limit);
        println!(
            "{label:<24} IR drop {:>6.1} mV @ {:?}   worst strap {:>6.2} MA/cm² \
             ({:?}→{:?})   {:>2} EM violations → {}",
            report.worst_ir_drop.value() * 1e3,
            report.worst_node,
            worst.density.to_mega_amps_per_cm2(),
            worst.from,
            worst.to,
            violations.len(),
            if report.meets_rule(j_limit) {
                "SIGN-OFF"
            } else {
                "FIX PADS"
            },
        );
        let _ = CurrentDensity::ZERO;
    }

    println!(
        "\nReading: a starved grid violates the thermally-aware EM rule near its \
         single pad; spreading the same demand across five pads passes with \
         margin — exactly the trade the r = 1.0 blocks of Tables 2–4 exist to \
         police."
    );
    Ok(())
}
