//! Plan optimally buffered global interconnect and cross-check the
//! resulting currents against the thermal/EM design rules — the paper's
//! §4 workflow (`j_peak-delay` vs `j_peak-self-consistent`).
//!
//! Run with: `cargo run --example repeater_planning`

use hotwire::circuit::repeater::{optimal_design, simulate_repeater, RepeaterSimOptions};
use hotwire::core::rules::{layer_stack, DesignRuleSpec, DesignRuleTable};
use hotwire::tech::{presets, Dielectric, Technology};
use hotwire::units::CurrentDensity;

fn check_technology(
    tech: &Technology,
    dielectric: &Dielectric,
) -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "=== {} with {} gap fill ===",
        tech.name(),
        dielectric.name()
    );
    let tech = tech.clone().with_intra_level_dielectric(dielectric.clone());
    let spec = DesignRuleSpec {
        dielectrics: vec![dielectric.clone()],
        ..DesignRuleSpec::paper_defaults(&tech, 2, tech.metal().em().design_rule_j0)
    };
    let limits = DesignRuleTable::generate(&spec)?;

    println!(
        "{:<7}{:>12}{:>9}{:>12}{:>14}{:>16}{:>16}{:>9}",
        "layer",
        "l_opt [mm]",
        "s_opt",
        "r_eff",
        "slew (10-90)",
        "j_peak [MA/cm²]",
        "limit [MA/cm²]",
        "verdict"
    );
    let n = tech.layers().len();
    for index in [n - 2, n - 1] {
        let layer = tech.layer_at(index)?;
        let design = optimal_design(&tech, index)?;
        let report = simulate_repeater(&tech, index, RepeaterSimOptions::default())?;
        let j_delay = report.j_peak();
        let j_limit = limits
            .entry("Signal Lines (r = 0.1)", layer.name(), dielectric.name())
            .expect("limit computed above")
            .solution
            .j_peak;
        let ok = j_delay < j_limit;
        println!(
            "{:<7}{:>12.2}{:>9.0}{:>12.3}{:>14.3}{:>16.2}{:>16.2}{:>9}",
            layer.name(),
            design.l_opt.value() * 1.0e3,
            design.s_opt,
            report.effective_duty_cycle,
            report.relative_slew,
            j_delay.to_mega_amps_per_cm2(),
            j_limit.to_mega_amps_per_cm2(),
            if ok { "OK" } else { "HOT" },
        );
        // Keep the unused binding meaningfully used:
        let _ = CurrentDensity::ZERO;
    }
    println!();
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for tech in [presets::ntrs_250nm(), presets::ntrs_100nm()] {
        // standard oxide, then a low-k candidate: watch the margin shrink.
        check_technology(&tech, &Dielectric::oxide())?;
        check_technology(&tech, &Dielectric::polyimide())?;
    }
    // And the thermal sanity of the layer stack used (for the curious):
    let tech = presets::ntrs_250nm();
    let stack = layer_stack(&tech, 5, &Dielectric::oxide())?;
    println!(
        "(M6 conduction path: {:.2} µm of dielectric to the substrate)",
        stack.total_thickness().to_micrometers()
    );
    println!(
        "Reading: delay-optimal currents stay below the self-consistent limits \
         for oxide, but the margin narrows with low-k — the paper's §4 conclusion."
    );
    Ok(())
}
