//! Audit the ESD robustness of an I/O pad ring's interconnect — the
//! paper's §6 concern: self-consistent wearout rules do **not** cover the
//! single-pulse thermal failure of lines in ESD protection circuits and
//! I/O buffers, which must be sized separately.
//!
//! Run with: `cargo run --example esd_io_audit`

use hotwire::esd::{check_robustness, minimum_width, EsdOutcome, EsdStress};
use hotwire::tech::{presets, Dielectric, Metal};
use hotwire::thermal::impedance::{InsulatorStack, LineGeometry, QUASI_2D_PHI};
use hotwire::units::{Celsius, Length, Seconds};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let um = Length::from_micrometers;
    let tech = presets::ntrs_250nm();
    let m1 = tech.layer("M1").expect("preset has M1");
    let stack = InsulatorStack::single(m1.ild_below(), &Dielectric::oxide());
    let ambient = Celsius::new(25.0).to_kelvin();

    // 1. Audit a candidate pad-ring bus at several widths under the
    //    qualification stresses.
    let stresses = [
        ("HBM 2 kV", EsdStress::human_body(2000.0)),
        ("HBM 4 kV", EsdStress::human_body(4000.0)),
        ("MM 200 V", EsdStress::machine(200.0)),
        ("CDM 5 A", EsdStress::charged_device(5.0)),
        (
            "TLP 1.5 A / 150 ns",
            EsdStress::tlp(1.5, Seconds::from_nanos(150.0)),
        ),
    ];
    for metal in [Metal::alcu(), Metal::copper()] {
        println!(
            "=== {} I/O bus, t_m = {:.2} µm ===",
            metal.name(),
            m1.thickness().to_micrometers()
        );
        println!(
            "{:<20}{:>10}{:>14}{:>16}{:>12}",
            "stress", "W [µm]", "T_peak [°C]", "j_peak [MA/cm²]", "outcome"
        );
        for (name, stress) in &stresses {
            for w in [2.0, 5.0, 10.0] {
                let line = LineGeometry::new(um(w), m1.thickness(), um(150.0))?;
                let v = check_robustness(&metal, line, &stack, QUASI_2D_PHI, ambient, stress)?;
                println!(
                    "{:<20}{:>10.1}{:>14.0}{:>16.1}{:>12}",
                    name,
                    w,
                    v.peak_temperature.to_celsius().value(),
                    v.peak_density.to_mega_amps_per_cm2(),
                    match v.outcome {
                        EsdOutcome::Pass => "pass",
                        EsdOutcome::LatentDamage => "LATENT",
                        EsdOutcome::OpenCircuit => "OPEN",
                    }
                );
            }
        }
        // 2. The design rule: minimum safe width per stress.
        println!("\nminimum widths for {}:", metal.name());
        for (name, stress) in &stresses {
            let w_open = minimum_width(
                &metal,
                m1.thickness(),
                um(150.0),
                &stack,
                QUASI_2D_PHI,
                ambient,
                stress,
                false,
            )?;
            let w_pristine = minimum_width(
                &metal,
                m1.thickness(),
                um(150.0),
                &stack,
                QUASI_2D_PHI,
                ambient,
                stress,
                true,
            )?;
            println!(
                "  {:<20} survive ≥ {:>6.2} µm   no latent damage ≥ {:>6.2} µm",
                name,
                w_open.to_micrometers(),
                w_pristine.to_micrometers()
            );
        }
        println!();
    }
    println!(
        "Reading: the ~60 MA/cm² open-circuit threshold of the paper's ref. [8] \
         emerges at ESD time scales; Cu buys real margin; and the latent-damage \
         rule is always the wider one."
    );
    Ok(())
}
