//! Build a population-level reliability budget for a net: combine the
//! self-consistent operating point with lognormal failure statistics,
//! apply the thermally-short-line relaxation where it is honest, and show
//! what one near-miss ESD event does to the budget.
//!
//! Run with: `cargo run --example reliability_budget`

use hotwire::core::short_line::solve_with_fin_correction;
use hotwire::core::{rules::layer_stack, SelfConsistentProblem};
use hotwire::em::lifetime::LognormalLifetime;
use hotwire::em::BlackModel;
use hotwire::esd::{check_robustness, EsdStress};
use hotwire::tech::{presets, Dielectric};
use hotwire::thermal::impedance::{LineGeometry, QUASI_2D_PHI};
use hotwire::units::{Celsius, CurrentDensity, Length, Seconds};

const YEAR: f64 = 365.25 * 24.0 * 3600.0;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = presets::ntrs_250nm();
    let m4 = tech.layer("M4").expect("six-level preset");
    let stack = layer_stack(&tech, m4.index(), &Dielectric::hsq())?;
    let sigma = 0.5; // measured lognormal deviation of the metallization

    println!(
        "Net reliability budget — {} / {} with HSQ gap fill\n",
        tech.name(),
        m4.name()
    );

    // 1. Operating point of a long net at its allowed density vs an
    //    aggressive use 20 % above it.
    let line = LineGeometry::new(m4.width(), m4.thickness(), Length::from_micrometers(2000.0))?;
    let problem = SelfConsistentProblem::builder()
        .metal(
            tech.metal()
                .clone()
                .with_design_rule_j0(CurrentDensity::from_amps_per_cm2(6.0e5)),
        )
        .line(line)
        .stack(stack.clone())
        .phi(QUASI_2D_PHI)
        .duty_cycle(0.1)
        .build()?;
    let sol = problem.solve()?;
    println!(
        "allowed operating point: T_m = {:.1}, j_peak ≤ {:.2} MA/cm²",
        sol.metal_temperature.to_celsius(),
        sol.j_peak.to_mega_amps_per_cm2()
    );

    // 2. Population statistics: the 10-year goal is a 0.1 % quantile.
    let black = BlackModel::for_metal(problem.metal())
        .with_design_rule_j0(CurrentDensity::from_amps_per_cm2(6.0e5));
    let at_rule = LognormalLifetime::from_quantile(hotwire::em::TEN_YEARS, 1.0e-3, sigma)?;
    println!(
        "at the design rule: median life {:.0} y, 0.1 % fail at {:.0} y, 1 % at {:.1} y",
        at_rule.median().value() / YEAR,
        at_rule.time_to_fraction(1.0e-3)?.value() / YEAR,
        at_rule.time_to_fraction(1.0e-2)?.value() / YEAR,
    );
    // Overdrive by 20 %: Black's law gives the median shift, the
    // distribution shape is unchanged.
    let j_over = sol.j_avg * 1.2;
    let ratio = black.lifetime_ratio(
        j_over,
        sol.metal_temperature,
        sol.j_avg,
        sol.metal_temperature,
    );
    let overdriven = at_rule.scaled(ratio)?;
    println!(
        "overdriven 20 %: 0.1 % fail already at {:.1} y (lifetime ratio {:.2})",
        overdriven.time_to_fraction(1.0e-3)?.value() / YEAR,
        ratio
    );

    // 3. Short-net relaxation — honest extra margin for λ-scale stubs.
    let stub = SelfConsistentProblem::builder()
        .metal(problem.metal().clone())
        .line(LineGeometry::new(
            m4.width(),
            m4.thickness(),
            Length::from_micrometers(25.0),
        )?)
        .stack(stack.clone())
        .phi(QUASI_2D_PHI)
        .duty_cycle(0.1)
        .build()?;
    let short = solve_with_fin_correction(&stub, &stack)?;
    println!(
        "\nshort-net relaxation: λ = {:.1} µm, a 25 µm stub may carry {:.2} MA/cm² \
         ({:+.0} % vs the long-line rule){}",
        short.healing_length.to_micrometers(),
        short.solution.j_peak.to_mega_amps_per_cm2(),
        (short.solution.j_peak.value() / sol.j_peak.value() - 1.0) * 100.0,
        if short.thermally_long {
            " [thermally long]"
        } else {
            ""
        }
    );

    // 4. One near-miss ESD event: latent damage derates the whole
    //    distribution.
    let io_line = LineGeometry::new(
        Length::from_micrometers(3.0),
        m4.thickness(),
        Length::from_micrometers(150.0),
    )?;
    let verdict = check_robustness(
        problem.metal(),
        io_line,
        &stack,
        QUASI_2D_PHI,
        Celsius::new(25.0).to_kelvin(),
        &EsdStress::tlp(2.1, Seconds::from_nanos(150.0)),
    )?;
    println!(
        "\nESD near-miss on a 3 µm I/O branch: outcome {:?}, peak {:.0} °C, \
         EM lifetime factor {:.2}",
        verdict.outcome,
        verdict.peak_temperature.to_celsius().value(),
        verdict.em_lifetime_factor
    );
    if verdict.em_lifetime_factor < 1.0 {
        let derated = at_rule.scaled(verdict.em_lifetime_factor)?;
        println!(
            "after latent damage, 0.1 % fail at {:.1} y instead of {:.0} y",
            derated.time_to_fraction(1.0e-3)?.value() / YEAR,
            at_rule.time_to_fraction(1.0e-3)?.value() / YEAR,
        );
    }
    println!(
        "\nReading: the self-consistent point anchors the budget; lognormal \
         statistics translate it to population quantiles; short-line and \
         latent-damage effects adjust it in the direction the paper's §3.2 \
         and §6 describe."
    );
    Ok(())
}
