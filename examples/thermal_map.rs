//! Render the steady-state temperature field of an interconnect
//! cross-section as an ASCII heat map — the picture behind the paper's
//! Fig. 4 (quasi-2-D spreading) and Fig. 8 (array coupling).
//!
//! Run with: `cargo run --example thermal_map`

use hotwire::tech::Dielectric;
use hotwire::thermal::grid2d::{
    solve, ArrayLevel, ArrayStructure, Field, MeshControl, SingleWireStructure, SolveOptions,
};
use hotwire::units::Length;

fn um(v: f64) -> Length {
    Length::from_micrometers(v)
}

/// Renders the field on a uniform character raster, top of the stack at
/// the top of the output, substrate at the bottom.
fn heat_map(field: &Field, width_m: f64, height_m: f64, cols: usize, rows: usize) -> String {
    const SHADES: &[u8] = b" .:-=+*#%@";
    let peak = field.max_rise().max(1e-30);
    let mut out = String::new();
    for r in 0..rows {
        #[allow(clippy::cast_precision_loss)]
        let y = height_m * (1.0 - (r as f64 + 0.5) / rows as f64);
        for c in 0..cols {
            #[allow(clippy::cast_precision_loss)]
            let x = width_m * (c as f64 + 0.5) / cols as f64;
            let v = field.rise_at(x, y) / peak;
            #[allow(
                clippy::cast_possible_truncation,
                clippy::cast_sign_loss,
                clippy::cast_precision_loss
            )]
            let idx = ((v * (SHADES.len() as f64 - 1.0)).round() as usize).min(SHADES.len() - 1);
            out.push(SHADES[idx] as char);
        }
        out.push('\n');
    }
    out
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A single narrow wire over oxide: watch the heat spread far beyond
    //    the drawn width (why φ = 2.45 ≫ 0.88).
    println!("single 0.35 µm wire over 1.2 µm oxide — ΔT field (substrate at bottom):\n");
    let sw = SingleWireStructure::all_oxide(um(0.35), um(0.55), um(1.2));
    let (structure, _) = sw.build(um(4.0))?;
    let field = solve(
        &structure,
        MeshControl::resolving(um(0.07), 1),
        SolveOptions::default(),
    )?;
    print!(
        "{}",
        heat_map(&field, structure.width(), structure.height(), 72, 16)
    );
    println!(
        "peak rise {:.2} K per W/m of line power\n",
        field.max_rise()
    );

    // 2. The Fig. 8 dense array: every line hot, one pitch shown.
    println!("dense 4-level array (all lines hot) — thermal coupling in action:\n");
    let array = ArrayStructure {
        levels: vec![
            ArrayLevel {
                width: um(0.4),
                pitch: um(0.8),
                thickness: um(0.6),
                ild_below: um(0.8),
            },
            ArrayLevel {
                width: um(0.4),
                pitch: um(0.8),
                thickness: um(0.6),
                ild_below: um(0.7),
            },
            ArrayLevel {
                width: um(0.6),
                pitch: um(1.2),
                thickness: um(0.8),
                ild_below: um(0.7),
            },
            ArrayLevel {
                width: um(1.0),
                pitch: um(2.0),
                thickness: um(1.0),
                ild_below: um(0.8),
            },
        ],
        dielectric: Dielectric::oxide(),
        cap_thickness: um(1.0),
        metal_conductivity: 395.0,
        periods: 3,
    };
    let (structure, target) = array.build(&[true; 4], false, 3)?;
    let field = solve(
        &structure,
        MeshControl::resolving(um(0.1), 1),
        SolveOptions::default(),
    )?;
    print!(
        "{}",
        heat_map(&field, structure.width(), structure.height(), 72, 20)
    );
    println!(
        "M4 target line average rise: {:.2} K per W/m per line — compare the \
         isolated case with `repro --experiment table7`.",
        field.average_rise_in(target)
    );
    Ok(())
}
