//! Chip-level coupled EM–IR–thermal signoff of a power grid — the
//! whole-chip generalization of the paper's per-line self-consistent
//! loop (eq. 13): IR drop sets the strap currents, Joule heating raises
//! the strap temperatures, hotter metal is more resistive, and the loop
//! iterates to a fixed point before electromigration is judged at each
//! strap's *local* temperature.
//!
//! Run with: `cargo run --example power_grid_coupled`

use hotwire::coupled::{coupled_signoff, CoupledGridSpec, CoupledOptions};
use hotwire::units::Current;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A comfortable grid: light per-node load, everything passes.
    let light = CoupledGridSpec {
        sink_per_node: Current::from_milliamps(0.1),
        ..CoupledGridSpec::demo(40, 40)
    };
    let report = coupled_signoff(light, CoupledOptions::default())?;
    println!(
        "40×40 @ 0.1 mA/node: {} iterations, peak strap {:.2}, worst droop {:.1} mV — {}",
        report.iterations,
        report.peak_temperature.to_celsius(),
        report.worst_ir_drop.value() * 1e3,
        if report.passes() {
            "clean"
        } else {
            "violations!"
        },
    );

    // 2. Crank the load: the electro-thermal feedback now matters (watch
    //    the iteration count grow) and near-pad straps blow through their
    //    self-consistent allowance.
    let heavy = CoupledGridSpec {
        sink_per_node: Current::from_milliamps(0.3),
        ..CoupledGridSpec::demo(40, 40)
    };
    let report = coupled_signoff(heavy, CoupledOptions::default())?;
    println!(
        "\n40×40 @ 0.3 mA/node: {} iterations, peak strap {:.2}, worst droop {:.1} mV",
        report.iterations,
        report.peak_temperature.to_celsius(),
        report.worst_ir_drop.value() * 1e3,
    );
    println!(
        "convergence trace (max |dT| per iteration): {}",
        report
            .iteration_deltas
            .iter()
            .map(|d| format!("{d:.2}"))
            .collect::<Vec<_>>()
            .join(" → ")
    );
    let violations = report.violations();
    println!("\n{} straps in violation; worst five:", violations.len());
    for v in violations.iter().take(5) {
        println!(
            "  {:<24} T_m = {:.1}, j = {:.2} MA/cm², {:.2}× its {} limit",
            v.verdict.net,
            v.temperature.to_celsius(),
            v.density.to_mega_amps_per_cm2(),
            v.verdict.utilization,
            v.verdict.governing.label(),
        );
    }

    // 3. The reliability rollup: every mortal strap contributes a
    //    lognormal TTF population member; the chip fails when the first
    //    strap does (weakest link).
    if let Some(ttf) = report.chip_ttf {
        println!(
            "\nchip-level TTF at the 0.1 % quantile: {:.2e} h ({} mortal straps of {})",
            ttf.value() / 3600.0,
            report.chip_failure.as_ref().map_or(0, |p| p.len()),
            report.branches.len(),
        );
    }
    Ok(())
}
