//! End-to-end test of `hotwire serve`: real process, real sockets.
//!
//! Starts the binary on an ephemeral port, scrapes `/metrics` and
//! `/healthz` over raw TCP (the workspace has no HTTP client, and the
//! server speaks `Connection: close` one-shot HTTP/1.1 — a 60-line
//! client below covers it), exercises `POST /signoff`, then sends
//! SIGTERM and requires a graceful exit 0.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Starts `hotwire serve` on port 0 with a tiny signoff grid and
/// returns the child plus the bound address parsed from stdout.
fn start_server() -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_hotwire"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--rows",
            "6",
            "--cols",
            "6",
            "--threads",
            "2",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary starts");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut lines = BufReader::new(stdout).lines();
    let first = lines
        .next()
        .expect("server announces its address")
        .expect("stdout is UTF-8");
    // "listening on http://127.0.0.1:PORT (...)"
    let addr = first
        .split("http://")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .unwrap_or_else(|| panic!("unparsable announcement: {first}"))
        .to_owned();
    (child, addr)
}

/// One blocking HTTP exchange; returns `(status, headers, body)`.
fn http(addr: &str, request: &str) -> (u16, String, String) {
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut stream = loop {
        match TcpStream::connect(addr) {
            Ok(s) => break s,
            Err(e) => {
                assert!(Instant::now() < deadline, "cannot connect to {addr}: {e}");
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    };
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.write_all(request.as_bytes()).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let (head, body) = response
        .split_once("\r\n\r\n")
        .unwrap_or_else(|| panic!("no header terminator in: {response:?}"));
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line: {head:?}"));
    (status, head.to_owned(), body.to_owned())
}

fn get(addr: &str, path: &str) -> (u16, String, String) {
    http(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"),
    )
}

/// Minimal Prometheus 0.0.4 exposition check: every sample line has a
/// legal metric name and a numeric value, and is preceded by a TYPE
/// header for its family.
fn assert_exposition_parses(text: &str) {
    let mut families: Vec<String> = Vec::new();
    let mut samples = 0;
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split(' ');
            families.push(parts.next().expect("TYPE names a metric").to_owned());
            let kind = parts.next().expect("TYPE has a kind");
            assert!(
                ["counter", "gauge", "summary", "histogram", "untyped"].contains(&kind),
                "bad TYPE kind: {line}"
            );
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or comment
        }
        let (series, value) = line.rsplit_once(' ').unwrap_or_else(|| {
            panic!("sample line without value: {line:?}");
        });
        let name = series.split('{').next().unwrap();
        assert!(
            name.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "illegal metric name: {name}"
        );
        let base = name
            .trim_end_matches("_sum")
            .trim_end_matches("_count")
            .trim_end_matches("_min")
            .trim_end_matches("_max");
        assert!(
            families.iter().any(|f| f == name || f == base),
            "sample {name} has no TYPE header"
        );
        assert!(value.parse::<f64>().is_ok(), "bad sample value: {line:?}");
        samples += 1;
    }
    assert!(samples > 0, "exposition has no samples:\n{text}");
}

/// Counter value of `name` in an exposition dump (0 when absent).
fn counter_value(text: &str, name: &str) -> f64 {
    text.lines()
        .find(|l| l.starts_with(name) && l.split_whitespace().next() == Some(name))
        .and_then(|l| l.rsplit_once(' '))
        .and_then(|(_, v)| v.parse().ok())
        .unwrap_or(0.0)
}

#[test]
fn serve_scrapes_signs_off_and_shuts_down_gracefully() {
    let (mut child, addr) = start_server();

    // /healthz answers 200 immediately.
    let (status, _, body) = get(&addr, "/healthz");
    assert_eq!(status, 200);
    assert_eq!(body, "ok\n");

    // /metrics is valid exposition with the right content type.
    let (status, head, text) = get(&addr, "/metrics");
    assert_eq!(status, 200);
    assert!(
        head.to_lowercase().contains("version=0.0.4"),
        "exposition content type missing: {head}"
    );
    assert_exposition_parses(&text);
    let telemetry = cfg!(feature = "telemetry");
    assert!(text.contains(if telemetry {
        "hotwire_telemetry_enabled 1"
    } else {
        "hotwire_telemetry_enabled 0"
    }));
    let requests_before = counter_value(&text, "hotwire_serve_requests_total");
    if telemetry {
        assert!(requests_before >= 1.0, "the scrape itself is counted");
    }

    // POST /signoff runs a real coupled solve and reports its verdict,
    // echoing the server-assigned request ID in a response header.
    let (status, head, body) = http(
        &addr,
        &format!(
            "POST /signoff HTTP/1.1\r\nHost: {addr}\r\nContent-Length: 0\r\n\
             Connection: close\r\n\r\n"
        ),
    );
    assert_eq!(status, 200, "signoff failed: {body}");
    assert!(body.contains("\"iterations\""), "{body}");
    let request_id = head
        .lines()
        .find_map(|l| l.strip_prefix("X-Hotwire-Request-Id: "))
        .unwrap_or_else(|| panic!("no X-Hotwire-Request-Id header in: {head}"));
    assert!(request_id.starts_with("req-"), "{request_id}");

    // Unknown path → 404; the server keeps running, and every response
    // (this one included) carries a distinct request ID.
    let (status, head, _) = get(&addr, "/nope");
    assert_eq!(status, 404);
    let other_id = head
        .lines()
        .find_map(|l| l.strip_prefix("X-Hotwire-Request-Id: "))
        .expect("404 responses carry a request id too");
    assert_ne!(other_id, request_id, "ids are per-request");

    // Counters are monotone across scrapes, and the signoff timers now
    // carry observations.
    if telemetry {
        let (_, _, text2) = get(&addr, "/metrics");
        let requests_after = counter_value(&text2, "hotwire_serve_requests_total");
        assert!(
            requests_after > requests_before,
            "{requests_after} vs {requests_before}"
        );
        assert!(counter_value(&text2, "hotwire_serve_signoffs_total") >= 1.0);
        assert!(counter_value(&text2, "hotwire_coupled_run_seconds_count") >= 1.0);
        // The per-request latency histogram (fed by the request-scoped
        // `serve.request` span) is scrapeable.
        assert!(
            counter_value(&text2, "hotwire_serve_request_seconds_count") >= 1.0,
            "serve.request histogram missing from:\n{text2}"
        );
    }

    // SIGTERM → graceful drain → exit 0.
    let pid = child.id().to_string();
    let killed = Command::new("kill")
        .args(["-TERM", &pid])
        .status()
        .expect("kill runs");
    assert!(killed.success());
    let deadline = Instant::now() + Duration::from_secs(15);
    let status = loop {
        match child.try_wait().expect("wait works") {
            Some(status) => break status,
            None => {
                assert!(
                    Instant::now() < deadline,
                    "server did not exit within 15 s of SIGTERM"
                );
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    };
    assert_eq!(status.code(), Some(0), "graceful shutdown must exit 0");
}
