//! Property-based round-trip tests of the technology text format.

use hotwire::tech::{format, Dielectric, DriverParams, Metal, TechnologyBuilder};
use hotwire::units::{Capacitance, Frequency, Length, Resistance, Voltage};
use proptest::prelude::*;

fn um(v: f64) -> Length {
    Length::from_micrometers(v)
}

proptest! {
    /// Any technology assembled from physical (positive, ordered) values
    /// survives serialize → parse with all quantities preserved to
    /// floating-point noise.
    #[test]
    fn random_technology_round_trips(
        feature in 0.05_f64..0.5,
        vdd in 0.8_f64..5.0,
        clock_ghz in 0.1_f64..5.0,
        n_layers in 1usize..9,
        w0 in 0.1_f64..0.5,
        growth in 1.0_f64..1.8,
        spacing_factor in 1.0_f64..2.5,
        aspect in 0.8_f64..2.0,
        ild in 0.3_f64..1.5,
        use_alcu in any::<bool>(),
        intra_hsq in any::<bool>(),
    ) {
        let mut b = TechnologyBuilder::new("proptech", um(feature))
            .vdd(Voltage::new(vdd))
            .clock(Frequency::from_gigahertz(clock_ghz))
            .metal(if use_alcu { Metal::alcu() } else { Metal::copper() })
            .dielectrics(
                Dielectric::oxide(),
                if intra_hsq { Dielectric::hsq() } else { Dielectric::oxide() },
            )
            .driver(DriverParams::new(
                Resistance::new(9.0e3),
                Capacitance::from_femtofarads(2.0),
                Capacitance::from_femtofarads(1.5),
            ));
        let mut w = w0;
        for i in 0..n_layers {
            b = b
                .layer(
                    format!("M{}", i + 1),
                    um(w),
                    um(w * spacing_factor),
                    um(w * aspect),
                    um(ild),
                )
                .unwrap();
            w *= growth;
        }
        let tech = b.build().unwrap();
        let text = format::serialize(&tech);
        let parsed = format::parse(&text).unwrap();

        prop_assert_eq!(parsed.name(), tech.name());
        prop_assert_eq!(parsed.layers().len(), tech.layers().len());
        let close = |a: f64, b: f64| (a - b).abs() <= 1e-11 * a.abs().max(b.abs()).max(1e-30);
        prop_assert!(close(parsed.vdd().value(), tech.vdd().value()));
        prop_assert!(close(parsed.clock().value(), tech.clock().value()));
        prop_assert!(close(
            parsed.feature_size().value(),
            tech.feature_size().value()
        ));
        prop_assert_eq!(parsed.metal().name(), tech.metal().name());
        prop_assert_eq!(
            parsed.intra_level_dielectric().name(),
            tech.intra_level_dielectric().name()
        );
        for (a, b) in parsed.layers().iter().zip(tech.layers()) {
            prop_assert_eq!(a.name(), b.name());
            prop_assert!(close(a.width().value(), b.width().value()));
            prop_assert!(close(a.pitch().value(), b.pitch().value()));
            prop_assert!(close(a.thickness().value(), b.thickness().value()));
            prop_assert!(close(a.ild_below().value(), b.ild_below().value()));
        }
        // Derived quantities agree too — the parsed tech is usable as-is.
        for i in 0..tech.layers().len() {
            prop_assert!(close(
                parsed.underlying_dielectric_thickness(i).value(),
                tech.underlying_dielectric_thickness(i).value()
            ));
        }
        // Second cycle is textually stable.
        let text2 = format::serialize(&parsed);
        prop_assert_eq!(format::serialize(&format::parse(&text2).unwrap()), text2);
    }

    /// The parser never panics on arbitrary input — it returns errors.
    #[test]
    fn parser_is_panic_free(input in "\\PC*") {
        let _ = format::parse(&input);
    }

    /// Line-noise after a valid prefix is rejected with a line number, not
    /// accepted silently.
    #[test]
    fn junk_directive_rejected(word in "[a-z]{3,12}") {
        prop_assume!(![
            "technology", "vdd", "metal", "dielectric", "driver", "layer",
        ]
        .contains(&word.as_str()));
        let text = format!("technology t\nfeature_size_um 0.25\n{word} 1 2\n");
        match format::parse(&text) {
            Err(hotwire::tech::TechError::Parse { line, .. }) => prop_assert_eq!(line, 3),
            other => return Err(TestCaseError::fail(format!("expected parse error, got {other:?}"))),
        }
    }
}
