//! Property-based tests on the self-consistent solver (eq. 13): the
//! returned point must actually satisfy both physical constraints, and
//! the qualitative laws the paper derives from the equation must hold
//! across the whole physical parameter space.

use hotwire::core::SelfConsistentProblem;
use hotwire::tech::{Dielectric, Metal};
use hotwire::thermal::impedance::{InsulatorStack, LineGeometry};
use hotwire::units::{CurrentDensity, Length};
use proptest::prelude::*;

fn um(v: f64) -> Length {
    Length::from_micrometers(v)
}

fn problem(
    w_um: f64,
    tm_um: f64,
    tox_um: f64,
    k_th: f64,
    r: f64,
    j0_ma: f64,
    phi: f64,
) -> SelfConsistentProblem {
    SelfConsistentProblem::builder()
        .metal(Metal::copper().with_design_rule_j0(CurrentDensity::from_mega_amps_per_cm2(j0_ma)))
        .line(LineGeometry::new(um(w_um), um(tm_um), um(1000.0)).unwrap())
        .stack(
            InsulatorStack::new()
                .with_raw_layer(um(tox_um), hotwire::units::ThermalConductivity::new(k_th)),
        )
        .phi(phi)
        .duty_cycle(r)
        .build()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The fixed point actually balances: (a) the heating model maps the
    /// returned j_rms to the returned ΔT; (b) the EM model allows exactly
    /// the returned j_avg at the returned temperature.
    #[test]
    fn solution_is_a_true_fixed_point(
        w in 0.3_f64..5.0,
        tm in 0.3_f64..1.5,
        tox in 0.5_f64..6.0,
        k in 0.2_f64..1.4,
        r in 1.0e-4_f64..1.0,
        j0 in 0.3_f64..2.0,
    ) {
        let p = problem(w, tm, tox, k, r, j0, 2.45);
        let sol = match p.solve() {
            Ok(s) => s,
            Err(hotwire::core::CoreError::MeltLimited { .. }) => return Ok(()),
            Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
        };
        // (a) heating balance
        let rho = p.metal().resistivity(sol.metal_temperature).value();
        let dt = sol.j_rms.value().powi(2) * rho * p.heating_constant();
        prop_assert!(
            (dt - sol.temperature_rise.value()).abs() <= 0.02 * sol.temperature_rise.value().max(1e-6) + 1e-6,
            "ΔT balance: {dt} vs {}", sol.temperature_rise.value()
        );
        // (b) EM bound
        let allowed = p.black_model().allowed_average_density(sol.metal_temperature);
        prop_assert!(
            (sol.j_avg.value() - allowed.value()).abs() <= 1e-3 * allowed.value(),
            "EM bound: {} vs {}", sol.j_avg.value(), allowed.value()
        );
        // universal ordering
        prop_assert!(sol.j_avg <= sol.j_rms);
        prop_assert!(sol.j_rms <= sol.j_peak);
        prop_assert!(sol.metal_temperature.value() >= p.reference_temperature().value());
        prop_assert!(sol.metal_temperature < p.metal().melting_point());
    }

    /// Lower duty cycle ⇒ hotter self-consistent temperature and higher
    /// allowed peak (Fig. 2's monotonicities).
    #[test]
    fn monotone_in_duty_cycle(
        w in 0.3_f64..5.0,
        j0 in 0.3_f64..2.0,
        r_hi in 0.01_f64..1.0,
        ratio in 0.05_f64..0.9,
    ) {
        let r_lo = r_hi * ratio;
        let p_hi = problem(w, 0.5, 3.0, 1.15, r_hi, j0, 0.88);
        let p_lo = p_hi.with_duty_cycle(r_lo).unwrap();
        let (Ok(s_hi), Ok(s_lo)) = (p_hi.solve(), p_lo.solve()) else { return Ok(()); };
        prop_assert!(s_lo.metal_temperature.value() >= s_hi.metal_temperature.value() - 1e-9);
        prop_assert!(s_lo.j_peak.value() >= s_hi.j_peak.value() * (1.0 - 1e-9));
        // …and the penalty vs EM-only worsens (paper's 2nd Fig. 2 remark)
        let pen_hi = s_hi.j_peak / p_hi.em_only_peak();
        let pen_lo = s_lo.j_peak / p_lo.em_only_peak();
        prop_assert!(pen_lo <= pen_hi + 1e-9);
    }

    /// Poorer conduction (lower k, thicker stack, larger κ) always lowers
    /// the allowed peak.
    #[test]
    fn monotone_in_conduction_path(
        w in 0.3_f64..5.0,
        k_good in 0.6_f64..1.4,
        degrade in 0.2_f64..0.9,
        r in 0.01_f64..1.0,
    ) {
        let good = problem(w, 0.5, 3.0, k_good, r, 0.6, 2.45);
        let bad = problem(w, 0.5, 3.0, k_good * degrade, r, 0.6, 2.45);
        let (Ok(sg), Ok(sb)) = (good.solve(), bad.solve()) else { return Ok(()); };
        prop_assert!(sb.j_peak <= sg.j_peak * (1.0 + 1e-9));
        prop_assert!(sb.metal_temperature.value() >= sg.metal_temperature.value() - 1e-9);
    }

    /// Raising j₀ raises both T_m and j_peak, but with diminishing
    /// returns (Fig. 3).
    #[test]
    fn diminishing_returns_in_j0(
        r in 1.0e-4_f64..0.5,
        j0 in 0.3_f64..1.0,
        gain in 1.5_f64..4.0,
    ) {
        let base = problem(3.0, 0.5, 3.0, 1.15, r, j0, 0.88);
        let boosted = base.with_design_rule_j0(
            CurrentDensity::from_mega_amps_per_cm2(j0 * gain),
        );
        let (Ok(s0), Ok(s1)) = (base.solve(), boosted.solve()) else { return Ok(()); };
        prop_assert!(s1.metal_temperature >= s0.metal_temperature);
        prop_assert!(s1.j_peak >= s0.j_peak);
        let realized = s1.j_peak / s0.j_peak;
        prop_assert!(realized <= gain * (1.0 + 1e-9), "realized {realized} vs j0 gain {gain}");
    }

    /// A larger heat-spreading parameter (more lateral conduction) can
    /// only help.
    #[test]
    fn phi_helps(
        w in 0.3_f64..3.0,
        r in 0.01_f64..1.0,
        phi_lo in 0.5_f64..2.0,
        dphi in 0.1_f64..2.0,
    ) {
        let a = problem(w, 0.5, 3.0, 1.15, r, 0.6, phi_lo);
        let b = problem(w, 0.5, 3.0, 1.15, r, 0.6, phi_lo + dphi);
        let (Ok(sa), Ok(sb)) = (a.solve(), b.solve()) else { return Ok(()); };
        prop_assert!(sb.j_peak >= sa.j_peak * (1.0 - 1e-9));
    }
}

/// The mixed-dielectric stack of eq. (15) is bounded by its single-material
/// extremes.
#[test]
fn mixed_stack_between_extremes() {
    let make = |stack: InsulatorStack| {
        SelfConsistentProblem::builder()
            .metal(Metal::copper())
            .line(LineGeometry::new(um(1.0), um(0.5), um(1000.0)).unwrap())
            .stack(stack)
            .phi(2.45)
            .duty_cycle(0.1)
            .build()
            .unwrap()
            .solve()
            .unwrap()
    };
    let ox = make(InsulatorStack::single(um(3.0), &Dielectric::oxide()));
    let poly = make(InsulatorStack::single(um(3.0), &Dielectric::polyimide()));
    let mix = make(
        InsulatorStack::new()
            .with_layer(um(1.5), &Dielectric::oxide())
            .with_layer(um(1.5), &Dielectric::polyimide()),
    );
    assert!(mix.j_peak <= ox.j_peak);
    assert!(mix.j_peak >= poly.j_peak);
}
