//! Property tests for the log-linear histogram behind every timer:
//! merging per-worker histograms must be *count-exact* (identical
//! buckets to a serial histogram fed the same stream), and quantile
//! estimates must honor the documented relative-error bound against
//! the true order statistic.

use hotwire::obs::histogram::{HistogramSnapshot, RELATIVE_ERROR_BOUND};
use proptest::prelude::*;

/// The true `q`-quantile of `values` under the same rank convention the
/// histogram uses (`rank = ceil(q · n)`, clamped to `[1, n]`).
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    #[allow(
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss,
        clippy::cast_precision_loss
    )]
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    /// Any partition of the input stream across any number of workers
    /// merges back to exactly the serial histogram — same buckets, same
    /// total, therefore identical quantiles.
    #[test]
    fn merged_worker_histograms_equal_serial(
        values in prop::collection::vec(0_u64..(1 << 44), 0..800),
        workers in 1_usize..8,
    ) {
        let mut serial = HistogramSnapshot::new();
        let mut shards = vec![HistogramSnapshot::new(); workers];
        for (i, &v) in values.iter().enumerate() {
            serial.record(v);
            // Deterministic but uneven partition.
            shards[(i * 7 + v as usize % 3) % workers].record(v);
        }
        let mut merged = HistogramSnapshot::new();
        for shard in &shards {
            merged.merge(shard);
        }
        prop_assert_eq!(&merged, &serial);
        prop_assert_eq!(merged.count(), values.len() as u64);
    }

    /// Every reported quantile is within the documented relative-error
    /// bound of the true order statistic of the recorded values.
    #[test]
    fn quantiles_stay_within_the_documented_bound(
        values in prop::collection::vec(0_u64..(1 << 40), 1..600),
    ) {
        let mut h = HistogramSnapshot::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let est = h.quantile(q);
            #[allow(clippy::cast_precision_loss)]
            let truth = exact_quantile(&sorted, q) as f64;
            let err = (est - truth).abs();
            prop_assert!(
                err <= truth * RELATIVE_ERROR_BOUND || err < 1.0,
                "p{}: estimate {} vs true {} (err {})",
                q, est, truth, err
            );
        }
        // max() is the top bucket's midpoint: same bound vs the true max.
        #[allow(clippy::cast_precision_loss)]
        let top = sorted[sorted.len() - 1] as f64;
        let err = (h.max() - top).abs();
        prop_assert!(err <= top * RELATIVE_ERROR_BOUND || err < 1.0);
    }
}
