//! End-to-end tests of the `hotwire` CLI binary.

use std::process::Command;

fn hotwire(args: &[&str]) -> (bool, String, String) {
    let (code, stdout, stderr) = hotwire_status(args);
    (code == Some(0), stdout, stderr)
}

/// As [`hotwire`], but exposing the raw exit code for the tests of the
/// usage/violation/internal classification.
fn hotwire_status(args: &[&str]) -> (Option<i32>, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_hotwire"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn help_lists_commands() {
    let (ok, stdout, _) = hotwire(&["help"]);
    assert!(ok);
    for cmd in [
        "solve", "rules", "sweep", "repeater", "esd", "techfile", "trace", "doctor",
    ] {
        assert!(stdout.contains(cmd), "help must mention {cmd}");
    }
    // no args behaves like help
    let (ok, stdout, _) = hotwire(&[]);
    assert!(ok);
    assert!(stdout.contains("usage"));
}

#[test]
fn solve_reports_the_operating_point() {
    let (ok, stdout, _) = hotwire(&[
        "solve",
        "--tech",
        "ntrs-250",
        "--layer",
        "M6",
        "--dielectric",
        "HSQ",
        "--r",
        "0.1",
    ]);
    assert!(ok);
    assert!(stdout.contains("M6/HSQ"));
    assert!(stdout.contains("j_peak"));
    assert!(stdout.contains("T_m"));
}

#[test]
fn rules_prints_both_blocks() {
    let (ok, stdout, _) = hotwire(&["rules", "--tech", "ntrs-100", "--j0", "1.8e6"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("Signal Lines (r = 0.1)"));
    assert!(stdout.contains("Power Lines (r = 1.0)"));
    assert!(stdout.contains("M8"));
}

#[test]
fn sweep_emits_csv() {
    let (ok, stdout, _) = hotwire(&[
        "sweep", "--tech", "ntrs-250", "--layer", "M6", "--points", "5",
    ]);
    assert!(ok);
    let lines: Vec<&str> = stdout.trim().lines().collect();
    assert_eq!(
        lines[0],
        "r,metal_temperature_c,j_peak_ma_cm2,em_only_peak_ma_cm2"
    );
    assert_eq!(lines.len(), 6, "header + 5 points");
    for line in &lines[1..] {
        assert_eq!(line.split(',').count(), 4);
    }
}

#[test]
fn esd_classifies_a_narrow_line_as_failing() {
    let (ok, stdout, _) = hotwire(&[
        "esd",
        "--stress",
        "hbm:2000",
        "--width-um",
        "0.5",
        "--metal",
        "alcu",
    ]);
    assert!(ok);
    assert!(stdout.contains("OpenCircuit"), "{stdout}");
    let (ok, stdout, _) = hotwire(&[
        "esd",
        "--stress",
        "hbm:2000",
        "--width-um",
        "20",
        "--metal",
        "alcu",
    ]);
    assert!(ok);
    assert!(stdout.contains("Pass"), "{stdout}");
}

#[test]
fn techfile_round_trips_through_the_cli() {
    let (ok, dump, _) = hotwire(&["techfile", "--tech", "ntrs-250"]);
    assert!(ok);
    assert!(dump.contains("technology ntrs-0.25um-cu"));
    // Write it out and load it back through --tech <path>.
    let dir = std::env::temp_dir().join(format!("hotwire-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("dump.tech");
    std::fs::write(&path, &dump).unwrap();
    let (ok, stdout, stderr) = hotwire(&[
        "solve",
        "--tech",
        path.to_str().unwrap(),
        "--layer",
        "M6",
        "--r",
        "0.1",
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("j_peak"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn errors_are_reported_with_nonzero_exit() {
    let (ok, _, stderr) = hotwire(&["solve", "--tech", "ntrs-250"]);
    assert!(!ok);
    assert!(stderr.contains("--layer"));
    let (ok, _, stderr) = hotwire(&["bogus"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
    let (ok, _, stderr) = hotwire(&["esd", "--stress", "zap:9000"]);
    assert!(!ok);
    assert!(stderr.contains("bad stress"));
    let (ok, _, stderr) = hotwire(&["solve", "--tech", "no-such-preset.tech", "--layer", "M1"]);
    assert!(!ok);
    assert!(stderr.contains("no-such-preset"));
}

#[test]
fn signoff_reports_violations_with_nonzero_exit() {
    let dir = std::env::temp_dir().join(format!("hotwire-signoff-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("nets.csv");
    std::fs::write(
        &path,
        "name,layer,width_um,length_um,duty_cycle,j_peak_ma_cm2\n\
         bus,M6,1.2,4000,0.1,3.0\n\
         jog,M2,0.4,3,0.3,8.0\n\
         strap,M6,2.4,5000,1.0,2.0\n",
    )
    .unwrap();
    let (ok, stdout, stderr) = hotwire(&[
        "signoff",
        "--tech",
        "ntrs-250",
        "--nets",
        path.to_str().unwrap(),
    ]);
    assert!(!ok, "the strap violates its rule");
    assert!(stdout.contains("blech-immortal"), "{stdout}");
    assert!(stdout.contains("VIOLATION"), "{stdout}");
    assert!(stderr.contains("violate"), "{stderr}");

    // Drop the violating strap: now everything passes, exit 0.
    std::fs::write(
        &path,
        "name,layer,width_um,length_um,duty_cycle,j_peak_ma_cm2\nbus,M6,1.2,4000,0.1,3.0\n",
    )
    .unwrap();
    let (ok, stdout, _) = hotwire(&[
        "signoff",
        "--tech",
        "ntrs-250",
        "--nets",
        path.to_str().unwrap(),
    ]);
    assert!(ok);
    assert!(stdout.contains("all 1 nets pass"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn signoff_rejects_malformed_csv() {
    let dir = std::env::temp_dir().join(format!("hotwire-badcsv-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bad.csv");
    std::fs::write(&path, "name,layer\nbus,M6\n").unwrap();
    let (ok, _, stderr) = hotwire(&[
        "signoff",
        "--tech",
        "ntrs-250",
        "--nets",
        path.to_str().unwrap(),
    ]);
    assert!(!ok);
    assert!(stderr.contains("6 columns"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn simulate_runs_a_netlist_deck() {
    let dir = std::env::temp_dir().join(format!("hotwire-sim-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("deck.sp");
    std::fs::write(&path, "V1 in 0 DC 1.0\nR1 in out 1k\nC1 out 0 1n\n").unwrap();
    let (ok, stdout, stderr) = hotwire(&[
        "simulate",
        "--netlist",
        path.to_str().unwrap(),
        "--tstop",
        "1e-5",
        "--probe",
        "out",
    ]);
    assert!(ok, "{stderr}");
    let lines: Vec<&str> = stdout.trim().lines().collect();
    assert_eq!(lines[0], "time_s,out");
    // final sample settles to the rail
    let last: f64 = lines
        .last()
        .unwrap()
        .split(',')
        .nth(1)
        .unwrap()
        .parse()
        .unwrap();
    assert!((last - 1.0).abs() < 1e-2, "settled to {last}");
    // unknown probe is an error
    let (ok, _, stderr) = hotwire(&[
        "simulate",
        "--netlist",
        path.to_str().unwrap(),
        "--tstop",
        "1e-6",
        "--probe",
        "missing",
    ]);
    assert!(!ok);
    assert!(stderr.contains("missing"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn coupled_signoff_passes_lightly_loaded_grids() {
    let (ok, stdout, _) = hotwire(&[
        "coupled-signoff",
        "--rows",
        "15",
        "--cols",
        "15",
        "--sink-ma",
        "0.1",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("fixed point in"), "{stdout}");
    assert!(stdout.contains("straps pass"), "{stdout}");
}

#[test]
fn coupled_signoff_flags_overstressed_grids() {
    let (ok, stdout, stderr) = hotwire(&[
        "coupled-signoff",
        "--rows",
        "30",
        "--cols",
        "30",
        "--sink-ma",
        "0.5",
    ]);
    assert!(!ok, "a hot 30x30 grid must violate: {stdout}");
    assert!(stdout.contains("top violations"), "{stdout}");
    assert!(stdout.contains("self-consistent"), "{stdout}");
    assert!(stderr.contains("violate"), "{stderr}");
}

#[test]
fn exit_codes_distinguish_failure_classes() {
    // Usage errors exit 2: missing flag, unknown command, bad value.
    let (code, _, _) = hotwire_status(&["solve", "--tech", "ntrs-250"]);
    assert_eq!(code, Some(2), "missing --layer is a usage error");
    let (code, _, _) = hotwire_status(&["bogus"]);
    assert_eq!(code, Some(2), "unknown command is a usage error");
    let (code, _, _) = hotwire_status(&["coupled-signoff", "--rows", "abc"]);
    assert_eq!(code, Some(2), "non-numeric --rows is a usage error");
    // Signoff violations exit 3: the analysis ran, the design fails.
    let (code, _, stderr) = hotwire_status(&[
        "coupled-signoff",
        "--rows",
        "30",
        "--cols",
        "30",
        "--sink-ma",
        "0.5",
    ]);
    assert_eq!(code, Some(3), "violations exit 3: {stderr}");
    // Internal failures exit 1: the engine could not produce an answer.
    let (code, _, stderr) = hotwire_status(&[
        "signoff",
        "--tech",
        "ntrs-250",
        "--nets",
        "/no/such/nets.csv",
    ]);
    assert_eq!(code, Some(1), "unreadable input is internal: {stderr}");
    assert!(stderr.contains("caused by"), "chain reported: {stderr}");
}

#[test]
fn log_format_json_emits_a_structured_error_event() {
    let (code, _, stderr) = hotwire_status(&[
        "signoff",
        "--tech",
        "ntrs-250",
        "--nets",
        "/no/such/nets.csv",
        "--log-format",
        "json",
    ]);
    assert_eq!(code, Some(1));
    let event = hotwire::obs::json::parse(stderr.trim()).expect("stderr is one JSON event");
    assert_eq!(
        event.get("level").and_then(|v| v.as_str()),
        Some("error"),
        "{stderr}"
    );
    assert_eq!(event.get("kind").and_then(|v| v.as_str()), Some("internal"));
    let cause = event.get("cause").and_then(|v| v.as_array()).unwrap();
    assert!(!cause.is_empty(), "io error arrives as the cause chain");
    // And a bad --log-level is itself a usage error.
    let (code, _, stderr) = hotwire_status(&["help", "--log-level", "loud"]);
    assert_eq!(code, Some(2), "{stderr}");
}

#[test]
fn metrics_and_trace_out_write_parsable_json() {
    let dir = std::env::temp_dir().join(format!("hotwire-obs-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let metrics_path = dir.join("metrics.json");
    let trace_path = dir.join("trace.json");
    // 20×20 at the demo load needs >1 Picard iteration, so the second
    // electrical solve must hit the factorization-reuse path.
    let (ok, stdout, stderr) = hotwire(&[
        "coupled-signoff",
        "--rows",
        "20",
        "--cols",
        "20",
        "--metrics-out",
        metrics_path.to_str().unwrap(),
        "--trace-out",
        trace_path.to_str().unwrap(),
    ]);
    assert!(ok, "stdout: {stdout}\nstderr: {stderr}");

    let metrics = hotwire::obs::json::parse(&std::fs::read_to_string(&metrics_path).unwrap())
        .expect("metrics file is valid JSON");
    let counter = |name: &str| {
        metrics
            .get("counters")
            .and_then(|c| c.get(name))
            .and_then(hotwire::obs::json::Json::as_u64)
    };
    if metrics
        .get("telemetry")
        .and_then(hotwire::obs::json::Json::as_bool)
        == Some(true)
    {
        assert_eq!(counter("solver.factor"), Some(1), "one symbolic factor");
        assert!(
            counter("solver.refactor").unwrap_or(0) >= 1,
            "iteration 2+ must reuse the factorization: {metrics}"
        );
        let iterations = counter("coupled.iterations").unwrap();
        assert!(iterations >= 2, "demo 20×20 iterates at least twice");
        assert_eq!(counter("grid_dc.solves"), Some(iterations));
        let timers = metrics.get("timers").unwrap();
        for stage in ["coupled.electrical_time", "coupled.thermal_time"] {
            let total = timers
                .get(stage)
                .and_then(|t| t.get("total_ms"))
                .and_then(hotwire::obs::json::Json::as_f64)
                .unwrap();
            assert!(total >= 0.0, "{stage} records wall time");
        }
    }

    let trace = hotwire::obs::json::parse(&std::fs::read_to_string(&trace_path).unwrap())
        .expect("trace file is valid JSON");
    assert_eq!(trace.get("converged").and_then(|v| v.as_bool()), Some(true));
    let records = trace.get("records").and_then(|v| v.as_array()).unwrap();
    assert!(records.len() >= 2, "one record per Picard iteration");
    let last = records.last().unwrap();
    let residual = last.get("max_delta_t_k").and_then(|v| v.as_f64()).unwrap();
    let tolerance = trace.get("tolerance_k").and_then(|v| v.as_f64()).unwrap();
    assert!(
        residual <= tolerance,
        "converged trace ends under tolerance"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_format_chrome_captures_a_span_tree_the_analyzer_reads() {
    use hotwire::obs::spantree::SpanTrace;

    let dir = std::env::temp_dir().join(format!("hotwire-chrome-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.chrome.json");
    let (ok, stdout, stderr) = hotwire(&[
        "coupled-signoff",
        "--rows",
        "20",
        "--cols",
        "20",
        "--trace-out",
        path.to_str().unwrap(),
        "--trace-format",
        "chrome",
    ]);
    assert!(ok, "stdout: {stdout}\nstderr: {stderr}");

    let text = std::fs::read_to_string(&path).unwrap();
    let trace = SpanTrace::parse(&text).expect("chrome trace parses back");
    // The raw Trace Event stream must be balanced and well-formed: the
    // `from_chrome` parser rejects unmatched B/E, so a successful parse
    // is the balance assertion. Check the content beyond that.
    if trace.telemetry {
        let iterations = trace
            .spans
            .iter()
            .filter(|s| s.name == "coupled.iteration")
            .count();
        assert!(iterations >= 2, "demo 20×20 iterates at least twice");
        for s in trace.spans.iter().filter(|s| s.name == "coupled.iteration") {
            assert!(
                s.args.iter().any(|(k, _)| k == "iteration"),
                "iteration spans carry their index: {s:?}"
            );
        }
        assert!(
            trace.spans.iter().any(|s| s.name == "coupled.em.strap"),
            "per-strap EM spans captured"
        );
    }

    // The analyzer consumes the same file: self-time table, critical
    // path, folded stacks. A no-telemetry capture holds zero spans, and
    // the analyzer refuses it with a usage error instead of printing an
    // empty report.
    let (ok, stdout, stderr) = hotwire(&["trace", path.to_str().unwrap()]);
    if trace.telemetry {
        assert!(ok, "{stderr}");
        assert!(stdout.contains("self [ms]"), "{stdout}");
        assert!(stdout.contains("coupled.iteration"), "{stdout}");
        assert!(stdout.contains("critical path"), "{stdout}");
        assert!(stdout.contains("folded stacks"), "{stdout}");
    } else {
        assert!(!ok, "empty captures must not analyze cleanly");
        assert!(stderr.contains("no spans captured"), "{stderr}");
    }

    // `--folded` pipes bare `stack weight` lines for inferno/speedscope.
    let (ok, folded, _) = hotwire(&["trace", path.to_str().unwrap(), "--folded"]);
    if trace.telemetry {
        assert!(ok);
        assert!(!folded.trim().is_empty());
        for line in folded.trim().lines() {
            let (stack, weight) = line.rsplit_once(' ').expect("`stack weight` shape");
            assert!(!stack.is_empty());
            weight.parse::<u64>().expect("integer microsecond weight");
        }
    } else {
        assert!(!ok);
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Regression test: the retained span capture must not depend on the
/// stderr level filter — `--log-level error` and `--log-level trace`
/// produce the same retained span-name multiset (the filter decides
/// what is printed, never what the trace keeps).
#[test]
fn trace_out_is_independent_of_log_level() {
    use hotwire::obs::spantree::SpanTrace;

    let dir = std::env::temp_dir().join(format!("hotwire-lvl-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mut multisets = Vec::new();
    for level in ["error", "trace"] {
        let path = dir.join(format!("{level}.jsonl"));
        let (ok, stdout, stderr) = hotwire(&[
            "coupled-signoff",
            "--rows",
            "12",
            "--cols",
            "12",
            "--log-level",
            level,
            "--trace-out",
            path.to_str().unwrap(),
            "--trace-format",
            "jsonl",
        ]);
        assert!(ok, "stdout: {stdout}\nstderr: {stderr}");
        let trace = SpanTrace::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let mut names: Vec<String> = trace.spans.iter().map(|s| s.name.clone()).collect();
        names.sort();
        multisets.push((trace.telemetry, names));
    }
    assert_eq!(
        multisets[0], multisets[1],
        "the level filter must not leak into the retained trace"
    );
    if multisets[0].0 {
        assert!(
            multisets[0].1.iter().any(|n| n == "coupled.iteration"),
            "{multisets:?}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_subcommand_rejects_bad_invocations() {
    // No capture file: usage error, exit 2.
    let (code, _, stderr) = hotwire_status(&["trace"]);
    assert_eq!(code, Some(2), "{stderr}");
    assert!(stderr.contains("usage"), "{stderr}");
    // A malformed file: usage error naming the file.
    let dir = std::env::temp_dir().join(format!("hotwire-badtrace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("not-a-trace.json");
    std::fs::write(&path, "this is not a trace\n").unwrap();
    let (code, _, stderr) = hotwire_status(&["trace", path.to_str().unwrap()]);
    assert_eq!(code, Some(2), "{stderr}");
    assert!(stderr.contains("not a span trace"), "{stderr}");
    // An unbalanced Chrome stream is rejected, not silently truncated.
    let path = dir.join("unbalanced.json");
    std::fs::write(
        &path,
        "{\"traceEvents\": [{\"ph\": \"B\", \"name\": \"x\", \"ts\": 0, \"pid\": 1, \
         \"tid\": 0}, {\"ph\": \"E\", \"name\": \"x\", \"ts\": 5, \"pid\": 1, \"tid\": 0}, \
         {\"ph\": \"E\", \"name\": \"x\", \"ts\": 9, \"pid\": 1, \"tid\": 0}]}\n",
    )
    .unwrap();
    let (code, _, stderr) = hotwire_status(&["trace", path.to_str().unwrap()]);
    assert_eq!(code, Some(2), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

/// Satellite regression: a header-only capture (what a no-telemetry
/// build writes) exits 2 with a clear message instead of an empty
/// report.
#[test]
fn trace_rejects_an_empty_capture() {
    let dir = std::env::temp_dir().join(format!("hotwire-emptytrace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("empty.jsonl");
    std::fs::write(
        &path,
        "{\"schema\": \"hotwire.spans/v1\", \"telemetry\": true}\n",
    )
    .unwrap();
    let (code, _, stderr) = hotwire_status(&["trace", path.to_str().unwrap()]);
    assert_eq!(code, Some(2), "{stderr}");
    assert!(stderr.contains("no spans captured"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

/// The tentpole end-to-end: force a non-converging coupled run with
/// heavy damping and a tiny iteration cap — the iteration cap is a
/// verdict (exit 3), the flight recorder freezes into a diagnostic
/// bundle, and `hotwire doctor` renders and classifies it.
#[test]
fn forced_non_convergence_writes_a_bundle_doctor_reads() {
    let dir = std::env::temp_dir().join(format!("hotwire-bundle-cli-{}", std::process::id()));
    let bundles = dir.join("bundles");
    std::fs::create_dir_all(&dir).unwrap();
    let (code, _, stderr) = hotwire_status(&[
        "coupled-signoff",
        "--rows",
        "20",
        "--cols",
        "20",
        "--damping",
        "0.05",
        "--tol",
        "1e-9",
        "--max-iters",
        "3",
        "--bundle-dir",
        bundles.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(3), "the iteration cap is a verdict: {stderr}");
    assert!(stderr.contains("diagnostic bundle:"), "{stderr}");

    let entries: Vec<_> = std::fs::read_dir(&bundles)
        .expect("bundle dir was created")
        .map(|e| e.unwrap().path())
        .collect();
    assert_eq!(entries.len(), 1, "exactly one bundle: {entries:?}");
    let text = std::fs::read_to_string(&entries[0]).unwrap();
    let doc = hotwire::obs::json::parse(&text).expect("bundle is valid JSON");
    assert_eq!(
        doc.get("schema").and_then(|v| v.as_str()),
        Some("hotwire.bundle/v1"),
        "{text}"
    );
    assert_eq!(
        doc.get("reason").and_then(|v| v.as_str()),
        Some("violation")
    );
    assert!(
        doc.get("spec_hash")
            .and_then(|v| v.as_str())
            .is_some_and(|h| h.starts_with("fnv-")),
        "{text}"
    );
    let health = doc.get("health").expect("health embedded");
    let report =
        hotwire::obs::HealthReport::from_json(health).expect("embedded health report parses");
    assert_eq!(report.iterations, 3, "capped exactly at --max-iters");
    assert!(
        report.last_delta > report.tolerance,
        "still above tolerance"
    );

    // `doctor` renders the bundle: header, timeline, diagnosis, hints.
    let (ok, stdout, stderr) = hotwire(&["doctor", entries[0].to_str().unwrap()]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("diagnostic bundle"), "{stdout}");
    assert!(stdout.contains("reason:    violation"), "{stdout}");
    assert!(stdout.contains("numerical health:"), "{stdout}");
    assert!(stdout.contains("diagnosis:"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

/// A clean exit must not write a bundle — the recorder only freezes on
/// failure (or an explicit SIGUSR1).
#[test]
fn successful_runs_do_not_write_bundles() {
    let dir = std::env::temp_dir().join(format!("hotwire-nobundle-{}", std::process::id()));
    let bundles = dir.join("bundles");
    std::fs::create_dir_all(&dir).unwrap();
    let (ok, _, stderr) = hotwire(&[
        "solve",
        "--tech",
        "ntrs-250",
        "--layer",
        "M6",
        "--bundle-dir",
        bundles.to_str().unwrap(),
    ]);
    assert!(ok, "{stderr}");
    assert!(!bundles.exists(), "no bundle dir on success");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn doctor_rejects_bad_invocations() {
    // No bundle file: usage error, exit 2.
    let (code, _, stderr) = hotwire_status(&["doctor"]);
    assert_eq!(code, Some(2), "{stderr}");
    assert!(stderr.contains("usage"), "{stderr}");
    // Valid JSON that is not a bundle: exit 2 naming the schema.
    let dir = std::env::temp_dir().join(format!("hotwire-baddoctor-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("not-a-bundle.json");
    std::fs::write(&path, "{\"schema\": \"something/else\"}\n").unwrap();
    let (code, _, stderr) = hotwire_status(&["doctor", path.to_str().unwrap()]);
    assert_eq!(code, Some(2), "{stderr}");
    assert!(
        stderr.contains("not a hotwire diagnostic bundle"),
        "{stderr}"
    );
    // Unknown flags are rejected.
    let (code, _, stderr) = hotwire_status(&["doctor", "--bogus", "x"]);
    assert_eq!(code, Some(2), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}
