//! Property-based tests on the SPICE-subset netlist parser and the
//! power-grid analyzer.

use hotwire::circuit::parser::{parse_netlist, parse_value};
use hotwire::circuit::power_grid::{PowerGrid, PowerGridSpec};
use hotwire::units::{Area, Current, Resistance, Voltage};
use proptest::prelude::*;

proptest! {
    /// The netlist parser never panics on arbitrary input.
    #[test]
    fn parser_is_panic_free(input in "\\PC*") {
        let _ = parse_netlist(&input);
    }

    /// Values round-trip through the suffix notation.
    #[test]
    fn value_suffix_round_trip(
        mantissa in 0.001_f64..999.0,
        suffix_idx in 0usize..9,
    ) {
        let (suffix, mult) = [
            ("f", 1.0e-15), ("p", 1.0e-12), ("n", 1.0e-9), ("u", 1.0e-6),
            ("m", 1.0e-3), ("k", 1.0e3), ("meg", 1.0e6), ("g", 1.0e9),
            ("t", 1.0e12),
        ][suffix_idx];
        let token = format!("{mantissa}{suffix}");
        let v = parse_value(&token).unwrap();
        let expect = mantissa * mult;
        prop_assert!((v - expect).abs() <= 1e-12 * expect.abs());
    }

    /// A generated RC ladder deck parses back to the same topology.
    #[test]
    fn generated_deck_parses(
        r_values in proptest::collection::vec(1.0_f64..1.0e6, 1..12),
    ) {
        let mut deck = String::from("V1 n0 0 DC 1.0\n");
        for (k, r) in r_values.iter().enumerate() {
            deck.push_str(&format!("R{k} n{k} n{} {r}\n", k + 1));
            deck.push_str(&format!("C{k} n{} 0 1p\n", k + 1));
        }
        let p = parse_netlist(&deck).unwrap();
        // nodes: n0..n{N}; devices: 1 source + N R + N C
        prop_assert_eq!(p.circuit.node_count(), r_values.len() + 1);
        prop_assert_eq!(p.circuit.devices().len(), 1 + 2 * r_values.len());
        for k in 0..r_values.len() {
            let name = format!("R{k}");
            prop_assert!(p.device(&name).is_some(), "missing device {}", name);
        }
    }

    /// Power-grid invariants across random sizes and pad placements:
    /// every node droops (no overshoot), the worst droop is positive, and
    /// adding a pad never makes the worst droop worse.
    #[test]
    fn power_grid_droop_invariants(
        rows in 2usize..7,
        cols in 2usize..7,
        seg_r in 0.05_f64..5.0,
        sink_ma in 0.05_f64..2.0,
        pad_r in 0usize..7,
        pad_c in 0usize..7,
    ) {
        let pad = (pad_r.min(rows - 1), pad_c.min(cols - 1));
        let spec = PowerGridSpec {
            rows,
            cols,
            segment_resistance: Resistance::new(seg_r),
            strap_cross_section: Area::from_um2(1.0),
            vdd: Voltage::new(2.5),
            sink_per_node: Current::from_milliamps(sink_ma),
            pads: vec![pad],
        };
        let report = PowerGrid::build(&spec).unwrap().analyze().unwrap();
        prop_assert!(report.worst_ir_drop.value() > 0.0);
        // adding the opposite corner as a second pad helps (or ties)
        let opposite = (rows - 1 - pad.0, cols - 1 - pad.1);
        if opposite != pad {
            let spec2 = PowerGridSpec {
                pads: vec![pad, opposite],
                ..spec
            };
            let report2 = PowerGrid::build(&spec2).unwrap().analyze().unwrap();
            prop_assert!(
                report2.worst_ir_drop.value() <= report.worst_ir_drop.value() + 1e-9,
                "two pads {} vs one pad {}",
                report2.worst_ir_drop.value(),
                report.worst_ir_drop.value()
            );
        }
        // superposition: densities scale linearly with the sink current
        let spec3 = PowerGridSpec {
            sink_per_node: Current::from_milliamps(2.0 * sink_ma),
            ..spec
        };
        let report3 = PowerGrid::build(&spec3).unwrap().analyze().unwrap();
        let a = report.worst_segment().density.value();
        let b = report3.worst_segment().density.value();
        prop_assert!((b - 2.0 * a).abs() <= 1e-6 * b.max(1e-12));
    }
}
