//! Property tests for the dense/sparse solver stack: on random
//! SPD grid-shaped systems (the structure every power-grid and RC-mesh
//! MNA matrix has), the sparse LU must agree with the dense LU to 1e-9,
//! and factorization reuse must not change answers.

use hotwire_circuit::linalg::Matrix;
use hotwire_circuit::solver::MnaMatrix;
use hotwire_circuit::sparse::SparseMatrix;
use proptest::prelude::*;

/// Stamps the same random SPD grid system into both representations:
/// a `rows × cols` 5-point mesh with per-edge conductances drawn from
/// `gs`, plus a strictly positive diagonal tie to ground from `ties`
/// (which makes the matrix strictly diagonally dominant ⇒ SPD).
fn stamp_grid(rows: usize, cols: usize, gs: &[f64], ties: &[f64]) -> (Matrix, SparseMatrix) {
    let n = rows * cols;
    let mut dense = Matrix::zeros(n, n);
    let mut sparse = SparseMatrix::zeros(n);
    let at = |r: usize, c: usize| r * cols + c;
    let mut edge = 0usize;
    let mut couple = |a: usize, b: usize, g: f64| {
        for (r, c, v) in [(a, a, g), (b, b, g), (a, b, -g), (b, a, -g)] {
            dense.add(r, c, v);
            sparse.add(r, c, v);
        }
    };
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                couple(at(r, c), at(r, c + 1), gs[edge % gs.len()]);
                edge += 1;
            }
            if r + 1 < rows {
                couple(at(r, c), at(r + 1, c), gs[edge % gs.len()]);
                edge += 1;
            }
        }
    }
    for i in 0..n {
        let tie = ties[i % ties.len()];
        dense.add(i, i, tie);
        sparse.add(i, i, tie);
    }
    (dense, sparse)
}

proptest! {
    #[test]
    fn sparse_agrees_with_dense_on_random_spd_grids(
        rows in 2usize..9,
        cols in 2usize..9,
        gs in prop::collection::vec(0.05f64..20.0, 16),
        ties in prop::collection::vec(1e-3f64..2.0, 8),
        rhs_seed in prop::collection::vec(-5.0f64..5.0, 8),
    ) {
        let (dense, sparse) = stamp_grid(rows, cols, &gs, &ties);
        let n = rows * cols;
        let b: Vec<f64> = (0..n).map(|i| rhs_seed[i % rhs_seed.len()]).collect();
        let xd = dense.solve(&b).unwrap();
        let xs = sparse.factor().unwrap().solve(&b);
        for (i, (a, s)) in xd.iter().zip(&xs).enumerate() {
            prop_assert!(
                (a - s).abs() < 1e-9,
                "unknown {i}: dense {a} vs sparse {s}"
            );
        }
        // Residual check on the sparse side too (agreement alone could
        // mask a shared error in the comparison).
        let back = sparse.mul_vec(&xs);
        for (bi, ax) in b.iter().zip(&back) {
            prop_assert!((bi - ax).abs() < 1e-7);
        }
    }

    #[test]
    fn factor_reuse_matches_one_shot_solves(
        rows in 2usize..7,
        cols in 2usize..7,
        gs in prop::collection::vec(0.1f64..10.0, 12),
        ties in prop::collection::vec(1e-2f64..1.0, 6),
    ) {
        let (dense, sparse) = stamp_grid(rows, cols, &gs, &ties);
        let n = rows * cols;
        let f = sparse.factor().unwrap();
        let mut lu = dense.clone();
        lu.factor().unwrap();
        let mut buf = Vec::new();
        for k in 0..3usize {
            #[allow(clippy::cast_precision_loss)]
            let b: Vec<f64> = (0..n).map(|i| ((i + k) % 5) as f64 - 2.0).collect();
            // one-shot dense is the reference
            let reference = dense.solve(&b).unwrap();
            f.solve_into(&b, &mut buf);
            for (a, s) in reference.iter().zip(&buf) {
                prop_assert!((a - s).abs() < 1e-9);
            }
            lu.solve_factored_into(&b, &mut buf);
            for (a, s) in reference.iter().zip(&buf) {
                prop_assert!((a - s).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn mna_auto_crossover_is_transparent(
        rows in 2usize..6,
        cols in 2usize..6,
        gs in prop::collection::vec(0.1f64..10.0, 10),
        ties in prop::collection::vec(1e-2f64..1.0, 5),
    ) {
        // Whatever backend auto picks, forcing the other one must agree.
        let n = rows * cols;
        let mut forced_dense = MnaMatrix::dense(n);
        let mut forced_sparse = MnaMatrix::sparse(n);
        let (dense, _) = stamp_grid(rows, cols, &gs, &ties);
        for r in 0..n {
            for c in 0..n {
                let v = dense[(r, c)];
                if v != 0.0 {
                    forced_dense.add(r, c, v);
                    forced_sparse.add(r, c, v);
                }
            }
        }
        let b: Vec<f64> = (0..n).map(|i| gs[i % gs.len()]).collect();
        let xd = forced_dense.solve(&b).unwrap();
        let xs = forced_sparse.solve(&b).unwrap();
        for (a, s) in xd.iter().zip(&xs) {
            prop_assert!((a - s).abs() < 1e-9);
        }
    }
}
