//! Cross-validation between the finite-volume cross-section solver (the
//! "lab") and the closed-form quasi-2-D impedance model (the "theory") —
//! the same consistency the paper establishes between its Fig. 5
//! measurements and eq. (14).

use hotwire::core::rules::array_comparison;
use hotwire::core::SelfConsistentProblem;
use hotwire::tech::{Dielectric, Metal};
use hotwire::thermal::grid2d::{
    ArrayLevel, ArrayStructure, MeshControl, SingleWireStructure, SolveOptions,
};
use hotwire::thermal::impedance::{thermal_impedance, InsulatorStack, LineGeometry, QUASI_1D_PHI};
use hotwire::units::{CurrentDensity, Length};

fn um(v: f64) -> Length {
    Length::from_micrometers(v)
}

/// Extract φ from the simulated narrow-line structure, then verify the
/// eq. (14) closed form parameterized with that φ reproduces the
/// simulated θ of *other* widths to ~20 % — exactly the generalization
/// step the paper performs between Fig. 5 and §3.2.
#[test]
fn extracted_phi_generalizes_across_widths() {
    let control = MeshControl::resolving(um(0.08), 1);
    let options = SolveOptions::default();
    let t_ox = um(1.2);
    let t_m = um(0.55);
    let length = um(1000.0);

    // Extraction at the narrowest width (the paper uses W = 0.35 µm).
    let narrow = SingleWireStructure::all_oxide(um(0.35), t_m, t_ox);
    let sol = narrow.solve(um(6.0), control, options).unwrap();
    let phi = sol.phi();
    assert!(phi > 1.0 && phi < 4.0, "extracted φ = {phi}");

    // Generalize to other widths via the closed form.
    for w in [0.7, 1.5, 3.0] {
        let sim = SingleWireStructure::all_oxide(um(w), t_m, t_ox)
            .solve(um(6.0), control, options)
            .unwrap();
        let theta_sim = sim.thermal_impedance(length);
        let line = LineGeometry::new(um(w), t_m, length).unwrap();
        let stack = InsulatorStack::single(t_ox, &Dielectric::oxide());
        let theta_model = thermal_impedance(line, &stack, phi).unwrap();
        let err = (theta_model.value() - theta_sim.value()).abs() / theta_sim.value();
        assert!(
            err < 0.25,
            "W = {w} µm: model {theta_model} vs simulated {theta_sim} (err {err:.2})"
        );
    }
}

/// The classical quasi-1-D φ = 0.88 *underestimates* the conduction of
/// narrow DSM lines (the paper's motivation for re-extracting φ): the
/// simulated θ must be *lower* than the 0.88 prediction at W/t_ox ≈ 0.3.
#[test]
fn quasi_1d_is_pessimistic_for_narrow_lines() {
    let narrow = SingleWireStructure::all_oxide(um(0.35), um(0.55), um(1.2));
    let sol = narrow
        .solve(
            um(6.0),
            MeshControl::resolving(um(0.08), 1),
            SolveOptions::default(),
        )
        .unwrap();
    let line = LineGeometry::new(um(0.35), um(0.55), um(1000.0)).unwrap();
    let stack = InsulatorStack::single(um(1.2), &Dielectric::oxide());
    let theta_1d = thermal_impedance(line, &stack, QUASI_1D_PHI).unwrap();
    let theta_sim = sol.thermal_impedance(um(1000.0));
    assert!(
        theta_sim.value() < theta_1d.value(),
        "2-D spreading must beat the 0.88 model: sim {theta_sim} vs 1-D {theta_1d}"
    );
}

/// Full Table 7 pipeline: finite-volume array coupling → eq. (18)'s κ →
/// the modified self-consistent solve → a dense-array j_peak reduction in
/// the tens of percent.
#[test]
fn dense_array_reduces_allowed_peak_like_table7() {
    let array = ArrayStructure {
        levels: vec![
            ArrayLevel {
                width: um(0.4),
                pitch: um(0.8),
                thickness: um(0.6),
                ild_below: um(0.8),
            },
            ArrayLevel {
                width: um(0.4),
                pitch: um(0.8),
                thickness: um(0.6),
                ild_below: um(0.7),
            },
            ArrayLevel {
                width: um(0.6),
                pitch: um(1.2),
                thickness: um(0.8),
                ild_below: um(0.7),
            },
            ArrayLevel {
                width: um(1.0),
                pitch: um(2.0),
                thickness: um(1.0),
                ild_below: um(0.8),
            },
        ],
        dielectric: Dielectric::oxide(),
        cap_thickness: um(1.0),
        metal_conductivity: 395.0,
        periods: 5,
    };
    let control = MeshControl::resolving(um(0.1), 1);
    let options = SolveOptions::default();
    let heated = vec![true; 4];
    let rise_dense = array
        .solve_rise(&heated, true, 3, control, options)
        .unwrap();
    let rise_isolated = array
        .solve_rise(&heated, false, 3, control, options)
        .unwrap();
    assert!(rise_dense > rise_isolated);

    let problem = SelfConsistentProblem::builder()
        .metal(Metal::copper().with_design_rule_j0(CurrentDensity::from_mega_amps_per_cm2(1.8)))
        .line(LineGeometry::new(um(1.0), um(1.0), um(1000.0)).unwrap())
        .heating_constant(1.0) // overridden by array_comparison
        .duty_cycle(0.1)
        .build()
        .unwrap();
    let cmp = array_comparison(&problem, rise_dense, rise_isolated).unwrap();
    assert!(
        cmp.reduction > 0.10 && cmp.reduction < 0.70,
        "Table 7-scale reduction expected, got {:.2}",
        cmp.reduction
    );
    // magnitudes comparable to Table 7's 6.4 / 10.6 MA/cm² row
    assert!(cmp.j_peak_isolated.to_mega_amps_per_cm2() > 2.0);
    assert!(cmp.j_peak_dense < cmp.j_peak_isolated);
}

/// The direct and SOR linear solvers agree on the same problem.
#[test]
fn direct_and_sor_solvers_agree() {
    let sw = SingleWireStructure::all_oxide(um(1.0), um(0.55), um(1.2));
    let control = MeshControl::resolving(um(0.15), 1);
    let direct = sw.solve(um(4.0), control, SolveOptions::default()).unwrap();
    let sor = sw.solve(um(4.0), control, SolveOptions::sor()).unwrap();
    let a = direct.rise_per_line_power();
    let b = sor.rise_per_line_power();
    assert!((a - b).abs() / a < 1e-4, "direct {a} vs SOR {b}");
}

/// Mesh refinement converges the simulated thermal impedance.
#[test]
fn mesh_refinement_converges() {
    let sw = SingleWireStructure::all_oxide(um(0.5), um(0.55), um(1.2));
    let coarse = sw
        .solve(
            um(5.0),
            MeshControl::resolving(um(0.25), 1),
            SolveOptions::default(),
        )
        .unwrap()
        .rise_per_line_power();
    let medium = sw
        .solve(
            um(5.0),
            MeshControl::resolving(um(0.12), 1),
            SolveOptions::default(),
        )
        .unwrap()
        .rise_per_line_power();
    let fine = sw
        .solve(
            um(5.0),
            MeshControl::resolving(um(0.05), 1),
            SolveOptions::default(),
        )
        .unwrap()
        .rise_per_line_power();
    let d_coarse = (coarse - fine).abs();
    let d_medium = (medium - fine).abs();
    assert!(
        d_medium <= d_coarse,
        "refinement must not diverge: {coarse} {medium} {fine}"
    );
    assert!(d_medium / fine < 0.1, "medium mesh within 10 % of fine");
}
