//! Cross-crate observability invariants: the metrics registry must
//! report identical counters whether work ran serially or across the
//! rayon pool (the determinism contract of `docs/OBSERVABILITY.md`),
//! and a snapshot must survive the JSON round trip byte-exactly.
//!
//! The registry is process-global, so every test here serializes on one
//! mutex and resets the registry before measuring.

use std::sync::{Mutex, MutexGuard};

use hotwire::core::sweep::{duty_cycle_sweep, duty_cycle_sweep_serial, log_spaced};
use hotwire::core::SelfConsistentProblem;
use hotwire::coupled::{CoupledEngine, CoupledGridSpec, CoupledOptions};
use hotwire::obs::metrics::{self, MetricsSnapshot};
use hotwire::obs::Json;
use hotwire::tech::{Dielectric, Metal};
use hotwire::thermal::impedance::{InsulatorStack, LineGeometry, QUASI_1D_PHI};
use hotwire::units::{CurrentDensity, Length};

static REGISTRY_LOCK: Mutex<()> = Mutex::new(());

fn registry_lock() -> MutexGuard<'static, ()> {
    REGISTRY_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn sweep_problem() -> SelfConsistentProblem {
    SelfConsistentProblem::builder()
        .metal(Metal::copper().with_design_rule_j0(CurrentDensity::from_amps_per_cm2(6.0e5)))
        .line(
            LineGeometry::new(
                Length::from_micrometers(3.0),
                Length::from_micrometers(0.5),
                Length::from_micrometers(1000.0),
            )
            .unwrap(),
        )
        .stack(InsulatorStack::single(
            Length::from_micrometers(3.0),
            &Dielectric::oxide(),
        ))
        .phi(QUASI_1D_PHI)
        .duty_cycle(0.1)
        .build()
        .unwrap()
}

/// `sweep.points` (and every other counter) must not depend on how the
/// fan-out was scheduled: the counters live in the per-point path shared
/// by both variants, and atomic increments commute.
#[test]
fn sweep_counters_match_between_serial_and_parallel() {
    let _guard = registry_lock();
    let problem = sweep_problem();
    let rs = log_spaced(1.0e-4, 1.0, 9);

    metrics::reset();
    let serial_points = duty_cycle_sweep_serial(&problem, &rs).unwrap();
    let serial = metrics::snapshot();

    metrics::reset();
    let parallel_points = duty_cycle_sweep(&problem, &rs).unwrap();
    let parallel = metrics::snapshot();

    assert_eq!(serial_points, parallel_points, "results are bit-identical");
    assert_eq!(
        serial.counters, parallel.counters,
        "counters are schedule-independent"
    );
    // Timer *counts* are deterministic too; durations of course differ.
    let timer_counts = |s: &MetricsSnapshot| -> Vec<(String, u64)> {
        s.timers.iter().map(|(k, t)| (k.clone(), t.count)).collect()
    };
    assert_eq!(timer_counts(&serial), timer_counts(&parallel));
    if cfg!(feature = "telemetry") {
        assert_eq!(serial.counter("sweep.points"), rs.len() as u64);
    } else {
        assert!(serial.counters.is_empty(), "no registry without telemetry");
    }
}

/// The captured span tree must be schedule-independent too: the same
/// sweep records the same span-name multiset whether the points ran on
/// the rayon pool or serially, and every `sweep.point_time` span hangs
/// off the `sweep.batch_time` span that spawned it (on workers via the
/// adopted `TraceContext`, serially via the thread-local stack).
#[test]
fn sweep_span_multisets_match_between_serial_and_parallel() {
    let _guard = registry_lock();
    let problem = sweep_problem();
    let rs = log_spaced(1.0e-4, 1.0, 9);
    fn names(t: &hotwire::obs::SpanTrace) -> Vec<&str> {
        let mut v: Vec<&str> = t.spans.iter().map(|s| s.name.as_str()).collect();
        v.sort_unstable();
        v
    }

    hotwire::obs::spantree::capture_start();
    duty_cycle_sweep_serial(&problem, &rs).unwrap();
    let serial = hotwire::obs::spantree::capture_take();

    hotwire::obs::spantree::capture_start();
    duty_cycle_sweep(&problem, &rs).unwrap();
    let parallel = hotwire::obs::spantree::capture_take();

    if !cfg!(feature = "telemetry") {
        assert!(serial.spans.is_empty() && parallel.spans.is_empty());
        return;
    }
    assert_eq!(
        names(&serial),
        names(&parallel),
        "span-name multisets are schedule-independent"
    );
    for trace in [&serial, &parallel] {
        let batch = trace
            .spans
            .iter()
            .find(|s| s.name == "sweep.batch_time")
            .expect("one batch span");
        let points: Vec<_> = trace
            .spans
            .iter()
            .filter(|s| s.name == "sweep.point_time")
            .collect();
        assert_eq!(points.len(), rs.len(), "one span per sweep point");
        for p in &points {
            assert_eq!(
                p.parent,
                Some(batch.id),
                "point spans attach to the batch span on any thread"
            );
        }
    }
    // The parallel run used worker threads, so at least one point span
    // must carry a different tid than the batch span — unless rayon
    // collapsed to one thread (single-core runner), which is legal.
    let batch_tid = parallel
        .spans
        .iter()
        .find(|s| s.name == "sweep.batch_time")
        .unwrap()
        .tid;
    let cross_thread = parallel
        .spans
        .iter()
        .filter(|s| s.name == "sweep.point_time")
        .any(|s| s.tid != batch_tid);
    if std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get) > 1 {
        assert!(
            cross_thread,
            "a multi-core rayon sweep records worker-thread spans"
        );
    }
}

/// The per-strap EM counters increment inside the fan-out closure, so
/// `assess()` and `assess_serial()` must agree on mortal/immortal totals.
#[test]
fn coupled_assess_counters_match_between_serial_and_parallel() {
    let _guard = registry_lock();
    let mut engine =
        CoupledEngine::new(CoupledGridSpec::demo(12, 12), CoupledOptions::default()).unwrap();
    engine.run().unwrap();

    metrics::reset();
    let parallel_report = engine.assess().unwrap();
    let parallel = metrics::snapshot();

    metrics::reset();
    let serial_report = engine.assess_serial().unwrap();
    let serial = metrics::snapshot();

    assert_eq!(parallel_report, serial_report, "reports are bit-identical");
    assert_eq!(serial.counters, parallel.counters);
    if cfg!(feature = "telemetry") {
        let straps = engine.branches().len() as u64;
        assert_eq!(
            serial.counter("coupled.em.mortal_straps")
                + serial.counter("coupled.em.immortal_straps"),
            straps,
            "every strap is classified exactly once"
        );
    }
}

/// A populated snapshot must survive snapshot → JSON → text → JSON →
/// snapshot without losing a counter, gauge bit-pattern, or timer stat.
#[test]
fn snapshot_round_trips_through_json() {
    let _guard = registry_lock();
    metrics::reset();
    metrics::counter("roundtrip.events").add(42);
    metrics::gauge("roundtrip.level").set(0.1 + 0.2); // not representable "nicely"
    metrics::timer("roundtrip.stage").observe(std::time::Duration::from_micros(1_234));
    metrics::timer("roundtrip.stage").observe(std::time::Duration::from_micros(17));
    let snapshot = metrics::snapshot();

    let text = snapshot.to_json().to_pretty_string();
    let reparsed = hotwire::obs::json::parse(&text).expect("pretty output parses");
    let restored = MetricsSnapshot::from_json(&reparsed).expect("schema round-trips");
    assert_eq!(snapshot, restored);

    // Compact rendering round-trips identically.
    let compact = hotwire::obs::json::parse(&snapshot.to_json().to_string()).unwrap();
    assert_eq!(MetricsSnapshot::from_json(&compact).unwrap(), snapshot);

    if cfg!(feature = "telemetry") {
        assert_eq!(restored.counter("roundtrip.events"), 42);
        let stage = restored.timers["roundtrip.stage"];
        assert_eq!(stage.count, 2);
        // The histogram quantiles survive the trip and are ordered.
        assert!(stage.p50_ms > 0.0, "{stage:?}");
        assert!(stage.p50_ms <= stage.p90_ms && stage.p90_ms <= stage.p99_ms);
        // The gauge survives as value + envelope; one write means all
        // three coincide at the exact bit pattern.
        assert_eq!(
            restored.gauges["roundtrip.level"],
            metrics::GaugeStats::single(0.1 + 0.2)
        );
    } else {
        assert!(!restored.enabled);
    }
}

/// The convergence trace rides on the report and matches the scalar
/// fields the report already carried.
#[test]
fn report_trace_is_consistent_with_iteration_deltas() {
    let _guard = registry_lock();
    let mut engine =
        CoupledEngine::new(CoupledGridSpec::demo(10, 10), CoupledOptions::default()).unwrap();
    engine.run().unwrap();
    let report = engine.assess().unwrap();
    assert!(report.trace.converged);
    assert_eq!(report.trace.records.len(), report.iterations);
    for (record, delta) in report.trace.records.iter().zip(&report.iteration_deltas) {
        assert_eq!(record.max_delta_t, *delta);
        // The iteration wall time covers both timed stages.
        assert!(
            record.total_ms >= record.electrical_ms + record.thermal_ms,
            "{record:?}"
        );
    }
    let last = report.trace.records.last().unwrap();
    assert_eq!(last.peak_temperature, report.peak_temperature.value());
    let json = report.trace.to_json();
    assert_eq!(
        json.get("iterations").and_then(Json::as_u64),
        Some(report.iterations as u64)
    );
}

/// Regression test for the `coupled.run` timer bug: the run-level RAII
/// span must enclose the full Picard loop, so its total wall time
/// dominates the per-stage timers recorded inside `step()` — the seed
/// baseline file showed `coupled.run` at 0.079 ms for a 2640 ms run
/// because the benchmark drove `step()` directly and the span only ever
/// wrapped a sanity anchor.
#[test]
fn coupled_run_timer_encloses_the_stage_timers() {
    let _guard = registry_lock();
    metrics::reset();
    let mut engine =
        CoupledEngine::new(CoupledGridSpec::demo(15, 15), CoupledOptions::default()).unwrap();
    engine.run().unwrap();
    let snap = metrics::snapshot();
    if !cfg!(feature = "telemetry") {
        assert!(snap.timers.is_empty());
        return;
    }
    let total = |name: &str| snap.timers.get(name).map_or(0.0, |t| t.total_ms);
    let run_ms = total("coupled.run");
    let stage_ms = total("coupled.stamp_time")
        + total("coupled.electrical_time")
        + total("coupled.thermal_time")
        + total("coupled.update_time");
    assert!(stage_ms > 0.0, "stage timers recorded: {:?}", snap.timers);
    assert!(
        run_ms >= stage_ms,
        "coupled.run ({run_ms} ms) must enclose the stage timers ({stage_ms} ms)"
    );
    assert_eq!(
        snap.timers["coupled.run"].count, 1,
        "one run() call, one observation"
    );
    // Every timer in the snapshot now carries quantiles.
    for (name, t) in &snap.timers {
        assert!(
            t.p50_ms <= t.p90_ms && t.p90_ms <= t.p99_ms,
            "{name}: {t:?}"
        );
    }
}

/// The `coupled.residual` gauge keeps only its last write, but the
/// snapshot's envelope must expose the whole excursion: the first
/// (largest) residual of the damped loop ends up in `max`, the
/// converged one in `value`.
#[test]
fn residual_gauge_envelope_shows_the_decay() {
    let _guard = registry_lock();
    metrics::reset();
    let mut engine =
        CoupledEngine::new(CoupledGridSpec::demo(10, 10), CoupledOptions::default()).unwrap();
    engine.run().unwrap();
    let report = engine.assess().unwrap();
    if !cfg!(feature = "telemetry") {
        return;
    }
    let residual = metrics::snapshot().gauges["coupled.residual"];
    let last = report.iteration_deltas.last().copied().unwrap();
    let biggest = report.iteration_deltas.iter().copied().fold(0.0, f64::max);
    let smallest = report
        .iteration_deltas
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min);
    assert_eq!(residual.value, last, "last write wins");
    assert_eq!(residual.max, biggest, "the big early residual is retained");
    assert_eq!(residual.min, smallest);
    // Whenever some iteration's residual exceeded the final one, the
    // envelope — unlike the bare last value — must show it.
    if biggest > last {
        assert!(residual.max > residual.value);
    }
}
