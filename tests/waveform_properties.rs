//! Property-based tests on current-waveform statistics — the identities
//! of the paper's §2.1 must hold for *every* waveform, not just the
//! rectangular pulses used in its illustrative analysis.

use hotwire::em::{SampledWaveform, UnipolarPulse};
use hotwire::units::{CurrentDensity, Seconds};
use proptest::prelude::*;

proptest! {
    /// j_avg = r·j_peak and j_rms = √r·j_peak (eqs. 4–5), and the derived
    /// eq. (6) j_avg² = r·j_rms², for all valid pulses.
    #[test]
    fn unipolar_identities(
        peak in 1.0e3_f64..1.0e12,
        r in 1.0e-6_f64..1.0,
    ) {
        let p = UnipolarPulse::new(CurrentDensity::new(peak), r).unwrap();
        prop_assert!((p.average().value() - r * peak).abs() <= 1e-9 * peak);
        prop_assert!((p.rms().value() - r.sqrt() * peak).abs() <= 1e-9 * peak);
        let lhs = p.average().value().powi(2);
        let rhs = r * p.rms().value().powi(2);
        prop_assert!((lhs - rhs).abs() <= 1e-9 * rhs.max(1e-300));
        prop_assert!((p.stats().effective_duty_cycle() - r).abs() < 1e-9);
    }

    /// For arbitrary sampled waveforms: j_avg ≤ j_rms ≤ j_peak
    /// (Cauchy–Schwarz) and r_eff ∈ (0, 1].
    #[test]
    fn sampled_ordering_and_duty_cycle(
        samples in proptest::collection::vec(-1.0e10_f64..1.0e10, 4..64),
        dt in 1.0e-12_f64..1.0e-6,
    ) {
        // Skip the identically-zero waveform (no meaningful statistics).
        prop_assume!(samples.iter().any(|&v| v.abs() > 1.0));
        let times: Vec<Seconds> = (0..samples.len())
            .map(|k| Seconds::new(dt * k as f64))
            .collect();
        let densities: Vec<CurrentDensity> =
            samples.iter().map(|&v| CurrentDensity::new(v)).collect();
        let w = SampledWaveform::new(times, densities).unwrap();
        let s = w.stats();
        prop_assert!(s.is_consistent(), "avg {} rms {} peak {}",
            s.average.value(), s.rms.value(), s.peak.value());
        let r = s.effective_duty_cycle();
        prop_assert!(r > 0.0 && r <= 1.0 + 1e-9, "r_eff = {r}");
    }

    /// Scaling a waveform scales all statistics linearly and leaves the
    /// effective duty cycle unchanged.
    #[test]
    fn scaling_invariance(
        samples in proptest::collection::vec(-1.0e8_f64..1.0e8, 4..32),
        factor in 0.01_f64..100.0,
    ) {
        prop_assume!(samples.iter().any(|&v| v.abs() > 1.0));
        let times: Vec<Seconds> = (0..samples.len())
            .map(|k| Seconds::new(1.0e-9 * k as f64))
            .collect();
        let densities: Vec<CurrentDensity> =
            samples.iter().map(|&v| CurrentDensity::new(v)).collect();
        let w = SampledWaveform::new(times, densities).unwrap();
        let w2 = w.scaled(factor);
        let (a, b) = (w.stats(), w2.stats());
        prop_assert!((b.peak.value() - factor * a.peak.value()).abs() <= 1e-9 * b.peak.value());
        prop_assert!((b.rms.value() - factor * a.rms.value()).abs() <= 1e-9 * b.rms.value());
        prop_assert!(
            (a.effective_duty_cycle() - b.effective_duty_cycle()).abs() < 1e-9
        );
    }

    /// Densifying the sampling of a smooth waveform converges its
    /// statistics (trapezoidal integration is consistent).
    #[test]
    fn refinement_converges(freq_cycles in 1.0_f64..4.0) {
        let period = Seconds::new(1.0e-9);
        let f = |t: Seconds| {
            CurrentDensity::new(
                1.0e10 * (2.0 * std::f64::consts::PI * freq_cycles * t.value() / period.value()).sin().max(0.0)
            )
        };
        let coarse = SampledWaveform::from_fn(period, 300, f).unwrap().stats();
        let fine = SampledWaveform::from_fn(period, 3000, f).unwrap().stats();
        prop_assert!((coarse.rms.value() - fine.rms.value()).abs() < 0.02 * fine.rms.value());
        prop_assert!((coarse.average.value() - fine.average.value()).abs() < 0.02 * fine.average.value());
    }
}

/// The effective duty cycle of a rectangular pulse approaches the
/// geometric one as sampling refines — the bridge between §2.1's ideal
/// analysis and §4's SPICE waveforms.
#[test]
fn sampled_rect_pulse_duty_cycle_matches_geometric() {
    for r in [0.05, 0.1, 0.25, 0.5] {
        let period = Seconds::new(1.0e-9);
        let w = SampledWaveform::from_fn(period, 20_000, |t| {
            if t.value() < r * period.value() {
                CurrentDensity::new(1.0e10)
            } else {
                CurrentDensity::ZERO
            }
        })
        .unwrap();
        let r_eff = w.stats().effective_duty_cycle();
        assert!((r_eff - r).abs() < 0.01, "r = {r}: r_eff = {r_eff}");
    }
}
