//! Property-based tests on the ESD stress models and robustness rules.

use hotwire::esd::{check_robustness, EsdOutcome, EsdStress};
use hotwire::tech::{Dielectric, Metal};
use hotwire::thermal::impedance::{InsulatorStack, LineGeometry};
use hotwire::units::{Celsius, Kelvin, Length, Seconds};
use proptest::prelude::*;

fn um(v: f64) -> Length {
    Length::from_micrometers(v)
}

fn ambient() -> Kelvin {
    Celsius::new(25.0).to_kelvin()
}

fn stack() -> InsulatorStack {
    InsulatorStack::single(um(1.2), &Dielectric::oxide())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Stress waveforms never exceed their declared peak current and are
    /// negligible by the end of the declared duration.
    #[test]
    fn stress_envelopes_hold(voltage in 250.0_f64..8000.0) {
        for stress in [
            EsdStress::human_body(voltage),
            EsdStress::machine(voltage / 10.0),
            EsdStress::charged_device(voltage / 400.0),
            EsdStress::tlp(voltage / 1500.0, Seconds::from_nanos(100.0)),
        ] {
            let peak = stress.peak_current().value();
            prop_assert!(peak > 0.0);
            let dur = stress.duration();
            let mut observed: f64 = 0.0;
            for k in 0..=400 {
                let t = Seconds::new(dur.value() * f64::from(k) / 400.0);
                observed = observed.max(stress.current_at(t).value().abs());
            }
            prop_assert!(observed <= peak * 1.0001, "{stress:?}: {observed} > {peak}");
            let tail = stress.current_at(dur).value().abs();
            prop_assert!(tail <= 0.05 * peak, "{stress:?}: tail {tail}");
        }
    }

    /// Monotonicity of the verdict in stress voltage: if a line fails at
    /// some HBM voltage it must also fail at a higher one.
    #[test]
    fn verdict_monotone_in_voltage(
        w in 0.5_f64..6.0,
        v_low in 500.0_f64..3000.0,
        factor in 1.3_f64..3.0,
    ) {
        let line = LineGeometry::new(um(w), um(0.55), um(120.0)).unwrap();
        let rank = |v: f64| -> Result<i32, TestCaseError> {
            let verdict = check_robustness(
                &Metal::alcu(),
                line,
                &stack(),
                2.45,
                ambient(),
                &EsdStress::human_body(v),
            )
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
            Ok(match verdict.outcome {
                EsdOutcome::Pass => 2,
                EsdOutcome::LatentDamage => 1,
                EsdOutcome::OpenCircuit => 0,
            })
        };
        let lo = rank(v_low)?;
        let hi = rank(v_low * factor)?;
        prop_assert!(hi <= lo, "higher stress cannot improve the verdict");
    }

    /// Peak temperature never drops when the line narrows at fixed stress.
    #[test]
    fn narrower_is_hotter(
        v in 500.0_f64..4000.0,
        w_wide in 4.0_f64..12.0,
        shrink in 0.2_f64..0.8,
    ) {
        let check = |w: f64| -> Result<f64, TestCaseError> {
            let line = LineGeometry::new(um(w), um(0.55), um(120.0)).unwrap();
            check_robustness(
                &Metal::alcu(),
                line,
                &stack(),
                2.45,
                ambient(),
                &EsdStress::human_body(v),
            )
            .map(|verdict| verdict.peak_temperature.value())
            .map_err(|e| TestCaseError::fail(e.to_string()))
        };
        let wide = check(w_wide)?;
        let narrow = check(w_wide * shrink)?;
        prop_assert!(narrow >= wide - 1e-6, "narrow {narrow} vs wide {wide}");
    }

    /// The EM lifetime factor is 1 for cool events and in (0, 1] always.
    #[test]
    fn lifetime_factor_bounds(v in 100.0_f64..6000.0, w in 0.5_f64..10.0) {
        let line = LineGeometry::new(um(w), um(0.55), um(120.0)).unwrap();
        let verdict = check_robustness(
            &Metal::alcu(),
            line,
            &stack(),
            2.45,
            ambient(),
            &EsdStress::human_body(v),
        )
        .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert!(verdict.em_lifetime_factor > 0.0);
        prop_assert!(verdict.em_lifetime_factor <= 1.0);
        if verdict.peak_temperature.value() < 0.8 * Metal::alcu().melting_point().value() {
            prop_assert!((verdict.em_lifetime_factor - 1.0).abs() < 1e-12);
        }
    }
}
