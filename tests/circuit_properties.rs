//! Property-based tests on the MNA transient engine: passivity, charge
//! conservation and discretization sanity for randomly generated RC
//! networks.

use hotwire::circuit::netlist::Circuit;
use hotwire::circuit::sources::SourceWaveform;
use hotwire::circuit::transient::{simulate, Integration, TransientOptions};
use proptest::prelude::*;

/// Builds a random ladder of resistors and capacitors hanging off a
/// driven node. All elements are passive, so every node voltage must stay
/// within the source's range at all times.
fn random_ladder(
    r_values: &[f64],
    c_values: &[f64],
    vdd: f64,
) -> (Circuit, Vec<hotwire::circuit::netlist::NodeId>) {
    let mut c = Circuit::new();
    let src = c.node();
    c.voltage_source(
        src,
        Circuit::GROUND,
        SourceWaveform::pulse(0.0, vdd, 0.0, 1.0e-9, 1.0e-9, 5.0e-9, 16.0e-9),
    );
    let mut nodes = vec![src];
    let mut prev = src;
    for (rk, ck) in r_values.iter().zip(c_values) {
        let n = c.node();
        c.resistor(prev, n, *rk);
        c.capacitor(n, Circuit::GROUND, *ck);
        nodes.push(n);
        prev = n;
    }
    (c, nodes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Passivity: no internal node of an RC ladder may exceed the source
    /// range [0, vdd] by more than numerical noise.
    ///
    /// Integrated with backward Euler: the L-stable method is monotone for
    /// any step size, so passivity is an exact property. (Trapezoidal is
    /// only A-stable and famously *rings* transiently when `dt ≫ RC` —
    /// proptest found exactly that with R = 100 Ω, C = 1 fF, dt = 16 ps —
    /// which is an artifact of the integrator, not a solver defect; SPICE
    /// has the same behaviour.)
    #[test]
    fn rc_networks_are_passive(
        r_values in proptest::collection::vec(100.0_f64..100.0e3, 1..8),
        c_values in proptest::collection::vec(1.0e-15_f64..1.0e-12, 1..8),
        vdd in 0.5_f64..5.0,
    ) {
        let n = r_values.len().min(c_values.len());
        let (circ, nodes) = random_ladder(&r_values[..n], &c_values[..n], vdd);
        let result = simulate(
            &circ,
            32.0e-9,
            TransientOptions {
                dt: Some(16.0e-12),
                integration: Integration::BackwardEuler,
                ..TransientOptions::default()
            },
        )
        .unwrap();
        for &node in &nodes {
            for v in result.voltage(node) {
                prop_assert!(
                    v >= -1e-6 && v <= vdd + 1e-6,
                    "node {node} left the rails: {v}"
                );
            }
        }
    }

    /// KCL at interior nodes: the current into an interior ladder node
    /// through its left resistor equals the capacitor current plus the
    /// current out through the right resistor (checked at steady samples
    /// by charge accounting over the full run).
    #[test]
    fn charge_accounting_closes(
        r1 in 200.0_f64..20.0e3,
        r2 in 200.0_f64..20.0e3,
        cap in 10.0e-15_f64..1.0e-12,
        vdd in 0.5_f64..3.0,
    ) {
        let mut c = Circuit::new();
        let src = c.node();
        let mid = c.node();
        let end = c.node();
        c.voltage_source(src, Circuit::GROUND, SourceWaveform::dc(vdd));
        let ra = c.resistor(src, mid, r1);
        let rb = c.resistor(mid, end, r2);
        c.capacitor(mid, Circuit::GROUND, cap);
        c.capacitor(end, Circuit::GROUND, cap);
        let t_stop = 20.0 * (r1 + r2) * cap;
        let result = simulate(
            &c,
            t_stop,
            TransientOptions {
                dt: Some(t_stop / 4000.0),
                ..TransientOptions::default()
            },
        )
        .unwrap();
        // Integrated charge through ra equals charge through rb plus the
        // charge stored on the mid capacitor.
        let ia = result.resistor_current(&c, ra);
        let ib = result.resistor_current(&c, rb);
        let dt = result.times[1] - result.times[0];
        let q_in: f64 = ia.windows(2).map(|w| 0.5 * (w[0] + w[1]) * dt).sum();
        let q_out: f64 = ib.windows(2).map(|w| 0.5 * (w[0] + w[1]) * dt).sum();
        let v_mid = *result.voltage(mid).last().unwrap();
        let q_stored = cap * v_mid;
        let residual = (q_in - q_out - q_stored).abs();
        prop_assert!(
            residual < 0.02 * q_in.abs().max(1e-18),
            "charge books do not close: in {q_in:.3e} out {q_out:.3e} stored {q_stored:.3e}"
        );
    }

    /// Backward Euler and trapezoidal agree on the steady state of any RC
    /// ladder driven by DC.
    #[test]
    fn integration_methods_agree_at_steady_state(
        r_values in proptest::collection::vec(100.0_f64..50.0e3, 1..6),
        c_values in proptest::collection::vec(1.0e-15_f64..0.5e-12, 1..6),
        vdd in 0.5_f64..3.0,
    ) {
        let n = r_values.len().min(c_values.len());
        let build = |_method| {
            let mut c = Circuit::new();
            let src = c.node();
            c.voltage_source(src, Circuit::GROUND, SourceWaveform::dc(vdd));
            let mut prev = src;
            let mut last = src;
            for (rk, ck) in r_values[..n].iter().zip(&c_values[..n]) {
                let node = c.node();
                c.resistor(prev, node, *rk);
                c.capacitor(node, Circuit::GROUND, *ck);
                prev = node;
                last = node;
            }
            (c, last)
        };
        // The ladder's dominant time constant is bounded by the Elmore sum
        // Σᵢ (Σ_{k≤i} R_k)·Cᵢ — each capacitor charges through all upstream
        // resistance. (A plain Σ RᵢCᵢ badly underestimates it when a large
        // upstream R feeds a large downstream C.)
        let mut r_cum = 0.0;
        let mut tau = 0.0;
        for (r, c) in r_values[..n].iter().zip(&c_values[..n]) {
            r_cum += r;
            tau += r_cum * c;
        }
        let t_stop = 40.0 * tau;
        let mut finals = Vec::new();
        for method in [Integration::BackwardEuler, Integration::Trapezoidal] {
            let (circ, last) = build(method);
            let result = simulate(
                &circ,
                t_stop,
                TransientOptions {
                    dt: Some(t_stop / 2000.0),
                    integration: method,
                    ..TransientOptions::default()
                },
            )
            .unwrap();
            finals.push(*result.voltage(last).last().unwrap());
        }
        prop_assert!((finals[0] - vdd).abs() < 1e-3 * vdd);
        prop_assert!((finals[0] - finals[1]).abs() < 1e-3 * vdd);
    }
}

/// Grid solver maximum principle: with a single heated wire, the
/// temperature rise is non-negative everywhere and maximal in/near the
/// heated region.
#[test]
fn grid_maximum_principle() {
    use hotwire::thermal::grid2d::{MeshControl, SingleWireStructure, SolveOptions};
    use hotwire::units::Length;
    let um = Length::from_micrometers;
    let sw = SingleWireStructure::all_oxide(um(1.0), um(0.55), um(1.2));
    let (structure, wire) = sw.build(um(4.0)).unwrap();
    let field = hotwire::thermal::grid2d::solve(
        &structure,
        MeshControl::resolving(um(0.1), 1),
        SolveOptions::default(),
    )
    .unwrap();
    let wire_avg = field.average_rise_in(wire);
    assert!(wire_avg > 0.0);
    // the global max must not exceed the wire region's max by more than
    // numerical noise — heat flows downhill from the source
    let max = field.max_rise();
    assert!(
        max <= wire_avg * 1.5,
        "field max {max} should live in/near the wire (avg {wire_avg})"
    );
}
