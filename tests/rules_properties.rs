//! Property-based tests of the design-rule engine over randomly
//! generated (but physical) technologies: the paper's orderings must be
//! *theorems* of the model, not accidents of the NTRS presets.

use hotwire::core::rules::{layer_stack, DesignRuleSpec, DesignRuleTable, DutyCycleCase};
use hotwire::tech::{Dielectric, DriverParams, Metal, Technology, TechnologyBuilder};
use hotwire::units::{Capacitance, CurrentDensity, Frequency, Length, Resistance, Voltage};
use proptest::prelude::*;

fn um(v: f64) -> Length {
    Length::from_micrometers(v)
}

#[allow(clippy::too_many_arguments)]
fn random_tech(
    n_layers: usize,
    w0: f64,
    growth: f64,
    aspect: f64,
    ild: f64,
    use_alcu: bool,
) -> Technology {
    let mut b = TechnologyBuilder::new("randtech", um(0.25))
        .vdd(Voltage::new(2.5))
        .clock(Frequency::from_megahertz(750.0))
        .metal(if use_alcu {
            Metal::alcu()
        } else {
            Metal::copper()
        })
        .dielectrics(Dielectric::oxide(), Dielectric::oxide())
        .driver(DriverParams::new(
            Resistance::new(10.0e3),
            Capacitance::from_femtofarads(2.0),
            Capacitance::from_femtofarads(2.0),
        ));
    let mut w = w0;
    for i in 0..n_layers {
        b = b
            .layer(
                format!("M{}", i + 1),
                um(w),
                um(2.0 * w),
                um(aspect * w),
                um(ild),
            )
            .expect("generated geometry is positive");
        w *= growth;
    }
    b.build().expect("at least one layer")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// For any physical stack: the dielectric ordering, the level
    /// ordering, and the signal-vs-power ordering all hold in the
    /// generated table.
    #[test]
    fn paper_orderings_are_theorems(
        n_layers in 2usize..7,
        w0 in 0.2_f64..0.6,
        growth in 1.05_f64..1.6,
        aspect in 0.8_f64..1.8,
        ild in 0.4_f64..1.2,
        use_alcu in any::<bool>(),
        j0_ma in 0.3_f64..2.0,
    ) {
        let tech = random_tech(n_layers, w0, growth, aspect, ild, use_alcu);
        let spec = DesignRuleSpec::paper_defaults(
            &tech,
            2.min(n_layers),
            CurrentDensity::from_mega_amps_per_cm2(j0_ma),
        );
        let table = DesignRuleTable::generate(&spec).unwrap();
        let sig = "Signal Lines (r = 0.1)";
        let pow = "Power Lines (r = 1.0)";
        let mut layers: Vec<String> =
            table.entries.iter().map(|e| e.layer.clone()).collect();
        layers.dedup();
        layers.sort();
        layers.dedup();
        for layer in &layers {
            let ox = table.j_peak_ma_cm2(sig, layer, "oxide").unwrap();
            let hsq = table.j_peak_ma_cm2(sig, layer, "HSQ").unwrap();
            let poly = table.j_peak_ma_cm2(sig, layer, "polyimide").unwrap();
            prop_assert!(ox >= hsq && hsq >= poly, "{layer}: {ox} {hsq} {poly}");
            let p_ox = table.j_peak_ma_cm2(pow, layer, "oxide").unwrap();
            prop_assert!(ox >= p_ox, "{layer}: signal {ox} vs power {p_ox}");
            // power rule never exceeds the EM design rule itself
            prop_assert!(p_ox <= j0_ma * (1.0 + 1e-9), "{layer}: {p_ox} vs j0 {j0_ma}");
        }
        // upper level allows ≤ the level below it (same dielectric):
        if layers.len() == 2 {
            let lower = table.j_peak_ma_cm2(sig, &layers[0], "oxide").unwrap();
            let upper = table.j_peak_ma_cm2(sig, &layers[1], "oxide").unwrap();
            prop_assert!(upper <= lower * (1.0 + 1e-9));
        }
    }

    /// The layer stack builder is consistent with the technology's own
    /// cumulative-thickness bookkeeping for any generated stack.
    #[test]
    fn layer_stack_matches_cumulative_thickness(
        n_layers in 1usize..8,
        w0 in 0.2_f64..0.5,
        ild in 0.3_f64..1.5,
    ) {
        let tech = random_tech(n_layers, w0, 1.2, 1.0, ild, false);
        for i in 0..n_layers {
            let stack = layer_stack(&tech, i, &Dielectric::hsq()).unwrap();
            let b = tech.underlying_dielectric_thickness(i);
            prop_assert!(
                (stack.total_thickness().value() - b.value()).abs() < 1e-15,
                "layer {i}"
            );
        }
    }

    /// Custom duty-cycle cases interpolate sensibly: a case between the
    /// signal and power duty cycles lands between their allowed peaks.
    #[test]
    fn intermediate_duty_cycle_is_bracketed(
        r_mid in 0.15_f64..0.9,
        w0 in 0.3_f64..0.6,
    ) {
        let tech = random_tech(3, w0, 1.3, 1.2, 0.7, false);
        let spec = DesignRuleSpec {
            duty_cycles: vec![
                DutyCycleCase::signal(),
                DutyCycleCase { label: "mid".into(), r: r_mid },
                DutyCycleCase::power(),
            ],
            dielectrics: vec![Dielectric::oxide()],
            ..DesignRuleSpec::paper_defaults(
                &tech,
                1,
                CurrentDensity::from_amps_per_cm2(6.0e5),
            )
        };
        let table = DesignRuleTable::generate(&spec).unwrap();
        let layer = tech.top_layer().name();
        let hi = table
            .j_peak_ma_cm2("Signal Lines (r = 0.1)", layer, "oxide")
            .unwrap();
        let mid = table.j_peak_ma_cm2("mid", layer, "oxide").unwrap();
        let lo = table
            .j_peak_ma_cm2("Power Lines (r = 1.0)", layer, "oxide")
            .unwrap();
        prop_assert!(lo <= mid * (1.0 + 1e-9) && mid <= hi * (1.0 + 1e-9),
            "{lo} ≤ {mid} ≤ {hi} expected");
    }
}
