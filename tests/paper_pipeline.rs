//! End-to-end integration of the whole reproduction: the cross-crate
//! claims the paper makes in §3–§6 must hold when the subsystems are
//! composed exactly the way the paper composes them.

use hotwire::circuit::repeater::{simulate_repeater, RepeaterSimOptions};
use hotwire::core::rules::{layer_stack, DesignRuleSpec, DesignRuleTable};
use hotwire::core::SelfConsistentProblem;
use hotwire::esd::{check_robustness, EsdOutcome, EsdStress};
use hotwire::tech::{presets, Dielectric};
use hotwire::thermal::fin::{healing_length, FinProfile};
use hotwire::thermal::impedance::{InsulatorStack, LineGeometry, QUASI_2D_PHI};
use hotwire::units::{Celsius, CurrentDensity, Length, Seconds};

fn um(v: f64) -> Length {
    Length::from_micrometers(v)
}

/// §4's headline: the delay-optimal repeater current stays below the
/// self-consistent thermal limit for oxide, and the margin shrinks when a
/// low-k dielectric is introduced.
#[test]
fn delay_current_below_thermal_limit_with_shrinking_lowk_margin() {
    let mut margins = Vec::new();
    for dielectric in [Dielectric::oxide(), Dielectric::polyimide()] {
        let tech = presets::ntrs_250nm().with_intra_level_dielectric(dielectric.clone());
        let top = tech.layers().len() - 1;
        let report = simulate_repeater(&tech, top, RepeaterSimOptions::default()).unwrap();
        let spec = DesignRuleSpec {
            dielectrics: vec![dielectric.clone()],
            ..DesignRuleSpec::paper_defaults(&tech, 1, tech.metal().em().design_rule_j0)
        };
        let table = DesignRuleTable::generate(&spec).unwrap();
        let limit = table
            .entry(
                "Signal Lines (r = 0.1)",
                tech.top_layer().name(),
                dielectric.name(),
            )
            .unwrap()
            .solution
            .j_peak;
        let margin = limit.value() / report.j_peak().value();
        assert!(
            margin > 1.0,
            "{}: j_delay {} must stay below limit {}",
            dielectric.name(),
            report.j_peak().to_mega_amps_per_cm2(),
            limit.to_mega_amps_per_cm2()
        );
        margins.push(margin);
    }
    assert!(
        margins[1] < margins[0],
        "low-k must shrink the margin: oxide {} vs polyimide {}",
        margins[0],
        margins[1]
    );
}

/// §4's duty-cycle invariance: the effective duty cycle of optimally
/// buffered lines is nearly constant across metal layers *and* across
/// technology nodes (the paper reports 0.12 ± 0.01; the invariance, not
/// the absolute value, is the claim that transfers to our simulator).
#[test]
fn effective_duty_cycle_invariant_across_layers_and_nodes() {
    let mut values = Vec::new();
    for tech in [presets::ntrs_250nm(), presets::ntrs_100nm()] {
        let n = tech.layers().len();
        for layer in [n - 2, n - 1] {
            let report = simulate_repeater(&tech, layer, RepeaterSimOptions::default()).unwrap();
            values.push(report.effective_duty_cycle);
        }
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    for v in &values {
        assert!(
            (v - mean).abs() < 0.25 * mean,
            "duty cycles must cluster: {values:?}"
        );
    }
    assert!(
        mean > 0.05 && mean < 0.45,
        "cluster in the signal-line regime: mean = {mean}"
    );
}

/// §3.2's premise chain: global lines are thermally long, so the
/// worst-case (interior) analysis applies to them, while short
/// inter-block wires run measurably cooler.
#[test]
fn global_lines_are_thermally_long() {
    let tech = presets::ntrs_250nm();
    let top = tech.top_layer();
    let stack = layer_stack(&tech, top.index(), &Dielectric::oxide()).unwrap();
    let line = LineGeometry::new(top.width(), top.thickness(), um(5000.0)).unwrap();
    let lambda = healing_length(tech.metal(), line, &stack, QUASI_2D_PHI).unwrap();
    // paper: λ of order 25–200 µm
    let l_um = lambda.to_micrometers();
    assert!((10.0..400.0).contains(&l_um), "λ = {l_um} µm");
    // a 5 mm global line is thermally long…
    let profile = FinProfile::new(
        hotwire::units::TemperatureDelta::new(30.0),
        lambda,
        um(5000.0),
    )
    .unwrap();
    assert!(profile.is_thermally_long(5.0));
    assert!(profile.short_line_correction() > 0.9);
    // …while a λ-scale inter-block wire runs much cooler.
    let short =
        FinProfile::new(hotwire::units::TemperatureDelta::new(30.0), lambda, lambda).unwrap();
    assert!(short.midpoint_rise().value() < 0.5 * 30.0);
}

/// §6's closing comparison: self-consistent j_peak values sit far below
/// the ESD-scale open-circuit threshold — yet a line actually sized only
/// for wearout would still melt under a real HBM event, which is why ESD
/// nets get their own rule.
#[test]
fn esd_threshold_far_above_wearout_rules() {
    let tech = presets::ntrs_250nm();
    let m1 = tech.layer("M1").unwrap();
    let stack = InsulatorStack::single(m1.ild_below(), &Dielectric::oxide());
    let line = LineGeometry::new(m1.width(), m1.thickness(), um(150.0)).unwrap();

    // wearout rule for this line (signal, conservative j0)
    let problem = SelfConsistentProblem::builder()
        .metal(
            tech.metal()
                .clone()
                .with_design_rule_j0(CurrentDensity::from_amps_per_cm2(6.0e5)),
        )
        .line(line)
        .stack(stack.clone())
        .duty_cycle(0.1)
        .build()
        .unwrap();
    let wearout = problem.solve().unwrap();

    // single-pulse melt threshold at ESD time scale
    let model = hotwire::thermal::transient::TransientLine::new(
        tech.metal().clone(),
        line,
        &stack,
        QUASI_2D_PHI,
        Celsius::new(25.0).to_kelvin(),
    )
    .unwrap();
    let j_esd = model
        .critical_density(Seconds::from_nanos(150.0), 1e-3)
        .unwrap();

    assert!(
        j_esd.value() > 4.0 * wearout.j_peak.value(),
        "ESD threshold {} MA/cm² must sit far above the wearout rule {} MA/cm²",
        j_esd.to_mega_amps_per_cm2(),
        wearout.j_peak.to_mega_amps_per_cm2()
    );

    // and a minimum-width line fails a 2 kV HBM outright:
    let verdict = check_robustness(
        tech.metal(),
        line,
        &stack,
        QUASI_2D_PHI,
        Celsius::new(25.0).to_kelvin(),
        &EsdStress::human_body(2000.0),
    )
    .unwrap();
    assert_eq!(verdict.outcome, EsdOutcome::OpenCircuit);
}

/// Cross-technology scaling: the 0.1 µm node's top layers sit higher
/// above the substrate yet (in our reconstruction, as in the paper's
/// Tables 2–3) similar-width global wires land in the same allowed-j
/// decade, while lower levels of the scaled node are strictly tighter
/// than the same-index levels of the older node under the power case.
#[test]
fn scaled_node_tables_are_consistent() {
    let j0 = CurrentDensity::from_amps_per_cm2(6.0e5);
    let t250 = presets::ntrs_250nm();
    let t100 = presets::ntrs_100nm();
    let spec250 = DesignRuleSpec::paper_defaults(&t250, 2, j0);
    let spec100 = DesignRuleSpec::paper_defaults(&t100, 2, j0);
    let table250 = DesignRuleTable::generate(&spec250).unwrap();
    let table100 = DesignRuleTable::generate(&spec100).unwrap();
    for d in ["oxide", "HSQ", "polyimide"] {
        let a = table250
            .j_peak_ma_cm2("Signal Lines (r = 0.1)", "M6", d)
            .unwrap();
        let b = table100
            .j_peak_ma_cm2("Signal Lines (r = 0.1)", "M8", d)
            .unwrap();
        let ratio = a / b;
        assert!(
            (0.3..3.0).contains(&ratio),
            "{d}: top-level rules in the same decade (ratio {ratio})"
        );
    }
}

/// The tech-file round trip composes with the rest of the pipeline: a
/// parsed technology produces the same design-rule table as the original.
#[test]
fn parsed_technology_reproduces_tables() {
    let tech = presets::ntrs_250nm();
    let text = hotwire::tech::format::serialize(&tech);
    let parsed = hotwire::tech::format::parse(&text).unwrap();
    let j0 = CurrentDensity::from_amps_per_cm2(6.0e5);
    let a = DesignRuleTable::generate(&DesignRuleSpec::paper_defaults(&tech, 2, j0)).unwrap();
    let b = DesignRuleTable::generate(&DesignRuleSpec::paper_defaults(&parsed, 2, j0)).unwrap();
    for (ea, eb) in a.entries.iter().zip(&b.entries) {
        let ja = ea.solution.j_peak.value();
        let jb = eb.solution.j_peak.value();
        assert!(
            (ja - jb).abs() / ja < 1e-6,
            "{}/{}: {ja} vs {jb}",
            ea.layer,
            ea.dielectric
        );
    }
}

/// §4.1's closing caveat: signal lines carry bipolar currents with higher
/// EM immunity, so the unipolar self-consistent rules are *lower bounds*.
/// Quantify it: crediting reverse-current healing strictly reduces the
/// EM-effective density of the simulated repeater waveform.
#[test]
fn bipolar_healing_makes_unipolar_rules_lower_bounds() {
    let tech = presets::ntrs_250nm();
    let top = tech.layers().len() - 1;
    let report = simulate_repeater(
        &tech,
        top,
        hotwire::circuit::repeater::RepeaterSimOptions::default(),
    )
    .unwrap();
    assert!(report.waveform.is_bipolar());
    let conservative = report.em_effective_density(0.0).unwrap();
    let healed = report.em_effective_density(0.9).unwrap();
    assert!(
        healed.value() < 0.5 * conservative.value(),
        "healing must cut the EM-effective density substantially: {} vs {}",
        healed.to_mega_amps_per_cm2(),
        conservative.to_mega_amps_per_cm2()
    );
    // conservative form equals the rectified average the rules use
    let stats = report.waveform.stats();
    assert!((conservative.value() - stats.average.value()).abs() < 1e-6 * stats.average.value());
}
