//! Property-based tests on the transient (ESD-scale) thermal solver.

use hotwire::tech::{Dielectric, Metal};
use hotwire::thermal::impedance::{InsulatorStack, LineGeometry};
use hotwire::thermal::transient::TransientLine;
use hotwire::units::{Celsius, CurrentDensity, Length, Seconds};
use proptest::prelude::*;

fn um(v: f64) -> Length {
    Length::from_micrometers(v)
}

fn line_model(metal: Metal, w_um: f64, tox_um: f64) -> TransientLine {
    let line = LineGeometry::new(um(w_um), um(0.55), um(100.0)).unwrap();
    let stack = InsulatorStack::single(um(tox_um), &Dielectric::oxide());
    TransientLine::new(metal, line, &stack, 2.45, Celsius::new(25.0).to_kelvin()).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Below the critical density the line survives; a factor above it,
    /// it melts open — the threshold is a genuine separator.
    #[test]
    fn critical_density_separates_outcomes(
        w in 0.5_f64..4.0,
        width_ns in 20.0_f64..300.0,
    ) {
        let model = line_model(Metal::alcu(), w, 1.2);
        let pulse = Seconds::from_nanos(width_ns);
        let j_crit = model.critical_density(pulse, 1e-3).unwrap();
        let below = model
            .simulate_square_pulse(j_crit * 0.90, pulse, 3000)
            .unwrap();
        prop_assert!(!below.failed(), "0.90·j_crit must survive");
        let above = model
            .simulate_square_pulse(j_crit * 1.10, pulse, 3000)
            .unwrap();
        prop_assert!(above.failed(), "1.10·j_crit must melt open");
    }

    /// The critical density is monotone non-increasing in pulse width.
    #[test]
    fn critical_density_monotone_in_width(
        w in 0.5_f64..4.0,
        t1 in 20.0_f64..100.0,
        factor in 1.5_f64..5.0,
    ) {
        let model = line_model(Metal::alcu(), w, 1.2);
        let j_short = model
            .critical_density(Seconds::from_nanos(t1), 1e-3)
            .unwrap();
        let j_long = model
            .critical_density(Seconds::from_nanos(t1 * factor), 1e-3)
            .unwrap();
        prop_assert!(j_long.value() <= j_short.value() * (1.0 + 1e-6));
        // and bounded below by the heat-sunk steady-state (never reaches 0)
        prop_assert!(j_long.to_mega_amps_per_cm2() > 1.0);
    }

    /// Peak temperature is monotone in drive and never exceeds melt.
    #[test]
    fn peak_temperature_monotone_and_bounded(
        w in 0.5_f64..4.0,
        j1 in 5.0_f64..30.0,
        step in 1.2_f64..3.0,
    ) {
        let model = line_model(Metal::alcu(), w, 1.2);
        let pulse = Seconds::from_nanos(100.0);
        let a = model
            .simulate_square_pulse(CurrentDensity::from_mega_amps_per_cm2(j1), pulse, 2000)
            .unwrap();
        let b = model
            .simulate_square_pulse(
                CurrentDensity::from_mega_amps_per_cm2(j1 * step),
                pulse,
                2000,
            )
            .unwrap();
        prop_assert!(b.peak_temperature.value() >= a.peak_temperature.value() - 1e-9);
        let melt = Metal::alcu().melting_point().value();
        prop_assert!(a.peak_temperature.value() <= melt + 1e-9);
        prop_assert!(b.peak_temperature.value() <= melt + 1e-9);
    }

    /// The heat-sunk model always outlasts the adiabatic bound: its
    /// time-to-melt is ≥ the closed-form adiabatic time.
    #[test]
    fn conduction_only_extends_life(j_ma in 40.0_f64..90.0) {
        let adiabatic = TransientLine::adiabatic(
            Metal::alcu(),
            LineGeometry::new(um(2.0), um(0.55), um(100.0)).unwrap(),
            Celsius::new(25.0).to_kelvin(),
        );
        let sunk = line_model(Metal::alcu(), 2.0, 1.2);
        let j = CurrentDensity::from_mega_amps_per_cm2(j_ma);
        let t_ad = adiabatic.adiabatic_time_to_melt(j);
        let window = Seconds::new(t_ad.value() * 4.0);
        let sim = sunk.simulate_square_pulse(j, window, 6000).unwrap();
        if let Some(t_fail) = sim.failed_at {
            prop_assert!(
                t_fail.value() >= t_ad.value() * 0.98,
                "heat-sunk melt at {:.3e} s earlier than adiabatic {:.3e} s",
                t_fail.value(),
                t_ad.value()
            );
        }
    }

    /// Melt fraction is within [0, 1] and latent damage implies a peak at
    /// the melting point.
    #[test]
    fn melt_bookkeeping_consistent(j_ma in 10.0_f64..120.0) {
        let model = line_model(Metal::alcu(), 1.5, 1.2);
        let sim = model
            .simulate_square_pulse(
                CurrentDensity::from_mega_amps_per_cm2(j_ma),
                Seconds::from_nanos(150.0),
                3000,
            )
            .unwrap();
        prop_assert!((0.0..=1.0).contains(&sim.melt_fraction));
        if sim.latent_damage() {
            let melt = Metal::alcu().melting_point().value();
            prop_assert!((sim.peak_temperature.value() - melt).abs() < 1.0);
            prop_assert!(sim.melt_fraction < 1.0);
        }
        if sim.failed() {
            prop_assert!((sim.melt_fraction - 1.0).abs() < 1e-9);
            prop_assert!(sim.melt_onset.is_some());
        }
    }
}

/// Refining the time step converges the failure time.
#[test]
fn time_step_refinement_converges() {
    let model = TransientLine::adiabatic(
        Metal::alcu(),
        LineGeometry::new(um(2.0), um(0.55), um(100.0)).unwrap(),
        Celsius::new(25.0).to_kelvin(),
    );
    let j = CurrentDensity::from_mega_amps_per_cm2(70.0);
    let t_ref = model.adiabatic_time_to_melt(j);
    let window = Seconds::new(t_ref.value() * 2.0);
    let mut errors = Vec::new();
    for steps in [200, 2000, 20000] {
        let sim = model.simulate_square_pulse(j, window, steps).unwrap();
        let t = sim.failed_at.expect("melts").value();
        errors.push((t - t_ref.value()).abs() / t_ref.value());
    }
    assert!(
        errors[2] <= errors[0],
        "refinement reduces error: {errors:?}"
    );
    assert!(errors[2] < 0.02, "fine step within 2 %: {errors:?}");
}
