//! Property tests for the Hager/Higham 1-norm condition estimator:
//! on random grid-shaped MNA systems (SPD and deliberately
//! unsymmetric), [`condest_1norm`] must be a true lower bound on the
//! exact dense κ₁ = ‖A‖₁‖A⁻¹‖₁ and must stay within the documented
//! [`CONDEST_UNDERESTIMATE_FACTOR`] of it — that factor is a public
//! promise (`hotwire doctor` classifies "ill-conditioned" from the
//! estimate), so it is pinned here, not just stated in the docs.

use hotwire_circuit::linalg::Matrix;
use hotwire_circuit::sparse::SparseMatrix;
use hotwire_obs::health::{condest_1norm, CONDEST_UNDERESTIMATE_FACTOR};
use proptest::prelude::*;

/// Stamps a `rows × cols` 5-point mesh with per-edge conductances from
/// `gs` and diagonal ground ties from `ties` into both representations.
/// `skew` adds a one-sided off-diagonal perturbation (`skew * g` onto
/// the (a, b) entry only), turning the SPD stamp into an unsymmetric
/// matrix without losing invertibility; `0.0` keeps it symmetric.
fn stamp_grid(
    rows: usize,
    cols: usize,
    gs: &[f64],
    ties: &[f64],
    skew: f64,
) -> (Matrix, SparseMatrix) {
    let n = rows * cols;
    let mut dense = Matrix::zeros(n, n);
    let mut sparse = SparseMatrix::zeros(n);
    let at = |r: usize, c: usize| r * cols + c;
    let mut edge = 0usize;
    let mut couple = |a: usize, b: usize, g: f64| {
        for (r, c, v) in [(a, a, g), (b, b, g), (a, b, -g), (b, a, -g)] {
            dense.add(r, c, v);
            sparse.add(r, c, v);
        }
        if skew != 0.0 {
            dense.add(a, b, -skew * g);
            sparse.add(a, b, -skew * g);
        }
    };
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                couple(at(r, c), at(r, c + 1), gs[edge % gs.len()]);
                edge += 1;
            }
            if r + 1 < rows {
                couple(at(r, c), at(r + 1, c), gs[edge % gs.len()]);
                edge += 1;
            }
        }
    }
    for i in 0..n {
        dense.add(i, i, ties[i % ties.len()]);
        sparse.add(i, i, ties[i % ties.len()]);
    }
    (dense, sparse)
}

/// Exact κ₁ by brute force: dense-solve every unit vector to build the
/// columns of A⁻¹, then take max column absolute sums of both A and
/// A⁻¹. Affordable because the property grids stay tiny.
fn exact_kappa_1(dense: &Matrix, n: usize) -> f64 {
    let mut lu = dense.clone();
    lu.factor().expect("property grids are invertible");
    let mut inv_norm = 0.0_f64;
    let mut col = Vec::new();
    for j in 0..n {
        let mut e = vec![0.0; n];
        e[j] = 1.0;
        lu.solve_factored_into(&e, &mut col);
        inv_norm = inv_norm.max(col.iter().map(|v| v.abs()).sum());
    }
    let anorm = (0..n)
        .map(|j| (0..n).map(|i| dense[(i, j)].abs()).sum::<f64>())
        .fold(0.0, f64::max);
    anorm * inv_norm
}

/// Runs the estimator against the sparse factorization exactly the way
/// `MnaFactorization::condition_estimate` does: reusing factored
/// solves, never re-factoring.
fn estimate(sparse: &SparseMatrix, n: usize) -> f64 {
    let f = sparse.factor().expect("property grids are invertible");
    condest_1norm(
        n,
        sparse.norm_1(),
        |b, x| x.copy_from_slice(&f.solve(b)),
        |b, x| x.copy_from_slice(&f.solve_transposed(b)),
    )
}

proptest! {
    #[test]
    fn condest_brackets_exact_kappa_on_spd_grids(
        rows in 2usize..7,
        cols in 2usize..7,
        gs in prop::collection::vec(0.05f64..20.0, 16),
        ties in prop::collection::vec(1e-3f64..2.0, 8),
    ) {
        let (dense, sparse) = stamp_grid(rows, cols, &gs, &ties, 0.0);
        let n = rows * cols;
        let est = estimate(&sparse, n);
        let exact = exact_kappa_1(&dense, n);
        prop_assert!(
            est <= exact * (1.0 + 1e-8),
            "a lower bound must not exceed the exact value: est {est} vs κ₁ {exact}"
        );
        prop_assert!(
            est >= exact / CONDEST_UNDERESTIMATE_FACTOR,
            "estimate {est} more than {CONDEST_UNDERESTIMATE_FACTOR}x under κ₁ {exact}"
        );
    }

    #[test]
    fn condest_brackets_exact_kappa_on_unsymmetric_grids(
        rows in 2usize..6,
        cols in 2usize..6,
        gs in prop::collection::vec(0.1f64..10.0, 12),
        ties in prop::collection::vec(1e-2f64..1.0, 6),
        skew in 0.01f64..0.45,
    ) {
        // The transpose solve is only exercised when A ≠ Aᵀ — this is
        // the case that would catch a solve/solve_transposed mixup.
        let (dense, sparse) = stamp_grid(rows, cols, &gs, &ties, skew);
        let n = rows * cols;
        let est = estimate(&sparse, n);
        let exact = exact_kappa_1(&dense, n);
        prop_assert!(est <= exact * (1.0 + 1e-8), "est {est} vs κ₁ {exact}");
        prop_assert!(
            est >= exact / CONDEST_UNDERESTIMATE_FACTOR,
            "estimate {est} more than {CONDEST_UNDERESTIMATE_FACTOR}x under κ₁ {exact}"
        );
    }

    #[test]
    fn condest_tracks_deliberate_ill_conditioning(
        weak_exp in 3.0f64..9.0,
        n in 4usize..12,
    ) {
        // A resistor chain with one link weakened by 10^-weak_exp: κ₁
        // grows like the conductance ratio, and the estimate must grow
        // with it (this is the signal `hotwire doctor` classifies on).
        let weak = 10f64.powf(-weak_exp);
        let mut dense = Matrix::zeros(n, n);
        let mut sparse = SparseMatrix::zeros(n);
        for i in 0..n - 1 {
            let g = if i == n / 2 { weak } else { 1.0 };
            for (r, c, v) in [(i, i, g), (i + 1, i + 1, g), (i, i + 1, -g), (i + 1, i, -g)] {
                dense.add(r, c, v);
                sparse.add(r, c, v);
            }
        }
        for i in 0..n {
            dense.add(i, i, 1e-9); // gmin-style tie keeps it invertible
            sparse.add(i, i, 1e-9);
        }
        let est = estimate(&sparse, n);
        let exact = exact_kappa_1(&dense, n);
        prop_assert!(est <= exact * (1.0 + 1e-6), "est {est} vs κ₁ {exact}");
        prop_assert!(
            est >= exact / CONDEST_UNDERESTIMATE_FACTOR,
            "estimate {est} more than {CONDEST_UNDERESTIMATE_FACTOR}x under κ₁ {exact}"
        );
        prop_assert!(
            est > 1.0 / weak / 100.0,
            "κ must reflect the weak link: est {est}, weak {weak}"
        );
    }
}
