//! Coupled EM–IR–thermal chip signoff.
//!
//! The rest of the workspace analyses one interconnect at a time; this
//! crate closes the loop at chip scale. A power grid's IR drop sets the
//! branch currents, the currents Joule-heat the straps, the heat raises
//! the metal resistivity, and the changed resistivities move the IR
//! drop — a fixed point the paper's per-line eq. 13 solves analytically
//! for a single wire and that [`CoupledEngine`] solves by damped Picard
//! iteration for the whole grid, reusing the sparse MNA symbolic
//! factorization across iterations.
//!
//! On the converged state the engine runs a per-strap electromigration
//! pass — Black's TTF at the *local* metal temperature, the Blech
//! immortality filter at the strap length — and rolls the mortal straps
//! into a weakest-link chip failure distribution.
//!
//! ```
//! use hotwire_coupled::{coupled_signoff, CoupledGridSpec, CoupledOptions};
//!
//! let spec = CoupledGridSpec::demo(20, 20);
//! let t_ref = spec.reference_temperature;
//! let report = coupled_signoff(spec, CoupledOptions::default()).unwrap();
//! assert!(report.iterations >= 2); // heating feeds back at least once
//! assert!(report.peak_temperature > t_ref);
//! assert!(report.worst_ir_drop.value() > 0.0);
//! ```

#![forbid(unsafe_code)]
// HW001 is fully enforced here (zero baseline entries): keep it that way
// at compile time, not just in `cargo xtask analyze`.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod engine;
pub mod error;
pub mod trace;
pub mod tree_em;

pub use engine::{
    coupled_signoff, BranchAssessment, CoupledEngine, CoupledGridSpec, CoupledOptions,
    CoupledReport, GridBranch,
};
pub use error::{BranchHotspot, CoupledError};
pub use trace::{ConvergenceTrace, IterationRecord};
pub use tree_em::{
    age_with_tree_em, assess_trees, AgingOptions, AgingReport, EpochRecord, TreeAssessment,
    TreeEmOptions, TreeEmReport,
};
