//! The coupled fixed-point engine: IR drop ⇄ Joule heating ⇄
//! temperature-dependent resistivity, then an EM rollup on the
//! converged state.
//!
//! One iteration of the damped Picard loop:
//!
//! 1. stamp every branch's conductance from its current temperature,
//!    `g_b = A / (ρ(T_b)·ℓ)`, and DC-solve the grid — the first solve
//!    factors the reduced sparse matrix, later solves reuse its
//!    symbolic structure via `refactor()`;
//! 2. convert branch currents to Joule powers `P_b = I_b²/g_b`, split
//!    them onto the end nodes, and solve the chip thermal map (factored
//!    once — thermal conductances never change);
//! 3. update every branch temperature toward the substrate-referenced
//!    field with damping `α`, clamping the *resistivity lookup* into
//!    the metal fit's validity window so an overshooting iterate can
//!    never stamp a non-physical resistance.
//!
//! Convergence is declared when the max |ΔT| update falls under the
//! tolerance; growth over consecutive iterations raises
//! [`CoupledError::Diverged`] naming the offending branches, and a
//! converged state still pinned at the validity limit raises
//! [`CoupledError::BeyondResistivityRange`].

use hotwire_circuit::grid_dc::DcGridSolver;
use hotwire_circuit::solver::SolverPath;
use hotwire_circuit::transient::TransientOptions;
use hotwire_core::signoff::{GoverningRule, NetVerdict};
use hotwire_em::blech::BlechModel;
use hotwire_em::lifetime::{LognormalLifetime, WeakestLinkPopulation};
use hotwire_em::BlackModel;
use hotwire_obs::health::{self, ConvergenceClass, HealthReport};
use hotwire_obs::trace::FieldValue;
use hotwire_obs::{metrics, recorder, trace as obs_trace};
use hotwire_tech::{Dielectric, Metal};
use hotwire_thermal::chip::ChipThermalModel;
use hotwire_thermal::impedance::{effective_width, InsulatorStack, QUASI_2D_PHI};
use hotwire_units::{Current, CurrentDensity, Kelvin, Length, Seconds, Voltage};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::error::{BranchHotspot, CoupledError};
use crate::trace::{ConvergenceTrace, IterationRecord};

/// How many offending branches an error report names.
const ERROR_REPORT_BRANCHES: usize = 8;

/// A strap between two grid intersections, `((row, col), (row, col))`.
pub type GridBranch = ((usize, usize), (usize, usize));

/// Specification of a power grid for coupled electro-thermal signoff.
///
/// Unlike the purely electrical
/// [`PowerGridSpec`](hotwire_circuit::power_grid::PowerGridSpec), this
/// carries the full physical picture: strap geometry, the inter-layer
/// dielectric under the straps, the metal's material model, and the
/// substrate reference temperature. `1 × N` chains are allowed — that
/// degenerate grid is the paper's single-wire limit and the anchor for
/// the eq. 13 regression test.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoupledGridSpec {
    /// Number of strap intersections vertically.
    pub rows: usize,
    /// Number of strap intersections horizontally.
    pub cols: usize,
    /// Distance between adjacent intersections.
    pub pitch: Length,
    /// Strap width.
    pub strap_width: Length,
    /// Strap metal thickness.
    pub strap_thickness: Length,
    /// Thickness of the dielectric between the straps and the substrate.
    pub dielectric_thickness: Length,
    /// That dielectric's material.
    pub dielectric: Dielectric,
    /// Heat-spreading parameter φ (eq. 14; 2.45 for quasi-2D lines).
    pub phi: f64,
    /// The strap metal (resistivity fit, thermal conductivity, EM).
    pub metal: Metal,
    /// Supply voltage at the pads.
    pub vdd: Voltage,
    /// DC current drawn by the logic under each intersection.
    pub sink_per_node: Current,
    /// `(row, col)` intersections bonded to ideal supply pads.
    pub pads: Vec<(usize, usize)>,
    /// Substrate (chip reference) temperature.
    pub reference_temperature: Kelvin,
}

impl CoupledGridSpec {
    /// A representative deep-sub-micron Cu grid for demos and benches:
    /// 100 µm pitch, 2 × 0.8 µm straps over 1 µm of oxide, 2.5 V pads
    /// at the four corners, 0.2 mA per intersection, 100 °C substrate.
    #[must_use]
    pub fn demo(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            pitch: Length::from_micrometers(100.0),
            strap_width: Length::from_micrometers(2.0),
            strap_thickness: Length::from_micrometers(0.8),
            dielectric_thickness: Length::from_micrometers(1.0),
            dielectric: Dielectric::oxide(),
            phi: QUASI_2D_PHI,
            metal: Metal::copper(),
            vdd: Voltage::new(2.5),
            sink_per_node: Current::from_milliamps(0.2),
            pads: vec![
                (0, 0),
                (0, cols.saturating_sub(1)),
                (rows.saturating_sub(1), 0),
                (rows.saturating_sub(1), cols.saturating_sub(1)),
            ],
            reference_temperature: hotwire_units::Celsius::new(100.0).into(),
        }
    }
}

/// Knobs of the fixed-point iteration and the EM rollup.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoupledOptions {
    /// Convergence tolerance on the max per-branch |ΔT| update (K).
    pub tolerance: f64,
    /// Iteration cap before [`CoupledError::NotConverged`].
    pub max_iterations: usize,
    /// Damping factor α ∈ (0, 1] of the Picard update
    /// `T ← T + α·(T_new − T)`.
    pub damping: f64,
    /// Initial branch-temperature guess; defaults to the substrate
    /// reference.
    pub initial_temperature: Option<Kelvin>,
    /// Lognormal shape parameter σ of each strap's TTF distribution.
    pub sigma: f64,
    /// Cumulative failure fraction the TTF is quoted at (the paper uses
    /// 0.1 %).
    pub failure_quantile: f64,
    /// Blech immortality filter (None disables it).
    pub blech: Option<BlechModel>,
}

impl Default for CoupledOptions {
    fn default() -> Self {
        Self {
            tolerance: 0.05,
            max_iterations: 100,
            damping: 0.7,
            initial_temperature: None,
            sigma: 0.5,
            failure_quantile: 1.0e-3,
            blech: Some(BlechModel::copper()),
        }
    }
}

/// One strap's converged operating point plus its EM verdict.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BranchAssessment {
    /// Tail intersection `(row, col)`.
    pub from: (usize, usize),
    /// Head intersection `(row, col)`.
    pub to: (usize, usize),
    /// Magnitude of the DC current through the strap.
    pub current: Current,
    /// The corresponding (average = RMS = peak, r = 1) density.
    pub density: CurrentDensity,
    /// The strap's converged metal temperature.
    pub temperature: Kelvin,
    /// The signoff verdict, in `core::signoff` style.
    pub verdict: NetVerdict,
    /// Black TTF at the local stress (`None` for immortal or idle
    /// straps, which cannot fail by EM).
    pub ttf: Option<Seconds>,
}

/// The converged chip-level result.
#[derive(Debug, Clone, PartialEq)]
pub struct CoupledReport {
    /// Picard iterations to convergence.
    pub iterations: usize,
    /// Max |ΔT| update of every iteration (K), in order.
    pub iteration_deltas: Vec<f64>,
    /// Largest supply droop anywhere on the grid.
    pub worst_ir_drop: Voltage,
    /// The intersection with the largest droop.
    pub worst_node: (usize, usize),
    /// The hottest strap's metal temperature.
    pub peak_temperature: Kelvin,
    /// The full per-iteration residual history (what
    /// `coupled-signoff --trace-out` writes; superset of
    /// [`CoupledReport::iteration_deltas`]).
    pub trace: ConvergenceTrace,
    /// Every strap's assessment, in grid order.
    pub branches: Vec<BranchAssessment>,
    /// Weakest-link failure distribution over every mortal strap
    /// (`None` when the whole grid is immortal or idle).
    pub chip_failure: Option<WeakestLinkPopulation>,
    /// The chip TTF at the configured failure quantile.
    pub chip_ttf: Option<Seconds>,
    /// Numerical-health summary of the run: Picard rate fit, condition
    /// estimate, post-solve residual, and KCL audit (what a diagnostic
    /// bundle embeds and `hotwire doctor` renders).
    pub health: HealthReport,
}

impl CoupledReport {
    /// The failing straps, most over-stressed first (mirrors
    /// [`hotwire_core::signoff::ranked_violations`]).
    #[must_use]
    pub fn violations(&self) -> Vec<&BranchAssessment> {
        let mut v: Vec<&BranchAssessment> = self
            .branches
            .iter()
            .filter(|b| !b.verdict.passes())
            .collect();
        v.sort_by(|a, b| b.verdict.utilization.total_cmp(&a.verdict.utilization));
        v
    }

    /// `true` when every strap meets its rule.
    #[must_use]
    pub fn passes(&self) -> bool {
        self.branches.iter().all(|b| b.verdict.passes())
    }
}

/// The coupled engine: owns the DC solver (with its reusable
/// factorization), the factored chip thermal map, and the temperature
/// state.
#[derive(Debug, Clone)]
pub struct CoupledEngine {
    spec: CoupledGridSpec,
    options: CoupledOptions,
    branches: Vec<GridBranch>,
    solver: DcGridSolver,
    thermal: ChipThermalModel,
    cross_section: f64,
    branch_t: Vec<f64>,
    branch_g: Vec<f64>,
    /// Per-branch resistance multipliers (≥ 1) back-annotated by the
    /// tree-EM aging loop as voids grow under straps.
    branch_r_mult: Vec<f64>,
    node_power: Vec<f64>,
    node_rise: Vec<f64>,
    deltas: Vec<f64>,
    records: Vec<IterationRecord>,
    converged: bool,
}

impl CoupledEngine {
    /// Validates the spec and builds both factorizable systems (the
    /// thermal one is factored here, once).
    ///
    /// # Errors
    ///
    /// Returns [`CoupledError::InvalidSpec`] for degenerate geometry,
    /// an empty or out-of-range pad list, or bad options.
    pub fn new(spec: CoupledGridSpec, options: CoupledOptions) -> Result<Self, CoupledError> {
        let invalid = |message: String| CoupledError::InvalidSpec { message };
        if spec.rows == 0 || spec.cols == 0 || spec.rows * spec.cols < 2 {
            return Err(invalid(format!(
                "grid needs at least 2 intersections, got {}×{}",
                spec.rows, spec.cols
            )));
        }
        for (what, v) in [
            ("pitch", spec.pitch.value()),
            ("strap width", spec.strap_width.value()),
            ("strap thickness", spec.strap_thickness.value()),
            ("dielectric thickness", spec.dielectric_thickness.value()),
        ] {
            if !(v > 0.0) || !v.is_finite() {
                return Err(invalid(format!("{what} must be positive, got {v} m")));
            }
        }
        if !(spec.phi >= 0.0) || !spec.phi.is_finite() {
            return Err(invalid(format!("phi must be ≥ 0, got {}", spec.phi)));
        }
        if !(spec.sink_per_node.value() >= 0.0) {
            return Err(invalid(format!(
                "sink per node must be ≥ 0, got {}",
                spec.sink_per_node
            )));
        }
        if !(spec.reference_temperature.value() > 0.0) {
            return Err(invalid(format!(
                "reference temperature must be positive, got {}",
                spec.reference_temperature
            )));
        }
        if spec.pads.is_empty() {
            return Err(invalid("grid needs at least one pad".to_owned()));
        }
        for &(r, c) in &spec.pads {
            if r >= spec.rows || c >= spec.cols {
                return Err(invalid(format!(
                    "pad ({r}, {c}) outside the {}×{} grid",
                    spec.rows, spec.cols
                )));
            }
        }
        if !(options.tolerance > 0.0) || !options.tolerance.is_finite() {
            return Err(invalid(format!(
                "tolerance must be positive, got {} K",
                options.tolerance
            )));
        }
        if options.max_iterations == 0 {
            return Err(invalid("max_iterations must be at least 1".to_owned()));
        }
        if !(options.damping > 0.0 && options.damping <= 1.0) {
            return Err(invalid(format!(
                "damping must be in (0, 1], got {}",
                options.damping
            )));
        }
        if !(options.sigma > 0.0) || !options.sigma.is_finite() {
            return Err(invalid(format!(
                "lognormal sigma must be positive, got {}",
                options.sigma
            )));
        }
        if !(options.failure_quantile > 0.0 && options.failure_quantile < 1.0) {
            return Err(invalid(format!(
                "failure quantile must be in (0, 1), got {}",
                options.failure_quantile
            )));
        }
        let (lo, hi) = spec.metal.resistivity_validity_range();
        let t0 = options
            .initial_temperature
            .unwrap_or(spec.reference_temperature);
        if !(t0.value() >= lo.value() && t0.value() <= hi.value()) {
            return Err(invalid(format!(
                "initial temperature {} outside the resistivity fit's validity window [{:.1} K, {:.1} K]",
                t0,
                lo.value(),
                hi.value()
            )));
        }

        let (rows, cols) = (spec.rows, spec.cols);
        let mut branches = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    branches.push(((r, c), (r, c + 1)));
                }
                if r + 1 < rows {
                    branches.push(((r, c), (r + 1, c)));
                }
            }
        }
        let node_branches: Vec<(usize, usize)> = branches
            .iter()
            .map(|&((r0, c0), (r1, c1))| (r0 * cols + c0, r1 * cols + c1))
            .collect();
        let pinned: Vec<(usize, f64)> = spec
            .pads
            .iter()
            .map(|&(r, c)| (r * cols + c, spec.vdd.value()))
            .collect();
        let mut solver = DcGridSolver::new(
            rows * cols,
            node_branches,
            &pinned,
            TransientOptions::default().gmin,
        )?;
        for cell in 0..rows * cols {
            solver.set_sink(cell, spec.sink_per_node.value());
        }

        // Thermal conductances (W/K): axial metal conduction per branch
        // and per-half-segment vertical conduction through the ILD into
        // the substrate, with eq. 14's effective-width spreading.
        let area = spec.strap_width.value() * spec.strap_thickness.value();
        let pitch = spec.pitch.value();
        let stack = InsulatorStack::single(spec.dielectric_thickness, &spec.dielectric);
        let srt = stack.series_resistance_thickness();
        let w_eff = effective_width(spec.strap_width, spec.dielectric_thickness, spec.phi);
        let g_lateral = spec.metal.thermal_conductivity().value() * area / pitch;
        let g_half = w_eff.value() * (0.5 * pitch) / srt;
        let thermal = ChipThermalModel::new(rows, cols, g_lateral, g_half)?;

        let n_branches = branches.len();
        Ok(Self {
            spec,
            options,
            branches,
            solver,
            thermal,
            cross_section: area,
            branch_t: vec![t0.value(); n_branches],
            branch_g: vec![0.0; n_branches],
            branch_r_mult: vec![1.0; n_branches],
            node_power: vec![0.0; rows * cols],
            node_rise: Vec::new(),
            deltas: Vec::new(),
            records: Vec::new(),
            converged: false,
        })
    }

    /// One damped Picard iteration; returns the max |ΔT| update (K).
    ///
    /// # Errors
    ///
    /// Propagates electrical ([`CoupledError::Circuit`]) and thermal
    /// ([`CoupledError::Thermal`]) solve failures.
    pub fn step(&mut self) -> Result<f64, CoupledError> {
        metrics::counter("coupled.iterations").inc();
        // The per-iteration span carries the 1-based iteration index as
        // an attribute, so `hotwire trace` can key its critical-path
        // extraction on it; the stage spans below nest underneath.
        let _iter_span = obs_trace::span_with(
            "coupled.iteration",
            &[("iteration", FieldValue::U64(self.deltas.len() as u64 + 1))],
        );
        let step_start = hotwire_obs::Stopwatch::start();
        let metal = &self.spec.metal;
        let pitch = self.spec.pitch.value();
        let area = self.cross_section;
        // 1. Electrical: restamp ρ(T) and solve (refactor after the
        //    first iteration).
        let electrical_start = hotwire_obs::Stopwatch::start();
        {
            let _t = obs_trace::span("coupled.stamp_time");
            for (k, (g, &t)) in self.branch_g.iter_mut().zip(&self.branch_t).enumerate() {
                let (rho, _) = metal.resistivity_clamped(Kelvin::new(t));
                *g = area / (rho.value() * pitch * self.branch_r_mult[k]);
            }
        }
        {
            let _t = obs_trace::span("coupled.electrical_time");
            self.solver.solve(&self.branch_g)?;
        }
        let electrical = electrical_start.elapsed();
        // 2. Thermal: branch Joule powers onto end nodes, one banded
        //    substitution for the whole chip.
        let thermal_start = hotwire_obs::Stopwatch::start();
        self.node_power.iter_mut().for_each(|p| *p = 0.0);
        let cols = self.spec.cols;
        for (k, &((r0, c0), (r1, c1))) in self.branches.iter().enumerate() {
            let i = self.solver.branch_currents()[k];
            let p = i * i / self.branch_g[k];
            self.node_power[r0 * cols + c0] += 0.5 * p;
            self.node_power[r1 * cols + c1] += 0.5 * p;
        }
        {
            let _t = obs_trace::span("coupled.thermal_time");
            self.thermal
                .solve_into(&self.node_power, &mut self.node_rise)?;
        }
        let thermal = thermal_start.elapsed();
        // 3. Damped update toward the substrate-referenced field.
        let _t_update = obs_trace::span("coupled.update_time");
        let t_ref = self.spec.reference_temperature.value();
        let alpha = self.options.damping;
        let mut delta = 0.0_f64;
        let mut peak = f64::NEG_INFINITY;
        for (k, &((r0, c0), (r1, c1))) in self.branches.iter().enumerate() {
            let rise = 0.5 * (self.node_rise[r0 * cols + c0] + self.node_rise[r1 * cols + c1]);
            let target = t_ref + rise;
            let change = alpha * (target - self.branch_t[k]);
            self.branch_t[k] += change;
            delta = delta.max(change.abs());
            peak = peak.max(self.branch_t[k]);
        }
        self.deltas.push(delta);
        self.converged = delta <= self.options.tolerance;
        let worst_drop = self.spec.vdd.value()
            - self
                .solver
                .node_voltages()
                .iter()
                .fold(f64::INFINITY, |m, &v| m.min(v));
        self.records.push(IterationRecord {
            iteration: self.deltas.len(),
            max_delta_t: delta,
            peak_temperature: peak,
            worst_ir_drop: worst_drop,
            electrical_ms: electrical.as_secs_f64() * 1e3,
            thermal_ms: thermal.as_secs_f64() * 1e3,
            total_ms: step_start.elapsed().as_secs_f64() * 1e3,
        });
        metrics::gauge("coupled.residual").set(delta);
        metrics::gauge("coupled.peak_t_k").set(peak);
        // Rate fit + early classification on the delta history so far;
        // the class counters let dashboards alarm on a sick loop long
        // before the iteration cap fires.
        let rate = health::picard_rate(&self.deltas, self.options.tolerance);
        metrics::gauge(health::names::PICARD_CONTRACTION).set(rate.contraction);
        if let Some(n) = rate.predicted_iterations {
            #[allow(clippy::cast_precision_loss)]
            metrics::gauge(health::names::PICARD_PREDICTED).set(n as f64);
        }
        match rate.class {
            ConvergenceClass::Stagnated => {
                metrics::counter(health::names::PICARD_STAGNATED).inc();
            }
            ConvergenceClass::Oscillating => {
                metrics::counter(health::names::PICARD_OSCILLATING).inc();
            }
            ConvergenceClass::Diverging => {
                metrics::counter(health::names::PICARD_DIVERGING).inc();
            }
            _ => {}
        }
        recorder::record(
            "coupled.iteration",
            format_args!(
                "iter {} delta {delta:.4e} K peak {peak:.2} K drop {worst_drop:.4} V \
                 contraction {:.3} class {}",
                self.deltas.len(),
                rate.contraction,
                rate.class.label()
            ),
        );
        if obs_trace::enabled(obs_trace::Level::Debug) {
            obs_trace::debug(
                "coupled",
                "iteration",
                &[
                    ("iteration", FieldValue::U64(self.deltas.len() as u64)),
                    ("max_delta_t_k", FieldValue::F64(delta)),
                    ("peak_t_k", FieldValue::F64(peak)),
                    ("worst_ir_drop_v", FieldValue::F64(worst_drop)),
                ],
            );
        }
        Ok(delta)
    }

    /// Runs [`CoupledEngine::step`] to convergence.
    ///
    /// # Errors
    ///
    /// [`CoupledError::Diverged`] when the update keeps growing,
    /// [`CoupledError::NotConverged`] at the iteration cap, and
    /// [`CoupledError::BeyondResistivityRange`] when the settled state
    /// is pinned at the metal fit's validity limit.
    pub fn run(&mut self) -> Result<(), CoupledError> {
        let _run_span = obs_trace::span("coupled.run");
        recorder::record(
            "coupled.run",
            format_args!(
                "start: {}x{} grid, tol {:.2e} K, damping {}, max {} iters",
                self.spec.rows,
                self.spec.cols,
                self.options.tolerance,
                self.options.damping,
                self.options.max_iterations
            ),
        );
        while !self.converged {
            if self.deltas.len() >= self.options.max_iterations {
                let last_delta = self.deltas.last().copied().unwrap_or(f64::INFINITY);
                recorder::record(
                    "coupled.not_converged",
                    format_args!(
                        "iteration cap {} hit with delta {last_delta:.4e} K (tol {:.2e} K)",
                        self.options.max_iterations, self.options.tolerance
                    ),
                );
                return Err(CoupledError::NotConverged {
                    iterations: self.deltas.len(),
                    last_delta,
                    history: self.deltas.clone(),
                    hottest: self.hotspots_by(|_, &t| t),
                });
            }
            let delta = self.step()?;
            let n = self.deltas.len();
            let growing = n >= 3
                && self.deltas[n - 1] > self.deltas[n - 2]
                && self.deltas[n - 2] > self.deltas[n - 3];
            if !delta.is_finite() || (growing && delta > 100.0 * self.options.tolerance) {
                recorder::record(
                    "coupled.diverged",
                    format_args!("delta {delta:.4e} K growing at iteration {n}"),
                );
                return Err(CoupledError::Diverged {
                    iterations: n,
                    delta,
                    offending: self.hotspots_by(|_, &t| t),
                });
            }
        }
        // Converged: audit current conservation on the settled grid.
        let kcl = self.solver.kcl_audit();
        recorder::record(
            "coupled.converged",
            format_args!(
                "{} iterations, last delta {:.4e} K, KCL imbalance {kcl:.3e}",
                self.deltas.len(),
                self.deltas.last().copied().unwrap_or(0.0)
            ),
        );
        let (_, hi) = self.spec.metal.resistivity_validity_range();
        let beyond: Vec<usize> = (0..self.branches.len())
            .filter(|&k| self.branch_t[k] >= hi.value())
            .collect();
        if !beyond.is_empty() {
            let mut offending: Vec<BranchHotspot> = beyond
                .iter()
                .map(|&k| BranchHotspot {
                    from: self.branches[k].0,
                    to: self.branches[k].1,
                    temperature: Kelvin::new(self.branch_t[k]),
                })
                .collect();
            offending.sort_by(|a, b| b.temperature.value().total_cmp(&a.temperature.value()));
            offending.truncate(ERROR_REPORT_BRANCHES);
            return Err(CoupledError::BeyondResistivityRange {
                limit: hi,
                offending,
            });
        }
        if obs_trace::enabled(obs_trace::Level::Info) {
            obs_trace::info(
                "coupled",
                "converged",
                &[
                    ("iterations", FieldValue::U64(self.deltas.len() as u64)),
                    (
                        "last_delta_k",
                        FieldValue::F64(self.deltas.last().copied().unwrap_or(0.0)),
                    ),
                ],
            );
        }
        Ok(())
    }

    /// The worst branches by a score function, for error reports.
    fn hotspots_by(&self, score: impl Fn(usize, &f64) -> f64) -> Vec<BranchHotspot> {
        let mut scored: Vec<(f64, usize)> = self
            .branch_t
            .iter()
            .enumerate()
            .map(|(k, t)| (score(k, t), k))
            .collect();
        scored.sort_by(|a, b| b.0.total_cmp(&a.0));
        scored
            .iter()
            .take(ERROR_REPORT_BRANCHES)
            .map(|&(_, k)| BranchHotspot {
                from: self.branches[k].0,
                to: self.branches[k].1,
                temperature: Kelvin::new(self.branch_t[k]),
            })
            .collect()
    }

    /// Iterations performed so far.
    #[must_use]
    pub fn iterations(&self) -> usize {
        self.deltas.len()
    }

    /// The convergence trace accumulated so far — available even when
    /// [`CoupledEngine::run`] fails, so a `--trace-out` post-mortem can
    /// see the residual history that led to the error.
    #[must_use]
    pub fn trace(&self) -> ConvergenceTrace {
        ConvergenceTrace {
            records: self.records.clone(),
            converged: self.converged,
            tolerance: self.options.tolerance,
            damping: self.options.damping,
        }
    }

    /// `true` once the temperature field has settled under tolerance.
    #[must_use]
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// Numerical-health summary of the run so far: the Picard rate fit
    /// over the delta history plus whatever the electrical solver's
    /// monitors have sampled. Available mid-run and after a failed
    /// [`CoupledEngine::run`] — the error-path diagnostic bundles lean
    /// on exactly that.
    #[must_use]
    pub fn health_report(&self) -> HealthReport {
        let kcl = if self.converged && self.solver.solve_count() > 0 {
            Some(self.solver.kcl_audit())
        } else {
            None
        };
        HealthReport {
            picard: health::picard_rate(&self.deltas, self.options.tolerance),
            iterations: self.deltas.len() as u64,
            last_delta: self.deltas.last().copied().unwrap_or(0.0),
            tolerance: self.options.tolerance,
            condition_estimate: self.solver.condition_estimate(),
            residual_rel: self.solver.last_residual_rel(),
            kcl_imbalance_rel: kcl,
            pivot_growth: self.solver.pivot_growth(),
        }
    }

    /// Per-branch metal temperatures (K), in grid order.
    #[must_use]
    pub fn branch_temperatures(&self) -> &[f64] {
        &self.branch_t
    }

    /// Per-node voltages of the latest electrical solve, row-major.
    #[must_use]
    pub fn node_voltages(&self) -> &[f64] {
        self.solver.node_voltages()
    }

    /// The branch list, `((row, col), (row, col))` per strap.
    #[must_use]
    pub fn branches(&self) -> &[GridBranch] {
        &self.branches
    }

    /// Signed per-branch currents of the latest electrical solve
    /// (positive = conventional current from the branch's first node to
    /// its second), in grid order. The tree-EM layer consumes the sign
    /// to orient electron wind along each segment.
    #[must_use]
    pub fn branch_currents(&self) -> &[f64] {
        self.solver.branch_currents()
    }

    /// The grid spec the engine was built from.
    #[must_use]
    pub fn spec(&self) -> &CoupledGridSpec {
        &self.spec
    }

    /// The options the engine was built with.
    #[must_use]
    pub fn options(&self) -> &CoupledOptions {
        &self.options
    }

    /// Back-annotates per-branch resistance multipliers (≥ 1, one per
    /// strap) — the aging loop's hook: as voids grow, the liner carries
    /// the current at elevated resistance, which reshapes both the IR
    /// drop and the Joule heat of the next coupled solve.
    ///
    /// Call [`CoupledEngine::reset_convergence`] afterwards to re-run
    /// the fixed point with the new multipliers.
    ///
    /// # Errors
    ///
    /// [`CoupledError::InvalidSpec`] on a length mismatch or a
    /// multiplier below 1 / non-finite.
    pub fn set_branch_resistance_multipliers(
        &mut self,
        multipliers: &[f64],
    ) -> Result<(), CoupledError> {
        if multipliers.len() != self.branches.len() {
            return Err(CoupledError::InvalidSpec {
                message: format!(
                    "{} resistance multipliers for {} branches",
                    multipliers.len(),
                    self.branches.len()
                ),
            });
        }
        if let Some(bad) = multipliers.iter().find(|m| !m.is_finite() || **m < 1.0) {
            return Err(CoupledError::InvalidSpec {
                message: format!("resistance multipliers must be finite and ≥ 1, got {bad}"),
            });
        }
        self.branch_r_mult.copy_from_slice(multipliers);
        Ok(())
    }

    /// Clears the convergence state (residual history and flag) while
    /// keeping the warm temperature field and factorizations — the
    /// aging loop calls this between epochs so each re-solve gets the
    /// full iteration budget and converges fast from the warm start.
    pub fn reset_convergence(&mut self) {
        self.deltas.clear();
        self.records.clear();
        self.converged = false;
    }

    /// Size of the reduced electrical system.
    #[must_use]
    pub fn unknown_count(&self) -> usize {
        self.solver.unknown_count()
    }

    /// Which linear-solver backend served the electrical solves, or
    /// `None` before the first factorization. SPD grid stamps route to
    /// sparse Cholesky; everything else takes LU.
    #[must_use]
    pub fn solver_path(&self) -> Option<SolverPath> {
        self.solver.solver_path()
    }

    /// Evaluates the per-branch EM stage on the converged state and
    /// rolls it up into the chip-level report. The per-branch verdicts
    /// run on a rayon pool in an order-preserving fan-out, so the
    /// result is byte-identical to [`CoupledEngine::assess_serial`].
    ///
    /// # Errors
    ///
    /// [`CoupledError::InvalidSpec`] when called before convergence;
    /// [`CoupledError::Em`] if the statistics stage rejects a TTF.
    pub fn assess(&self) -> Result<CoupledReport, CoupledError> {
        self.assess_impl(true)
    }

    /// Serial twin of [`CoupledEngine::assess`] (determinism reference).
    ///
    /// # Errors
    ///
    /// As [`CoupledEngine::assess`].
    pub fn assess_serial(&self) -> Result<CoupledReport, CoupledError> {
        self.assess_impl(false)
    }

    fn assess_impl(&self, parallel: bool) -> Result<CoupledReport, CoupledError> {
        if !self.converged {
            return Err(CoupledError::InvalidSpec {
                message: "assess() requires a converged engine; call run() first".to_owned(),
            });
        }
        let _assess_span = obs_trace::span("coupled.assess");
        let black = BlackModel::for_metal(&self.spec.metal);
        let blech = self.options.blech;
        let pitch = self.spec.pitch;
        let area = self.cross_section;
        // Snap the logical context before the fan-out so the per-strap
        // spans on rayon workers parent under `coupled.assess`.
        let ctx = obs_trace::context();
        let eval = |k: usize| -> (BranchAssessment, Option<(CurrentDensity, Kelvin)>) {
            let _ctx = ctx.adopt();
            let _strap_span = obs_trace::span("coupled.em.strap");
            let (from, to) = self.branches[k];
            let i = self.solver.branch_currents()[k].abs();
            let j = i / area;
            let t = Kelvin::new(self.branch_t[k]);
            let allowed_wearout = black.allowed_average_density(t);
            let blech_floor = blech.as_ref().map(|b| b.immortality_density(pitch));
            let (allowed, governing) = match blech_floor {
                Some(floor) if floor > allowed_wearout => (floor, GoverningRule::BlechImmortal),
                _ => (allowed_wearout, GoverningRule::SelfConsistent),
            };
            let immortal = j <= 0.0
                || blech
                    .as_ref()
                    .is_some_and(|b| b.is_immortal(CurrentDensity::new(j), pitch));
            let verdict = NetVerdict {
                net: format!("strap ({},{})->({},{})", from.0, from.1, to.0, to.1),
                allowed_j_peak: allowed,
                governing,
                utilization: j / allowed.value(),
                metal_temperature: t,
            };
            // Atomic counters, so the serial and parallel fan-outs
            // agree on the totals.
            if immortal {
                metrics::counter("coupled.em.immortal_straps").inc();
            } else {
                metrics::counter("coupled.em.mortal_straps").inc();
            }
            let stress = (!immortal).then_some((CurrentDensity::new(j), t));
            (
                BranchAssessment {
                    from,
                    to,
                    current: Current::new(i),
                    density: CurrentDensity::new(j),
                    temperature: t,
                    verdict,
                    ttf: None, // filled from the batch TTF below
                },
                stress,
            )
        };
        let mut assessed: Vec<(BranchAssessment, Option<(CurrentDensity, Kelvin)>)> = if parallel {
            (0..self.branches.len()).into_par_iter().map(eval).collect()
        } else {
            (0..self.branches.len()).map(eval).collect()
        };
        // Batch TTF over the mortal straps, then the weakest-link rollup.
        let stresses: Vec<(CurrentDensity, Kelvin)> =
            assessed.iter().filter_map(|(_, s)| *s).collect();
        let ttfs = black.batch_ttf(&stresses);
        let mut members = Vec::with_capacity(ttfs.len());
        // `batch_ttf` yields one TTF per stress, and `stresses` holds
        // one entry per mortal branch in order — zipping the mortal
        // subset against the TTFs restores the pairing without an
        // unreachable-panic path.
        let mortal = assessed.iter_mut().filter(|(_, stress)| stress.is_some());
        for ((branch, _), &ttf) in mortal.zip(&ttfs) {
            branch.ttf = Some(ttf);
            members.push(
                LognormalLifetime::from_quantile(
                    ttf,
                    self.options.failure_quantile,
                    self.options.sigma,
                )
                .map_err(CoupledError::Em)?,
            );
        }
        let chip_failure = if members.is_empty() {
            None
        } else {
            Some(WeakestLinkPopulation::new(members).map_err(CoupledError::Em)?)
        };
        let chip_ttf = match &chip_failure {
            Some(pop) => Some(
                pop.time_to_fraction(self.options.failure_quantile)
                    .map_err(CoupledError::Em)?,
            ),
            None => None,
        };

        let vdd = self.spec.vdd.value();
        let cols = self.spec.cols;
        let mut worst_drop = 0.0_f64;
        let mut worst_node = (0, 0);
        for r in 0..self.spec.rows {
            for c in 0..cols {
                let drop = vdd - self.solver.node_voltages()[r * cols + c];
                if drop > worst_drop {
                    worst_drop = drop;
                    worst_node = (r, c);
                }
            }
        }
        let peak = self
            .branch_t
            .iter()
            .fold(f64::NEG_INFINITY, |m, &t| m.max(t));
        Ok(CoupledReport {
            iterations: self.deltas.len(),
            iteration_deltas: self.deltas.clone(),
            trace: self.trace(),
            worst_ir_drop: Voltage::new(worst_drop),
            worst_node,
            peak_temperature: Kelvin::new(peak),
            branches: assessed.into_iter().map(|(b, _)| b).collect(),
            chip_failure,
            chip_ttf,
            health: self.health_report(),
        })
    }
}

/// One-call convenience: build, iterate to the fixed point, assess.
///
/// # Errors
///
/// As [`CoupledEngine::new`], [`CoupledEngine::run`], and
/// [`CoupledEngine::assess`].
pub fn coupled_signoff(
    spec: CoupledGridSpec,
    options: CoupledOptions,
) -> Result<CoupledReport, CoupledError> {
    let mut engine = CoupledEngine::new(spec, options)?;
    engine.run()?;
    engine.assess()
}
