//! Typed errors of the coupled electro-thermal engine.

use std::fmt;

use hotwire_circuit::CircuitError;
use hotwire_em::EmError;
use hotwire_thermal::ThermalError;
use hotwire_units::Kelvin;

/// A branch named by its grid intersections with the temperature that
/// put it on an error report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BranchHotspot {
    /// Tail intersection `(row, col)`.
    pub from: (usize, usize),
    /// Head intersection `(row, col)`.
    pub to: (usize, usize),
    /// The branch's metal temperature when the error was raised.
    pub temperature: Kelvin,
}

impl fmt::Display for BranchHotspot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "strap ({},{})->({},{}) at {:.1} K",
            self.from.0,
            self.from.1,
            self.to.0,
            self.to.1,
            self.temperature.value()
        )
    }
}

/// Everything that can go wrong in a coupled signoff run.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoupledError {
    /// The grid specification or options are unusable.
    InvalidSpec {
        /// What was wrong.
        message: String,
    },
    /// The electrical solve failed.
    Circuit(CircuitError),
    /// The thermal solve failed.
    Thermal(ThermalError),
    /// The EM statistics stage failed.
    Em(EmError),
    /// The tree-EM stress stage failed (topology extraction or a
    /// Korhonen solve).
    TreeEm(hotwire_em_tree::TreeEmError),
    /// The Picard iteration hit its cap before the temperature field
    /// settled.
    NotConverged {
        /// Iterations performed.
        iterations: usize,
        /// The last max |ΔT| change (K), still above tolerance.
        last_delta: f64,
        /// The max |ΔT| of every iteration, in order — distinguishes a
        /// residual that stalled just above tolerance from one that
        /// oscillated, without re-running the loop.
        history: Vec<f64>,
        /// The branches still moving the most, hottest change first.
        hottest: Vec<BranchHotspot>,
    },
    /// The temperature updates grew instead of settling — runaway
    /// feedback between Joule heating and resistivity.
    Diverged {
        /// Iterations performed before giving up.
        iterations: usize,
        /// The last max |ΔT| change (K).
        delta: f64,
        /// The branches driving the growth, largest change first.
        offending: Vec<BranchHotspot>,
    },
    /// The converged state left the resistivity fit's validity window —
    /// some branch sits at or beyond the metal's melting point, so the
    /// clamped answer is not physical.
    BeyondResistivityRange {
        /// The validity window's upper bound (the melting point).
        limit: Kelvin,
        /// The branches beyond it, hottest first.
        offending: Vec<BranchHotspot>,
    },
}

impl fmt::Display for CoupledError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidSpec { message } => write!(f, "invalid coupled spec: {message}"),
            Self::Circuit(e) => write!(f, "electrical solve failed: {e}"),
            Self::Thermal(e) => write!(f, "thermal solve failed: {e}"),
            Self::Em(e) => write!(f, "EM statistics failed: {e}"),
            Self::TreeEm(e) => write!(f, "tree-EM stress stage failed: {e}"),
            Self::NotConverged {
                iterations,
                last_delta,
                history,
                hottest,
            } => {
                write!(
                    f,
                    "no fixed point after {iterations} iterations (last max |dT| = {last_delta:.3e} K)"
                )?;
                if let Some(first) = history.first() {
                    write!(f, "; residual went {first:.3e} -> {last_delta:.3e} K")?;
                }
                if let Some(h) = hottest.first() {
                    write!(f, "; still moving: {h}")?;
                }
                Ok(())
            }
            Self::Diverged {
                iterations,
                delta,
                offending,
            } => {
                write!(
                    f,
                    "electro-thermal runaway after {iterations} iterations (max |dT| grew to {delta:.3e} K)"
                )?;
                if let Some(h) = offending.first() {
                    write!(f, "; worst: {h}")?;
                }
                Ok(())
            }
            Self::BeyondResistivityRange { limit, offending } => {
                write!(
                    f,
                    "{} branch(es) beyond the resistivity fit's validity limit ({:.1} K)",
                    offending.len(),
                    limit.value()
                )?;
                if let Some(h) = offending.first() {
                    write!(f, "; hottest: {h}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for CoupledError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Circuit(e) => Some(e),
            Self::Thermal(e) => Some(e),
            Self::Em(e) => Some(e),
            Self::TreeEm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CircuitError> for CoupledError {
    fn from(e: CircuitError) -> Self {
        Self::Circuit(e)
    }
}

impl From<ThermalError> for CoupledError {
    fn from(e: ThermalError) -> Self {
        Self::Thermal(e)
    }
}

impl From<EmError> for CoupledError {
    fn from(e: EmError) -> Self {
        Self::Em(e)
    }
}

impl From<hotwire_em_tree::TreeEmError> for CoupledError {
    fn from(e: hotwire_em_tree::TreeEmError) -> Self {
        Self::TreeEm(e)
    }
}
