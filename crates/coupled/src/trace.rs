//! Per-run convergence telemetry of the damped Picard loop.
//!
//! Unlike the process-wide metrics registry (`hotwire_obs::metrics`,
//! compiled out without the `telemetry` feature), the convergence trace
//! is a **functional output**: it is always recorded, rides along on
//! [`CoupledReport`](crate::CoupledReport), and is what
//! `hotwire coupled-signoff --trace-out` writes to disk. It answers the
//! post-mortem questions the scalar report cannot: how fast did the
//! fixed point settle, did the residual stall before the cap, and which
//! stage (electrical refactor+solve vs banded thermal substitution)
//! dominated each iteration.
//!
//! The registry view is complementary: the `coupled.residual` gauge
//! keeps only the *last* residual but its snapshot carries the min/max
//! envelope of every write, so an oscillating loop that happens to end
//! on a small residual is still visible post-hoc — compare the gauge's
//! `max` against the per-iteration `max_delta_t` series here.

use hotwire_obs::json::Json;
use serde::{Deserialize, Serialize};

/// One iteration of the coupled loop, as observed from the outside.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IterationRecord {
    /// 1-based iteration number.
    pub iteration: usize,
    /// The damped max |ΔT| update (K) — the loop's residual.
    pub max_delta_t: f64,
    /// Hottest branch temperature after the update (K).
    pub peak_temperature: f64,
    /// Largest supply droop of this iteration's electrical solve (V).
    pub worst_ir_drop: f64,
    /// Wall time of the restamp + DC grid solve (ms).
    pub electrical_ms: f64,
    /// Wall time of the chip thermal substitution (ms).
    pub thermal_ms: f64,
    /// Wall time of the whole iteration (ms) — electrical + thermal +
    /// the damped update. Strictly ≥ `electrical_ms + thermal_ms`, and
    /// the `coupled.run` registry timer is in turn ≥ the sum of these
    /// over a run, since its RAII span encloses the full Picard loop.
    pub total_ms: f64,
}

/// The full residual history of one [`run`](crate::CoupledEngine::run).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConvergenceTrace {
    /// One record per Picard iteration, in order.
    pub records: Vec<IterationRecord>,
    /// Whether the loop settled under tolerance.
    pub converged: bool,
    /// The convergence tolerance on max |ΔT| (K).
    pub tolerance: f64,
    /// The damping factor α of the update.
    pub damping: f64,
}

impl ConvergenceTrace {
    /// Serializes the trace for `--trace-out` (schema documented in
    /// `docs/OBSERVABILITY.md`).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let records: Vec<Json> = self
            .records
            .iter()
            .map(|r| {
                Json::object([
                    ("iteration", Json::from(r.iteration)),
                    ("max_delta_t_k", Json::from(r.max_delta_t)),
                    ("peak_temperature_k", Json::from(r.peak_temperature)),
                    ("worst_ir_drop_v", Json::from(r.worst_ir_drop)),
                    ("electrical_ms", Json::from(r.electrical_ms)),
                    ("thermal_ms", Json::from(r.thermal_ms)),
                    ("total_ms", Json::from(r.total_ms)),
                ])
            })
            .collect();
        Json::object([
            ("converged", Json::from(self.converged)),
            ("tolerance_k", Json::from(self.tolerance)),
            ("damping", Json::from(self.damping)),
            ("iterations", Json::from(self.records.len())),
            ("records", Json::Arr(records)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_serializes_with_one_record_per_iteration() {
        let trace = ConvergenceTrace {
            records: vec![
                IterationRecord {
                    iteration: 1,
                    max_delta_t: 12.5,
                    peak_temperature: 385.6,
                    worst_ir_drop: 0.11,
                    electrical_ms: 3.0,
                    thermal_ms: 1.0,
                    total_ms: 4.2,
                },
                IterationRecord {
                    iteration: 2,
                    max_delta_t: 0.02,
                    peak_temperature: 386.1,
                    worst_ir_drop: 0.112,
                    electrical_ms: 2.0,
                    thermal_ms: 1.0,
                    total_ms: 3.1,
                },
            ],
            converged: true,
            tolerance: 0.05,
            damping: 0.7,
        };
        let json = trace.to_json();
        assert_eq!(json.get("iterations").and_then(Json::as_u64), Some(2));
        assert_eq!(json.get("converged").and_then(Json::as_bool), Some(true));
        let records = json.get("records").and_then(Json::as_array).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(
            records[1].get("max_delta_t_k").and_then(Json::as_f64),
            Some(0.02)
        );
        // And the rendered text must parse back.
        let reparsed = hotwire_obs::json::parse(&json.to_string()).unwrap();
        assert_eq!(
            reparsed
                .get("records")
                .and_then(Json::as_array)
                .map(<[Json]>::len),
            Some(2)
        );
    }
}
