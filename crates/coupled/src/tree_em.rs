//! Tree-EM stage for the coupled engine: grid rows and columns as
//! interconnect trees under the Korhonen stress model.
//!
//! The per-strap Black/Blech stage ([`crate::CoupledEngine::assess`])
//! judges every strap in isolation. This stage instead treats each
//! grid **row and column as one multi-segment interconnect tree**: the
//! converged electro-thermal state supplies per-segment signed currents
//! and metal temperatures, the linear-time steady-state filter
//! ([`hotwire_em_tree::steady`]) retires immortal lines in O(segments),
//! and the implicit Korhonen integrator
//! ([`hotwire_em_tree::transient`]) produces nucleation and
//! growth-to-failure times for the rest, rolled up through the same
//! weakest-link population as the per-strap path.
//!
//! [`age_with_tree_em`] closes the loop EMSpice-style: voids that grow
//! under straps are back-annotated as resistance multipliers, the
//! Picard fixed point is re-run, and the stress solvers continue from
//! their accumulated state at the new operating point.

use hotwire_core::signoff::{GoverningRule, NetVerdict};
use hotwire_em::lifetime::{LognormalLifetime, WeakestLinkPopulation};
use hotwire_em_tree::model::KorhonenModel;
use hotwire_em_tree::steady::{batch_steady_state, SteadyStateStress};
use hotwire_em_tree::transient::{KorhonenSolver, TransientOptions, TransientOutcome};
use hotwire_em_tree::tree::{InterconnectTree, TreeSegment};
use hotwire_obs::metrics;
use hotwire_units::{CurrentDensity, Kelvin, Length, Pascals, Seconds};
use serde::{Deserialize, Serialize};

use crate::engine::CoupledEngine;
use crate::CoupledError;

/// Options of the tree-EM stage.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TreeEmOptions {
    /// The Korhonen parameter set (usually
    /// [`KorhonenModel::for_metal_name`] of the grid's metal, which is
    /// Blech-calibrated so single straps reduce to the legacy check).
    pub model: KorhonenModel,
    /// Signoff horizon: trees that neither nucleate nor fail within it
    /// pass.
    pub horizon: Seconds,
    /// Transient mesh/stepping knobs.
    pub transient: TransientOptions,
    /// Skip the transient stage: steady-state (immortality) filter
    /// only, with mortal trees flagged by their stress utilization.
    pub steady_only: bool,
}

impl TreeEmOptions {
    /// Defaults for a model and horizon (transient knobs from
    /// [`TransientOptions::for_horizon`]).
    #[must_use]
    pub fn new(model: KorhonenModel, horizon: Seconds) -> Self {
        Self {
            model,
            horizon,
            transient: TransientOptions::for_horizon(horizon),
            steady_only: false,
        }
    }
}

/// One tree's verdict from the stress stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TreeAssessment {
    /// Tree name (`row{r}` / `col{c}` for grid lines).
    pub name: String,
    /// Peak steady-state tensile stress.
    pub max_tensile: Pascals,
    /// `true` when the steady-state filter proves the tree immortal.
    pub immortal: bool,
    /// The transient result for mortal trees (None when immortal or
    /// [`TreeEmOptions::steady_only`]).
    pub outcome: Option<TransientOutcome>,
    /// The signoff verdict: `stress-immortal` trees pass outright;
    /// `stress-wearout` utilization is horizon-referenced
    /// (`horizon/TTF` once failed, void fraction while growing), so
    /// `passes()` means "survives the signoff horizon".
    pub verdict: NetVerdict,
}

/// The chip-level tree-EM report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TreeEmReport {
    /// Every tree's assessment: rows first (top to bottom), then
    /// columns (left to right).
    pub trees: Vec<TreeAssessment>,
    /// Trees retired by the steady-state filter.
    pub immortal_trees: usize,
    /// Trees whose void spans the critical length within the horizon.
    pub failed_trees: usize,
    /// Weakest-link population over the failed trees.
    pub chip_failure: Option<WeakestLinkPopulation>,
    /// Chip TTF at the engine's failure quantile (None when nothing
    /// fails inside the horizon).
    pub chip_ttf: Option<Seconds>,
}

impl TreeEmReport {
    /// `true` when every tree survives the horizon.
    #[must_use]
    pub fn passes(&self) -> bool {
        self.trees.iter().all(|t| t.verdict.passes())
    }
}

/// Lifts the converged grid into straight-line trees — one per row and
/// one per column — with signed per-segment densities and local
/// temperatures. Returns each tree alongside the engine branch index
/// of every segment (for resistance back-annotation).
///
/// Rows and columns are assessed as independent trees: each carries
/// its own within-line flux continuity, while current exchanged at
/// intersections enters through the per-segment densities the full
/// mesh solve produced.
///
/// # Errors
///
/// [`CoupledError::InvalidSpec`] when called before convergence.
pub fn grid_line_trees(
    engine: &CoupledEngine,
) -> Result<Vec<(InterconnectTree, Vec<usize>)>, CoupledError> {
    if !engine.converged() {
        return Err(CoupledError::InvalidSpec {
            message: "grid_line_trees() requires a converged engine; call run() first".to_owned(),
        });
    }
    let spec = engine.spec();
    let (rows, cols) = (spec.rows, spec.cols);
    let area = spec.strap_width.value() * spec.strap_thickness.value();
    let currents = engine.branch_currents();
    let temps = engine.branch_temperatures();
    let mut by_ends = std::collections::HashMap::new();
    for (k, &(a, b)) in engine.branches().iter().enumerate() {
        by_ends.insert((a, b), k);
    }
    let segment = |k: usize, from: usize, to: usize, length: f64| TreeSegment {
        from,
        to,
        length: Length::new(length),
        width: spec.strap_width,
        thickness: spec.strap_thickness,
        current_density: CurrentDensity::new(currents[k] / area),
        temperature: Kelvin::new(temps[k]),
    };
    let pitch = spec.pitch.value();
    let mut out = Vec::new();
    if cols >= 2 {
        for r in 0..rows {
            let mut segs = Vec::with_capacity(cols - 1);
            let mut map = Vec::with_capacity(cols - 1);
            for c in 0..cols - 1 {
                let Some(&k) = by_ends.get(&((r, c), (r, c + 1))) else {
                    return Err(CoupledError::InvalidSpec {
                        message: format!("missing grid branch ({r},{c})->({r},{})", c + 1),
                    });
                };
                segs.push(segment(k, c, c + 1, pitch));
                map.push(k);
            }
            out.push((InterconnectTree::new(format!("row{r}"), cols, segs)?, map));
        }
    }
    if rows >= 2 {
        for c in 0..cols {
            let mut segs = Vec::with_capacity(rows - 1);
            let mut map = Vec::with_capacity(rows - 1);
            for r in 0..rows - 1 {
                let Some(&k) = by_ends.get(&((r, c), (r + 1, c))) else {
                    return Err(CoupledError::InvalidSpec {
                        message: format!("missing grid branch ({r},{c})->({},{c})", r + 1),
                    });
                };
                segs.push(segment(k, r, r + 1, pitch));
                map.push(k);
            }
            out.push((InterconnectTree::new(format!("col{c}"), rows, segs)?, map));
        }
    }
    Ok(out)
}

fn verdict_for(
    tree: &InterconnectTree,
    steady: &SteadyStateStress,
    outcome: Option<&TransientOutcome>,
    model: &KorhonenModel,
    horizon: Seconds,
) -> NetVerdict {
    let sigma_crit = model.critical_stress().value();
    let peak_j = tree
        .segments()
        .iter()
        .map(|s| s.current_density.value().abs())
        .fold(0.0_f64, f64::max);
    let hottest = tree
        .segments()
        .iter()
        .map(|s| s.temperature.value())
        .fold(f64::NEG_INFINITY, f64::max);
    let stress_ratio = (steady.max_tensile.value() / sigma_crit).max(0.0);
    // Stress is linear in a uniform current scale, so the density at
    // which this tree would sit exactly at σ_crit is peak_j / ratio —
    // the tree-level analogue of the per-strap allowed density.
    let allowed = if stress_ratio > 1.0e-6 && peak_j > 0.0 {
        peak_j / stress_ratio
    } else {
        peak_j.max(model.implied_blech_product(Kelvin::new(hottest)) / tree.total_length().value())
    };
    let (governing, utilization) = if steady.immortal {
        (GoverningRule::StressImmortal, stress_ratio)
    } else {
        let u = match outcome {
            // Failed: how many times over the horizon budget.
            Some(o) if o.failure_time.is_some() => o
                .failure_time
                .map_or(0.0, |t| horizon.value() / t.value().max(f64::MIN_POSITIVE)),
            // Still growing at the horizon: fraction of the critical
            // void consumed (< 1 ⇒ survives the horizon).
            Some(o) => (o.void_length / model.critical_void_length()).min(0.999),
            // Steady-only: fall back to the stress utilization (≥ 1
            // here by construction — flagged for the transient stage).
            None => stress_ratio,
        };
        (GoverningRule::StressWearout, u)
    };
    NetVerdict {
        net: tree.name().to_string(),
        allowed_j_peak: CurrentDensity::new(allowed),
        governing,
        utilization,
        metal_temperature: Kelvin::new(hottest),
    }
}

/// Runs the tree-EM stage on a converged engine: steady-state filter
/// over every grid line, transient Korhonen to failure on the mortal
/// ones, weakest-link rollup over the failures.
///
/// # Errors
///
/// [`CoupledError::InvalidSpec`] before convergence;
/// [`CoupledError::TreeEm`] from the stress solvers;
/// [`CoupledError::Em`] from the statistics rollup.
pub fn assess_trees(
    engine: &CoupledEngine,
    options: &TreeEmOptions,
) -> Result<TreeEmReport, CoupledError> {
    let trees: Vec<InterconnectTree> = grid_line_trees(engine)?
        .into_iter()
        .map(|(t, _)| t)
        .collect();
    let steady = batch_steady_state(&trees, &options.model, true)?;

    // Transient only where the filter could not prove immortality.
    let mortal: Vec<usize> = (0..trees.len()).filter(|&i| !steady[i].immortal).collect();
    let mut outcomes: Vec<Option<TransientOutcome>> = vec![None; trees.len()];
    if !options.steady_only && !mortal.is_empty() {
        let mortal_trees: Vec<InterconnectTree> =
            mortal.iter().map(|&i| trees[i].clone()).collect();
        let runs = hotwire_em_tree::transient::batch_to_failure(
            &mortal_trees,
            &options.model,
            options.transient,
            true,
        )?;
        for (&i, o) in mortal.iter().zip(runs) {
            outcomes[i] = Some(o);
        }
    }

    let assessments: Vec<TreeAssessment> = trees
        .iter()
        .zip(&steady)
        .zip(&outcomes)
        .map(|((tree, s), o)| TreeAssessment {
            name: tree.name().to_string(),
            max_tensile: s.max_tensile,
            immortal: s.immortal,
            outcome: o.clone(),
            verdict: verdict_for(tree, s, o.as_ref(), &options.model, options.horizon),
        })
        .collect();

    let immortal_trees = assessments.iter().filter(|a| a.immortal).count();
    let failures: Vec<Seconds> = assessments
        .iter()
        .filter_map(|a| a.outcome.as_ref().and_then(|o| o.failure_time))
        .collect();
    let quantile = engine.options().failure_quantile;
    let sigma = engine.options().sigma;
    let mut members = Vec::with_capacity(failures.len());
    for &ttf in &failures {
        members.push(
            LognormalLifetime::from_quantile(ttf, quantile, sigma).map_err(CoupledError::Em)?,
        );
    }
    let chip_failure = if members.is_empty() {
        None
    } else {
        Some(WeakestLinkPopulation::new(members).map_err(CoupledError::Em)?)
    };
    let chip_ttf = match &chip_failure {
        Some(pop) => Some(pop.time_to_fraction(quantile).map_err(CoupledError::Em)?),
        None => None,
    };
    metrics::gauge("em.tree.immortal_fraction")
        .set(immortal_trees as f64 / assessments.len().max(1) as f64);
    Ok(TreeEmReport {
        trees: assessments,
        immortal_trees,
        failed_trees: failures.len(),
        chip_failure,
        chip_ttf,
    })
}

/// Aging-loop knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AgingOptions {
    /// Number of epochs the horizon is split into (operating points
    /// re-converge between epochs).
    pub epochs: usize,
    /// Implicit steps per epoch window.
    pub steps_per_epoch: usize,
    /// Resistance multiplier of a fully voided segment (the liner
    /// carries the current); scales linearly with void fraction.
    pub liner_resistance_factor: f64,
}

impl Default for AgingOptions {
    fn default() -> Self {
        Self {
            epochs: 8,
            steps_per_epoch: 32,
            liner_resistance_factor: 10.0,
        }
    }
}

/// One epoch of the coupled aging loop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochRecord {
    /// Epoch index (1-based).
    pub epoch: usize,
    /// Simulated time at the end of the epoch.
    pub time: Seconds,
    /// Trees with a nucleated void so far.
    pub nucleated_trees: usize,
    /// Trees past the critical void length so far.
    pub failed_trees: usize,
    /// Longest void anywhere on the grid.
    pub peak_void: Length,
    /// Largest branch resistance multiplier back-annotated.
    pub peak_r_multiplier: f64,
    /// Picard iterations the post-annotation re-solve took.
    pub picard_iterations: usize,
}

/// The aging-loop result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AgingReport {
    /// Per-epoch evolution.
    pub epochs: Vec<EpochRecord>,
    /// First nucleation time over the grid, if any.
    pub first_nucleation: Option<Seconds>,
    /// First growth-to-failure time over the grid, if any.
    pub first_failure: Option<Seconds>,
}

/// EMSpice-style coupled aging: alternates Korhonen stress windows
/// with full electro-thermal re-solves, back-annotating void growth as
/// branch resistance.
///
/// Per epoch: every line tree advances `horizon/epochs` of simulated
/// stress evolution from its accumulated state; void lengths map to
/// per-branch resistance multipliers
/// `1 + (liner_factor − 1)·(ℓ_void/L_seg)`; the Picard fixed point
/// re-runs (warm-started) and the trees are re-stamped with the fresh
/// currents and temperatures.
///
/// # Errors
///
/// Propagates engine and stress-solver failures; the engine is left in
/// its last converged state on success.
pub fn age_with_tree_em(
    engine: &mut CoupledEngine,
    options: &TreeEmOptions,
    aging: &AgingOptions,
) -> Result<AgingReport, CoupledError> {
    if aging.epochs == 0 || aging.steps_per_epoch == 0 || !(aging.liner_resistance_factor >= 1.0) {
        return Err(CoupledError::InvalidSpec {
            message: "aging needs epochs ≥ 1, steps ≥ 1, liner factor ≥ 1".to_owned(),
        });
    }
    let _span = hotwire_obs::trace::span("em.stress.aging_time");
    if !engine.converged() {
        engine.run()?;
    }
    let lines = grid_line_trees(engine)?;
    let mut solvers = Vec::with_capacity(lines.len());
    let mut maps = Vec::with_capacity(lines.len());
    for (tree, map) in &lines {
        solvers.push(KorhonenSolver::new(
            tree,
            &options.model,
            options.transient,
        )?);
        maps.push(map.clone());
    }
    let n_branches = engine.branches().len();
    let window = Seconds::new(options.horizon.value() / aging.epochs as f64);
    let mut multipliers = vec![1.0_f64; n_branches];
    let mut epochs = Vec::with_capacity(aging.epochs);
    let mut first_nucleation: Option<Seconds> = None;
    let mut first_failure: Option<Seconds> = None;
    // `advance` reports nucleation/failure times for its own window
    // only; the cumulative failed count needs a persistent flag.
    let mut has_failed = vec![false; solvers.len()];
    for epoch in 1..=aging.epochs {
        let mut nucleated = 0usize;
        let mut peak_void = 0.0_f64;
        for ((solver, map), failed_flag) in solvers.iter_mut().zip(&maps).zip(has_failed.iter_mut())
        {
            let out = solver.advance(window, aging.steps_per_epoch)?;
            if let Some(t) = out.nucleation_time {
                first_nucleation = Some(match first_nucleation {
                    Some(cur) => cur.min(t),
                    None => t,
                });
            }
            if let Some(t) = out.failure_time {
                *failed_flag = true;
                first_failure = Some(match first_failure {
                    Some(cur) => cur.min(t),
                    None => t,
                });
            }
            if out.nucleation_node.is_some() {
                nucleated += 1;
            }
            let voids = solver.segment_void_lengths();
            let segs = solver.tree().segments();
            for ((&k, v), s) in map.iter().zip(&voids).zip(segs) {
                let frac = (v.value() / s.length.value()).clamp(0.0, 1.0);
                let mult = 1.0 + (aging.liner_resistance_factor - 1.0) * frac;
                // A branch sits on one row and one column tree; the
                // larger annotation wins (only one can host the void).
                if mult > multipliers[k] {
                    multipliers[k] = mult;
                }
                peak_void = peak_void.max(v.value());
            }
        }
        // Re-converge the electro-thermal state under the aged grid.
        engine.set_branch_resistance_multipliers(&multipliers)?;
        engine.reset_convergence();
        engine.run()?;
        let peak_mult = multipliers.iter().copied().fold(1.0_f64, f64::max);
        epochs.push(EpochRecord {
            epoch,
            time: Seconds::new(window.value() * epoch as f64),
            nucleated_trees: nucleated,
            failed_trees: has_failed.iter().filter(|&&f| f).count(),
            peak_void: Length::new(peak_void),
            peak_r_multiplier: peak_mult,
            picard_iterations: engine.iterations(),
        });
        metrics::gauge("em.stress.peak_r_multiplier").set(peak_mult);
        // Feed the fresh operating point back into the stress state.
        let fresh = grid_line_trees(engine)?;
        for (solver, (tree, _)) in solvers.iter_mut().zip(&fresh) {
            let points: Vec<(CurrentDensity, Kelvin)> = tree
                .segments()
                .iter()
                .map(|s| (s.current_density, s.temperature))
                .collect();
            solver.set_operating_points(&points)?;
        }
    }
    Ok(AgingReport {
        epochs,
        first_nucleation,
        first_failure,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{CoupledGridSpec, CoupledOptions};

    fn converged_engine(rows: usize, cols: usize) -> CoupledEngine {
        let mut e =
            CoupledEngine::new(CoupledGridSpec::demo(rows, cols), CoupledOptions::default())
                .unwrap();
        e.run().unwrap();
        e
    }

    fn cu_options(horizon_s: f64) -> TreeEmOptions {
        TreeEmOptions::new(KorhonenModel::copper().unwrap(), Seconds::new(horizon_s))
    }

    #[test]
    fn grid_lines_cover_every_branch_once_per_direction() {
        let e = converged_engine(4, 5);
        let lines = grid_line_trees(&e).unwrap();
        assert_eq!(lines.len(), 4 + 5);
        let mut seen = vec![0usize; e.branches().len()];
        for (tree, map) in &lines {
            assert_eq!(tree.segments().len(), map.len());
            for &k in map {
                seen[k] += 1;
            }
        }
        // Every branch belongs to exactly one line tree.
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn demo_grid_trees_are_immortal_and_pass() {
        // The demo grid's straps run at ~0.0125 MA/cm² — orders below
        // any EM concern; the steady filter must retire every line.
        let e = converged_engine(4, 4);
        let report = assess_trees(&e, &cu_options(10.0 * 3.15e7)).unwrap();
        assert_eq!(report.immortal_trees, report.trees.len());
        assert!(report.passes());
        assert!(report.chip_ttf.is_none());
        for t in &report.trees {
            assert_eq!(t.verdict.governing, GoverningRule::StressImmortal);
            assert!(t.verdict.utilization < 1.0);
        }
    }

    #[test]
    fn hot_grid_goes_mortal_and_rolls_up_ttf() {
        // Crank the per-node sink so line currents clear the Blech
        // product and the transient stage produces failure times.
        let mut spec = CoupledGridSpec::demo(3, 3);
        spec.sink_per_node = hotwire_units::Current::from_milliamps(40.0);
        let mut e = CoupledEngine::new(spec, CoupledOptions::default()).unwrap();
        e.run().unwrap();
        // A horizon far beyond the diffusion time at these stresses.
        let report = assess_trees(&e, &cu_options(3.15e9)).unwrap();
        assert!(report.immortal_trees < report.trees.len());
        let mortal = report.trees.iter().find(|t| !t.immortal).unwrap();
        assert_eq!(mortal.verdict.governing, GoverningRule::StressWearout);
        assert!(mortal.outcome.is_some());
    }

    #[test]
    fn aging_back_annotates_resistance_and_keeps_engine_converged() {
        let mut spec = CoupledGridSpec::demo(3, 3);
        spec.sink_per_node = hotwire_units::Current::from_milliamps(40.0);
        let mut e = CoupledEngine::new(spec, CoupledOptions::default()).unwrap();
        e.run().unwrap();
        let mut opts = cu_options(3.15e9);
        opts.transient.resolution = 4;
        let aging = AgingOptions {
            epochs: 3,
            steps_per_epoch: 16,
            liner_resistance_factor: 10.0,
        };
        let report = age_with_tree_em(&mut e, &opts, &aging).unwrap();
        assert_eq!(report.epochs.len(), 3);
        assert!(e.converged());
        // Time advances monotonically epoch to epoch.
        for w in report.epochs.windows(2) {
            assert!(w[1].time > w[0].time);
            assert!(w[1].peak_r_multiplier >= w[0].peak_r_multiplier);
        }
    }

    #[test]
    fn steady_only_skips_transient() {
        let mut spec = CoupledGridSpec::demo(3, 3);
        spec.sink_per_node = hotwire_units::Current::from_milliamps(40.0);
        let mut e = CoupledEngine::new(spec, CoupledOptions::default()).unwrap();
        e.run().unwrap();
        let mut opts = cu_options(3.15e9);
        opts.steady_only = true;
        let report = assess_trees(&e, &opts).unwrap();
        assert!(report.trees.iter().all(|t| t.outcome.is_none()));
        assert!(report
            .trees
            .iter()
            .any(|t| !t.immortal && t.verdict.utilization >= 1.0));
    }
}
