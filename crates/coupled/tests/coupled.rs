//! Behavioural tests of the coupled fixed-point engine: the paper's
//! single-wire limit (eq. 13), initial-guess independence of the fixed
//! point, typed failure modes, and parallel/serial determinism.

use hotwire_core::SelfConsistentProblem;
use hotwire_coupled::{
    coupled_signoff, CoupledEngine, CoupledError, CoupledGridSpec, CoupledOptions,
};
use hotwire_thermal::impedance::{InsulatorStack, LineGeometry};
use hotwire_units::{Current, Kelvin, Length};
use proptest::prelude::*;

fn um(v: f64) -> Length {
    Length::from_micrometers(v)
}

/// A `1 × 2` chain is a single wire fed from one pad: the chip-level
/// fixed point must land on eq. 13's self-consistent metal temperature.
///
/// Construction: the core solver gives the *allowed* `j_peak` and the
/// metal temperature `T_m` it self-heats to. Driving the chain's one
/// strap at exactly that density (sink `I = j_peak·A`) makes the Picard
/// fixed point solve the identical heating balance `T = T_ref +
/// j²·ρ(T)·κ`, because the half-segment node construction reduces the
/// chip map's node rise to exactly `j²ρκ` for a lone strap.
#[test]
fn single_wire_fixed_point_matches_eq13() {
    let spec = CoupledGridSpec {
        pads: vec![(0, 0)], // feed from one end only, so the strap carries the sink
        ..CoupledGridSpec::demo(1, 2)
    };
    let area = spec.strap_width.value() * spec.strap_thickness.value();

    let problem = SelfConsistentProblem::builder()
        .metal(spec.metal.clone())
        .line(LineGeometry::new(spec.strap_width, spec.strap_thickness, spec.pitch).unwrap())
        .stack(InsulatorStack::single(
            spec.dielectric_thickness,
            &spec.dielectric,
        ))
        .phi(spec.phi)
        .duty_cycle(1.0)
        .reference_temperature(spec.reference_temperature)
        .build()
        .unwrap();
    let eq13 = problem.solve().unwrap();

    let spec = CoupledGridSpec {
        sink_per_node: Current::new(eq13.j_peak.value() * area),
        ..spec
    };
    let options = CoupledOptions {
        tolerance: 1.0e-3,
        ..CoupledOptions::default()
    };
    let report = coupled_signoff(spec, options).unwrap();

    assert_eq!(report.branches.len(), 1);
    let strap = &report.branches[0];
    let err = (strap.temperature.value() - eq13.metal_temperature.value()).abs();
    assert!(
        err < 0.5,
        "chip fixed point {} vs eq. 13 {} (err {err:.3} K)",
        strap.temperature,
        eq13.metal_temperature
    );
    // Driven exactly at the allowed density, the strap sits at the edge
    // of its rule (utilization ≈ 1) when wearout governs; the Blech
    // floor can only relax it further.
    assert!(
        strap.verdict.utilization <= 1.0 + 1.0e-6,
        "utilization {} should not exceed 1 at the allowed density",
        strap.verdict.utilization
    );
}

/// The converged report is byte-identical whether the per-branch EM
/// stage fans out on rayon or runs serially.
#[test]
fn parallel_and_serial_assessments_agree() {
    let mut engine =
        CoupledEngine::new(CoupledGridSpec::demo(20, 20), CoupledOptions::default()).unwrap();
    engine.run().unwrap();
    assert_eq!(engine.assess().unwrap(), engine.assess_serial().unwrap());
}

/// A hot 50×50 grid converges with violations and a finite chip TTF.
#[test]
fn dense_grid_converges_with_violations() {
    let spec = CoupledGridSpec::demo(50, 50);
    let report = coupled_signoff(spec, CoupledOptions::default()).unwrap();
    assert!(report.iterations >= 3, "strong feedback should iterate");
    assert!(!report.passes(), "the 50×50 demo is deliberately stressed");
    let violations = report.violations();
    assert!(!violations.is_empty());
    // Ranked: non-increasing utilization.
    for pair in violations.windows(2) {
        assert!(pair[0].verdict.utilization >= pair[1].verdict.utilization);
    }
    let ttf = report.chip_ttf.expect("stressed grid has mortal straps");
    assert!(ttf.value().is_finite() && ttf.value() > 0.0);
    // The chip fails no later than its weakest strap.
    let weakest = report
        .branches
        .iter()
        .filter_map(|b| b.ttf)
        .fold(f64::INFINITY, |m, t| m.min(t.value()));
    assert!(ttf.value() <= weakest);
    // Monotone convergence trace: the last delta is under tolerance.
    assert!(report.iteration_deltas.last().unwrap() <= &0.05);
}

/// Pushing the grid hard enough that the settled state pins at the
/// metal's validity limit is a typed error naming the hottest straps,
/// not a silent clamp or a panic.
#[test]
fn runaway_heating_reports_beyond_validity_range() {
    let spec = CoupledGridSpec {
        sink_per_node: Current::from_milliamps(3.0),
        ..CoupledGridSpec::demo(50, 50)
    };
    match coupled_signoff(spec, CoupledOptions::default()) {
        Err(CoupledError::BeyondResistivityRange { limit, offending }) => {
            assert!(!offending.is_empty());
            assert!(offending[0].temperature.value() >= limit.value());
            // Hottest first.
            for pair in offending.windows(2) {
                assert!(pair[0].temperature.value() >= pair[1].temperature.value());
            }
        }
        Err(CoupledError::Diverged { .. }) => {} // also acceptable physics
        other => panic!("expected a thermal-runaway error, got {other:?}"),
    }
}

/// An unreachable tolerance under a small iteration cap is a typed
/// `NotConverged` carrying the convergence state.
#[test]
fn iteration_cap_reports_not_converged() {
    let options = CoupledOptions {
        tolerance: 1.0e-12,
        max_iterations: 3,
        ..CoupledOptions::default()
    };
    match coupled_signoff(CoupledGridSpec::demo(30, 30), options) {
        Err(CoupledError::NotConverged {
            iterations,
            last_delta,
            history,
            hottest,
        }) => {
            assert_eq!(iterations, 3);
            assert!(last_delta > 1.0e-12);
            assert!(!hottest.is_empty());
            // Regression: the error must carry the full residual
            // history, one entry per iteration, ending at last_delta,
            // every entry still above the unreachable tolerance.
            assert_eq!(history.len(), iterations);
            assert_eq!(*history.last().unwrap(), last_delta);
            assert!(history.iter().all(|&d| d > 1.0e-12));
        }
        other => panic!("expected NotConverged, got {other:?}"),
    }
}

/// Degenerate specs and options are rejected up front.
#[test]
fn invalid_specs_are_rejected() {
    let demo = CoupledGridSpec::demo(4, 4);
    let cases: Vec<CoupledGridSpec> = vec![
        CoupledGridSpec {
            rows: 1,
            cols: 1,
            pads: vec![(0, 0)],
            ..demo.clone()
        },
        CoupledGridSpec {
            pitch: um(0.0),
            ..demo.clone()
        },
        CoupledGridSpec {
            pads: vec![],
            ..demo.clone()
        },
        CoupledGridSpec {
            pads: vec![(4, 0)],
            ..demo.clone()
        },
        CoupledGridSpec {
            phi: f64::NAN,
            ..demo.clone()
        },
    ];
    for spec in cases {
        assert!(matches!(
            CoupledEngine::new(spec, CoupledOptions::default()),
            Err(CoupledError::InvalidSpec { .. })
        ));
    }
    for options in [
        CoupledOptions {
            tolerance: 0.0,
            ..CoupledOptions::default()
        },
        CoupledOptions {
            damping: 1.5,
            ..CoupledOptions::default()
        },
        CoupledOptions {
            max_iterations: 0,
            ..CoupledOptions::default()
        },
        CoupledOptions {
            failure_quantile: 1.0,
            ..CoupledOptions::default()
        },
    ] {
        assert!(matches!(
            CoupledEngine::new(demo.clone(), options),
            Err(CoupledError::InvalidSpec { .. })
        ));
    }
}

/// Asking for the EM rollup before the loop has settled is an error,
/// not a report built on a transient state.
#[test]
fn assess_requires_convergence() {
    let engine =
        CoupledEngine::new(CoupledGridSpec::demo(10, 10), CoupledOptions::default()).unwrap();
    assert!(matches!(
        engine.assess(),
        Err(CoupledError::InvalidSpec { .. })
    ));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The fixed point is a property of the grid, not of the starting
    /// guess: seeding the Picard loop at the substrate temperature and
    /// 150 K above it must settle onto the same branch-temperature
    /// field (to a few tolerances of slack).
    #[test]
    fn fixed_point_is_independent_of_initial_guess(
        rows in 2_usize..6,
        cols in 2_usize..6,
        sink_ma in 0.05_f64..0.6,
    ) {
        let spec = CoupledGridSpec {
            sink_per_node: Current::from_milliamps(sink_ma),
            ..CoupledGridSpec::demo(rows, cols)
        };
        let tolerance = 0.01;
        let cold = CoupledOptions {
            tolerance,
            ..CoupledOptions::default()
        };
        let hot = CoupledOptions {
            tolerance,
            initial_temperature: Some(Kelvin::new(
                spec.reference_temperature.value() + 150.0,
            )),
            ..cold.clone()
        };
        let mut a = CoupledEngine::new(spec.clone(), cold).unwrap();
        let mut b = CoupledEngine::new(spec, hot).unwrap();
        a.run().unwrap();
        b.run().unwrap();
        for (ta, tb) in a.branch_temperatures().iter().zip(b.branch_temperatures()) {
            prop_assert!(
                (ta - tb).abs() < 4.0 * tolerance,
                "cold start {ta} K vs hot start {tb} K"
            );
        }
    }
}
