//! Interconnect technology descriptions.
//!
//! This crate models everything the DAC'99 thermal/EM analysis needs to know
//! about a process: conductor and dielectric **materials**
//! ([`Metal`], [`Dielectric`]), per-level **geometry** ([`MetalLayer`]), and
//! the assembled **technology** ([`Technology`]) with supply/clock/device
//! parameters. Reconstructions of the paper's NTRS 0.25 µm and 0.1 µm
//! technology files (its Table 8) ship as [`presets`], and a line-oriented
//! text format ([`mod@format`]) lets users bring their own.
//!
//! # Examples
//!
//! ```
//! use hotwire_tech::presets;
//!
//! let tech = presets::ntrs_250nm();
//! let m6 = tech.layer("M6").expect("0.25 µm preset has six levels");
//! // Total underlying dielectric thickness b for the top level, eq. (8)'s t_ox:
//! let b = tech.underlying_dielectric_thickness(m6.index());
//! assert!(b.to_micrometers() > 3.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// `!(x > 0.0)` is used deliberately throughout validation code: unlike
// `x <= 0.0` it also rejects NaN, which must never enter a solver.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

mod error;
pub mod format;
mod layer;
pub mod materials;
pub mod presets;
mod technology;

pub use error::TechError;
pub use layer::MetalLayer;
pub use materials::{Dielectric, ElectromigrationParams, Metal};
pub use technology::{DriverParams, Technology, TechnologyBuilder};
