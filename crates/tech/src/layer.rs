//! A single metallization level.

use hotwire_units::{Area, Length, Resistivity, SheetResistance};
use serde::{Deserialize, Serialize};

use crate::TechError;

/// One metallization level of a technology.
///
/// Geometry follows the paper's symbols: `W_m` (minimum drawn line width),
/// pitch (line + space), `t_m` (metal thickness) and the inter-level
/// dielectric (ILD) thickness *below* this level. The cumulative dielectric
/// thickness `b` down to the substrate is a property of the assembled
/// [`crate::Technology`], not of a single layer.
///
/// ```
/// use hotwire_tech::MetalLayer;
/// use hotwire_units::Length;
///
/// let m6 = MetalLayer::new(
///     "M6",
///     5,
///     Length::from_micrometers(1.2),
///     Length::from_micrometers(2.4),
///     Length::from_micrometers(1.2),
///     Length::from_micrometers(0.9),
/// )?;
/// assert!((m6.cross_section().to_um2() - 1.44).abs() < 1e-12);
/// # Ok::<(), hotwire_tech::TechError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetalLayer {
    name: String,
    index: usize,
    width: Length,
    pitch: Length,
    thickness: Length,
    ild_below: Length,
}

impl MetalLayer {
    /// Builds a layer.
    ///
    /// * `index` — 0-based position in the stack (0 = M1, closest to the
    ///   substrate).
    /// * `width` — minimum drawn line width `W_m`.
    /// * `pitch` — line width + spacing to the neighbouring line.
    /// * `thickness` — metal thickness `t_m`.
    /// * `ild_below` — dielectric thickness between this level and the one
    ///   below (or the substrate for M1).
    ///
    /// # Errors
    ///
    /// Returns [`TechError::InvalidGeometry`] when any dimension is
    /// non-positive or the pitch is smaller than the width.
    pub fn new(
        name: impl Into<String>,
        index: usize,
        width: Length,
        pitch: Length,
        thickness: Length,
        ild_below: Length,
    ) -> Result<Self, TechError> {
        let name = name.into();
        for (what, v) in [
            ("width", width),
            ("pitch", pitch),
            ("thickness", thickness),
            ("ild_below", ild_below),
        ] {
            if !(v.value() > 0.0) || !v.is_finite() {
                return Err(TechError::InvalidGeometry {
                    what: format!("layer `{name}` {what} must be positive, got {v}"),
                });
            }
        }
        if pitch < width {
            return Err(TechError::InvalidGeometry {
                what: format!("layer `{name}` pitch {pitch} is smaller than width {width}"),
            });
        }
        Ok(Self {
            name,
            index,
            width,
            pitch,
            thickness,
            ild_below,
        })
    }

    /// The layer name (e.g. `"M6"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// 0-based position in the stack (0 = closest to the substrate).
    #[must_use]
    pub fn index(&self) -> usize {
        self.index
    }

    /// Minimum drawn line width `W_m`.
    #[must_use]
    pub fn width(&self) -> Length {
        self.width
    }

    /// Wiring pitch (width + space).
    #[must_use]
    pub fn pitch(&self) -> Length {
        self.pitch
    }

    /// Line-to-line spacing (pitch − width).
    #[must_use]
    pub fn spacing(&self) -> Length {
        self.pitch - self.width
    }

    /// Metal thickness `t_m`.
    #[must_use]
    pub fn thickness(&self) -> Length {
        self.thickness
    }

    /// ILD thickness between this level and the one below.
    #[must_use]
    pub fn ild_below(&self) -> Length {
        self.ild_below
    }

    /// Aspect ratio `t_m / W_m`.
    #[must_use]
    pub fn aspect_ratio(&self) -> f64 {
        self.thickness / self.width
    }

    /// Conductor cross-section `A = W_m · t_m` at minimum width.
    #[must_use]
    pub fn cross_section(&self) -> Area {
        self.width * self.thickness
    }

    /// Cross-section for an arbitrary drawn width at this level's thickness.
    #[must_use]
    pub fn cross_section_at_width(&self, width: Length) -> Area {
        width * self.thickness
    }

    /// Sheet resistance of this level for a metal of resistivity ρ.
    #[must_use]
    pub fn sheet_resistance(&self, rho: Resistivity) -> SheetResistance {
        rho.sheet_resistance(self.thickness)
    }

    /// Returns a copy of this layer renamed/re-indexed (used when assembling
    /// custom stacks from templates).
    #[must_use]
    pub fn with_position(mut self, name: impl Into<String>, index: usize) -> Self {
        self.name = name.into();
        self.index = index;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn um(v: f64) -> Length {
        Length::from_micrometers(v)
    }

    fn layer() -> MetalLayer {
        MetalLayer::new("M1", 0, um(0.35), um(0.70), um(0.55), um(1.2)).unwrap()
    }

    #[test]
    fn accessors() {
        let l = layer();
        assert_eq!(l.name(), "M1");
        assert_eq!(l.index(), 0);
        assert!((l.spacing().to_micrometers() - 0.35).abs() < 1e-12);
        assert!((l.aspect_ratio() - 0.55 / 0.35).abs() < 1e-12);
        assert!((l.cross_section().to_um2() - 0.1925).abs() < 1e-12);
    }

    #[test]
    fn rejects_non_positive_dimensions() {
        assert!(MetalLayer::new("M1", 0, um(0.0), um(0.7), um(0.5), um(1.0)).is_err());
        assert!(MetalLayer::new("M1", 0, um(0.35), um(0.7), um(-0.5), um(1.0)).is_err());
        assert!(MetalLayer::new("M1", 0, um(0.35), um(0.7), um(0.5), um(f64::NAN)).is_err());
    }

    #[test]
    fn rejects_pitch_smaller_than_width() {
        let err = MetalLayer::new("M1", 0, um(0.7), um(0.35), um(0.5), um(1.0)).unwrap_err();
        assert!(matches!(err, TechError::InvalidGeometry { .. }));
    }

    #[test]
    fn sheet_resistance_of_thin_copper() {
        // 0.1 µm node fragment of Table 8: M1 sheet ρ ≈ 0.085 Ω/□ for
        // ~0.2 µm thick Cu at ~1.7 µΩ·cm.
        let l = MetalLayer::new("M1", 0, um(0.13), um(0.26), um(0.20), um(0.32)).unwrap();
        let rs = l.sheet_resistance(Resistivity::from_micro_ohm_cm(1.7));
        assert!((rs.value() - 0.085).abs() < 0.001);
    }

    #[test]
    fn with_position_renames() {
        let l = layer().with_position("M3", 2);
        assert_eq!(l.name(), "M3");
        assert_eq!(l.index(), 2);
        assert!((l.width().to_micrometers() - 0.35).abs() < 1e-12);
    }

    #[test]
    fn cross_section_at_width() {
        let l = layer();
        let a = l.cross_section_at_width(um(3.0));
        assert!((a.to_um2() - 1.65).abs() < 1e-12);
    }
}
