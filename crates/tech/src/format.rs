//! A line-oriented text format for technology files.
//!
//! The format deliberately looks like the tabular appendix of the paper:
//! one directive per line, `#` comments, key/value pairs in stable units
//! (µm for geometry, GHz for clock, fF for device capacitances). It needs
//! no third-party parser and round-trips exactly.
//!
//! ```text
//! # hotwire technology file
//! technology ntrs-0.25um-cu
//! feature_size_um 0.25
//! vdd 2.5
//! clock_ghz 0.75
//! tref_c 100
//! metal Cu
//! dielectric inter oxide
//! dielectric intra HSQ
//! driver r0_ohm 9400 cg_ff 2.2 cp_ff 2.0
//! layer M1 w_um 0.35 pitch_um 0.70 t_um 0.55 ild_um 1.20
//! layer M2 w_um 0.40 pitch_um 0.85 t_um 0.65 ild_um 0.65
//! ```
//!
//! # Examples
//!
//! ```
//! use hotwire_tech::{format, presets};
//!
//! let text = format::serialize(&presets::ntrs_250nm());
//! let parsed = format::parse(&text)?;
//! assert_eq!(parsed, presets::ntrs_250nm());
//! # Ok::<(), hotwire_tech::TechError>(())
//! ```

use std::collections::HashMap;

use hotwire_units::{Capacitance, Celsius, Frequency, Length, Resistance, Voltage};

use crate::{Dielectric, DriverParams, Metal, TechError, Technology, TechnologyBuilder};

/// Formats a number with 12 significant digits, trimming trailing zeros.
///
/// Unit conversions (µm ↔ m) perturb the last one or two bits of a value;
/// rounding to 12 significant digits absorbs that noise so that
/// `serialize ∘ parse` is a fixed point while preserving far more precision
/// than any physical input carries.
fn fmt_num(v: f64) -> String {
    if v == 0.0 {
        return "0".to_owned();
    }
    let formatted = format!("{v:.*e}", 11);
    // `{:e}` gives e.g. "3.50000000000e-1"; re-parse to collapse to the
    // shortest decimal for that rounded value.
    let rounded: f64 = formatted.parse().expect("formatting a finite f64");
    let s = format!("{rounded}");
    s
}

/// Serializes a technology to the text format.
#[must_use]
pub fn serialize(tech: &Technology) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "# hotwire technology file");
    let _ = writeln!(out, "technology {}", tech.name());
    let _ = writeln!(
        out,
        "feature_size_um {}",
        fmt_num(tech.feature_size().to_micrometers())
    );
    let _ = writeln!(out, "vdd {}", fmt_num(tech.vdd().value()));
    let _ = writeln!(out, "clock_ghz {}", fmt_num(tech.clock().to_gigahertz()));
    let _ = writeln!(
        out,
        "tref_c {}",
        fmt_num(tech.reference_temperature().to_celsius().value())
    );
    let m = tech.metal();
    if Metal::builtin(m.name()).as_ref() == Some(m) {
        let _ = writeln!(out, "metal {}", m.name());
    } else {
        let _ = writeln!(
            out,
            "metal custom {} rho_uohm_cm {} at_c {} tcr {} kth {} density {} cp {} melt_k {} lf {} q_ev {} n {} j0_a_cm2 {}",
            m.name(),
            fmt_num(m.resistivity_ref().to_micro_ohm_cm()),
            fmt_num(m.resistivity_ref_temperature().to_celsius().value()),
            fmt_num(m.temperature_coefficient()),
            fmt_num(m.thermal_conductivity().value()),
            fmt_num(m.mass_density().value()),
            fmt_num(m.specific_heat().value()),
            fmt_num(m.melting_point().value()),
            fmt_num(m.latent_heat_fusion()),
            fmt_num(m.em().activation_energy.value()),
            fmt_num(m.em().current_exponent),
            fmt_num(m.em().design_rule_j0.to_amps_per_cm2()),
        );
    }
    for (slot, d) in [
        ("inter", tech.inter_level_dielectric()),
        ("intra", tech.intra_level_dielectric()),
    ] {
        if Dielectric::builtin(d.name()).as_ref() == Some(d) {
            let _ = writeln!(out, "dielectric {slot} {}", d.name());
        } else {
            let _ = writeln!(
                out,
                "dielectric {slot} custom {} er {} kth {}",
                d.name(),
                fmt_num(d.relative_permittivity()),
                fmt_num(d.thermal_conductivity().value())
            );
        }
    }
    let drv = tech.driver();
    let _ = writeln!(
        out,
        "driver r0_ohm {} cg_ff {} cp_ff {}",
        fmt_num(drv.r0.value()),
        fmt_num(drv.cg.to_femtofarads()),
        fmt_num(drv.cp.to_femtofarads())
    );
    for l in tech.layers() {
        let _ = writeln!(
            out,
            "layer {} w_um {} pitch_um {} t_um {} ild_um {}",
            l.name(),
            fmt_num(l.width().to_micrometers()),
            fmt_num(l.pitch().to_micrometers()),
            fmt_num(l.thickness().to_micrometers()),
            fmt_num(l.ild_below().to_micrometers())
        );
    }
    out
}

/// Parses a technology from the text format.
///
/// # Errors
///
/// Returns [`TechError::Parse`] with a 1-based line number for malformed
/// lines, [`TechError::UnknownMaterial`] for unresolvable material names,
/// and propagates geometry errors from the builder.
pub fn parse(text: &str) -> Result<Technology, TechError> {
    let mut name: Option<String> = None;
    let mut feature_size: Option<Length> = None;
    let mut vdd: Option<Voltage> = None;
    let mut clock: Option<Frequency> = None;
    let mut tref: Option<Celsius> = None;
    let mut metal: Option<Metal> = None;
    let mut inter: Option<Dielectric> = None;
    let mut intra: Option<Dielectric> = None;
    let mut driver: Option<DriverParams> = None;
    let mut layers: Vec<(String, Length, Length, Length, Length)> = Vec::new();

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut tokens = line.split_whitespace();
        let directive = tokens.next().expect("non-empty line has a first token");
        let rest: Vec<&str> = tokens.collect();
        match directive {
            "technology" => {
                name = Some(expect_one(lineno, &rest, "technology <name>")?.to_owned());
            }
            "feature_size_um" => {
                feature_size = Some(Length::from_micrometers(parse_f64(
                    lineno,
                    expect_one(lineno, &rest, "feature_size_um <value>")?,
                )?));
            }
            "vdd" => {
                vdd = Some(Voltage::new(parse_f64(
                    lineno,
                    expect_one(lineno, &rest, "vdd <volts>")?,
                )?));
            }
            "clock_ghz" => {
                clock = Some(Frequency::from_gigahertz(parse_f64(
                    lineno,
                    expect_one(lineno, &rest, "clock_ghz <value>")?,
                )?));
            }
            "tref_c" => {
                tref = Some(Celsius::new(parse_f64(
                    lineno,
                    expect_one(lineno, &rest, "tref_c <celsius>")?,
                )?));
            }
            "metal" => {
                metal = Some(parse_metal(lineno, &rest)?);
            }
            "dielectric" => {
                let (slot, d) = parse_dielectric(lineno, &rest)?;
                match slot {
                    DielectricSlot::Inter => inter = Some(d),
                    DielectricSlot::Intra => intra = Some(d),
                }
            }
            "driver" => {
                let kv = parse_kv(lineno, &rest)?;
                driver = Some(DriverParams::new(
                    Resistance::new(get_kv(lineno, &kv, "r0_ohm")?),
                    Capacitance::from_femtofarads(get_kv(lineno, &kv, "cg_ff")?),
                    Capacitance::from_femtofarads(get_kv(lineno, &kv, "cp_ff")?),
                ));
            }
            "layer" => {
                if rest.is_empty() {
                    return Err(parse_err(lineno, "layer requires a name"));
                }
                let lname = rest[0].to_owned();
                let kv = parse_kv(lineno, &rest[1..])?;
                layers.push((
                    lname,
                    Length::from_micrometers(get_kv(lineno, &kv, "w_um")?),
                    Length::from_micrometers(get_kv(lineno, &kv, "pitch_um")?),
                    Length::from_micrometers(get_kv(lineno, &kv, "t_um")?),
                    Length::from_micrometers(get_kv(lineno, &kv, "ild_um")?),
                ));
            }
            other => {
                return Err(parse_err(lineno, &format!("unknown directive `{other}`")));
            }
        }
    }

    let name = name.ok_or_else(|| parse_err(0, "missing `technology` directive"))?;
    let feature_size =
        feature_size.ok_or_else(|| parse_err(0, "missing `feature_size_um` directive"))?;
    let mut b = TechnologyBuilder::new(name, feature_size);
    if let Some(v) = vdd {
        b = b.vdd(v);
    }
    if let Some(c) = clock {
        b = b.clock(c);
    }
    if let Some(t) = tref {
        b = b.reference_temperature(t.to_kelvin());
    }
    if let Some(m) = metal {
        b = b.metal(m);
    }
    let inter = inter.unwrap_or_else(Dielectric::oxide);
    let intra = intra.unwrap_or_else(|| inter.clone());
    b = b.dielectrics(inter, intra);
    if let Some(d) = driver {
        b = b.driver(d);
    }
    for (lname, w, p, t, ild) in layers {
        b = b.layer(lname, w, p, t, ild)?;
    }
    b.build()
}

enum DielectricSlot {
    Inter,
    Intra,
}

fn parse_err(line: usize, message: &str) -> TechError {
    TechError::Parse {
        line,
        message: message.to_owned(),
    }
}

fn expect_one<'a>(line: usize, rest: &[&'a str], usage: &str) -> Result<&'a str, TechError> {
    if rest.len() == 1 {
        Ok(rest[0])
    } else {
        Err(parse_err(line, &format!("expected `{usage}`")))
    }
}

fn parse_f64(line: usize, token: &str) -> Result<f64, TechError> {
    token
        .parse::<f64>()
        .map_err(|_| parse_err(line, &format!("`{token}` is not a number")))
}

fn parse_kv(line: usize, rest: &[&str]) -> Result<HashMap<String, f64>, TechError> {
    if !rest.len().is_multiple_of(2) {
        return Err(parse_err(line, "expected key value pairs"));
    }
    let mut map = HashMap::new();
    for pair in rest.chunks_exact(2) {
        map.insert(pair[0].to_owned(), parse_f64(line, pair[1])?);
    }
    Ok(map)
}

fn get_kv(line: usize, kv: &HashMap<String, f64>, key: &str) -> Result<f64, TechError> {
    kv.get(key)
        .copied()
        .ok_or_else(|| parse_err(line, &format!("missing `{key}`")))
}

fn parse_metal(line: usize, rest: &[&str]) -> Result<Metal, TechError> {
    match rest {
        [name] => Metal::builtin(name).ok_or_else(|| TechError::UnknownMaterial {
            name: (*name).to_owned(),
        }),
        ["custom", name, kv @ ..] => {
            let kv = parse_kv(line, kv)?;
            Ok(Metal::new(
                *name,
                hotwire_units::Resistivity::from_micro_ohm_cm(get_kv(line, &kv, "rho_uohm_cm")?),
                Celsius::new(get_kv(line, &kv, "at_c")?).to_kelvin(),
                get_kv(line, &kv, "tcr")?,
                hotwire_units::ThermalConductivity::new(get_kv(line, &kv, "kth")?),
                hotwire_units::Density::new(get_kv(line, &kv, "density")?),
                hotwire_units::SpecificHeat::new(get_kv(line, &kv, "cp")?),
                hotwire_units::Kelvin::new(get_kv(line, &kv, "melt_k")?),
                get_kv(line, &kv, "lf")?,
                crate::ElectromigrationParams {
                    activation_energy: hotwire_units::ElectronVolts::new(get_kv(
                        line, &kv, "q_ev",
                    )?),
                    current_exponent: get_kv(line, &kv, "n")?,
                    design_rule_j0: hotwire_units::CurrentDensity::from_amps_per_cm2(get_kv(
                        line, &kv, "j0_a_cm2",
                    )?),
                },
            ))
        }
        _ => Err(parse_err(
            line,
            "expected `metal <builtin>` or `metal custom <name> <k v>...`",
        )),
    }
}

fn parse_dielectric(line: usize, rest: &[&str]) -> Result<(DielectricSlot, Dielectric), TechError> {
    let slot = match rest.first() {
        Some(&"inter") => DielectricSlot::Inter,
        Some(&"intra") => DielectricSlot::Intra,
        _ => return Err(parse_err(line, "expected `dielectric inter|intra <name>`")),
    };
    let d =
        match &rest[1..] {
            [name] => Dielectric::builtin(name).ok_or_else(|| TechError::UnknownMaterial {
                name: (*name).to_owned(),
            })?,
            ["custom", name, kv @ ..] => {
                let kv = parse_kv(line, kv)?;
                Dielectric::new(
                    *name,
                    get_kv(line, &kv, "er")?,
                    hotwire_units::ThermalConductivity::new(get_kv(line, &kv, "kth")?),
                )
            }
            _ => return Err(parse_err(
                line,
                "expected `dielectric inter|intra <builtin>` or `... custom <name> er <v> kth <v>`",
            )),
        };
    Ok((slot, d))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    /// Asserts that two technologies agree to within floating-point
    /// noise introduced by the µm ↔ m unit conversion of the text format.
    fn assert_tech_close(a: &Technology, b: &Technology) {
        fn close(x: f64, y: f64) {
            let scale = x.abs().max(y.abs()).max(1e-300);
            assert!((x - y).abs() / scale < 1e-12, "{x} vs {y}");
        }
        assert_eq!(a.name(), b.name());
        close(a.feature_size().value(), b.feature_size().value());
        close(a.vdd().value(), b.vdd().value());
        close(a.clock().value(), b.clock().value());
        close(
            a.reference_temperature().value(),
            b.reference_temperature().value(),
        );
        assert_eq!(a.metal().name(), b.metal().name());
        close(
            a.metal().resistivity_ref().value(),
            b.metal().resistivity_ref().value(),
        );
        assert_eq!(
            a.intra_level_dielectric().name(),
            b.intra_level_dielectric().name()
        );
        assert_eq!(a.layers().len(), b.layers().len());
        for (la, lb) in a.layers().iter().zip(b.layers()) {
            assert_eq!(la.name(), lb.name());
            close(la.width().value(), lb.width().value());
            close(la.pitch().value(), lb.pitch().value());
            close(la.thickness().value(), lb.thickness().value());
            close(la.ild_below().value(), lb.ild_below().value());
        }
    }

    #[test]
    fn round_trip_all_presets() {
        for tech in presets::all() {
            let text = serialize(&tech);
            let parsed = parse(&text).unwrap_or_else(|e| panic!("{}: {e}", tech.name()));
            assert_tech_close(&parsed, &tech);
            // After one cycle the decimal representation is a fixed point:
            let text2 = serialize(&parsed);
            let parsed2 = parse(&text2).unwrap();
            assert_eq!(serialize(&parsed2), text2, "format is not idempotent");
        }
    }

    #[test]
    fn round_trip_custom_materials() {
        let tech = presets::ntrs_250nm()
            .with_metal(
                Metal::copper()
                    .with_design_rule_j0(hotwire_units::CurrentDensity::from_amps_per_cm2(6.0e5)),
            )
            .with_intra_level_dielectric(Dielectric::new(
                "xerogel",
                1.8,
                hotwire_units::ThermalConductivity::new(0.2),
            ));
        let text = serialize(&tech);
        // the modified Cu no longer matches the builtin → serialized as custom
        assert!(text.contains("metal custom Cu"));
        assert!(text.contains("dielectric intra custom xerogel"));
        let parsed = parse(&text).unwrap();
        assert_tech_close(&parsed, &tech);
        assert!((parsed.metal().em().design_rule_j0.to_amps_per_cm2() - 6.0e5).abs() < 1.0);
        assert!((parsed.intra_level_dielectric().relative_permittivity() - 1.8).abs() < 1e-12);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "\n# header\ntechnology t # trailing\nfeature_size_um 0.25\nmetal Cu\nlayer M1 w_um 1 pitch_um 2 t_um 1 ild_um 1\n";
        let tech = parse(text).unwrap();
        assert_eq!(tech.name(), "t");
        assert_eq!(tech.layers().len(), 1);
    }

    #[test]
    fn unknown_directive_reports_line() {
        let text = "technology t\nfeature_size_um 0.25\nbogus 1\n";
        match parse(text) {
            Err(TechError::Parse { line: 3, .. }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unknown_material_is_reported() {
        let text = "technology t\nfeature_size_um 0.25\nmetal unobtainium\nlayer M1 w_um 1 pitch_um 2 t_um 1 ild_um 1\n";
        match parse(text) {
            Err(TechError::UnknownMaterial { name }) => assert_eq!(name, "unobtainium"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn missing_required_directive() {
        assert!(matches!(
            parse("feature_size_um 0.25\n"),
            Err(TechError::Parse { .. })
        ));
        assert!(matches!(
            parse("technology t\n"),
            Err(TechError::Parse { .. })
        ));
    }

    #[test]
    fn missing_layer_key_reports_line() {
        let text = "technology t\nfeature_size_um 0.25\nlayer M1 w_um 1 pitch_um 2 t_um 1\n";
        match parse(text) {
            Err(TechError::Parse { line: 3, message }) => {
                assert!(message.contains("ild_um"), "{message}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bad_number_reports_token() {
        let text = "technology t\nfeature_size_um abc\n";
        match parse(text) {
            Err(TechError::Parse { line: 2, message }) => {
                assert!(message.contains("abc"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn intra_defaults_to_inter() {
        let text = "technology t\nfeature_size_um 0.25\ndielectric inter HSQ\nlayer M1 w_um 1 pitch_um 2 t_um 1 ild_um 1\n";
        let tech = parse(text).unwrap();
        assert_eq!(tech.intra_level_dielectric().name(), "HSQ");
    }

    #[test]
    fn geometry_errors_propagate() {
        let text =
            "technology t\nfeature_size_um 0.25\nlayer M1 w_um 2 pitch_um 1 t_um 1 ild_um 1\n";
        assert!(matches!(
            parse(text),
            Err(TechError::InvalidGeometry { .. })
        ));
    }
}

/// Reads and parses a technology file from disk.
///
/// # Errors
///
/// I/O failures are reported as [`TechError::Parse`] at line 0 with the
/// underlying message; parse failures as usual.
pub fn read_file(path: impl AsRef<std::path::Path>) -> Result<Technology, TechError> {
    let text = std::fs::read_to_string(path.as_ref()).map_err(|e| TechError::Parse {
        line: 0,
        message: format!("cannot read {}: {e}", path.as_ref().display()),
    })?;
    parse(&text)
}

/// Serializes a technology to a file on disk.
///
/// # Errors
///
/// I/O failures are reported as [`TechError::Parse`] at line 0 with the
/// underlying message.
pub fn write_file(tech: &Technology, path: impl AsRef<std::path::Path>) -> Result<(), TechError> {
    std::fs::write(path.as_ref(), serialize(tech)).map_err(|e| TechError::Parse {
        line: 0,
        message: format!("cannot write {}: {e}", path.as_ref().display()),
    })
}

#[cfg(test)]
mod file_tests {
    use super::*;
    use crate::presets;

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join(format!("hotwire-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ntrs.tech");
        let tech = presets::ntrs_100nm();
        write_file(&tech, &path).unwrap();
        let back = read_file(&path).unwrap();
        assert_eq!(back.name(), tech.name());
        assert_eq!(back.layers().len(), tech.layers().len());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_reports_path() {
        let err = read_file("/nonexistent/dir/x.tech").unwrap_err();
        assert!(err.to_string().contains("x.tech"));
    }
}
