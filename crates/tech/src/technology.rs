//! The assembled technology: metal stack + materials + circuit parameters.

use hotwire_units::{Capacitance, Celsius, Frequency, Kelvin, Length, Resistance, Voltage};
use serde::{Deserialize, Serialize};

use crate::{Dielectric, Metal, MetalLayer, TechError};

/// Parameters of a minimum-sized driver (inverter) in this technology,
/// consumed by the repeater-insertion optimum of eqs. (16)–(17):
/// `l_opt = √(2·r₀·(c_g + c_p)/(r·c))`, `s_opt = √(r₀·c/(r·c_g))`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriverParams {
    /// Effective switching resistance r₀ of the minimum-sized driver.
    pub r0: Resistance,
    /// Input (gate) capacitance c_g of the minimum-sized driver.
    pub cg: Capacitance,
    /// Output parasitic (junction) capacitance c_p of the minimum-sized
    /// driver.
    pub cp: Capacitance,
}

impl DriverParams {
    /// Builds driver parameters from raw quantities.
    #[must_use]
    pub fn new(r0: Resistance, cg: Capacitance, cp: Capacitance) -> Self {
        Self { r0, cg, cp }
    }

    /// Intrinsic delay scale `τ₀ = r₀·(c_g + c_p)` of a self-loaded minimum
    /// inverter.
    #[must_use]
    pub fn intrinsic_delay_seconds(&self) -> f64 {
        self.r0.value() * (self.cg.value() + self.cp.value())
    }
}

/// A complete interconnect technology description.
///
/// Assembled with [`TechnologyBuilder`]; preset instances for the paper's
/// NTRS 0.25 µm and 0.1 µm nodes live in [`crate::presets`].
///
/// ```
/// use hotwire_tech::presets;
///
/// let tech = presets::ntrs_100nm();
/// assert_eq!(tech.layers().len(), 8);
/// assert_eq!(tech.top_layer().name(), "M8");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Technology {
    name: String,
    feature_size: Length,
    vdd: Voltage,
    clock: Frequency,
    reference_temperature: Kelvin,
    metal: Metal,
    inter_level_dielectric: Dielectric,
    intra_level_dielectric: Dielectric,
    driver: DriverParams,
    layers: Vec<MetalLayer>,
}

impl Technology {
    /// The technology name (e.g. `"ntrs-0.25um-cu"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Minimum feature size of the node.
    #[must_use]
    pub fn feature_size(&self) -> Length {
        self.feature_size
    }

    /// Supply voltage.
    #[must_use]
    pub fn vdd(&self) -> Voltage {
        self.vdd
    }

    /// Across-chip clock frequency.
    #[must_use]
    pub fn clock(&self) -> Frequency {
        self.clock
    }

    /// Chip (silicon junction) reference temperature T_ref — 100 °C in the
    /// paper.
    #[must_use]
    pub fn reference_temperature(&self) -> Kelvin {
        self.reference_temperature
    }

    /// The interconnect conductor material.
    #[must_use]
    pub fn metal(&self) -> &Metal {
        &self.metal
    }

    /// Inter-level dielectric (between metallization levels).
    #[must_use]
    pub fn inter_level_dielectric(&self) -> &Dielectric {
        &self.inter_level_dielectric
    }

    /// Intra-level (gap-fill) dielectric between lines of the same level —
    /// the slot the paper fills with low-k candidates.
    #[must_use]
    pub fn intra_level_dielectric(&self) -> &Dielectric {
        &self.intra_level_dielectric
    }

    /// Minimum-driver parameters.
    #[must_use]
    pub fn driver(&self) -> DriverParams {
        self.driver
    }

    /// All metallization levels, bottom (M1) first.
    #[must_use]
    pub fn layers(&self) -> &[MetalLayer] {
        &self.layers
    }

    /// Looks a layer up by name.
    #[must_use]
    pub fn layer(&self, name: &str) -> Option<&MetalLayer> {
        self.layers.iter().find(|l| l.name() == name)
    }

    /// The layer at a 0-based stack index.
    ///
    /// # Errors
    ///
    /// Returns [`TechError::LayerIndexOutOfRange`] for indices past the top
    /// level.
    pub fn layer_at(&self, index: usize) -> Result<&MetalLayer, TechError> {
        self.layers
            .get(index)
            .ok_or(TechError::LayerIndexOutOfRange {
                index,
                len: self.layers.len(),
            })
    }

    /// The top (global-routing) metallization level.
    #[must_use]
    pub fn top_layer(&self) -> &MetalLayer {
        self.layers.last().expect("builder guarantees ≥1 layer")
    }

    /// Total dielectric path `b` from the bottom of the given level down to
    /// the substrate — the `t_ox`/`b_x` of eq. (8).
    ///
    /// Intermediate metal levels are *patterned* planes, not continuous heat
    /// spreaders; following the paper's worst-case quasi-1-D treatment the
    /// full vertical path (ILDs plus embedded lower metal thicknesses,
    /// which are dielectric-filled between lines) counts as dielectric.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range; use [`Technology::layer_at`]
    /// first when the index is untrusted.
    #[must_use]
    pub fn underlying_dielectric_thickness(&self, index: usize) -> Length {
        assert!(
            index < self.layers.len(),
            "layer index {index} out of range for {}-level stack",
            self.layers.len()
        );
        let mut b = Length::ZERO;
        for layer in &self.layers[..index] {
            b += layer.ild_below();
            b += layer.thickness();
        }
        b + self.layers[index].ild_below()
    }

    /// Height of the *top surface* of the given level above the substrate.
    #[must_use]
    pub fn level_top_height(&self, index: usize) -> Length {
        self.underlying_dielectric_thickness(index) + self.layers[index].thickness()
    }

    /// Returns a copy using a different conductor metal (e.g. swap Cu for
    /// AlCu to regenerate the paper's Table 4).
    #[must_use]
    pub fn with_metal(mut self, metal: Metal) -> Self {
        self.metal = metal;
        self
    }

    /// Returns a copy using a different intra-level (gap-fill) dielectric.
    #[must_use]
    pub fn with_intra_level_dielectric(mut self, dielectric: Dielectric) -> Self {
        self.intra_level_dielectric = dielectric;
        self
    }

    /// Returns a copy using a different inter-level dielectric.
    #[must_use]
    pub fn with_inter_level_dielectric(mut self, dielectric: Dielectric) -> Self {
        self.inter_level_dielectric = dielectric;
        self
    }

    /// Derives an ideally scaled node: all lateral and vertical geometry
    /// shrinks by `factor` (< 1), the supply scales with it, and the
    /// clock speeds up by `1/factor` — the constant-field scaling the
    /// paper's introduction describes, under which current *density*
    /// pressure grows. Device parameters scale as `r₀/1` (the driver
    /// resistance of a minimum device is roughly scaling-invariant) and
    /// `c_g, c_p × factor`.
    ///
    /// # Errors
    ///
    /// Returns [`TechError::InvalidGeometry`] unless `0 < factor ≤ 1`.
    ///
    /// # Examples
    ///
    /// ```
    /// use hotwire_tech::presets;
    ///
    /// let t250 = presets::ntrs_250nm();
    /// let t180 = t250.scaled(0.72, "scaled-0.18um")?;
    /// assert!(t180.feature_size() < t250.feature_size());
    /// assert!(t180.clock() > t250.clock());
    /// # Ok::<(), hotwire_tech::TechError>(())
    /// ```
    pub fn scaled(&self, factor: f64, name: impl Into<String>) -> Result<Technology, TechError> {
        if !(factor > 0.0 && factor <= 1.0) {
            return Err(TechError::InvalidGeometry {
                what: format!("scaling factor must be in (0, 1], got {factor}"),
            });
        }
        let mut b = TechnologyBuilder::new(name, self.feature_size * factor)
            .vdd(self.vdd * factor)
            .clock(self.clock / factor)
            .reference_temperature(self.reference_temperature)
            .metal(self.metal.clone())
            .dielectrics(
                self.inter_level_dielectric.clone(),
                self.intra_level_dielectric.clone(),
            )
            .driver(DriverParams::new(
                self.driver.r0,
                self.driver.cg * factor,
                self.driver.cp * factor,
            ));
        for layer in &self.layers {
            b = b.layer(
                layer.name(),
                layer.width() * factor,
                layer.pitch() * factor,
                layer.thickness() * factor,
                layer.ild_below() * factor,
            )?;
        }
        b.build()
    }
}

/// Step-by-step construction of a [`Technology`] (C-BUILDER).
///
/// ```
/// use hotwire_tech::{Dielectric, DriverParams, Metal, MetalLayer, TechnologyBuilder};
/// use hotwire_units::{Capacitance, Celsius, Frequency, Length, Resistance, Voltage};
///
/// let um = Length::from_micrometers;
/// let tech = TechnologyBuilder::new("demo", um(0.25))
///     .vdd(Voltage::new(2.5))
///     .clock(Frequency::from_megahertz(750.0))
///     .metal(Metal::copper())
///     .dielectrics(Dielectric::oxide(), Dielectric::oxide())
///     .driver(DriverParams::new(
///         Resistance::new(10.0e3),
///         Capacitance::from_femtofarads(2.25),
///         Capacitance::from_femtofarads(2.0),
///     ))
///     .layer("M1", um(0.35), um(0.70), um(0.55), um(1.2))?
///     .layer("M2", um(0.40), um(0.85), um(0.65), um(0.65))?
///     .build()?;
/// assert_eq!(tech.layers().len(), 2);
/// # Ok::<(), hotwire_tech::TechError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TechnologyBuilder {
    name: String,
    feature_size: Length,
    vdd: Voltage,
    clock: Frequency,
    reference_temperature: Kelvin,
    metal: Metal,
    inter_level_dielectric: Dielectric,
    intra_level_dielectric: Dielectric,
    driver: DriverParams,
    layers: Vec<MetalLayer>,
}

impl TechnologyBuilder {
    /// Starts a builder with paper-default materials (Cu, oxide) and the
    /// 100 °C reference temperature.
    #[must_use]
    pub fn new(name: impl Into<String>, feature_size: Length) -> Self {
        Self {
            name: name.into(),
            feature_size,
            vdd: Voltage::new(2.5),
            clock: Frequency::from_megahertz(750.0),
            reference_temperature: Celsius::new(100.0).to_kelvin(),
            metal: Metal::copper(),
            inter_level_dielectric: Dielectric::oxide(),
            intra_level_dielectric: Dielectric::oxide(),
            driver: DriverParams::new(
                Resistance::new(10.0e3),
                Capacitance::from_femtofarads(2.0),
                Capacitance::from_femtofarads(2.0),
            ),
            layers: Vec::new(),
        }
    }

    /// Sets the supply voltage.
    #[must_use]
    pub fn vdd(mut self, vdd: Voltage) -> Self {
        self.vdd = vdd;
        self
    }

    /// Sets the clock frequency.
    #[must_use]
    pub fn clock(mut self, clock: Frequency) -> Self {
        self.clock = clock;
        self
    }

    /// Sets the chip reference temperature (default 100 °C).
    #[must_use]
    pub fn reference_temperature(mut self, t: Kelvin) -> Self {
        self.reference_temperature = t;
        self
    }

    /// Sets the conductor metal.
    #[must_use]
    pub fn metal(mut self, metal: Metal) -> Self {
        self.metal = metal;
        self
    }

    /// Sets inter-level and intra-level dielectrics.
    #[must_use]
    pub fn dielectrics(mut self, inter: Dielectric, intra: Dielectric) -> Self {
        self.inter_level_dielectric = inter;
        self.intra_level_dielectric = intra;
        self
    }

    /// Sets the minimum-driver parameters.
    #[must_use]
    pub fn driver(mut self, driver: DriverParams) -> Self {
        self.driver = driver;
        self
    }

    /// Appends a metallization level (bottom-up order).
    ///
    /// # Errors
    ///
    /// Propagates [`TechError::InvalidGeometry`] from [`MetalLayer::new`].
    pub fn layer(
        mut self,
        name: impl Into<String>,
        width: Length,
        pitch: Length,
        thickness: Length,
        ild_below: Length,
    ) -> Result<Self, TechError> {
        let index = self.layers.len();
        self.layers.push(MetalLayer::new(
            name, index, width, pitch, thickness, ild_below,
        )?);
        Ok(self)
    }

    /// Appends a pre-built layer, re-indexing it to its stack position.
    #[must_use]
    pub fn push_layer(mut self, layer: MetalLayer) -> Self {
        let index = self.layers.len();
        let name = layer.name().to_owned();
        self.layers.push(layer.with_position(name, index));
        self
    }

    /// Finalizes the technology.
    ///
    /// # Errors
    ///
    /// Returns [`TechError::EmptyStack`] when no layers were added.
    pub fn build(self) -> Result<Technology, TechError> {
        if self.layers.is_empty() {
            return Err(TechError::EmptyStack);
        }
        Ok(Technology {
            name: self.name,
            feature_size: self.feature_size,
            vdd: self.vdd,
            clock: self.clock,
            reference_temperature: self.reference_temperature,
            metal: self.metal,
            inter_level_dielectric: self.inter_level_dielectric,
            intra_level_dielectric: self.intra_level_dielectric,
            driver: self.driver,
            layers: self.layers,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn um(v: f64) -> Length {
        Length::from_micrometers(v)
    }

    fn two_layer_tech() -> Technology {
        TechnologyBuilder::new("t", um(0.25))
            .layer("M1", um(0.35), um(0.70), um(0.55), um(1.2))
            .unwrap()
            .layer("M2", um(0.40), um(0.85), um(0.65), um(0.65))
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn empty_stack_rejected() {
        let err = TechnologyBuilder::new("t", um(0.25)).build().unwrap_err();
        assert_eq!(err, TechError::EmptyStack);
    }

    #[test]
    fn underlying_dielectric_accumulates() {
        let t = two_layer_tech();
        // M1: just its own ILD
        assert!((t.underlying_dielectric_thickness(0).to_micrometers() - 1.2).abs() < 1e-12);
        // M2: M1 ILD + M1 thickness + M2 ILD = 1.2 + 0.55 + 0.65 = 2.4
        assert!((t.underlying_dielectric_thickness(1).to_micrometers() - 2.4).abs() < 1e-12);
        // top of M2 = 2.4 + 0.65
        assert!((t.level_top_height(1).to_micrometers() - 3.05).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn underlying_dielectric_panics_out_of_range() {
        let t = two_layer_tech();
        let _ = t.underlying_dielectric_thickness(5);
    }

    #[test]
    fn layer_lookup() {
        let t = two_layer_tech();
        assert_eq!(t.layer("M2").unwrap().index(), 1);
        assert!(t.layer("M9").is_none());
        assert!(t.layer_at(1).is_ok());
        assert!(matches!(
            t.layer_at(7),
            Err(TechError::LayerIndexOutOfRange { index: 7, len: 2 })
        ));
        assert_eq!(t.top_layer().name(), "M2");
    }

    #[test]
    fn with_metal_swaps_conductor_only() {
        let t = two_layer_tech().with_metal(Metal::alcu());
        assert_eq!(t.metal().name(), "AlCu");
        assert_eq!(t.layers().len(), 2);
    }

    #[test]
    fn with_dielectric_swaps() {
        let t = two_layer_tech().with_intra_level_dielectric(Dielectric::hsq());
        assert_eq!(t.intra_level_dielectric().name(), "HSQ");
        assert_eq!(t.inter_level_dielectric().name(), "oxide");
        let t = t.with_inter_level_dielectric(Dielectric::polyimide());
        assert_eq!(t.inter_level_dielectric().name(), "polyimide");
    }

    #[test]
    fn scaled_node_shrinks_coherently() {
        let t = two_layer_tech();
        let s = t.scaled(0.5, "half").unwrap();
        assert_eq!(s.name(), "half");
        assert!((s.feature_size().value() - 0.5 * t.feature_size().value()).abs() < 1e-18);
        assert!((s.vdd().value() - 0.5 * t.vdd().value()).abs() < 1e-12);
        assert!((s.clock().value() - 2.0 * t.clock().value()).abs() < 1.0);
        for (a, b) in s.layers().iter().zip(t.layers()) {
            assert!((a.width().value() - 0.5 * b.width().value()).abs() < 1e-18);
            assert!((a.thickness().value() - 0.5 * b.thickness().value()).abs() < 1e-18);
        }
        // cumulative thicknesses scale too
        assert!(
            (s.underlying_dielectric_thickness(1).value()
                - 0.5 * t.underlying_dielectric_thickness(1).value())
            .abs()
                < 1e-18
        );
        assert!(t.scaled(0.0, "x").is_err());
        assert!(t.scaled(1.5, "x").is_err());
    }

    #[test]
    fn reference_temperature_default_is_100c() {
        let t = two_layer_tech();
        assert!((t.reference_temperature().value() - 373.15).abs() < 1e-9);
    }

    #[test]
    fn driver_intrinsic_delay() {
        let d = DriverParams::new(
            Resistance::new(10.0e3),
            Capacitance::from_femtofarads(2.0),
            Capacitance::from_femtofarads(2.0),
        );
        assert!((d.intrinsic_delay_seconds() - 4.0e-11).abs() < 1e-20);
    }

    #[test]
    fn push_layer_reindexes() {
        let l = MetalLayer::new("MX", 42, um(0.5), um(1.0), um(0.5), um(0.5)).unwrap();
        let t = TechnologyBuilder::new("t", um(0.25))
            .push_layer(l)
            .build()
            .unwrap();
        assert_eq!(t.layers()[0].index(), 0);
        assert_eq!(t.layers()[0].name(), "MX");
    }
}
