//! Conductor and dielectric material models.
//!
//! The built-in constants reproduce the paper's Table 1 (dielectric thermal
//! conductivities) and its quoted Cu resistivity fit
//! `ρ(T) = 1.67 µΩ·cm · [1 + 6.8×10⁻³ °C⁻¹ · (T − T_ref)]` with
//! `T_ref = 100 °C`. Electromigration parameters follow Black's equation
//! with `n = 2` and `Q = 0.7 eV` (the AlCu grain-boundary value the paper
//! uses; the Cu EM advantage is expressed through a higher design-rule
//! current density `j₀`, exactly as the paper's Table 3 does).

use hotwire_units::{
    CurrentDensity, Density, ElectronVolts, Kelvin, Resistivity, SpecificHeat, ThermalConductivity,
    VolumetricHeatCapacity,
};
use serde::{Deserialize, Serialize};

/// Black's-equation electromigration parameters of a metal.
///
/// `TTF = A · j⁻ⁿ · exp(Q / (k_B · T))` — see `hotwire-em` for the model
/// itself; this struct only carries the material constants.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ElectromigrationParams {
    /// Activation energy Q for grain-boundary diffusion.
    pub activation_energy: ElectronVolts,
    /// Current-density exponent n (≈ 2 under normal use conditions).
    pub current_exponent: f64,
    /// Design-rule average current density j₀ at the reference temperature
    /// that meets the lifetime goal (e.g. 10 years at 100 °C).
    pub design_rule_j0: CurrentDensity,
}

impl ElectromigrationParams {
    /// Conservative AlCu parameters: Q = 0.7 eV, n = 2,
    /// j₀ = 6×10⁵ A/cm².
    #[must_use]
    pub fn alcu() -> Self {
        Self {
            activation_energy: ElectronVolts::new(0.7),
            current_exponent: 2.0,
            design_rule_j0: CurrentDensity::from_amps_per_cm2(6.0e5),
        }
    }

    /// Copper parameters as the paper's Table 3 uses them: same Arrhenius
    /// law, but a 300 % higher j₀ (1.8×10⁶ A/cm²) reflecting Cu's higher EM
    /// resistance.
    #[must_use]
    pub fn copper() -> Self {
        Self {
            design_rule_j0: CurrentDensity::from_amps_per_cm2(1.8e6),
            ..Self::alcu()
        }
    }
}

/// An interconnect conductor material.
///
/// Electrical resistivity is modelled as the linear fit
/// `ρ(T) = ρ_ref · [1 + β · (T − T_ref)]` around a stated reference
/// temperature, matching the form used in the paper.
///
/// ```
/// use hotwire_tech::Metal;
/// use hotwire_units::{Celsius, Kelvin};
///
/// let cu = Metal::copper();
/// let rho100 = cu.resistivity(Celsius::new(100.0).to_kelvin());
/// assert!((rho100.to_micro_ohm_cm() - 1.67).abs() < 1e-12);
/// let rho200 = cu.resistivity(Celsius::new(200.0).to_kelvin());
/// assert!(rho200 > rho100);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Metal {
    name: String,
    resistivity_ref: Resistivity,
    resistivity_ref_temperature: Kelvin,
    temperature_coefficient: f64,
    thermal_conductivity: ThermalConductivity,
    mass_density: Density,
    specific_heat: SpecificHeat,
    melting_point: Kelvin,
    latent_heat_fusion: f64,
    em: ElectromigrationParams,
}

impl Metal {
    /// Builds a metal from its full property set.
    ///
    /// * `resistivity_ref` — ρ at `resistivity_ref_temperature`.
    /// * `temperature_coefficient` — β in 1/K for the linear ρ(T) fit.
    /// * `latent_heat_fusion` — J/kg, consumed by the melt model.
    #[allow(clippy::too_many_arguments)]
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        resistivity_ref: Resistivity,
        resistivity_ref_temperature: Kelvin,
        temperature_coefficient: f64,
        thermal_conductivity: ThermalConductivity,
        mass_density: Density,
        specific_heat: SpecificHeat,
        melting_point: Kelvin,
        latent_heat_fusion: f64,
        em: ElectromigrationParams,
    ) -> Self {
        Self {
            name: name.into(),
            resistivity_ref,
            resistivity_ref_temperature,
            temperature_coefficient,
            thermal_conductivity,
            mass_density,
            specific_heat,
            melting_point,
            latent_heat_fusion,
            em,
        }
    }

    /// Copper with the paper's resistivity fit
    /// (ρ = 1.67 µΩ·cm at 100 °C, β = 6.8×10⁻³ /°C) and Cu EM parameters.
    #[must_use]
    pub fn copper() -> Self {
        Self::new(
            "Cu",
            Resistivity::from_micro_ohm_cm(1.67),
            Kelvin::new(373.15),
            6.8e-3,
            ThermalConductivity::new(395.0),
            Density::new(8960.0),
            SpecificHeat::new(385.0),
            Kelvin::new(1357.8),
            2.05e5,
            ElectromigrationParams::copper(),
        )
    }

    /// Al(0.5 %)Cu with ρ = 4.2 µΩ·cm at 100 °C, β = 3.9×10⁻³ /°C and the
    /// conservative AlCu EM parameters.
    ///
    /// The room-temperature value implied by the fit (≈ 3.2 µΩ·cm) matches
    /// typical sputtered AlCu films of the 0.25 µm generation.
    #[must_use]
    pub fn alcu() -> Self {
        Self::new(
            "AlCu",
            Resistivity::from_micro_ohm_cm(4.2),
            Kelvin::new(373.15),
            3.9e-3,
            ThermalConductivity::new(200.0),
            Density::new(2700.0),
            SpecificHeat::new(900.0),
            Kelvin::new(933.5),
            3.97e5,
            ElectromigrationParams::alcu(),
        )
    }

    /// Tungsten (via/plug material; included for completeness of stack
    /// modelling and ESD studies of via failure).
    #[must_use]
    pub fn tungsten() -> Self {
        Self::new(
            "W",
            Resistivity::from_micro_ohm_cm(7.2),
            Kelvin::new(373.15),
            4.5e-3,
            ThermalConductivity::new(173.0),
            Density::new(19_300.0),
            SpecificHeat::new(134.0),
            Kelvin::new(3695.0),
            1.93e5,
            ElectromigrationParams {
                activation_energy: ElectronVolts::new(1.0),
                current_exponent: 2.0,
                design_rule_j0: CurrentDensity::from_amps_per_cm2(1.0e6),
            },
        )
    }

    /// Looks a built-in metal up by its case-insensitive name.
    #[must_use]
    pub fn builtin(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "cu" | "copper" => Some(Self::copper()),
            "alcu" | "al" | "aluminum" | "aluminium" => Some(Self::alcu()),
            "w" | "tungsten" => Some(Self::tungsten()),
            _ => None,
        }
    }

    /// The material's display name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Electrical resistivity at the given absolute temperature via the
    /// linear fit `ρ(T) = ρ_ref·[1 + β·(T − T_ref)]`.
    #[must_use]
    pub fn resistivity(&self, temperature: Kelvin) -> Resistivity {
        let dt = temperature.value() - self.resistivity_ref_temperature.value();
        self.resistivity_ref * (1.0 + self.temperature_coefficient * dt)
    }

    /// The reference resistivity ρ_ref of the linear fit.
    #[must_use]
    pub fn resistivity_ref(&self) -> Resistivity {
        self.resistivity_ref
    }

    /// The reference temperature of the resistivity fit.
    #[must_use]
    pub fn resistivity_ref_temperature(&self) -> Kelvin {
        self.resistivity_ref_temperature
    }

    /// Temperature coefficient of resistivity β (1/K).
    #[must_use]
    pub fn temperature_coefficient(&self) -> f64 {
        self.temperature_coefficient
    }

    /// The temperature window `(lo, hi)` over which the linear
    /// resistivity fit is trusted.
    ///
    /// The upper bound is the melting point: past it the solid-metal
    /// fit is meaningless. The lower bound is where the extrapolated
    /// fit has fallen to half its reference value, `T_ref − 1/(2β)`
    /// (clamped at 0 K): far below the anchor the true ρ(T) curves away
    /// from the linear fit toward the residual resistivity, and by the
    /// time the fit has shed half of ρ_ref it is no longer predictive —
    /// and on its way to the unphysical ρ ≤ 0 at `T_ref − 1/β`.
    /// Iterative electro-thermal solvers clamp into this window (see
    /// [`Metal::resistivity_clamped`]) so an intermediate iterate can
    /// never stamp a vanishing or negative resistance.
    #[must_use]
    pub fn resistivity_validity_range(&self) -> (Kelvin, Kelvin) {
        let lo = (self.resistivity_ref_temperature.value() - 0.5 / self.temperature_coefficient)
            .max(0.0);
        (Kelvin::new(lo), self.melting_point)
    }

    /// [`Metal::resistivity`] evaluated with the temperature clamped
    /// into [`Metal::resistivity_validity_range`]; the second element
    /// reports whether clamping occurred.
    #[must_use]
    pub fn resistivity_clamped(&self, temperature: Kelvin) -> (Resistivity, bool) {
        let (lo, hi) = self.resistivity_validity_range();
        let t = temperature.value().clamp(lo.value(), hi.value());
        (self.resistivity(Kelvin::new(t)), t != temperature.value())
    }

    /// Thermal conductivity of the bulk metal.
    #[must_use]
    pub fn thermal_conductivity(&self) -> ThermalConductivity {
        self.thermal_conductivity
    }

    /// Mass density.
    #[must_use]
    pub fn mass_density(&self) -> Density {
        self.mass_density
    }

    /// Specific heat capacity.
    #[must_use]
    pub fn specific_heat(&self) -> SpecificHeat {
        self.specific_heat
    }

    /// Volumetric heat capacity `C_v = ρ_mass·c_p`.
    #[must_use]
    pub fn volumetric_heat_capacity(&self) -> VolumetricHeatCapacity {
        self.mass_density * self.specific_heat
    }

    /// Melting point.
    #[must_use]
    pub fn melting_point(&self) -> Kelvin {
        self.melting_point
    }

    /// Latent heat of fusion in J/kg.
    #[must_use]
    pub fn latent_heat_fusion(&self) -> f64 {
        self.latent_heat_fusion
    }

    /// Electromigration parameters.
    #[must_use]
    pub fn em(&self) -> ElectromigrationParams {
        self.em
    }

    /// Returns a copy with a different design-rule j₀ (the paper sweeps j₀
    /// at fixed material).
    #[must_use]
    pub fn with_design_rule_j0(mut self, j0: CurrentDensity) -> Self {
        self.em.design_rule_j0 = j0;
        self
    }
}

/// An inter/intra-level dielectric material.
///
/// Carries relative permittivity (for capacitance / delay) and thermal
/// conductivity (for self-heating) — the two properties whose tension the
/// paper is about.
///
/// ```
/// use hotwire_tech::Dielectric;
///
/// let ox = Dielectric::oxide();
/// let hsq = Dielectric::hsq();
/// // low-k wins electrically but loses thermally:
/// assert!(hsq.relative_permittivity() < ox.relative_permittivity());
/// assert!(hsq.thermal_conductivity() < ox.thermal_conductivity());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dielectric {
    name: String,
    relative_permittivity: f64,
    thermal_conductivity: ThermalConductivity,
}

impl Dielectric {
    /// Builds a dielectric from name, ε_r and k_th.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        relative_permittivity: f64,
        thermal_conductivity: ThermalConductivity,
    ) -> Self {
        Self {
            name: name.into(),
            relative_permittivity,
            thermal_conductivity,
        }
    }

    /// PETEOS silicon dioxide: ε_r = 4.0, k = 1.15 W/(m·K) (paper Table 1).
    #[must_use]
    pub fn oxide() -> Self {
        Self::new("oxide", 4.0, ThermalConductivity::new(1.15))
    }

    /// Hydrogen silsesquioxane: ε_r = 2.9, k = 0.6 W/(m·K) (paper Table 1).
    #[must_use]
    pub fn hsq() -> Self {
        Self::new("HSQ", 2.9, ThermalConductivity::new(0.6))
    }

    /// Polyimide: ε_r = 3.1, k = 0.25 W/(m·K) (paper Table 1).
    #[must_use]
    pub fn polyimide() -> Self {
        Self::new("polyimide", 3.1, ThermalConductivity::new(0.25))
    }

    /// Fluorinated oxide (SiOF): ε_r = 3.5, k = 1.0 W/(m·K)
    /// (extension material, per Ida et al. \[12\]).
    #[must_use]
    pub fn siof() -> Self {
        Self::new("SiOF", 3.5, ThermalConductivity::new(1.0))
    }

    /// Generic ε_r = 2.0 low-k used by the paper's 0.1 µm delay study
    /// (Table 6 header: "insulator dielectric constant = 2.0");
    /// k = 0.3 W/(m·K), representative of organic/porous candidates.
    #[must_use]
    pub fn lowk2() -> Self {
        Self::new("lowk2.0", 2.0, ThermalConductivity::new(0.3))
    }

    /// Looks a built-in dielectric up by its case-insensitive name.
    #[must_use]
    pub fn builtin(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "oxide" | "sio2" | "peteos" => Some(Self::oxide()),
            "hsq" => Some(Self::hsq()),
            "polyimide" => Some(Self::polyimide()),
            "siof" => Some(Self::siof()),
            "lowk2.0" | "lowk2" | "lowk" => Some(Self::lowk2()),
            _ => None,
        }
    }

    /// All built-in dielectrics, in the paper's Table 1 order plus
    /// extensions.
    #[must_use]
    pub fn all_builtin() -> Vec<Self> {
        vec![
            Self::oxide(),
            Self::hsq(),
            Self::polyimide(),
            Self::siof(),
            Self::lowk2(),
        ]
    }

    /// The material's display name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Relative permittivity ε_r.
    #[must_use]
    pub fn relative_permittivity(&self) -> f64 {
        self.relative_permittivity
    }

    /// Thermal conductivity.
    #[must_use]
    pub fn thermal_conductivity(&self) -> ThermalConductivity {
        self.thermal_conductivity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotwire_units::Celsius;

    #[test]
    fn copper_resistivity_matches_paper_fit() {
        let cu = Metal::copper();
        // ρ(100 °C) = 1.67 µΩ·cm exactly (fit anchor)
        let rho = cu.resistivity(Celsius::new(100.0).to_kelvin());
        assert!((rho.to_micro_ohm_cm() - 1.67).abs() < 1e-12);
        // ρ(200 °C) = 1.67·(1 + 6.8e-3·100) = 2.80556 µΩ·cm
        let rho200 = cu.resistivity(Celsius::new(200.0).to_kelvin());
        assert!((rho200.to_micro_ohm_cm() - 1.67 * 1.68).abs() < 1e-9);
    }

    #[test]
    fn alcu_is_more_resistive_than_copper() {
        let t = Celsius::new(100.0).to_kelvin();
        assert!(Metal::alcu().resistivity(t) > Metal::copper().resistivity(t));
    }

    #[test]
    fn table1_thermal_conductivities() {
        assert!((Dielectric::oxide().thermal_conductivity().value() - 1.15).abs() < 1e-12);
        assert!((Dielectric::hsq().thermal_conductivity().value() - 0.6).abs() < 1e-12);
        assert!((Dielectric::polyimide().thermal_conductivity().value() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn builtin_lookup_is_case_insensitive() {
        assert_eq!(Metal::builtin("CU").unwrap().name(), "Cu");
        assert_eq!(Metal::builtin("AlCu").unwrap().name(), "AlCu");
        assert!(Metal::builtin("unobtainium").is_none());
        assert_eq!(Dielectric::builtin("Oxide").unwrap().name(), "oxide");
        assert_eq!(Dielectric::builtin("HSQ").unwrap().name(), "HSQ");
        assert!(Dielectric::builtin("vacuum").is_none());
    }

    #[test]
    fn copper_em_j0_is_three_hundred_percent_higher() {
        let cu = ElectromigrationParams::copper();
        let alcu = ElectromigrationParams::alcu();
        let ratio = cu.design_rule_j0.value() / alcu.design_rule_j0.value();
        assert!((ratio - 3.0).abs() < 1e-12);
        assert_eq!(cu.activation_energy, alcu.activation_energy);
    }

    #[test]
    fn with_design_rule_j0_overrides_only_j0() {
        let cu = Metal::copper()
            .with_design_rule_j0(hotwire_units::CurrentDensity::from_amps_per_cm2(6.0e5));
        assert!((cu.em().design_rule_j0.to_amps_per_cm2() - 6.0e5).abs() < 1e-3);
        assert_eq!(cu.em().current_exponent, 2.0);
        assert_eq!(cu.name(), "Cu");
    }

    #[test]
    fn volumetric_heat_capacity_is_product() {
        let cu = Metal::copper();
        let cv = cu.volumetric_heat_capacity();
        assert!((cv.value() - 8960.0 * 385.0).abs() < 1e-6);
    }

    #[test]
    fn melting_points_ordered() {
        // W > Cu > AlCu
        assert!(Metal::tungsten().melting_point() > Metal::copper().melting_point());
        assert!(Metal::copper().melting_point() > Metal::alcu().melting_point());
    }

    #[test]
    fn all_builtin_dielectrics_have_unique_names() {
        let all = Dielectric::all_builtin();
        let mut names: Vec<&str> = all.iter().map(Dielectric::name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len());
    }

    #[test]
    fn serde_round_trip_via_tokens() {
        // serde derive sanity using the serde-transcode-free approach:
        // serialize to a string with the `format` module happens elsewhere;
        // here just confirm Clone/PartialEq coherence.
        let cu = Metal::copper();
        let cu2 = cu.clone();
        assert_eq!(cu, cu2);
    }

    #[test]
    fn resistivity_validity_range_brackets_the_fit() {
        for metal in [Metal::copper(), Metal::alcu()] {
            let (lo, hi) = metal.resistivity_validity_range();
            assert!(lo < hi);
            assert_eq!(hi, metal.melting_point());
            // Inside the window the fit stays positive.
            assert!(metal.resistivity(lo).value() > 0.0);
            assert!(metal.resistivity(hi).value() > 0.0);
            // ρ = 0 happens strictly below the window.
            let t_zero =
                metal.resistivity_ref_temperature().value() - 1.0 / metal.temperature_coefficient();
            assert!(t_zero < lo.value());
        }
    }

    #[test]
    fn resistivity_clamped_flags_and_bounds() {
        let cu = Metal::copper();
        let (lo, hi) = cu.resistivity_validity_range();
        let mid = Kelvin::new(0.5 * (lo.value() + hi.value()));
        let (rho, clamped) = cu.resistivity_clamped(mid);
        assert!(!clamped);
        assert_eq!(rho, cu.resistivity(mid));
        let (rho_hot, clamped_hot) = cu.resistivity_clamped(Kelvin::new(hi.value() + 500.0));
        assert!(clamped_hot);
        assert_eq!(rho_hot, cu.resistivity(hi));
        let (rho_cold, clamped_cold) = cu.resistivity_clamped(Kelvin::new(0.0));
        assert!(clamped_cold);
        assert_eq!(rho_cold, cu.resistivity(lo));
        assert!(rho_cold.value() > 0.0);
    }
}
