//! Error type for technology construction and parsing.

/// Errors produced while building or parsing a [`crate::Technology`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TechError {
    /// A referenced metal layer name does not exist in the stack.
    UnknownLayer {
        /// The layer name that failed to resolve.
        name: String,
    },
    /// A layer index is out of range for the stack.
    LayerIndexOutOfRange {
        /// The requested 0-based index.
        index: usize,
        /// The number of layers in the stack.
        len: usize,
    },
    /// A builder field was missing or a geometry value non-physical.
    InvalidGeometry {
        /// Description of the offending field.
        what: String,
    },
    /// The technology has no metal layers.
    EmptyStack,
    /// A tech-file line failed to parse.
    Parse {
        /// 1-based line number in the input.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// A material name in a tech file is not a built-in and was not defined
    /// in the file.
    UnknownMaterial {
        /// The unresolved material name.
        name: String,
    },
}

impl std::fmt::Display for TechError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TechError::UnknownLayer { name } => write!(f, "unknown metal layer `{name}`"),
            TechError::LayerIndexOutOfRange { index, len } => {
                write!(f, "layer index {index} out of range for {len}-level stack")
            }
            TechError::InvalidGeometry { what } => write!(f, "invalid geometry: {what}"),
            TechError::EmptyStack => write!(f, "technology has no metal layers"),
            TechError::Parse { line, message } => {
                write!(f, "tech file parse error at line {line}: {message}")
            }
            TechError::UnknownMaterial { name } => write!(f, "unknown material `{name}`"),
        }
    }
}

impl std::error::Error for TechError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            TechError::UnknownLayer { name: "M9".into() }.to_string(),
            "unknown metal layer `M9`"
        );
        assert_eq!(
            TechError::LayerIndexOutOfRange { index: 8, len: 6 }.to_string(),
            "layer index 8 out of range for 6-level stack"
        );
        assert_eq!(
            TechError::EmptyStack.to_string(),
            "technology has no metal layers"
        );
        assert_eq!(
            TechError::Parse {
                line: 3,
                message: "bad token".into()
            }
            .to_string(),
            "tech file parse error at line 3: bad token"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TechError>();
    }
}
