//! NTRS-style technology presets — the reconstruction of the paper's
//! Table 8.
//!
//! The scanned Table 8 is only partially legible; the values below honour
//! every readable fragment (M1 sheet resistance ≈ 0.085 Ω/□ at the 0.1 µm
//! node, ILD thicknesses 650 nm / 320 nm, metal thicknesses 0.9 µm /
//! 0.55 µm on the global levels) and fill the remainder from the public
//! NTRS-97 roadmap for the 250 nm and 100 nm generations. Every constant is
//! an *input* to the analysis: swap in your own numbers through
//! [`crate::TechnologyBuilder`] or a tech file ([`crate::format`]).

use hotwire_units::{Capacitance, Frequency, Length, Resistance, Voltage};

use crate::{Dielectric, DriverParams, Metal, Technology, TechnologyBuilder};

fn um(v: f64) -> Length {
    Length::from_micrometers(v)
}

/// The paper's 0.25 µm Cu/oxide technology: six metallization levels,
/// V_dd = 2.5 V, 750 MHz across-chip clock.
///
/// Level-1 geometry (W = 0.35 µm, t_ox = 1.2 µm) matches the test
/// structures of the paper's Fig. 5.
///
/// # Panics
///
/// Never panics in practice — the preset geometry is statically valid; the
/// internal `expect`s guard against regressions in the constants.
#[must_use]
pub fn ntrs_250nm() -> Technology {
    TechnologyBuilder::new("ntrs-0.25um-cu", um(0.25))
        .vdd(Voltage::new(2.5))
        .clock(Frequency::from_megahertz(750.0))
        .metal(Metal::copper())
        .dielectrics(Dielectric::oxide(), Dielectric::oxide())
        .driver(DriverParams::new(
            Resistance::new(9.4e3),
            Capacitance::from_femtofarads(2.2),
            Capacitance::from_femtofarads(2.0),
        ))
        .layer("M1", um(0.35), um(0.70), um(0.55), um(1.20))
        .expect("static M1 geometry")
        .layer("M2", um(0.40), um(0.85), um(0.65), um(0.65))
        .expect("static M2 geometry")
        .layer("M3", um(0.40), um(0.85), um(0.65), um(0.65))
        .expect("static M3 geometry")
        .layer("M4", um(0.50), um(1.10), um(0.90), um(0.65))
        .expect("static M4 geometry")
        .layer("M5", um(0.80), um(1.70), um(0.90), um(0.65))
        .expect("static M5 geometry")
        .layer("M6", um(1.20), um(2.40), um(1.20), um(0.90))
        .expect("static M6 geometry")
        .build()
        .expect("static stack is non-empty")
}

/// The paper's 0.1 µm Cu technology: eight metallization levels,
/// V_dd = 1.2 V, 1.8 GHz across-chip clock.
///
/// Honoured Table 8 fragments: M1 sheet ρ ≈ 0.085 Ω/□
/// (t_m = 0.20 µm Cu), M1 ILD 320 nm (vs 650 nm at 0.25 µm).
///
/// # Panics
///
/// Never panics in practice — the preset geometry is statically valid.
#[must_use]
pub fn ntrs_100nm() -> Technology {
    TechnologyBuilder::new("ntrs-0.1um-cu", um(0.10))
        .vdd(Voltage::new(1.2))
        .clock(Frequency::from_gigahertz(1.8))
        .metal(Metal::copper())
        .dielectrics(Dielectric::oxide(), Dielectric::oxide())
        .driver(DriverParams::new(
            Resistance::new(17.0e3),
            Capacitance::from_femtofarads(0.45),
            Capacitance::from_femtofarads(0.40),
        ))
        .layer("M1", um(0.13), um(0.26), um(0.20), um(0.32))
        .expect("static M1 geometry")
        .layer("M2", um(0.15), um(0.30), um(0.25), um(0.32))
        .expect("static M2 geometry")
        .layer("M3", um(0.15), um(0.30), um(0.25), um(0.32))
        .expect("static M3 geometry")
        .layer("M4", um(0.20), um(0.40), um(0.35), um(0.40))
        .expect("static M4 geometry")
        .layer("M5", um(0.28), um(0.56), um(0.45), um(0.45))
        .expect("static M5 geometry")
        .layer("M6", um(0.40), um(0.80), um(0.65), um(0.55))
        .expect("static M6 geometry")
        .layer("M7", um(0.80), um(1.60), um(1.00), um(0.80))
        .expect("static M7 geometry")
        .layer("M8", um(1.20), um(2.40), um(1.20), um(1.00))
        .expect("static M8 geometry")
        .build()
        .expect("static stack is non-empty")
}

/// The 0.25 µm node with AlCu interconnect — the configuration of the
/// paper's Table 4 and of the Fig. 5 thermal-impedance test structures.
#[must_use]
pub fn ntrs_250nm_alcu() -> Technology {
    let mut t = ntrs_250nm().with_metal(Metal::alcu());
    // AlCu preset keeps the same geometry; rename for clarity.
    t = rename(t, "ntrs-0.25um-alcu");
    t
}

/// The 0.1 µm node with AlCu interconnect (Table 4, lower block).
#[must_use]
pub fn ntrs_100nm_alcu() -> Technology {
    rename(ntrs_100nm().with_metal(Metal::alcu()), "ntrs-0.1um-alcu")
}

/// All four presets used across the paper's tables.
#[must_use]
pub fn all() -> Vec<Technology> {
    vec![
        ntrs_250nm(),
        ntrs_100nm(),
        ntrs_250nm_alcu(),
        ntrs_100nm_alcu(),
    ]
}

fn rename(t: Technology, name: &str) -> Technology {
    // Round-trip through the builder to change the name without exposing a
    // public setter for it.
    let mut b = TechnologyBuilder::new(name, t.feature_size())
        .vdd(t.vdd())
        .clock(t.clock())
        .reference_temperature(t.reference_temperature())
        .metal(t.metal().clone())
        .dielectrics(
            t.inter_level_dielectric().clone(),
            t.intra_level_dielectric().clone(),
        )
        .driver(t.driver());
    for layer in t.layers() {
        b = b.push_layer(layer.clone());
    }
    b.build().expect("source technology was valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_level_counts() {
        assert_eq!(ntrs_250nm().layers().len(), 6);
        assert_eq!(ntrs_100nm().layers().len(), 8);
    }

    #[test]
    fn m1_sheet_resistance_fragment_honoured() {
        // Table 8 fragment: sheet ρ ≈ 0.085 Ω/□ for 0.1 µm M1.
        let t = ntrs_100nm();
        let m1 = t.layer("M1").unwrap();
        let rho = t.metal().resistivity(t.reference_temperature());
        let rs = m1.sheet_resistance(rho);
        assert!(
            (rs.value() - 0.085).abs() < 0.005,
            "M1 sheet resistance {rs} deviates from the Table 8 fragment"
        );
    }

    #[test]
    fn fig5_geometry_honoured() {
        // Fig. 5 test structures: level-1, W down to 0.35 µm, t_ox = 1.2 µm.
        let t = ntrs_250nm();
        let m1 = t.layer("M1").unwrap();
        assert!((m1.width().to_micrometers() - 0.35).abs() < 1e-12);
        assert!((m1.ild_below().to_micrometers() - 1.2).abs() < 1e-12);
    }

    #[test]
    fn top_levels_are_global_fat_wires() {
        for t in [ntrs_250nm(), ntrs_100nm()] {
            let top = t.top_layer();
            let m1 = t.layer_at(0).unwrap();
            assert!(top.width() > m1.width());
            assert!(top.thickness() > m1.thickness());
        }
    }

    #[test]
    fn scaling_shrinks_lower_levels() {
        let t250 = ntrs_250nm();
        let t100 = ntrs_100nm();
        assert!(t100.layer_at(0).unwrap().width() < t250.layer_at(0).unwrap().width());
        assert!(t100.vdd() < t250.vdd());
        assert!(t100.clock() > t250.clock());
    }

    #[test]
    fn upper_levels_sit_high_above_substrate() {
        // The premise of the paper's §3.2: top levels are far from the heat
        // sink. At 0.1 µm the M8 underlying stack should exceed 4 µm.
        let t = ntrs_100nm();
        let b = t.underlying_dielectric_thickness(7);
        assert!(b.to_micrometers() > 4.0, "b = {b}");
    }

    #[test]
    fn alcu_variants_share_geometry() {
        let cu = ntrs_250nm();
        let al = ntrs_250nm_alcu();
        assert_eq!(al.metal().name(), "AlCu");
        assert_eq!(al.layers(), cu.layers());
        assert_eq!(al.name(), "ntrs-0.25um-alcu");
    }

    #[test]
    fn all_presets_have_unique_names() {
        let names: Vec<String> = all().iter().map(|t| t.name().to_owned()).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }
}
