//! Current waveforms and their peak / average / RMS statistics.

use hotwire_units::{CurrentDensity, Seconds};
use serde::{Deserialize, Serialize};

use crate::EmError;

/// The three current-density figures of merit plus the effective duty
/// cycle that links them.
///
/// For any waveform `r_eff = (j_avg/j_rms)²` (Hunter \[18\]); for an ideal
/// unipolar rectangular pulse train this reduces to the geometric duty
/// cycle `t_on/T` and the identities `j_avg = r·j_peak`,
/// `j_rms = √r·j_peak` (paper eqs. 4–5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CurrentStats {
    /// Peak current density (maximum |j| over the period).
    pub peak: CurrentDensity,
    /// Rectified average current density (mean of |j|) — the EM driver.
    pub average: CurrentDensity,
    /// RMS current density — the self-heating driver.
    pub rms: CurrentDensity,
}

impl CurrentStats {
    /// Effective duty cycle `r_eff = (j_avg/j_rms)²`.
    ///
    /// Equal to the geometric duty cycle for rectangular unipolar pulses
    /// and in `(0, 1]` for every non-trivial waveform (by Cauchy–Schwarz).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the RMS density is zero (an identically
    /// zero waveform has no meaningful duty cycle).
    #[must_use]
    pub fn effective_duty_cycle(&self) -> f64 {
        debug_assert!(self.rms.value() > 0.0, "zero waveform has no duty cycle");
        let ratio = self.average / self.rms;
        ratio * ratio
    }

    /// Verifies the universal ordering `j_avg ≤ j_rms ≤ j_peak`.
    ///
    /// Mainly used by tests and debug assertions; tolerates tiny
    /// floating-point violations.
    #[must_use]
    pub fn is_consistent(&self) -> bool {
        let tol = 1.0 + 1e-9;
        self.average.value() <= self.rms.value() * tol
            && self.rms.value() <= self.peak.value() * tol
    }
}

/// An ideal rectangular unipolar pulse train — the waveform of the paper's
/// illustrative analysis (its Fig. 1).
///
/// Characterized by the peak current density and the duty cycle
/// `r = t_on / T`. Power (supply) lines correspond to `r = 1`, optimally
/// buffered global signal lines to `r ≈ 0.1` (paper §4).
///
/// ```
/// use hotwire_em::UnipolarPulse;
/// use hotwire_units::CurrentDensity;
///
/// let p = UnipolarPulse::new(CurrentDensity::from_mega_amps_per_cm2(4.0), 0.25)?;
/// assert!((p.average().to_mega_amps_per_cm2() - 1.0).abs() < 1e-12); // r·j_peak
/// assert!((p.rms().to_mega_amps_per_cm2() - 2.0).abs() < 1e-12);     // √r·j_peak
/// assert!((p.stats().effective_duty_cycle() - 0.25).abs() < 1e-12);
/// # Ok::<(), hotwire_em::EmError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UnipolarPulse {
    peak: CurrentDensity,
    duty_cycle: f64,
}

impl UnipolarPulse {
    /// Creates a pulse train from its peak density and duty cycle.
    ///
    /// # Errors
    ///
    /// Returns [`EmError::InvalidDutyCycle`] unless `0 < duty_cycle ≤ 1`
    /// and [`EmError::NonPositiveDensity`] unless `peak > 0`.
    pub fn new(peak: CurrentDensity, duty_cycle: f64) -> Result<Self, EmError> {
        if !(duty_cycle > 0.0 && duty_cycle <= 1.0) {
            return Err(EmError::InvalidDutyCycle { value: duty_cycle });
        }
        if !(peak.value() > 0.0) || !peak.is_finite() {
            return Err(EmError::NonPositiveDensity {
                value: peak.value(),
            });
        }
        Ok(Self { peak, duty_cycle })
    }

    /// Recovers the pulse description from a *measured* average density and
    /// duty cycle (`j_peak = j_avg / r`, eq. 4 inverted).
    ///
    /// # Errors
    ///
    /// Same domain checks as [`UnipolarPulse::new`].
    pub fn from_average(average: CurrentDensity, duty_cycle: f64) -> Result<Self, EmError> {
        if !(duty_cycle > 0.0 && duty_cycle <= 1.0) {
            return Err(EmError::InvalidDutyCycle { value: duty_cycle });
        }
        Self::new(average / duty_cycle, duty_cycle)
    }

    /// Recovers the pulse description from a *measured* RMS density and
    /// duty cycle (`j_peak = j_rms / √r`, eq. 5 inverted).
    ///
    /// # Errors
    ///
    /// Same domain checks as [`UnipolarPulse::new`].
    pub fn from_rms(rms: CurrentDensity, duty_cycle: f64) -> Result<Self, EmError> {
        if !(duty_cycle > 0.0 && duty_cycle <= 1.0) {
            return Err(EmError::InvalidDutyCycle { value: duty_cycle });
        }
        Self::new(rms / duty_cycle.sqrt(), duty_cycle)
    }

    /// Peak current density.
    #[must_use]
    pub fn peak(&self) -> CurrentDensity {
        self.peak
    }

    /// Duty cycle `r = t_on/T`.
    #[must_use]
    pub fn duty_cycle(&self) -> f64 {
        self.duty_cycle
    }

    /// Average current density `j_avg = r·j_peak` (eq. 4).
    #[must_use]
    pub fn average(&self) -> CurrentDensity {
        self.peak * self.duty_cycle
    }

    /// RMS current density `j_rms = √r·j_peak` (eq. 5).
    #[must_use]
    pub fn rms(&self) -> CurrentDensity {
        self.peak * self.duty_cycle.sqrt()
    }

    /// All three statistics at once.
    #[must_use]
    pub fn stats(&self) -> CurrentStats {
        CurrentStats {
            peak: self.peak(),
            average: self.average(),
            rms: self.rms(),
        }
    }
}

/// An arbitrary sampled current-density waveform j(t) over one period.
///
/// Samples are connected by straight lines (trapezoidal integration), the
/// standard treatment for SPICE transient output. The time axis must be
/// strictly increasing; the waveform is treated as one full period of a
/// periodic signal, so statistics are normalized by `t_last − t_first`.
///
/// ```
/// use hotwire_em::SampledWaveform;
/// use hotwire_units::{CurrentDensity, Seconds};
///
/// // A triangle pulse occupying the first half of a 2 ns period.
/// let w = SampledWaveform::new(
///     vec![0.0, 0.5e-9, 1.0e-9, 2.0e-9].into_iter().map(Seconds::new).collect(),
///     vec![0.0, 2.0e10, 0.0, 0.0].into_iter().map(CurrentDensity::new).collect(),
/// )?;
/// let stats = w.stats();
/// assert!(stats.is_consistent());
/// assert!(stats.effective_duty_cycle() < 0.5);
/// # Ok::<(), hotwire_em::EmError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SampledWaveform {
    times: Vec<Seconds>,
    densities: Vec<CurrentDensity>,
}

impl SampledWaveform {
    /// Creates a waveform from parallel time/density sample vectors.
    ///
    /// # Errors
    ///
    /// Returns [`EmError::InvalidSamples`] when fewer than two samples are
    /// given, the vectors disagree in length, the time axis is not strictly
    /// increasing, or any value is non-finite.
    pub fn new(times: Vec<Seconds>, densities: Vec<CurrentDensity>) -> Result<Self, EmError> {
        if times.len() != densities.len() {
            return Err(EmError::InvalidSamples {
                message: format!(
                    "length mismatch: {} times vs {} densities",
                    times.len(),
                    densities.len()
                ),
            });
        }
        if times.len() < 2 {
            return Err(EmError::InvalidSamples {
                message: "need at least two samples".to_owned(),
            });
        }
        for w in times.windows(2) {
            if !(w[1].value() > w[0].value()) {
                return Err(EmError::InvalidSamples {
                    message: "time axis must be strictly increasing".to_owned(),
                });
            }
        }
        if times.iter().any(|t| !t.is_finite()) || densities.iter().any(|j| !j.is_finite()) {
            return Err(EmError::InvalidSamples {
                message: "samples must be finite".to_owned(),
            });
        }
        Ok(Self { times, densities })
    }

    /// Builds a waveform by sampling a closure at uniform steps over
    /// `[0, period]` (inclusive of both endpoints).
    ///
    /// # Errors
    ///
    /// Returns [`EmError::InvalidSamples`] when `steps < 2`, the period is
    /// non-positive, or the closure produces non-finite values.
    pub fn from_fn(
        period: Seconds,
        steps: usize,
        mut f: impl FnMut(Seconds) -> CurrentDensity,
    ) -> Result<Self, EmError> {
        if steps < 2 {
            return Err(EmError::InvalidSamples {
                message: "need at least two steps".to_owned(),
            });
        }
        if !(period.value() > 0.0) {
            return Err(EmError::InvalidSamples {
                message: "period must be positive".to_owned(),
            });
        }
        let n = steps;
        let mut times = Vec::with_capacity(n + 1);
        let mut densities = Vec::with_capacity(n + 1);
        for i in 0..=n {
            #[allow(clippy::cast_precision_loss)]
            let t = Seconds::new(period.value() * (i as f64) / (n as f64));
            times.push(t);
            densities.push(f(t));
        }
        Self::new(times, densities)
    }

    /// Builds the wire-current waveform of a driver pushing a binary data
    /// pattern down a line: every transition of `bits` produces one
    /// triangular current pulse of width `transition_fraction` of the bit
    /// period — positive for a rising edge (charging the line), negative
    /// for a falling edge. This links switching *activity* to the
    /// effective duty cycle the thermal analysis sees (the paper's §4
    /// remark that reduced-activity lines have slightly higher r_eff per
    /// transition but fewer transitions).
    ///
    /// # Errors
    ///
    /// Returns [`EmError::InvalidSamples`] for fewer than 2 bits, a
    /// non-positive bit period or peak, or `transition_fraction`
    /// outside (0, 1].
    pub fn from_bit_stream(
        bit_period: Seconds,
        bits: &[bool],
        transition_fraction: f64,
        peak: CurrentDensity,
        samples_per_bit: usize,
    ) -> Result<Self, EmError> {
        if bits.len() < 2 {
            return Err(EmError::InvalidSamples {
                message: "need at least two bits".to_owned(),
            });
        }
        if !(bit_period.value() > 0.0) || !(peak.value() > 0.0) {
            return Err(EmError::InvalidSamples {
                message: "bit period and peak must be positive".to_owned(),
            });
        }
        if !(transition_fraction > 0.0 && transition_fraction <= 1.0) {
            return Err(EmError::InvalidSamples {
                message: format!(
                    "transition fraction must be in (0, 1], got {transition_fraction}"
                ),
            });
        }
        if samples_per_bit < 8 {
            return Err(EmError::InvalidSamples {
                message: "need at least 8 samples per bit".to_owned(),
            });
        }
        let t_bit = bit_period.value();
        let width = transition_fraction * t_bit;
        let total = Seconds::new(t_bit * bits.len() as f64);
        Self::from_fn(total, bits.len() * samples_per_bit, |t| {
            // Which bit boundary precedes t, and is there a transition?
            #[allow(
                clippy::cast_possible_truncation,
                clippy::cast_sign_loss,
                clippy::cast_precision_loss
            )]
            let k = ((t.value() / t_bit).floor() as usize).min(bits.len() - 1);
            if k == 0 || bits[k] == bits[k - 1] {
                return CurrentDensity::ZERO;
            }
            #[allow(clippy::cast_precision_loss)]
            let tau = t.value() - (k as f64) * t_bit;
            if tau >= width {
                return CurrentDensity::ZERO;
            }
            // triangular pulse, apex at width/2
            let shape = if tau < width / 2.0 {
                2.0 * tau / width
            } else {
                2.0 * (1.0 - tau / width)
            };
            let sign = if bits[k] { 1.0 } else { -1.0 };
            peak * (sign * shape)
        })
    }

    /// The sample times.
    #[must_use]
    pub fn times(&self) -> &[Seconds] {
        &self.times
    }

    /// The sampled current densities.
    #[must_use]
    pub fn densities(&self) -> &[CurrentDensity] {
        &self.densities
    }

    /// The waveform period `t_last − t_first`.
    #[must_use]
    pub fn period(&self) -> Seconds {
        *self.times.last().expect("≥2 samples") - self.times[0]
    }

    /// Peak, rectified-average and RMS current densities by trapezoidal
    /// integration over the period.
    #[must_use]
    pub fn stats(&self) -> CurrentStats {
        let mut peak: f64 = 0.0;
        let mut avg_abs = 0.0_f64;
        let mut mean_sq = 0.0_f64;
        for k in 1..self.times.len() {
            let dt = self.times[k].value() - self.times[k - 1].value();
            let a = self.densities[k - 1].value();
            let b = self.densities[k].value();
            peak = peak.max(a.abs()).max(b.abs());
            // exact integral of |linear interpolant|: split at the zero
            // crossing when the segment changes sign (a plain trapezoid of
            // endpoint magnitudes would overestimate and could violate
            // Cauchy–Schwarz against the exact mean square below)
            if a * b < 0.0 {
                avg_abs += 0.5 * dt * (a * a + b * b) / (a.abs() + b.abs());
            } else {
                avg_abs += 0.5 * (a.abs() + b.abs()) * dt;
            }
            // exact integral of the square of the linear interpolant
            mean_sq += dt * (a * a + a * b + b * b) / 3.0;
        }
        let period = self.period().value();
        CurrentStats {
            peak: CurrentDensity::new(peak),
            average: CurrentDensity::new(avg_abs / period),
            rms: CurrentDensity::new((mean_sq / period).sqrt()),
        }
    }

    /// `true` when the waveform changes sign — a bipolar (signal-line)
    /// current, which enjoys enhanced EM immunity (paper §4.1).
    #[must_use]
    pub fn is_bipolar(&self) -> bool {
        let has_pos = self.densities.iter().any(|j| j.value() > 0.0);
        let has_neg = self.densities.iter().any(|j| j.value() < 0.0);
        has_pos && has_neg
    }

    /// Scales every sample by a constant factor (e.g. to convert a current
    /// waveform in amperes to a density waveform, divide by the
    /// cross-section first and scale here).
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Self {
        Self {
            times: self.times.clone(),
            densities: self.densities.iter().map(|j| *j * factor).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ma(v: f64) -> CurrentDensity {
        CurrentDensity::from_mega_amps_per_cm2(v)
    }

    #[test]
    fn unipolar_identities() {
        let p = UnipolarPulse::new(ma(1.0), 0.01).unwrap();
        assert!((p.average().to_mega_amps_per_cm2() - 0.01).abs() < 1e-14);
        assert!((p.rms().to_mega_amps_per_cm2() - 0.1).abs() < 1e-12);
        // eq. (6): j_avg² = r · j_rms²
        let lhs = p.average().value().powi(2);
        let rhs = 0.01 * p.rms().value().powi(2);
        assert!((lhs - rhs).abs() / rhs < 1e-12);
    }

    #[test]
    fn unipolar_rejects_bad_inputs() {
        assert!(UnipolarPulse::new(ma(1.0), 0.0).is_err());
        assert!(UnipolarPulse::new(ma(1.0), 1.0001).is_err());
        assert!(UnipolarPulse::new(ma(1.0), f64::NAN).is_err());
        assert!(UnipolarPulse::new(ma(0.0), 0.5).is_err());
        assert!(UnipolarPulse::new(ma(-1.0), 0.5).is_err());
    }

    #[test]
    fn from_average_and_from_rms_invert() {
        let p = UnipolarPulse::new(ma(4.0), 0.25).unwrap();
        let q = UnipolarPulse::from_average(p.average(), 0.25).unwrap();
        assert!((q.peak().value() - p.peak().value()).abs() < 1e-3);
        let s = UnipolarPulse::from_rms(p.rms(), 0.25).unwrap();
        assert!((s.peak().value() - p.peak().value()).abs() < 1e-3);
        assert!(UnipolarPulse::from_average(ma(1.0), 0.0).is_err());
        assert!(UnipolarPulse::from_rms(ma(1.0), 2.0).is_err());
    }

    #[test]
    fn dc_waveform_has_unit_duty_cycle() {
        let p = UnipolarPulse::new(ma(2.0), 1.0).unwrap();
        let s = p.stats();
        assert!((s.effective_duty_cycle() - 1.0).abs() < 1e-12);
        assert_eq!(s.peak, s.average);
        assert_eq!(s.peak, s.rms);
    }

    #[test]
    fn sampled_rectangular_pulse_matches_ideal() {
        // Approximate an r = 0.25 rectangular pulse with dense samples.
        let period = Seconds::from_nanos(4.0);
        let w = SampledWaveform::from_fn(period, 4000, |t| {
            if t.value() < 1.0e-9 {
                ma(2.0)
            } else {
                CurrentDensity::ZERO
            }
        })
        .unwrap();
        let s = w.stats();
        let ideal = UnipolarPulse::new(ma(2.0), 0.25).unwrap().stats();
        assert!((s.peak.value() - ideal.peak.value()).abs() / ideal.peak.value() < 1e-9);
        assert!((s.average.value() - ideal.average.value()).abs() / ideal.average.value() < 1e-2);
        assert!((s.rms.value() - ideal.rms.value()).abs() / ideal.rms.value() < 1e-2);
        assert!((s.effective_duty_cycle() - 0.25).abs() < 0.01);
    }

    #[test]
    fn sampled_sine_rms_is_amplitude_over_sqrt2() {
        let period = Seconds::from_nanos(1.0);
        let w = SampledWaveform::from_fn(period, 10_000, |t| {
            ma(1.0) * (2.0 * std::f64::consts::PI * t.value() / period.value()).sin()
        })
        .unwrap();
        let s = w.stats();
        assert!((s.rms.to_mega_amps_per_cm2() - 1.0 / 2.0_f64.sqrt()).abs() < 1e-4);
        // rectified sine average = 2/π × amplitude
        assert!((s.average.to_mega_amps_per_cm2() - 2.0 / std::f64::consts::PI).abs() < 1e-4);
        assert!(w.is_bipolar());
        assert!(s.is_consistent());
    }

    #[test]
    fn sampled_validation() {
        let t = |v: &[f64]| v.iter().copied().map(Seconds::new).collect::<Vec<_>>();
        let j = |v: &[f64]| {
            v.iter()
                .copied()
                .map(CurrentDensity::new)
                .collect::<Vec<_>>()
        };
        assert!(SampledWaveform::new(t(&[0.0]), j(&[1.0])).is_err());
        assert!(SampledWaveform::new(t(&[0.0, 1.0]), j(&[1.0])).is_err());
        assert!(SampledWaveform::new(t(&[0.0, 0.0]), j(&[1.0, 1.0])).is_err());
        assert!(SampledWaveform::new(t(&[1.0, 0.0]), j(&[1.0, 1.0])).is_err());
        assert!(SampledWaveform::new(t(&[0.0, 1.0]), j(&[1.0, f64::NAN])).is_err());
        assert!(SampledWaveform::new(t(&[0.0, 1.0]), j(&[1.0, 1.0])).is_ok());
    }

    #[test]
    fn from_fn_validation() {
        assert!(SampledWaveform::from_fn(Seconds::new(1.0), 1, |_| ma(1.0)).is_err());
        assert!(SampledWaveform::from_fn(Seconds::new(0.0), 10, |_| ma(1.0)).is_err());
    }

    #[test]
    fn scaled_scales_densities_only() {
        let w = SampledWaveform::from_fn(Seconds::new(1.0), 4, |_| ma(1.0)).unwrap();
        let w2 = w.scaled(3.0);
        assert_eq!(w2.times(), w.times());
        assert!((w2.stats().peak.to_mega_amps_per_cm2() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn bit_stream_activity_drives_duty_cycle() {
        let period = Seconds::from_nanos(1.0);
        let peak = ma(2.0);
        // Full activity: toggles every bit.
        let busy: Vec<bool> = (0..32).map(|k| k % 2 == 0).collect();
        // Sparse: one toggle pair in 32 bits.
        let mut idle = vec![false; 32];
        idle[16] = true;
        let w_busy = SampledWaveform::from_bit_stream(period, &busy, 0.3, peak, 64).unwrap();
        let w_idle = SampledWaveform::from_bit_stream(period, &idle, 0.3, peak, 64).unwrap();
        let r_busy = w_busy.stats().effective_duty_cycle();
        let r_idle = w_idle.stats().effective_duty_cycle();
        assert!(
            r_busy > 3.0 * r_idle,
            "activity must raise the duty cycle: busy {r_busy} vs idle {r_idle}"
        );
        assert!(w_busy.is_bipolar());
        // RMS (the heating driver) is much higher for the busy line.
        assert!(w_busy.stats().rms.value() > 2.0 * w_idle.stats().rms.value());
        // Peak matches the requested amplitude (within sampling).
        assert!((w_busy.stats().peak.value() - peak.value()).abs() / peak.value() < 0.05);
    }

    #[test]
    fn bit_stream_validation() {
        let period = Seconds::from_nanos(1.0);
        let j = ma(1.0);
        assert!(SampledWaveform::from_bit_stream(period, &[true], 0.3, j, 64).is_err());
        assert!(
            SampledWaveform::from_bit_stream(Seconds::ZERO, &[true, false], 0.3, j, 64).is_err()
        );
        assert!(SampledWaveform::from_bit_stream(period, &[true, false], 0.0, j, 64).is_err());
        assert!(SampledWaveform::from_bit_stream(period, &[true, false], 1.5, j, 64).is_err());
        assert!(SampledWaveform::from_bit_stream(period, &[true, false], 0.3, j, 4).is_err());
        assert!(SampledWaveform::from_bit_stream(
            period,
            &[true, false],
            0.3,
            CurrentDensity::ZERO,
            64
        )
        .is_err());
    }

    #[test]
    fn unipolar_is_not_bipolar() {
        let w = SampledWaveform::from_fn(Seconds::new(1.0), 16, |t| {
            if t.value() < 0.5 {
                ma(1.0)
            } else {
                CurrentDensity::ZERO
            }
        })
        .unwrap();
        assert!(!w.is_bipolar());
    }
}
