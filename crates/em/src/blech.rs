//! Blech short-length electromigration immunity.
//!
//! Below a critical current-density × length product, the mechanical
//! back-stress that builds up at a line's blocking boundaries exactly
//! cancels the electron-wind force and mass transport stops: the line is
//! *immortal* (Blech, 1976). This complements the paper's thermally-short
//! treatment — both effects relax the rules for short wires, through
//! entirely different physics — and is the standard extension any modern
//! EM sign-off applies on top of Black's law.
//!
//! Typical critical products: 1000–3000 A/cm for AlCu between tungsten
//! studs, 1500–4000 A/cm for damascene Cu, at normal operating
//! temperatures.

use hotwire_units::{CurrentDensity, Length};
use serde::{Deserialize, Serialize};

use crate::EmError;

/// The Blech immortality criterion `j·L < (j·L)_crit`.
///
/// ```
/// use hotwire_em::blech::BlechModel;
/// use hotwire_units::{CurrentDensity, Length};
///
/// let blech = BlechModel::alcu();
/// let j = CurrentDensity::from_mega_amps_per_cm2(2.0);
/// // A 5 µm jog at 2 MA/cm²: j·L = 1000 A/cm < 2000 A/cm ⇒ immortal.
/// assert!(blech.is_immortal(j, Length::from_micrometers(5.0)));
/// // The same density over 100 µm is mortal.
/// assert!(!blech.is_immortal(j, Length::from_micrometers(100.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BlechModel {
    /// Critical product in A/m (SI): 1 A/cm = 100 A/m… careful:
    /// j[A/m²]·L[m] has units A/m; 1000 A/cm = 10⁵ A/m.
    critical_product: f64,
}

impl BlechModel {
    /// Builds a model from a critical product quoted in the customary
    /// A/cm units.
    ///
    /// # Errors
    ///
    /// Returns [`EmError::InvalidParameter`] for a non-positive product.
    pub fn from_amps_per_cm(jl_crit: f64) -> Result<Self, EmError> {
        if !(jl_crit > 0.0) || !jl_crit.is_finite() {
            return Err(EmError::InvalidParameter {
                message: format!("critical jL product must be positive, got {jl_crit}"),
            });
        }
        Ok(Self {
            critical_product: jl_crit * 100.0, // A/cm → A/m
        })
    }

    /// Typical AlCu between tungsten studs: (j·L)_crit = 2000 A/cm.
    #[must_use]
    pub const fn alcu() -> Self {
        // 2000 A/cm → A/m; built directly so the constant constructor
        // carries no panic path (HW001).
        Self {
            critical_product: 2000.0 * 100.0,
        }
    }

    /// Typical damascene Cu: (j·L)_crit = 3000 A/cm.
    #[must_use]
    pub const fn copper() -> Self {
        Self {
            critical_product: 3000.0 * 100.0,
        }
    }

    /// The critical product in A/cm.
    #[must_use]
    pub fn critical_product_amps_per_cm(&self) -> f64 {
        self.critical_product / 100.0
    }

    /// `true` when a line of the given length at the given (average)
    /// density sits below the Blech product — no net mass transport.
    #[must_use]
    pub fn is_immortal(&self, j_avg: CurrentDensity, length: Length) -> bool {
        j_avg.value() * length.value() < self.critical_product
    }

    /// The longest immortal line at a given density:
    /// `L_crit = (j·L)_crit / j`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds for non-positive densities.
    #[must_use]
    pub fn critical_length(&self, j_avg: CurrentDensity) -> Length {
        debug_assert!(j_avg.value() > 0.0);
        Length::new(self.critical_product / j_avg.value())
    }

    /// The highest density at which a line of the given length is still
    /// immortal: `j_crit = (j·L)_crit / L`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds for non-positive lengths.
    #[must_use]
    pub fn immortality_density(&self, length: Length) -> CurrentDensity {
        debug_assert!(length.value() > 0.0);
        CurrentDensity::new(self.critical_product / length.value())
    }

    /// The combined allowed average density for a line: the larger of the
    /// wearout rule (Black-based, e.g. from the self-consistent solve) and
    /// the Blech immortality bound — a short line may exceed the wearout
    /// rule outright because it cannot fail by EM at all below the Blech
    /// product.
    #[must_use]
    pub fn combined_allowed_density(
        &self,
        wearout_rule: CurrentDensity,
        length: Length,
    ) -> CurrentDensity {
        wearout_rule.max(self.immortality_density(length))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ma(v: f64) -> CurrentDensity {
        CurrentDensity::from_mega_amps_per_cm2(v)
    }

    fn um(v: f64) -> Length {
        Length::from_micrometers(v)
    }

    #[test]
    fn unit_bookkeeping() {
        // 2000 A/cm at 2 MA/cm² ⇒ L_crit = 1000 µm × 1e-2? Check directly:
        // j = 2e10 A/m², (jL)crit = 2e5 A/m ⇒ L = 1e-5 m = 10 µm.
        let b = BlechModel::alcu();
        assert!((b.critical_product_amps_per_cm() - 2000.0).abs() < 1e-9);
        let l = b.critical_length(ma(2.0));
        assert!((l.to_micrometers() - 10.0).abs() < 1e-9, "L = {l}");
    }

    #[test]
    fn immortality_boundary_is_sharp() {
        let b = BlechModel::alcu();
        let j = ma(1.0);
        let l_crit = b.critical_length(j);
        assert!(b.is_immortal(j, l_crit * 0.999));
        assert!(!b.is_immortal(j, l_crit * 1.001));
        // dual formulation agrees
        let j_crit = b.immortality_density(l_crit);
        assert!((j_crit.value() - j.value()).abs() / j.value() < 1e-12);
    }

    #[test]
    fn copper_product_exceeds_alcu() {
        assert!(
            BlechModel::copper().critical_product_amps_per_cm()
                > BlechModel::alcu().critical_product_amps_per_cm()
        );
    }

    #[test]
    fn combined_rule_helps_only_short_lines() {
        let b = BlechModel::copper();
        let wearout = ma(1.5);
        // long global line: Blech bound is tiny, wearout rule governs
        let long = b.combined_allowed_density(wearout, um(2000.0));
        assert_eq!(long, wearout);
        // 10 µm jog: Blech allows 3000 A/cm / 10 µm = 3 MA/cm² > wearout
        let short = b.combined_allowed_density(wearout, um(10.0));
        assert!((short.to_mega_amps_per_cm2() - 3.0).abs() < 1e-9);
        // 1 µm via jog: 30 MA/cm², an order above wearout
        let tiny = b.combined_allowed_density(wearout, um(1.0));
        assert!((tiny.to_mega_amps_per_cm2() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn validation() {
        assert!(BlechModel::from_amps_per_cm(0.0).is_err());
        assert!(BlechModel::from_amps_per_cm(-5.0).is_err());
        assert!(BlechModel::from_amps_per_cm(f64::NAN).is_err());
    }
}
