//! Error type for electromigration analysis.

/// Errors produced by waveform construction and EM model evaluation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EmError {
    /// A duty cycle outside the half-open interval (0, 1].
    InvalidDutyCycle {
        /// The offending value.
        value: f64,
    },
    /// A current density that must be positive was zero or negative.
    NonPositiveDensity {
        /// The offending value in A/m².
        value: f64,
    },
    /// A sampled waveform had fewer than two samples or a non-increasing
    /// time axis.
    InvalidSamples {
        /// Description of the defect.
        message: String,
    },
    /// A model parameter (exponent, activation energy) was non-physical.
    InvalidParameter {
        /// Description of the defect.
        message: String,
    },
}

impl std::fmt::Display for EmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EmError::InvalidDutyCycle { value } => {
                write!(f, "duty cycle must be in (0, 1], got {value}")
            }
            EmError::NonPositiveDensity { value } => {
                write!(f, "current density must be positive, got {value} A/m²")
            }
            EmError::InvalidSamples { message } => write!(f, "invalid waveform samples: {message}"),
            EmError::InvalidParameter { message } => write!(f, "invalid parameter: {message}"),
        }
    }
}

impl std::error::Error for EmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(
            EmError::InvalidDutyCycle { value: 1.5 }.to_string(),
            "duty cycle must be in (0, 1], got 1.5"
        );
        assert_eq!(
            EmError::NonPositiveDensity { value: -3.0 }.to_string(),
            "current density must be positive, got -3 A/m²"
        );
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EmError>();
    }
}
