//! Electromigration derating models.
//!
//! Two second-order effects the paper calls out qualitatively:
//!
//! * **Bipolar (signal-line) EM immunity** — §4.1: "these lines are known
//!   to have much higher EM immunity, hence the self-consistent values …
//!   are lower bounds". Following Liew, Cheung & Hu \[7\], damage driven by
//!   forward current is partially *healed* by the reverse half-cycle;
//!   [`bipolar_effective_density`] reduces a bipolar waveform to the
//!   equivalent DC density that Black's law should see.
//! * **Latent ESD damage** — §6 / ref. \[9\]: a line that melted and
//!   resolidified under a short high-current pulse survives, but its EM
//!   lifetime degrades. [`latent_damage_factor`] maps the peak transient
//!   temperature to a multiplicative lifetime derating.

use hotwire_units::{CurrentDensity, Kelvin};

use crate::{EmError, SampledWaveform};

/// Reduces a (possibly bipolar) waveform to the equivalent unidirectional
/// average current density for Black's law.
///
/// The model is the *sweepback* form of Liew et al. \[7\]: with `j⁺` the
/// average forward density and `j⁻` the average reverse density (both
/// ≥ 0), the damage-effective density interpolates between the
/// conservative rectified average and the perfectly healed net average:
///
/// `j_eff = (1 − η)·(j⁺ + j⁻) + η·|j⁺ − j⁻|`
///
/// where `η ∈ [0, 1]` is the healing (recovery) efficiency of reverse
/// current. `η = 0` reproduces the conservative rectified average; `η = 1`
/// is perfect healing (pure symmetric AC stress does no EM damage).
///
/// # Errors
///
/// Returns [`EmError::InvalidParameter`] when `recovery_efficiency` is
/// outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// use hotwire_em::{derating::bipolar_effective_density, SampledWaveform};
/// use hotwire_units::{CurrentDensity, Seconds};
///
/// // Symmetric square wave: equal forward and reverse charge.
/// let w = SampledWaveform::from_fn(Seconds::from_nanos(2.0), 512, |t| {
///     let j = CurrentDensity::from_mega_amps_per_cm2(1.0);
///     if t.value() < 1.0e-9 { j } else { -j }
/// })?;
/// let conservative = bipolar_effective_density(&w, 0.0)?;
/// let perfect = bipolar_effective_density(&w, 1.0)?;
/// assert!(conservative.to_mega_amps_per_cm2() > 0.9);
/// assert!(perfect.to_mega_amps_per_cm2() < 0.05);
/// # Ok::<(), hotwire_em::EmError>(())
/// ```
pub fn bipolar_effective_density(
    waveform: &SampledWaveform,
    recovery_efficiency: f64,
) -> Result<CurrentDensity, EmError> {
    if !(0.0..=1.0).contains(&recovery_efficiency) {
        return Err(EmError::InvalidParameter {
            message: format!("recovery efficiency must be in [0, 1], got {recovery_efficiency}"),
        });
    }
    let times = waveform.times();
    let densities = waveform.densities();
    let mut forward = 0.0_f64;
    let mut reverse = 0.0_f64;
    for k in 1..times.len() {
        let dt = times[k].value() - times[k - 1].value();
        let a = densities[k - 1].value();
        let b = densities[k].value();
        // Split the trapezoid into its positive and negative parts. When a
        // segment crosses zero, split at the crossing.
        if a >= 0.0 && b >= 0.0 {
            forward += 0.5 * (a + b) * dt;
        } else if a <= 0.0 && b <= 0.0 {
            reverse += 0.5 * (-a - b) * dt;
        } else {
            // linear crossing at fraction f = a / (a - b)
            let f = a / (a - b);
            let area_first = 0.5 * a * f * dt;
            let area_second = 0.5 * b * (1.0 - f) * dt;
            if a > 0.0 {
                forward += area_first;
                reverse += -area_second;
            } else {
                reverse += -area_first;
                forward += area_second;
            }
        }
    }
    let period = waveform.period().value();
    let j_fwd = forward / period;
    let j_rev = reverse / period;
    let rectified = j_fwd + j_rev;
    let healed = (j_fwd - j_rev).abs();
    Ok(CurrentDensity::new(
        (1.0 - recovery_efficiency) * rectified + recovery_efficiency * healed,
    ))
}

/// Multiplicative EM-lifetime derating for a line whose peak transient
/// temperature approached or exceeded the melting point (latent ESD
/// damage, ref. \[9\]).
///
/// * Below `0.8·T_melt` (absolute) the microstructure is unaffected:
///   factor 1.
/// * Between `0.8·T_melt` and `T_melt` the factor falls linearly to the
///   resolidification floor (default 0.3, the lifetime degradation scale
///   reported for resolidified AlCu lines).
/// * At or above `T_melt` (the line melted and resolidified): the floor.
///
/// # Examples
///
/// ```
/// use hotwire_em::derating::latent_damage_factor;
/// use hotwire_units::Kelvin;
///
/// let melt = Kelvin::new(933.5); // AlCu
/// assert_eq!(latent_damage_factor(Kelvin::new(400.0), melt, 0.3), 1.0);
/// assert_eq!(latent_damage_factor(Kelvin::new(1000.0), melt, 0.3), 0.3);
/// let partial = latent_damage_factor(Kelvin::new(850.0), melt, 0.3);
/// assert!(partial > 0.3 && partial < 1.0);
/// ```
#[must_use]
pub fn latent_damage_factor(
    peak_temperature: Kelvin,
    melting_point: Kelvin,
    resolidified_floor: f64,
) -> f64 {
    let onset = 0.8 * melting_point.value();
    let t = peak_temperature.value();
    if t <= onset {
        1.0
    } else if t >= melting_point.value() {
        resolidified_floor
    } else {
        let frac = (t - onset) / (melting_point.value() - onset);
        1.0 - frac * (1.0 - resolidified_floor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotwire_units::Seconds;

    fn ma(v: f64) -> CurrentDensity {
        CurrentDensity::from_mega_amps_per_cm2(v)
    }

    #[test]
    fn unipolar_waveform_unaffected_by_recovery() {
        let w = SampledWaveform::from_fn(Seconds::from_nanos(2.0), 256, |t| {
            if t.value() < 0.5e-9 {
                ma(2.0)
            } else {
                CurrentDensity::ZERO
            }
        })
        .unwrap();
        let j0 = bipolar_effective_density(&w, 0.0).unwrap();
        let j1 = bipolar_effective_density(&w, 1.0).unwrap();
        assert!((j0.value() - j1.value()).abs() / j0.value() < 1e-9);
        // ≈ r·j_peak = 0.25·2 MA/cm²
        assert!((j0.to_mega_amps_per_cm2() - 0.5).abs() < 0.01);
    }

    #[test]
    fn recovery_efficiency_interpolates() {
        let w = SampledWaveform::from_fn(Seconds::from_nanos(2.0), 2048, |t| {
            if t.value() < 1.0e-9 {
                ma(1.0)
            } else {
                -ma(0.5)
            }
        })
        .unwrap();
        // forward avg 0.5, reverse avg 0.25 → rectified 0.75, healed 0.25
        let j_zero = bipolar_effective_density(&w, 0.0).unwrap();
        assert!((j_zero.to_mega_amps_per_cm2() - 0.75).abs() < 0.01);
        let j_half = bipolar_effective_density(&w, 0.5).unwrap();
        assert!((j_half.to_mega_amps_per_cm2() - 0.5).abs() < 0.01);
        let j_full = bipolar_effective_density(&w, 1.0).unwrap();
        assert!((j_full.to_mega_amps_per_cm2() - 0.25).abs() < 0.01);
    }

    #[test]
    fn zero_crossing_segments_split_exactly() {
        // Triangle from +1 to -1 over the period: forward and reverse areas
        // are equal (0.25 each of the peak).
        let w = SampledWaveform::new(
            vec![Seconds::new(0.0), Seconds::new(1.0)],
            vec![ma(1.0), -ma(1.0)],
        )
        .unwrap();
        let j = bipolar_effective_density(&w, 0.0).unwrap();
        assert!((j.to_mega_amps_per_cm2() - 0.5).abs() < 1e-9);
        let j_healed = bipolar_effective_density(&w, 1.0).unwrap();
        assert!(j_healed.to_mega_amps_per_cm2() < 1e-9);
    }

    #[test]
    fn invalid_recovery_rejected() {
        let w = SampledWaveform::from_fn(Seconds::new(1.0), 4, |_| ma(1.0)).unwrap();
        assert!(bipolar_effective_density(&w, -0.1).is_err());
        assert!(bipolar_effective_density(&w, 1.1).is_err());
    }

    #[test]
    fn latent_damage_monotone_in_temperature() {
        let melt = Kelvin::new(1357.8);
        let mut prev = 1.0;
        for i in 0..30 {
            let t = Kelvin::new(900.0 + 20.0 * f64::from(i));
            let f = latent_damage_factor(t, melt, 0.3);
            assert!(f <= prev + 1e-12);
            assert!((0.3..=1.0).contains(&f));
            prev = f;
        }
    }
}
