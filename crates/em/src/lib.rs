//! Electromigration analysis: current waveform statistics and Black's
//! equation.
//!
//! The paper's design-rule machinery needs three things from this crate:
//!
//! 1. **Current-density statistics** of a waveform — peak, average and RMS
//!    densities and the (effective) duty cycle that links them
//!    (`j_avg = r·j_peak`, `j_rms = √r·j_peak` for unipolar pulses,
//!    eqs. 4–5; `r_eff = (I_avg/I_rms)²` for arbitrary waveforms per
//!    Hunter \[18\]). See [`UnipolarPulse`] and [`SampledWaveform`].
//! 2. **Black's equation** `TTF = A·j⁻ⁿ·exp(Q/(k_B·T))` and the lifetime
//!    *ratio* between two stress conditions, which is all the
//!    self-consistent equation consumes. See [`BlackModel`].
//! 3. **Derating hooks** for bipolar (signal-line) EM immunity and
//!    post-ESD latent damage. See [`derating`].
//!
//! # Examples
//!
//! ```
//! use hotwire_em::{BlackModel, UnipolarPulse};
//! use hotwire_tech::Metal;
//! use hotwire_units::{Celsius, CurrentDensity};
//!
//! let pulse = UnipolarPulse::new(CurrentDensity::from_mega_amps_per_cm2(2.0), 0.1)?;
//! assert!((pulse.average().to_mega_amps_per_cm2() - 0.2).abs() < 1e-12);
//!
//! let black = BlackModel::for_metal(&Metal::copper());
//! let t_ref = Celsius::new(100.0).to_kelvin();
//! // Hotter metal at the same stress lives shorter:
//! let hot = Celsius::new(150.0).to_kelvin();
//! assert!(black.lifetime_ratio(pulse.average(), hot, pulse.average(), t_ref) < 1.0);
//! # Ok::<(), hotwire_em::EmError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// `!(x > 0.0)` is used deliberately throughout validation code: unlike
// `x <= 0.0` it also rejects NaN, which must never enter a solver.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

mod black;
pub mod blech;
pub mod derating;
mod error;
pub mod lifetime;
mod waveform;

pub use black::{BlackModel, TEN_YEARS};
pub use error::EmError;
pub use waveform::{CurrentStats, SampledWaveform, UnipolarPulse};
