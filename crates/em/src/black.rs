//! Black's equation and the lifetime algebra the self-consistent design
//! rules are built on.

use hotwire_tech::{ElectromigrationParams, Metal};
use hotwire_units::{CurrentDensity, Kelvin, Seconds};
use serde::{Deserialize, Serialize};

use crate::EmError;

/// Black's electromigration lifetime model
/// `TTF = A · j⁻ⁿ · exp(Q/(k_B·T))` (paper eq. 6, Black \[6\]).
///
/// The geometry/microstructure prefactor `A` cancels in every comparison
/// the design-rule machinery makes, so the model is normalized such that
/// `ttf(j₀, T_anchor) = lifetime_goal` (10 years at 100 °C by default) —
/// exactly how accelerated test data anchor `j₀` in practice.
///
/// ```
/// use hotwire_em::BlackModel;
/// use hotwire_tech::Metal;
/// use hotwire_units::{Celsius, CurrentDensity};
///
/// let black = BlackModel::for_metal(&Metal::alcu());
/// let t_ref = Celsius::new(100.0).to_kelvin();
/// let j0 = Metal::alcu().em().design_rule_j0;
/// // The anchor condition meets the lifetime goal exactly:
/// let ttf = black.ttf(j0, t_ref);
/// assert!((ttf.value() - black.lifetime_goal().value()).abs() < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlackModel {
    params: ElectromigrationParams,
    anchor_temperature: Kelvin,
    lifetime_goal: Seconds,
}

/// Ten years, the paper's reliability goal, in seconds.
pub const TEN_YEARS: Seconds = Seconds::new(10.0 * 365.25 * 24.0 * 3600.0);

impl BlackModel {
    /// Builds a model from explicit EM parameters, anchored so that the
    /// design-rule density `params.design_rule_j0` at `anchor_temperature`
    /// yields exactly `lifetime_goal`.
    ///
    /// # Errors
    ///
    /// Returns [`EmError::InvalidParameter`] when the exponent or
    /// activation energy is non-positive.
    pub fn new(
        params: ElectromigrationParams,
        anchor_temperature: Kelvin,
        lifetime_goal: Seconds,
    ) -> Result<Self, EmError> {
        if !(params.current_exponent > 0.0) {
            return Err(EmError::InvalidParameter {
                message: format!(
                    "current exponent must be positive, got {}",
                    params.current_exponent
                ),
            });
        }
        if !(params.activation_energy.value() > 0.0) {
            return Err(EmError::InvalidParameter {
                message: format!(
                    "activation energy must be positive, got {}",
                    params.activation_energy
                ),
            });
        }
        if !(params.design_rule_j0.value() > 0.0) {
            return Err(EmError::InvalidParameter {
                message: "design-rule j0 must be positive".to_owned(),
            });
        }
        Ok(Self {
            params,
            anchor_temperature,
            lifetime_goal,
        })
    }

    /// Model for a metal's built-in EM parameters, anchored at 100 °C /
    /// 10 years (the paper's goal).
    ///
    /// # Panics
    ///
    /// Never panics for the built-in metals, whose parameters are valid by
    /// construction.
    #[must_use]
    pub fn for_metal(metal: &Metal) -> Self {
        Self::new(
            metal.em(),
            hotwire_units::Celsius::new(100.0).to_kelvin(),
            TEN_YEARS,
        )
        .expect("built-in metal parameters are valid")
    }

    /// The underlying EM parameters.
    #[must_use]
    pub fn params(&self) -> ElectromigrationParams {
        self.params
    }

    /// The lifetime achieved at the anchor condition (j₀, T_anchor).
    #[must_use]
    pub fn lifetime_goal(&self) -> Seconds {
        self.lifetime_goal
    }

    /// The anchor (reference) temperature.
    #[must_use]
    pub fn anchor_temperature(&self) -> Kelvin {
        self.anchor_temperature
    }

    /// Time-to-fail at an average current density and metal temperature.
    ///
    /// # Panics
    ///
    /// Panics in debug builds for non-positive `j` — query
    /// [`BlackModel::lifetime_ratio`] with explicit conditions instead of
    /// feeding degenerate stress.
    #[must_use]
    pub fn ttf(&self, j_avg: CurrentDensity, temperature: Kelvin) -> Seconds {
        debug_assert!(j_avg.value() > 0.0, "TTF of zero stress is unbounded");
        self.lifetime_goal
            * self.lifetime_ratio(
                j_avg,
                temperature,
                self.params.design_rule_j0,
                self.anchor_temperature,
            )
    }

    /// Batch [`BlackModel::ttf`] over many `(j_avg, T)` stress points —
    /// the per-branch EM stage of a chip-level signoff, where every
    /// strap sees its own current and its own local temperature. The
    /// Arrhenius constant `Q/k_B` and the density reference are hoisted
    /// out of the loop; results are in input order.
    ///
    /// # Panics
    ///
    /// Panics in debug builds for a non-positive `j`, as
    /// [`BlackModel::ttf`] does.
    #[must_use]
    pub fn batch_ttf(&self, stresses: &[(CurrentDensity, Kelvin)]) -> Vec<Seconds> {
        let q_over_kb =
            self.params.activation_energy.value() / hotwire_units::consts::BOLTZMANN_EV_PER_K;
        let n = self.params.current_exponent;
        let j0 = self.params.design_rule_j0.value();
        let inv_t_ref = 1.0 / self.anchor_temperature.value();
        let goal = self.lifetime_goal.value();
        stresses
            .iter()
            .map(|&(j, t)| {
                debug_assert!(j.value() > 0.0, "TTF of zero stress is unbounded");
                let density_term = (j0 / j.value()).powf(n);
                let arrhenius = (q_over_kb * (1.0 / t.value() - inv_t_ref)).exp();
                Seconds::new(goal * density_term * arrhenius)
            })
            .collect()
    }

    /// The lifetime ratio `TTF(j_a, T_a) / TTF(j_b, T_b)` — prefactor-free:
    ///
    /// `ratio = (j_b/j_a)ⁿ · exp[(Q/k_B)·(1/T_a − 1/T_b)]`
    #[must_use]
    pub fn lifetime_ratio(
        &self,
        j_a: CurrentDensity,
        t_a: Kelvin,
        j_b: CurrentDensity,
        t_b: Kelvin,
    ) -> f64 {
        let q_over_kb =
            self.params.activation_energy.value() / hotwire_units::consts::BOLTZMANN_EV_PER_K;
        let density_term = (j_b / j_a).powf(self.params.current_exponent);
        let arrhenius = (q_over_kb * (1.0 / t_a.value() - 1.0 / t_b.value())).exp();
        density_term * arrhenius
    }

    /// The maximum average current density that still meets the lifetime
    /// goal at metal temperature `T_m` (eq. 12 solved for j):
    ///
    /// `j_allowed = j₀ · exp[(Q/(n·k_B))·(1/T_m − 1/T_ref)]`
    ///
    /// Hotter than the anchor ⇒ the allowed density shrinks.
    #[must_use]
    pub fn allowed_average_density(&self, metal_temperature: Kelvin) -> CurrentDensity {
        let q_over_kb =
            self.params.activation_energy.value() / hotwire_units::consts::BOLTZMANN_EV_PER_K;
        let exponent = (q_over_kb / self.params.current_exponent)
            * (1.0 / metal_temperature.value() - 1.0 / self.anchor_temperature.value());
        self.params.design_rule_j0 * exponent.exp()
    }

    /// The right-hand side of the paper's self-consistent eq. (13):
    /// `j₀² · exp[(Q/k_B)·(1/T_m − 1/T_ref)]`, i.e. the square of the
    /// allowed average density for `n = 2`.
    ///
    /// Exposed separately (C-INTERMEDIATE) because the self-consistent
    /// solver in `hotwire-core` iterates on it directly; units are
    /// (A/m²)².
    #[must_use]
    pub fn self_consistent_rhs(&self, metal_temperature: Kelvin) -> f64 {
        let j = self.allowed_average_density(metal_temperature).value();
        let n = self.params.current_exponent;
        // For general n, the "squared allowed density" generalizes to j².
        // (j_allowed already folds the 1/n into the exponent.)
        let _ = n;
        j * j
    }

    /// Returns a copy anchored to a different design-rule density (the
    /// paper's j₀ sweep, Fig. 3 / Table 3).
    #[must_use]
    pub fn with_design_rule_j0(mut self, j0: CurrentDensity) -> Self {
        self.params.design_rule_j0 = j0;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotwire_units::Celsius;

    fn ma(v: f64) -> CurrentDensity {
        CurrentDensity::from_mega_amps_per_cm2(v)
    }

    fn t_c(v: f64) -> Kelvin {
        Celsius::new(v).to_kelvin()
    }

    #[test]
    fn anchor_condition_meets_goal() {
        let b = BlackModel::for_metal(&Metal::copper());
        let ttf = b.ttf(b.params().design_rule_j0, t_c(100.0));
        assert!((ttf / TEN_YEARS - 1.0).abs() < 1e-12);
    }

    #[test]
    fn doubling_current_quarters_lifetime() {
        // n = 2 ⇒ TTF ∝ j⁻²
        let b = BlackModel::for_metal(&Metal::copper());
        let r = b.lifetime_ratio(ma(2.0), t_c(100.0), ma(1.0), t_c(100.0));
        assert!((r - 0.25).abs() < 1e-12);
    }

    #[test]
    fn heating_shortens_life_exponentially() {
        let b = BlackModel::for_metal(&Metal::alcu());
        let r1 = b.lifetime_ratio(ma(1.0), t_c(110.0), ma(1.0), t_c(100.0));
        let r2 = b.lifetime_ratio(ma(1.0), t_c(150.0), ma(1.0), t_c(100.0));
        assert!(r1 < 1.0);
        assert!(r2 < r1);
        // Known magnitude: Q = 0.7 eV, 100→150 °C cuts lifetime ~12×.
        assert!(r2 < 0.15 && r2 > 0.02, "r2 = {r2}");
    }

    #[test]
    fn allowed_density_shrinks_with_temperature() {
        let b = BlackModel::for_metal(&Metal::copper());
        let j100 = b.allowed_average_density(t_c(100.0));
        let j150 = b.allowed_average_density(t_c(150.0));
        assert!((j100.value() - b.params().design_rule_j0.value()).abs() < 1e-3);
        assert!(j150 < j100);
        // ...and the allowed density at T still meets the goal at T:
        let ttf = b.ttf(j150, t_c(150.0));
        assert!((ttf / TEN_YEARS - 1.0).abs() < 1e-9);
    }

    #[test]
    fn self_consistent_rhs_is_squared_allowed_density() {
        let b = BlackModel::for_metal(&Metal::copper());
        let t = t_c(132.0);
        let j = b.allowed_average_density(t).value();
        assert!((b.self_consistent_rhs(t) - j * j).abs() / (j * j) < 1e-12);
    }

    #[test]
    fn rhs_monotonically_decreasing_in_temperature() {
        let b = BlackModel::for_metal(&Metal::copper());
        let mut prev = f64::INFINITY;
        for i in 0..50 {
            let t = Kelvin::new(373.15 + 5.0 * f64::from(i));
            let rhs = b.self_consistent_rhs(t);
            assert!(rhs < prev, "RHS must decrease with T");
            prev = rhs;
        }
    }

    #[test]
    fn with_design_rule_j0_scales_rhs_quadratically() {
        let b = BlackModel::for_metal(&Metal::copper()).with_design_rule_j0(ma(0.6));
        let b3 = b.clone().with_design_rule_j0(ma(1.8));
        let t = t_c(120.0);
        let ratio = b3.self_consistent_rhs(t) / b.self_consistent_rhs(t);
        assert!((ratio - 9.0).abs() < 1e-9);
    }

    #[test]
    fn invalid_parameters_rejected() {
        let mut p = ElectromigrationParams::alcu();
        p.current_exponent = 0.0;
        assert!(BlackModel::new(p, t_c(100.0), TEN_YEARS).is_err());
        let mut p = ElectromigrationParams::alcu();
        p.activation_energy = hotwire_units::ElectronVolts::new(-0.1);
        assert!(BlackModel::new(p, t_c(100.0), TEN_YEARS).is_err());
        let mut p = ElectromigrationParams::alcu();
        p.design_rule_j0 = CurrentDensity::ZERO;
        assert!(BlackModel::new(p, t_c(100.0), TEN_YEARS).is_err());
    }

    #[test]
    fn lifetime_ratio_symmetry() {
        let b = BlackModel::for_metal(&Metal::copper());
        let r = b.lifetime_ratio(ma(1.3), t_c(140.0), ma(0.8), t_c(100.0));
        let r_inv = b.lifetime_ratio(ma(0.8), t_c(100.0), ma(1.3), t_c(140.0));
        assert!((r * r_inv - 1.0).abs() < 1e-12);
    }

    #[test]
    fn batch_ttf_matches_pointwise() {
        let b = BlackModel::for_metal(&Metal::copper()).with_design_rule_j0(ma(0.6));
        let stresses: Vec<_> = (1..20)
            .map(|k| (ma(0.2 + 0.1 * f64::from(k)), t_c(80.0 + 5.0 * f64::from(k))))
            .collect();
        let batch = b.batch_ttf(&stresses);
        assert_eq!(batch.len(), stresses.len());
        for (&(j, t), &got) in stresses.iter().zip(&batch) {
            let want = b.ttf(j, t);
            let rel = (got.value() - want.value()).abs() / want.value();
            assert!(rel < 1e-12, "({j}, {t}): {got} vs {want}");
        }
    }
}
