//! Lognormal time-to-fail statistics.
//!
//! Black's equation predicts a *scale* for the lifetime; real EM failure
//! times of a population of lines scatter lognormally around it. The
//! paper's TTF is quoted "typically for 0.1 % cumulative failure" — i.e.
//! the early tail of that distribution, not its median. This module
//! converts between the median, arbitrary cumulative-failure quantiles
//! and instantaneous failure fractions, so a `TTF(j, T)` from
//! [`crate::BlackModel`] can be restated at any population percentile.
//!
//! The deviation σ (the lognormal shape parameter) is a measured film
//! property; values of 0.3–0.7 are typical for AlCu/Cu damascene lines.

use hotwire_units::Seconds;
use serde::{Deserialize, Serialize};

use crate::EmError;

/// A lognormal lifetime distribution: `ln(TTF) ~ N(ln(median), σ²)`.
///
/// ```
/// use hotwire_em::lifetime::LognormalLifetime;
/// use hotwire_units::Seconds;
///
/// let years = |y: f64| Seconds::new(y * 365.25 * 24.0 * 3600.0);
/// let dist = LognormalLifetime::new(years(30.0), 0.5)?;
/// // The 0.1 % early tail is far below the median:
/// let t_tail = dist.time_to_fraction(1.0e-3)?;
/// assert!(t_tail < years(10.0));
/// assert!(t_tail > years(1.0));
/// # Ok::<(), hotwire_em::EmError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LognormalLifetime {
    median: Seconds,
    sigma: f64,
}

impl LognormalLifetime {
    /// Creates a distribution from its median and lognormal σ.
    ///
    /// # Errors
    ///
    /// Returns [`EmError::InvalidParameter`] for non-positive median or σ.
    pub fn new(median: Seconds, sigma: f64) -> Result<Self, EmError> {
        if !(median.value() > 0.0) {
            return Err(EmError::InvalidParameter {
                message: format!("median lifetime must be positive, got {median}"),
            });
        }
        if !(sigma > 0.0) || !sigma.is_finite() {
            return Err(EmError::InvalidParameter {
                message: format!("lognormal sigma must be positive, got {sigma}"),
            });
        }
        Ok(Self { median, sigma })
    }

    /// Anchors the distribution so that the given cumulative failure
    /// fraction is reached exactly at `time` — the inverse of
    /// [`LognormalLifetime::time_to_fraction`]. This is how an
    /// accelerated-test "TTF at 0.1 % failures" maps onto a full
    /// population model.
    ///
    /// # Errors
    ///
    /// Returns [`EmError::InvalidParameter`] for out-of-range inputs.
    pub fn from_quantile(time: Seconds, fraction: f64, sigma: f64) -> Result<Self, EmError> {
        if !(time.value() > 0.0) {
            return Err(EmError::InvalidParameter {
                message: "quantile time must be positive".to_owned(),
            });
        }
        if !(fraction > 0.0 && fraction < 1.0) {
            return Err(EmError::InvalidParameter {
                message: format!("fraction must be in (0, 1), got {fraction}"),
            });
        }
        if !(sigma > 0.0) || !sigma.is_finite() {
            return Err(EmError::InvalidParameter {
                message: format!("lognormal sigma must be positive, got {sigma}"),
            });
        }
        // t_f = median · exp(σ · Φ⁻¹(f))  ⇒  median = t_f · exp(−σ·Φ⁻¹(f))
        let z = inverse_normal_cdf(fraction);
        let median = Seconds::new(time.value() * (-sigma * z).exp());
        Self::new(median, sigma)
    }

    /// The median lifetime (50 % cumulative failures).
    #[must_use]
    pub fn median(&self) -> Seconds {
        self.median
    }

    /// The lognormal shape parameter σ.
    #[must_use]
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// The time at which the given cumulative failure fraction is
    /// reached: `t_f = median · exp(σ·Φ⁻¹(f))`.
    ///
    /// # Errors
    ///
    /// Returns [`EmError::InvalidParameter`] unless `0 < fraction < 1`.
    pub fn time_to_fraction(&self, fraction: f64) -> Result<Seconds, EmError> {
        if !(fraction > 0.0 && fraction < 1.0) {
            return Err(EmError::InvalidParameter {
                message: format!("fraction must be in (0, 1), got {fraction}"),
            });
        }
        let z = inverse_normal_cdf(fraction);
        Ok(Seconds::new(self.median.value() * (self.sigma * z).exp()))
    }

    /// The cumulative failure fraction at a given time:
    /// `F(t) = Φ(ln(t/median)/σ)`.
    ///
    /// Returns 0 for non-positive times.
    #[must_use]
    pub fn failure_fraction_at(&self, time: Seconds) -> f64 {
        if time.value() <= 0.0 {
            return 0.0;
        }
        let z = (time.value() / self.median.value()).ln() / self.sigma;
        normal_cdf(z)
    }

    /// Scales the whole distribution's time axis (e.g. by a Black's-law
    /// lifetime ratio or a latent-damage derating factor).
    ///
    /// # Errors
    ///
    /// Returns [`EmError::InvalidParameter`] for a non-positive factor.
    pub fn scaled(&self, factor: f64) -> Result<Self, EmError> {
        if !(factor > 0.0) || !factor.is_finite() {
            return Err(EmError::InvalidParameter {
                message: format!("scale factor must be positive, got {factor}"),
            });
        }
        Self::new(self.median * factor, self.sigma)
    }
}

/// Weakest-link (series system) failure statistics of a population of
/// independently failing members, e.g. every mortal strap of a power
/// grid: the chip fails when its *first* member fails, so
/// `F_chip(t) = 1 − Π(1 − F_i(t))`.
///
/// ```
/// use hotwire_em::lifetime::{LognormalLifetime, WeakestLinkPopulation};
/// use hotwire_units::Seconds;
///
/// let member = LognormalLifetime::new(Seconds::new(1.0e9), 0.5)?;
/// let chip = WeakestLinkPopulation::new(vec![member; 100])?;
/// // 100 identical links fail (to a fraction) sooner than one.
/// let alone = member.time_to_fraction(1.0e-3)?;
/// let chained = chip.time_to_fraction(1.0e-3)?;
/// assert!(chained < alone);
/// # Ok::<(), hotwire_em::EmError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeakestLinkPopulation {
    members: Vec<LognormalLifetime>,
}

impl WeakestLinkPopulation {
    /// Builds the series system from its members' distributions.
    ///
    /// # Errors
    ///
    /// Returns [`EmError::InvalidParameter`] for an empty population.
    pub fn new(members: Vec<LognormalLifetime>) -> Result<Self, EmError> {
        if members.is_empty() {
            return Err(EmError::InvalidParameter {
                message: "weakest-link population needs at least one member".to_owned(),
            });
        }
        Ok(Self { members })
    }

    /// Number of members.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Always `false`: construction rejects empty populations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The member distributions.
    #[must_use]
    pub fn members(&self) -> &[LognormalLifetime] {
        &self.members
    }

    /// The system's cumulative failure fraction at `time`:
    /// `1 − Π(1 − F_i)`, accumulated in log space (`ln(1−F)`) so a
    /// thousand tiny per-member fractions don't round to zero.
    #[must_use]
    pub fn failure_fraction_at(&self, time: Seconds) -> f64 {
        let log_survival: f64 = self
            .members
            .iter()
            .map(|m| (-m.failure_fraction_at(time)).ln_1p())
            .sum();
        -log_survival.exp_m1()
    }

    /// The time at which the *system* reaches a cumulative failure
    /// fraction, found by bisection (the mixture has no closed form).
    ///
    /// # Errors
    ///
    /// Returns [`EmError::InvalidParameter`] unless `0 < fraction < 1`.
    pub fn time_to_fraction(&self, fraction: f64) -> Result<Seconds, EmError> {
        if !(fraction > 0.0 && fraction < 1.0) {
            return Err(EmError::InvalidParameter {
                message: format!("fraction must be in (0, 1), got {fraction}"),
            });
        }
        // The system fails no later than its weakest member at the same
        // fraction: that member alone already contributes F ≥ fraction.
        let mut hi = f64::INFINITY;
        for m in &self.members {
            hi = hi.min(m.time_to_fraction(fraction)?.value());
        }
        let mut lo = hi;
        while self.failure_fraction_at(Seconds::new(lo)) > fraction {
            lo /= 2.0;
            if lo < f64::MIN_POSITIVE {
                return Ok(Seconds::ZERO);
            }
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.failure_fraction_at(Seconds::new(mid)) > fraction {
                hi = mid;
            } else {
                lo = mid;
            }
            if hi - lo <= 1e-12 * hi {
                break;
            }
        }
        Ok(Seconds::new(0.5 * (lo + hi)))
    }
}

/// The standard normal CDF Φ, via `erfc`:
/// `Φ(z) = erfc(−z/√2)/2`.
#[must_use]
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * erfc(-z / std::f64::consts::SQRT_2)
}

/// The complementary error function, by the Numerical-Recipes rational
/// Chebyshev fit (relative error < 1.2×10⁻⁷ everywhere).
#[must_use]
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.265_512_23
            + t * (1.000_023_68
                + t * (0.374_091_96
                    + t * (0.096_784_18
                        + t * (-0.186_288_06
                            + t * (0.278_868_07
                                + t * (-1.135_203_98
                                    + t * (1.488_515_87
                                        + t * (-0.822_152_23 + t * 0.170_872_77)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// The inverse standard normal CDF Φ⁻¹ (probit), by Acklam's algorithm
/// with one Halley refinement step — accurate to ~1e-7 over (0, 1)
/// (limited by the [`erfc`] fit used in the refinement).
///
/// # Panics
///
/// Panics in debug builds when `p` is outside `(0, 1)`.
#[must_use]
pub fn inverse_normal_cdf(p: f64) -> f64 {
    debug_assert!(p > 0.0 && p < 1.0, "probit domain is (0, 1)");
    // Coefficients for the central and tail rational approximations.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    // One Halley refinement against the forward CDF.
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn years(y: f64) -> Seconds {
        Seconds::new(y * 365.25 * 24.0 * 3600.0)
    }

    #[test]
    fn probit_round_trips_cdf() {
        for &p in &[1e-4, 1e-3, 0.025, 0.1, 0.5, 0.9, 0.975, 0.999, 0.9999] {
            let z = inverse_normal_cdf(p);
            let back = normal_cdf(z);
            assert!((back - p).abs() < 1e-6, "p = {p}: z = {z}, back = {back}");
        }
    }

    #[test]
    fn probit_known_values() {
        // accuracy is limited by the ~1.2e-7 relative error of the erfc
        // fit used in the Halley refinement
        assert!(inverse_normal_cdf(0.5).abs() < 1e-6);
        // Φ⁻¹(0.975) ≈ 1.959964
        assert!((inverse_normal_cdf(0.975) - 1.959_964).abs() < 1e-4);
        // Φ⁻¹(0.001) ≈ −3.090232
        assert!((inverse_normal_cdf(0.001) + 3.090_232).abs() < 1e-4);
    }

    #[test]
    fn erfc_symmetry_and_anchor() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        for &x in &[0.3, 1.0, 2.5] {
            assert!((erfc(x) + erfc(-x) - 2.0).abs() < 1e-7);
        }
        // erfc(1) ≈ 0.157299
        assert!((erfc(1.0) - 0.157_299).abs() < 1e-5);
    }

    #[test]
    fn median_is_half_failed() {
        let d = LognormalLifetime::new(years(20.0), 0.5).unwrap();
        assert!((d.failure_fraction_at(years(20.0)) - 0.5).abs() < 1e-7);
    }

    #[test]
    fn quantile_inverse_consistency() {
        let d = LognormalLifetime::new(years(30.0), 0.45).unwrap();
        for &f in &[1e-3, 0.01, 0.1, 0.5, 0.9] {
            let t = d.time_to_fraction(f).unwrap();
            let back = d.failure_fraction_at(t);
            assert!((back - f).abs() < 1e-6, "f = {f}: back = {back}");
        }
    }

    #[test]
    fn from_quantile_anchors_the_tail() {
        // "10-year lifetime at 0.1 % cumulative failures" (the paper's goal
        // form) with σ = 0.5: the median must be well above 10 years.
        let d = LognormalLifetime::from_quantile(years(10.0), 1.0e-3, 0.5).unwrap();
        let t = d.time_to_fraction(1.0e-3).unwrap();
        assert!((t.value() - years(10.0).value()).abs() / t.value() < 1e-9);
        assert!(
            d.median() > years(40.0),
            "median = {} y",
            d.median().value() / years(1.0).value()
        );
    }

    #[test]
    fn tighter_sigma_means_tail_closer_to_median() {
        let wide = LognormalLifetime::from_quantile(years(10.0), 1e-3, 0.7).unwrap();
        let tight = LognormalLifetime::from_quantile(years(10.0), 1e-3, 0.3).unwrap();
        assert!(tight.median() < wide.median());
    }

    #[test]
    fn scaled_shifts_time_axis() {
        let d = LognormalLifetime::new(years(20.0), 0.5).unwrap();
        let derated = d.scaled(0.3).unwrap(); // latent-damage factor
        assert!((derated.median().value() - 0.3 * d.median().value()).abs() < 1.0);
        // fractions at scaled times match
        let f1 = d.failure_fraction_at(years(5.0));
        let f2 = derated.failure_fraction_at(years(1.5));
        assert!((f1 - f2).abs() < 1e-9);
        assert!(d.scaled(0.0).is_err());
    }

    #[test]
    fn validation() {
        assert!(LognormalLifetime::new(Seconds::new(0.0), 0.5).is_err());
        assert!(LognormalLifetime::new(years(1.0), 0.0).is_err());
        assert!(LognormalLifetime::from_quantile(years(1.0), 0.0, 0.5).is_err());
        assert!(LognormalLifetime::from_quantile(years(1.0), 1.0, 0.5).is_err());
        let d = LognormalLifetime::new(years(1.0), 0.5).unwrap();
        assert!(d.time_to_fraction(0.0).is_err());
        assert_eq!(d.failure_fraction_at(Seconds::new(-1.0)), 0.0);
    }

    #[test]
    fn failure_fraction_monotone_in_time() {
        let d = LognormalLifetime::new(years(10.0), 0.6).unwrap();
        let mut prev = 0.0;
        for y in 1..40 {
            let f = d.failure_fraction_at(years(f64::from(y)));
            assert!(f >= prev);
            prev = f;
        }
    }

    #[test]
    fn weakest_link_single_member_is_identity() {
        let m = LognormalLifetime::new(years(25.0), 0.5).unwrap();
        let pop = WeakestLinkPopulation::new(vec![m]).unwrap();
        for f in [1e-4, 1e-3, 0.1, 0.5] {
            let alone = m.time_to_fraction(f).unwrap().value();
            let sys = pop.time_to_fraction(f).unwrap().value();
            assert!(
                (alone - sys).abs() < 1e-6 * alone,
                "f={f}: {alone} vs {sys}"
            );
        }
    }

    #[test]
    fn weakest_link_identical_members_follow_survival_product() {
        // n identical members: F_sys(t) = 1 − (1 − F(t))ⁿ exactly.
        let m = LognormalLifetime::new(years(25.0), 0.5).unwrap();
        let n = 64;
        let pop = WeakestLinkPopulation::new(vec![m; n]).unwrap();
        let t = years(10.0);
        let f1 = m.failure_fraction_at(t);
        let want = 1.0 - (1.0 - f1).powi(n as i32);
        let got = pop.failure_fraction_at(t);
        assert!((got - want).abs() < 1e-12, "{got} vs {want}");
        // And the quantile inverts the CDF.
        let tq = pop.time_to_fraction(want).unwrap();
        assert!((tq.value() - t.value()).abs() < 1e-6 * t.value());
    }

    #[test]
    fn weakest_link_dominated_by_weakest_member() {
        let strong = LognormalLifetime::new(years(1000.0), 0.4).unwrap();
        let weak = LognormalLifetime::new(years(5.0), 0.4).unwrap();
        let mut members = vec![strong; 50];
        members.push(weak);
        let pop = WeakestLinkPopulation::new(members).unwrap();
        let sys = pop.time_to_fraction(1e-3).unwrap();
        let weak_alone = weak.time_to_fraction(1e-3).unwrap();
        // The system tracks the weak member closely (strong ones barely
        // contribute) but fails no later than it.
        assert!(sys <= weak_alone);
        assert!(sys.value() > 0.9 * weak_alone.value());
    }

    #[test]
    fn weakest_link_validation() {
        assert!(WeakestLinkPopulation::new(vec![]).is_err());
        let m = LognormalLifetime::new(years(1.0), 0.5).unwrap();
        let pop = WeakestLinkPopulation::new(vec![m]).unwrap();
        assert!(pop.time_to_fraction(0.0).is_err());
        assert!(pop.time_to_fraction(1.0).is_err());
        assert_eq!(pop.len(), 1);
        assert!(!pop.is_empty());
    }
}
