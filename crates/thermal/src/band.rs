//! Banded symmetric-positive-definite direct solver: factor once, solve
//! many right-hand sides.
//!
//! Finite-volume conduction matrices on structured grids are SPD with a
//! half-bandwidth equal to the shorter grid axis when unknowns are
//! ordered with that axis varying fastest. A banded Cholesky factors
//! them in O(n·bw²) flops and O(n·bw) memory — no pivoting, no fill
//! beyond the band. [`grid2d`](crate::grid2d) uses this for its direct
//! method, and the chip-scale thermal map ([`crate::chip`]) keeps the
//! factorization alive across coupled-loop iterations because thermal
//! conductances do not change when branch resistivities do.
//!
//! ```
//! use hotwire_thermal::band::BandedSpd;
//!
//! // Tridiagonal [2 -1; -1 2] system.
//! let mut a = BandedSpd::new(2, 1)?;
//! a.add(0, 0, 2.0);
//! a.add(1, 1, 2.0);
//! a.add(1, 0, -1.0);
//! let f = a.factor()?;
//! let x = f.solve(&[1.0, 0.0]);
//! assert!((x[0] - 2.0 / 3.0).abs() < 1e-12);
//! # Ok::<(), hotwire_thermal::ThermalError>(())
//! ```

use crate::error::ThermalError;

/// A symmetric positive-definite matrix assembled in banded lower
/// storage, ready to [`BandedSpd::factor`].
#[derive(Debug, Clone)]
pub struct BandedSpd {
    n: usize,
    bw: usize,
    /// Row-major banded lower storage: `ab[r*(bw+1) + (c + bw - r)]`
    /// holds `A[r][c]` for `c ∈ [r-bw, r]`.
    ab: Vec<f64>,
}

impl BandedSpd {
    /// Creates an `n × n` zero matrix with half-bandwidth `bw`.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidInput`] when `n` is zero.
    pub fn new(n: usize, bw: usize) -> Result<Self, ThermalError> {
        if n == 0 {
            return Err(ThermalError::InvalidInput {
                message: "banded system needs at least one unknown".to_owned(),
            });
        }
        let bw = bw.min(n - 1);
        Ok(Self {
            n,
            bw,
            ab: vec![0.0; n * (bw + 1)],
        })
    }

    /// The dimension `n`.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The half-bandwidth.
    #[must_use]
    pub fn bandwidth(&self) -> usize {
        self.bw
    }

    /// Adds `v` to entry `(r, c)` of the lower triangle (the upper
    /// triangle is implied by symmetry).
    ///
    /// # Panics
    ///
    /// Panics when `c > r`, when `r - c` exceeds the bandwidth, or when
    /// `r` is out of range.
    pub fn add(&mut self, r: usize, c: usize, v: f64) {
        assert!(
            r < self.n && c <= r && r - c <= self.bw,
            "({r}, {c}) outside band"
        );
        self.ab[r * (self.bw + 1) + (c + self.bw - r)] += v;
    }

    /// Factors `A = L·Lᵀ` in place, consuming the assembly.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::NoConvergence`] when the matrix is not
    /// positive definite (`iterations` holds the failing row and
    /// `residual` the non-positive pivot).
    pub fn factor(mut self) -> Result<BandedCholesky, ThermalError> {
        let (n, bw) = (self.n, self.bw);
        let w = bw + 1;
        let ab = &mut self.ab;
        for r in 0..n {
            let c_lo = r.saturating_sub(bw);
            for c in c_lo..=r {
                let mut sum = ab[r * w + (c + bw - r)];
                let k_lo = c_lo.max(c.saturating_sub(bw));
                for k in k_lo..c {
                    sum -= ab[r * w + (k + bw - r)] * ab[c * w + (k + bw - c)];
                }
                if c == r {
                    if sum <= 0.0 {
                        return Err(ThermalError::NoConvergence {
                            iterations: r,
                            residual: sum,
                        });
                    }
                    ab[r * w + bw] = sum.sqrt();
                } else {
                    ab[r * w + (c + bw - r)] = sum / ab[c * w + bw];
                }
            }
        }
        Ok(BandedCholesky { n, bw, ab: self.ab })
    }
}

/// The Cholesky factor of a [`BandedSpd`]: solve any number of
/// right-hand sides.
#[derive(Debug, Clone)]
pub struct BandedCholesky {
    n: usize,
    bw: usize,
    ab: Vec<f64>,
}

impl BandedCholesky {
    /// The dimension `n`.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Solves `A·x = b`.
    ///
    /// # Panics
    ///
    /// Panics on an rhs length mismatch.
    #[must_use]
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = Vec::new();
        self.solve_into(b, &mut x);
        x
    }

    /// Solves `A·x = b` into a caller-provided buffer (resized to `n`).
    ///
    /// # Panics
    ///
    /// Panics on an rhs length mismatch.
    pub fn solve_into(&self, b: &[f64], x: &mut Vec<f64>) {
        assert_eq!(b.len(), self.n, "rhs length mismatch");
        let (n, bw) = (self.n, self.bw);
        let w = bw + 1;
        let ab = &self.ab;
        x.clear();
        x.extend_from_slice(b);
        // Forward substitution L·y = b.
        for r in 0..n {
            let c_lo = r.saturating_sub(bw);
            let mut sum = x[r];
            for c in c_lo..r {
                sum -= ab[r * w + (c + bw - r)] * x[c];
            }
            x[r] = sum / ab[r * w + bw];
        }
        // Back substitution Lᵀ·x = y.
        for r in (0..n).rev() {
            let mut sum = x[r];
            let hi = (r + bw).min(n - 1);
            for c in (r + 1)..=hi {
                sum -= ab[c * w + (r + bw - c)] * x[c];
            }
            x[r] = sum / ab[r * w + bw];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty_system() {
        assert!(BandedSpd::new(0, 1).is_err());
    }

    #[test]
    fn rejects_indefinite_matrix() {
        let mut a = BandedSpd::new(2, 1).unwrap();
        a.add(0, 0, 1.0);
        a.add(1, 1, 1.0);
        a.add(1, 0, -2.0); // |off-diag| > diag ⇒ not PD
        assert!(matches!(
            a.factor(),
            Err(ThermalError::NoConvergence { .. })
        ));
    }

    #[test]
    fn solves_dense_spd_reference() {
        // A = M·Mᵀ + I for a small fixed M is SPD; check A·x = b round-trip.
        let n = 6;
        let bw = 2;
        let mut dense = vec![vec![0.0; n]; n];
        for (r, row) in dense.iter_mut().enumerate() {
            for (c, v) in row.iter_mut().enumerate() {
                let d = r.abs_diff(c);
                if d <= bw {
                    *v = if d == 0 {
                        4.0 + r as f64 * 0.1
                    } else {
                        -1.0 / d as f64
                    };
                }
            }
        }
        let mut a = BandedSpd::new(n, bw).unwrap();
        for (r, row) in dense.iter().enumerate() {
            for (c, &v) in row.iter().enumerate().take(r + 1) {
                if r - c <= bw {
                    a.add(r, c, v);
                }
            }
        }
        let f = a.factor().unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 + 1.0) * 0.5).collect();
        let x = f.solve(&b);
        for r in 0..n {
            let ax: f64 = (0..n).map(|c| dense[r][c] * x[c]).sum();
            assert!((ax - b[r]).abs() < 1e-10, "row {r}: {ax} vs {}", b[r]);
        }
    }

    #[test]
    fn repeated_solves_are_independent() {
        let mut a = BandedSpd::new(3, 1).unwrap();
        for r in 0..3 {
            a.add(r, r, 2.0);
            if r > 0 {
                a.add(r, r - 1, -1.0);
            }
        }
        let f = a.factor().unwrap();
        let x1 = f.solve(&[1.0, 0.0, 0.0]);
        let _ = f.solve(&[0.0, 5.0, 0.0]);
        let x1_again = f.solve(&[1.0, 0.0, 0.0]);
        for (a, b) in x1.iter().zip(&x1_again) {
            assert!((a - b).abs() == 0.0);
        }
    }

    #[test]
    fn bandwidth_clamps_to_dimension() {
        let a = BandedSpd::new(3, 10).unwrap();
        assert_eq!(a.bandwidth(), 2);
    }
}
