//! Interconnect thermal modelling.
//!
//! Four layers of fidelity, each exposed separately:
//!
//! * [`impedance`] — the paper's closed-form steady-state models: quasi-1-D
//!   and quasi-2-D thermal impedance (eqs. 8/10/14), multi-layer insulator
//!   stacks (eq. 15), and the self-consistent ΔT of Joule heating with
//!   temperature-dependent resistivity (eq. 9).
//! * [`fin`] — the 1-D fin ("healing length") treatment of via-cooled line
//!   ends (Schafft \[21\]), which quantifies the paper's *thermally long*
//!   vs *thermally short* distinction.
//! * [`grid2d`] — a finite-volume cross-section solver used where the
//!   paper used *measurements* (Fig. 5, to extract the heat-spreading
//!   parameter φ) and *finite-element simulations* (ref. \[11\] /
//!   Table 7, for densely packed 3-D arrays).
//! * [`transient`] — lumped transient Joule heating with melt detection,
//!   the engine behind the ESD (short-pulse failure) analysis of §6.
//! * [`chip`] — a chip-scale strap-intersection thermal map (factored
//!   once, solved per coupled-loop iteration), built on the banded SPD
//!   Cholesky in [`band`] that also powers [`grid2d`]'s direct method.
//!
//! # Examples
//!
//! ```
//! use hotwire_thermal::impedance::{effective_width, LineGeometry, QUASI_1D_PHI};
//! use hotwire_units::Length;
//!
//! // Eq. (10): W_eff = W_m + 0.88·t_ox
//! let weff = effective_width(
//!     Length::from_micrometers(3.0),
//!     Length::from_micrometers(3.0),
//!     QUASI_1D_PHI,
//! );
//! assert!((weff.to_micrometers() - 5.64).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// `!(x > 0.0)` is used deliberately throughout validation code: unlike
// `x <= 0.0` it also rejects NaN, which must never enter a solver.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod band;
pub mod chip;
mod error;
pub mod fin;
pub mod grid2d;
pub mod impedance;
pub mod transient;

pub use error::ThermalError;
