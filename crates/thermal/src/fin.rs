//! The 1-D fin treatment of via-cooled line ends — Schafft \[21\] and the
//! paper's *thermally long* vs *thermally short* distinction (§3.2).
//!
//! A line of length `L` heated uniformly and cooled (a) down through the
//! insulator stack and (b) out through its end contacts obeys the fin
//! equation
//!
//! `k_m·A·d²ΔT/dx² − g·ΔT + q' = 0`
//!
//! with `A = W_m·t_m`, `g = W_eff/Σ(tᵢ/kᵢ)` the per-length conductance to
//! the substrate, and `q'` the per-length Joule heating. Its solutions
//! depend exponentially on the characteristic **healing length**
//! `λ = √(k_m·A/g)`, of order 10–200 µm for DSM geometries. Lines with
//! `L ≫ λ` are *thermally long* (the paper's worst case: interior at the
//! full ΔT∞); lines with `L ≈ λ` are *thermally short* and run cooler.

use hotwire_tech::Metal;
use hotwire_units::{Kelvin, Length, TemperatureDelta};
use serde::{Deserialize, Serialize};

use crate::impedance::{effective_width, InsulatorStack, LineGeometry};
use crate::ThermalError;

/// The healing (thermal characteristic) length
/// `λ = √(k_m·W_m·t_m·Σ(tᵢ/kᵢ)/W_eff)`.
///
/// # Errors
///
/// Returns [`ThermalError::InvalidInput`] for an empty stack or invalid φ.
///
/// # Examples
///
/// ```
/// use hotwire_tech::{Dielectric, Metal};
/// use hotwire_thermal::fin::healing_length;
/// use hotwire_thermal::impedance::{InsulatorStack, LineGeometry, QUASI_1D_PHI};
/// use hotwire_units::Length;
///
/// let um = Length::from_micrometers;
/// let line = LineGeometry::new(um(3.0), um(0.5), um(1000.0))?;
/// let stack = InsulatorStack::single(um(3.0), &Dielectric::oxide());
/// let lambda = healing_length(&Metal::copper(), line, &stack, QUASI_1D_PHI)?;
/// // Paper: λ is of the order 25–200 µm.
/// assert!(lambda.to_micrometers() > 10.0 && lambda.to_micrometers() < 200.0);
/// # Ok::<(), hotwire_thermal::ThermalError>(())
/// ```
pub fn healing_length(
    metal: &Metal,
    line: LineGeometry,
    stack: &InsulatorStack,
    phi: f64,
) -> Result<Length, ThermalError> {
    if stack.is_empty() {
        return Err(ThermalError::InvalidInput {
            message: "insulator stack is empty".to_owned(),
        });
    }
    if !(phi >= 0.0) || !phi.is_finite() {
        return Err(ThermalError::InvalidInput {
            message: format!("heat-spreading parameter must be ≥ 0, got {phi}"),
        });
    }
    let weff = effective_width(line.width(), stack.total_thickness(), phi);
    let g = weff.value() / stack.series_resistance_thickness(); // W/(m·K) per m
    let k_a = metal.thermal_conductivity().value() * line.cross_section().value();
    Ok(Length::new((k_a / g).sqrt()))
}

/// The analytic steady temperature profile of a uniformly heated line with
/// both ends held at the reference temperature (ideal via cooling).
///
/// `ΔT(x) = ΔT∞·[1 − cosh((x − L/2)/λ)/cosh(L/(2λ))]`, `x ∈ [0, L]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FinProfile {
    delta_t_inf: TemperatureDelta,
    lambda: Length,
    length: Length,
}

impl FinProfile {
    /// Builds a profile from the interior (thermally long) rise `ΔT∞`, the
    /// healing length λ and the line length `L`.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidInput`] for non-positive λ or L.
    pub fn new(
        delta_t_inf: TemperatureDelta,
        lambda: Length,
        length: Length,
    ) -> Result<Self, ThermalError> {
        if !(lambda.value() > 0.0) || !(length.value() > 0.0) {
            return Err(ThermalError::InvalidInput {
                message: "healing length and line length must be positive".to_owned(),
            });
        }
        Ok(Self {
            delta_t_inf,
            lambda,
            length,
        })
    }

    /// Builds the profile of a line carrying RMS current density `j_rms`.
    ///
    /// `ΔT∞` comes from [`crate::impedance::self_heating_rise`] (including
    /// the ρ(T) feedback) and λ from [`healing_length`].
    ///
    /// # Errors
    ///
    /// Propagates impedance-model errors and
    /// [`ThermalError::ThermalRunaway`].
    pub fn from_current(
        j_rms: hotwire_units::CurrentDensity,
        metal: &Metal,
        reference_temperature: Kelvin,
        line: LineGeometry,
        stack: &InsulatorStack,
        phi: f64,
    ) -> Result<Self, ThermalError> {
        let dt_inf = crate::impedance::self_heating_rise(
            j_rms,
            metal,
            reference_temperature,
            line,
            stack,
            phi,
        )?;
        let lambda = healing_length(metal, line, stack, phi)?;
        Self::new(dt_inf, lambda, line.length())
    }

    /// Interior (plateau) temperature rise `ΔT∞`.
    #[must_use]
    pub fn plateau(self) -> TemperatureDelta {
        self.delta_t_inf
    }

    /// Healing length λ.
    #[must_use]
    pub fn healing_length(self) -> Length {
        self.lambda
    }

    /// Line length `L`.
    #[must_use]
    pub fn length(self) -> Length {
        self.length
    }

    /// Temperature rise at position `x ∈ [0, L]` along the line.
    ///
    /// Positions outside the line clamp to the ends (which are at rise 0).
    #[must_use]
    pub fn rise_at(self, x: Length) -> TemperatureDelta {
        let l = self.length.value();
        let x = x.value().clamp(0.0, l);
        let lam = self.lambda.value();
        let half = l / 2.0;
        // cosh ratio computed stably for large arguments:
        // cosh(u)/cosh(v) = exp(|u|−v)·(1+e^{−2|u|})/(1+e^{−2v}) for v ≥ |u|
        let u = (x - half) / lam;
        let v = half / lam;
        let ratio =
            ((u.abs() - v).exp()) * (1.0 + (-2.0 * u.abs()).exp()) / (1.0 + (-2.0 * v).exp());
        self.delta_t_inf * (1.0 - ratio)
    }

    /// Temperature rise at the line midpoint (the hottest point).
    #[must_use]
    pub fn midpoint_rise(self) -> TemperatureDelta {
        self.rise_at(self.length / 2.0)
    }

    /// Length-averaged temperature rise
    /// `⟨ΔT⟩ = ΔT∞·[1 − (2λ/L)·tanh(L/(2λ))]`.
    #[must_use]
    pub fn average_rise(self) -> TemperatureDelta {
        self.delta_t_inf * self.short_line_correction()
    }

    /// The thermally-short correction factor `⟨ΔT⟩/ΔT∞ ∈ (0, 1)`:
    /// → 1 for `L ≫ λ`, → 0 for `L ≪ λ`.
    #[must_use]
    pub fn short_line_correction(self) -> f64 {
        let v = self.length.value() / (2.0 * self.lambda.value());
        1.0 - v.tanh() / v
    }

    /// `true` when the line is *thermally long* — its length exceeds
    /// `factor` healing lengths (the paper's `L ≫ λ`; a factor of 5 puts
    /// the midpoint within 1 % of ΔT∞).
    #[must_use]
    pub fn is_thermally_long(self, factor: f64) -> bool {
        self.length.value() > factor * self.lambda.value()
    }
}

/// Finite-difference solution of the same fin equation — used to validate
/// the closed form and available for profiles with non-ideal end cooling.
///
/// Solves `λ²·d²ΔT/dx² − ΔT + ΔT∞ = 0` on `n` interior nodes with the ends
/// held at rise 0, by direct tridiagonal (Thomas) elimination. Returns the
/// rises at `n + 2` uniformly spaced positions including both ends.
///
/// # Errors
///
/// Returns [`ThermalError::InvalidInput`] when `n < 1` or λ/L are
/// non-positive.
pub fn fin_profile_fd(
    delta_t_inf: TemperatureDelta,
    lambda: Length,
    length: Length,
    n: usize,
) -> Result<Vec<TemperatureDelta>, ThermalError> {
    if n < 1 {
        return Err(ThermalError::InvalidInput {
            message: "need at least one interior node".to_owned(),
        });
    }
    if !(lambda.value() > 0.0) || !(length.value() > 0.0) {
        return Err(ThermalError::InvalidInput {
            message: "healing length and line length must be positive".to_owned(),
        });
    }
    #[allow(clippy::cast_precision_loss)]
    let h = length.value() / (n as f64 + 1.0);
    let lam2 = lambda.value() * lambda.value();
    // Tridiagonal system: (2λ²/h² + 1)·T_i − λ²/h²·(T_{i−1} + T_{i+1}) = ΔT∞
    let a = -lam2 / (h * h); // off-diagonal
    let b = 2.0 * lam2 / (h * h) + 1.0; // diagonal
    let rhs_val = delta_t_inf.value();

    // Thomas algorithm
    let mut c_prime = vec![0.0; n];
    let mut d_prime = vec![0.0; n];
    c_prime[0] = a / b;
    d_prime[0] = rhs_val / b;
    for i in 1..n {
        let m = b - a * c_prime[i - 1];
        c_prime[i] = a / m;
        d_prime[i] = (rhs_val - a * d_prime[i - 1]) / m;
    }
    let mut t = vec![0.0; n];
    t[n - 1] = d_prime[n - 1];
    for i in (0..n - 1).rev() {
        t[i] = d_prime[i] - c_prime[i] * t[i + 1];
    }

    let mut out = Vec::with_capacity(n + 2);
    out.push(TemperatureDelta::ZERO);
    out.extend(t.into_iter().map(TemperatureDelta::new));
    out.push(TemperatureDelta::ZERO);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotwire_tech::Dielectric;

    fn um(v: f64) -> Length {
        Length::from_micrometers(v)
    }

    fn setup() -> (LineGeometry, InsulatorStack) {
        (
            LineGeometry::new(um(3.0), um(0.5), um(1000.0)).unwrap(),
            InsulatorStack::single(um(3.0), &Dielectric::oxide()),
        )
    }

    #[test]
    fn healing_length_in_paper_range() {
        let (line, stack) = setup();
        let lam = healing_length(&Metal::copper(), line, &stack, 0.88).unwrap();
        let lam_um = lam.to_micrometers();
        assert!((10.0..200.0).contains(&lam_um), "λ = {lam_um} µm");
    }

    #[test]
    fn lowk_shortens_healing_length() {
        // Lower k_ins ⇒ weaker sink ⇒ larger λ, actually: g ∝ k ⇒ λ ∝ 1/√k.
        let (line, _) = setup();
        let ox = InsulatorStack::single(um(3.0), &Dielectric::oxide());
        let poly = InsulatorStack::single(um(3.0), &Dielectric::polyimide());
        let l_ox = healing_length(&Metal::copper(), line, &ox, 0.88).unwrap();
        let l_poly = healing_length(&Metal::copper(), line, &poly, 0.88).unwrap();
        assert!(l_poly > l_ox, "poorer sink ⇒ longer healing length");
    }

    #[test]
    fn profile_ends_are_cold_and_middle_is_hot() {
        let p = FinProfile::new(TemperatureDelta::new(50.0), um(50.0), um(1000.0)).unwrap();
        assert!(p.rise_at(Length::ZERO).value().abs() < 1e-9);
        assert!(p.rise_at(um(1000.0)).value().abs() < 1e-9);
        let mid = p.midpoint_rise();
        assert!((mid.value() - 50.0).abs() < 0.01, "mid = {mid}");
        // monotone from end to middle
        let quarter = p.rise_at(um(250.0));
        let eighth = p.rise_at(um(125.0));
        assert!(eighth < quarter);
        assert!(quarter <= mid);
    }

    #[test]
    fn thermally_short_line_runs_cool() {
        let long = FinProfile::new(TemperatureDelta::new(50.0), um(50.0), um(1000.0)).unwrap();
        let short = FinProfile::new(TemperatureDelta::new(50.0), um(50.0), um(60.0)).unwrap();
        assert!(long.is_thermally_long(5.0));
        assert!(!short.is_thermally_long(5.0));
        assert!(short.midpoint_rise() < long.midpoint_rise() * 0.6);
        assert!(short.short_line_correction() < long.short_line_correction());
    }

    #[test]
    fn average_below_midpoint() {
        let p = FinProfile::new(TemperatureDelta::new(40.0), um(80.0), um(500.0)).unwrap();
        assert!(p.average_rise() < p.midpoint_rise());
        assert!(p.average_rise().value() > 0.0);
    }

    #[test]
    fn analytic_matches_finite_difference() {
        let dt = TemperatureDelta::new(30.0);
        let lam = um(60.0);
        let len = um(400.0);
        let p = FinProfile::new(dt, lam, len).unwrap();
        let n = 399; // h = 1 µm
        let fd = fin_profile_fd(dt, lam, len, n).unwrap();
        #[allow(clippy::cast_precision_loss)]
        for (i, fd_t) in fd.iter().enumerate() {
            let x = Length::new(len.value() * (i as f64) / (n as f64 + 1.0));
            let analytic = p.rise_at(x);
            assert!(
                (fd_t.value() - analytic.value()).abs() < 0.05,
                "x = {x}: fd {fd_t} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn fd_average_matches_closed_form() {
        let dt = TemperatureDelta::new(30.0);
        let lam = um(60.0);
        let len = um(400.0);
        let p = FinProfile::new(dt, lam, len).unwrap();
        let fd = fin_profile_fd(dt, lam, len, 999).unwrap();
        #[allow(clippy::cast_precision_loss)]
        let avg_fd: f64 = fd.iter().map(|t| t.value()).sum::<f64>() / fd.len() as f64;
        assert!((avg_fd - p.average_rise().value()).abs() < 0.1);
    }

    #[test]
    fn from_current_combines_models() {
        let (line, stack) = setup();
        let p = FinProfile::from_current(
            hotwire_units::CurrentDensity::from_mega_amps_per_cm2(3.0),
            &Metal::copper(),
            hotwire_units::Celsius::new(100.0).to_kelvin(),
            line,
            &stack,
            0.88,
        )
        .unwrap();
        assert!(p.plateau().value() > 1.0);
        assert!(p.is_thermally_long(5.0), "1 mm line is thermally long");
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(FinProfile::new(TemperatureDelta::new(1.0), um(0.0), um(1.0)).is_err());
        assert!(FinProfile::new(TemperatureDelta::new(1.0), um(1.0), Length::ZERO).is_err());
        assert!(fin_profile_fd(TemperatureDelta::new(1.0), um(1.0), um(1.0), 0).is_err());
    }

    #[test]
    fn rise_at_clamps_outside_line() {
        let p = FinProfile::new(TemperatureDelta::new(10.0), um(10.0), um(100.0)).unwrap();
        assert_eq!(p.rise_at(um(-5.0)).value(), p.rise_at(Length::ZERO).value());
        assert_eq!(p.rise_at(um(500.0)).value(), p.rise_at(um(100.0)).value());
    }
}
