//! Closed-form steady-state thermal impedance and self-heating models —
//! the paper's eqs. (8)–(10), (14) and (15).

use hotwire_tech::{Dielectric, Metal};
use hotwire_units::{
    CurrentDensity, Kelvin, Length, TemperatureDelta, ThermalConductivity, ThermalImpedance,
};
use serde::{Deserialize, Serialize};

use crate::ThermalError;

/// The classical quasi-1-D heat-spreading parameter φ = 0.88
/// (Bilotti \[17\]; valid for `W_m/t_ox ≳ 0.4`, accurate to ≈ 3 %).
pub const QUASI_1D_PHI: f64 = 0.88;

/// The quasi-2-D heat-spreading parameter φ = 2.45 the paper extracts from
/// 0.25 µm AlCu measurements at `W_m/t_ox ≈ 0.29` (its Fig. 5 / eq. 14).
pub const QUASI_2D_PHI: f64 = 2.45;

/// Effective heat-conduction width of a line (eq. 10 / eq. 14):
/// `W_eff = W_m + φ·t_ox`.
///
/// `t_ox` is the *total* underlying dielectric thickness; φ captures how
/// much of the lateral oxide participates in conducting heat down to the
/// substrate.
#[must_use]
pub fn effective_width(width: Length, underlying_dielectric: Length, phi: f64) -> Length {
    width + underlying_dielectric * phi
}

/// Inverts eq. (14) to extract φ from a measured (or simulated) effective
/// width: `φ = (W_eff − W_m)/t_ox`.
#[must_use]
pub fn extract_phi(effective_width: Length, width: Length, underlying_dielectric: Length) -> f64 {
    (effective_width - width) / underlying_dielectric
}

/// The cross-section geometry of one interconnect line.
///
/// ```
/// use hotwire_thermal::impedance::LineGeometry;
/// use hotwire_units::Length;
///
/// let line = LineGeometry::new(
///     Length::from_micrometers(3.0),
///     Length::from_micrometers(0.5),
///     Length::from_micrometers(1000.0),
/// )?;
/// assert!((line.cross_section().to_um2() - 1.5).abs() < 1e-12);
/// # Ok::<(), hotwire_thermal::ThermalError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LineGeometry {
    width: Length,
    thickness: Length,
    length: Length,
}

impl LineGeometry {
    /// Creates a line geometry.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidInput`] when any dimension is
    /// non-positive or non-finite.
    pub fn new(width: Length, thickness: Length, length: Length) -> Result<Self, ThermalError> {
        for (what, v) in [
            ("width", width),
            ("thickness", thickness),
            ("length", length),
        ] {
            if !(v.value() > 0.0) || !v.is_finite() {
                return Err(ThermalError::InvalidInput {
                    message: format!("line {what} must be positive, got {v}"),
                });
            }
        }
        Ok(Self {
            width,
            thickness,
            length,
        })
    }

    /// Line width `W_m`.
    #[must_use]
    pub fn width(self) -> Length {
        self.width
    }

    /// Metal thickness `t_m`.
    #[must_use]
    pub fn thickness(self) -> Length {
        self.thickness
    }

    /// Line length `L`.
    #[must_use]
    pub fn length(self) -> Length {
        self.length
    }

    /// Current-carrying cross-section `A = W_m·t_m`.
    #[must_use]
    pub fn cross_section(self) -> hotwire_units::Area {
        self.width * self.thickness
    }
}

/// A vertical stack of insulator slabs between the line and the substrate
/// heat sink — eq. (15)'s generalization of the single-oxide `b/(k·W_eff)`
/// term.
///
/// Layers are listed top-down or bottom-up (order does not matter for a
/// series path).
///
/// ```
/// use hotwire_tech::Dielectric;
/// use hotwire_thermal::impedance::InsulatorStack;
/// use hotwire_units::Length;
///
/// // 1 µm of HSQ gap fill over 2 µm of oxide:
/// let stack = InsulatorStack::new()
///     .with_layer(Length::from_micrometers(1.0), &Dielectric::hsq())
///     .with_layer(Length::from_micrometers(2.0), &Dielectric::oxide());
/// assert!((stack.total_thickness().to_micrometers() - 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct InsulatorStack {
    layers: Vec<(Length, ThermalConductivity)>,
}

impl InsulatorStack {
    /// An empty stack.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A single-material stack — the paper's base case
    /// (`b = t_ox`, `k = k_ox`).
    #[must_use]
    pub fn single(thickness: Length, dielectric: &Dielectric) -> Self {
        Self::new().with_layer(thickness, dielectric)
    }

    /// Adds a slab of the given dielectric.
    #[must_use]
    pub fn with_layer(mut self, thickness: Length, dielectric: &Dielectric) -> Self {
        self.layers
            .push((thickness, dielectric.thermal_conductivity()));
        self
    }

    /// Adds a slab with an explicit conductivity.
    #[must_use]
    pub fn with_raw_layer(mut self, thickness: Length, k: ThermalConductivity) -> Self {
        self.layers.push((thickness, k));
        self
    }

    /// Total stack thickness `b = Σ tᵢ`.
    #[must_use]
    pub fn total_thickness(&self) -> Length {
        self.layers.iter().map(|(t, _)| *t).sum()
    }

    /// The series term `Σ tᵢ/kᵢ` in m²·K/W — eq. (15) without the `W_eff`
    /// factor.
    #[must_use]
    pub fn series_resistance_thickness(&self) -> f64 {
        self.layers.iter().map(|(t, k)| t.value() / k.value()).sum()
    }

    /// The *effective* uniform conductivity `k_eff = b / Σ(tᵢ/kᵢ)` of the
    /// stack.
    ///
    /// # Panics
    ///
    /// Panics in debug builds on an empty stack.
    #[must_use]
    pub fn effective_conductivity(&self) -> ThermalConductivity {
        debug_assert!(!self.layers.is_empty(), "empty insulator stack");
        ThermalConductivity::new(
            self.total_thickness().value() / self.series_resistance_thickness(),
        )
    }

    /// `true` when no layers have been added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

/// Thermal impedance of a line to the substrate (eqs. 8/10/15):
///
/// `θ_int = Σ(tᵢ/kᵢ) / (W_eff · L)` with `W_eff = W_m + φ·b`.
///
/// # Errors
///
/// Returns [`ThermalError::InvalidInput`] for an empty insulator stack or
/// a non-positive φ.
///
/// # Examples
///
/// ```
/// use hotwire_tech::Dielectric;
/// use hotwire_thermal::impedance::{thermal_impedance, InsulatorStack, LineGeometry, QUASI_1D_PHI};
/// use hotwire_units::Length;
///
/// let um = Length::from_micrometers;
/// let line = LineGeometry::new(um(3.0), um(0.5), um(1000.0))?;
/// let stack = InsulatorStack::single(um(3.0), &Dielectric::oxide());
/// let theta = thermal_impedance(line, &stack, QUASI_1D_PHI)?;
/// // t_ox/(k·W_eff·L) = 3e-6/(1.15·5.64e-6·1e-3) ≈ 462.6 K/W
/// assert!((theta.value() - 462.6).abs() < 1.0);
/// # Ok::<(), hotwire_thermal::ThermalError>(())
/// ```
pub fn thermal_impedance(
    line: LineGeometry,
    stack: &InsulatorStack,
    phi: f64,
) -> Result<ThermalImpedance, ThermalError> {
    if stack.is_empty() {
        return Err(ThermalError::InvalidInput {
            message: "insulator stack is empty".to_owned(),
        });
    }
    if !(phi >= 0.0) || !phi.is_finite() {
        return Err(ThermalError::InvalidInput {
            message: format!("heat-spreading parameter must be ≥ 0, got {phi}"),
        });
    }
    let weff = effective_width(line.width(), stack.total_thickness(), phi);
    Ok(ThermalImpedance::new(
        stack.series_resistance_thickness() / (weff.value() * line.length().value()),
    ))
}

/// The self-heating "conductance" constant of eq. (9): the `ΔT` per unit
/// `j_rms²·ρ` of a line, i.e.
///
/// `X = t_m · W_m · Σ(tᵢ/kᵢ) / W_eff`   (units m²·K/W per (W/m³) source)
///
/// so that `ΔT = j_rms² · ρ(T_m) · X`. Exposed for the self-consistent
/// solver (C-INTERMEDIATE).
///
/// # Errors
///
/// Same domain as [`thermal_impedance`].
pub fn self_heating_constant(
    line: LineGeometry,
    stack: &InsulatorStack,
    phi: f64,
) -> Result<f64, ThermalError> {
    let theta = thermal_impedance(line, stack, phi)?;
    // ΔT = P·θ with P = j²·ρ·(W·t·L): X = θ·W·t·L
    Ok(theta.value() * line.cross_section().value() * line.length().value())
}

/// Solves eq. (9) for the steady self-heating temperature rise with the
/// linear resistivity feedback `ρ(T) = ρ(T_ref)·(1 + β·ΔT)`:
///
/// `ΔT = j²·ρ(T_ref)·X / (1 − j²·ρ(T_ref)·X·β)`
///
/// where `X` is [`self_heating_constant`]. The reference temperature is
/// the chip temperature at the bottom of the insulator stack.
///
/// # Errors
///
/// * [`ThermalError::ThermalRunaway`] when the feedback gain
///   `j²·ρ·X·β ≥ 1` — physically, the line has no steady state and will
///   heat until failure.
/// * Propagates [`ThermalError::InvalidInput`] from the impedance model.
///
/// # Examples
///
/// ```
/// use hotwire_tech::{Dielectric, Metal};
/// use hotwire_thermal::impedance::{self_heating_rise, InsulatorStack, LineGeometry, QUASI_1D_PHI};
/// use hotwire_units::{Celsius, CurrentDensity, Length};
///
/// let um = Length::from_micrometers;
/// let line = LineGeometry::new(um(3.0), um(0.5), um(1000.0))?;
/// let stack = InsulatorStack::single(um(3.0), &Dielectric::oxide());
/// let rise = self_heating_rise(
///     CurrentDensity::from_mega_amps_per_cm2(2.0),
///     &Metal::copper(),
///     Celsius::new(100.0).to_kelvin(),
///     line,
///     &stack,
///     QUASI_1D_PHI,
/// )?;
/// assert!(rise.value() > 3.0 && rise.value() < 10.0, "rise = {rise}");
/// # Ok::<(), hotwire_thermal::ThermalError>(())
/// ```
pub fn self_heating_rise(
    j_rms: CurrentDensity,
    metal: &Metal,
    reference_temperature: Kelvin,
    line: LineGeometry,
    stack: &InsulatorStack,
    phi: f64,
) -> Result<TemperatureDelta, ThermalError> {
    let x = self_heating_constant(line, stack, phi)?;
    let rho_ref = metal.resistivity(reference_temperature).value();
    let beta = metal.temperature_coefficient();
    let a = j_rms.value() * j_rms.value() * rho_ref * x;
    let gain = a * beta;
    if gain >= 1.0 {
        return Err(ThermalError::ThermalRunaway { gain });
    }
    Ok(TemperatureDelta::new(a / (1.0 - gain)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotwire_units::Celsius;

    fn um(v: f64) -> Length {
        Length::from_micrometers(v)
    }

    fn paper_line() -> LineGeometry {
        // Fig. 2 parameters: W = 3 µm, t_m = 0.5 µm; length 1 mm.
        LineGeometry::new(um(3.0), um(0.5), um(1000.0)).unwrap()
    }

    #[test]
    fn effective_width_quasi_1d() {
        let w = effective_width(um(3.0), um(3.0), QUASI_1D_PHI);
        assert!((w.to_micrometers() - 5.64).abs() < 1e-12);
    }

    #[test]
    fn phi_extraction_inverts_effective_width() {
        let weff = effective_width(um(0.35), um(1.2), QUASI_2D_PHI);
        let phi = extract_phi(weff, um(0.35), um(1.2));
        assert!((phi - QUASI_2D_PHI).abs() < 1e-12);
    }

    #[test]
    fn geometry_validation() {
        assert!(LineGeometry::new(um(0.0), um(0.5), um(10.0)).is_err());
        assert!(LineGeometry::new(um(1.0), um(-0.5), um(10.0)).is_err());
        assert!(LineGeometry::new(um(1.0), um(0.5), um(f64::INFINITY)).is_err());
    }

    #[test]
    fn single_oxide_impedance_matches_closed_form() {
        let stack = InsulatorStack::single(um(3.0), &Dielectric::oxide());
        let theta = thermal_impedance(paper_line(), &stack, QUASI_1D_PHI).unwrap();
        let weff = 5.64e-6;
        let expected = 3.0e-6 / (1.15 * weff * 1.0e-3);
        assert!((theta.value() - expected).abs() / expected < 1e-12);
    }

    #[test]
    fn lowk_stack_raises_impedance() {
        let oxide = InsulatorStack::single(um(3.0), &Dielectric::oxide());
        let mixed = InsulatorStack::new()
            .with_layer(um(1.0), &Dielectric::hsq())
            .with_layer(um(2.0), &Dielectric::oxide());
        let t_ox = thermal_impedance(paper_line(), &oxide, QUASI_1D_PHI).unwrap();
        let t_mix = thermal_impedance(paper_line(), &mixed, QUASI_1D_PHI).unwrap();
        assert!(t_mix > t_ox);
        // effective conductivity between the constituents
        let keff = mixed.effective_conductivity().value();
        assert!(keff > 0.6 && keff < 1.15);
    }

    #[test]
    fn series_stack_order_does_not_matter() {
        let a = InsulatorStack::new()
            .with_layer(um(1.0), &Dielectric::hsq())
            .with_layer(um(2.0), &Dielectric::oxide());
        let b = InsulatorStack::new()
            .with_layer(um(2.0), &Dielectric::oxide())
            .with_layer(um(1.0), &Dielectric::hsq());
        assert!((a.series_resistance_thickness() - b.series_resistance_thickness()).abs() < 1e-18);
    }

    #[test]
    fn empty_stack_rejected() {
        let err = thermal_impedance(paper_line(), &InsulatorStack::new(), 0.88).unwrap_err();
        assert!(matches!(err, ThermalError::InvalidInput { .. }));
        assert!(InsulatorStack::new().is_empty());
    }

    #[test]
    fn negative_phi_rejected() {
        let stack = InsulatorStack::single(um(3.0), &Dielectric::oxide());
        assert!(thermal_impedance(paper_line(), &stack, -0.1).is_err());
        assert!(thermal_impedance(paper_line(), &stack, f64::NAN).is_err());
    }

    #[test]
    fn wider_phi_lowers_impedance() {
        let stack = InsulatorStack::single(um(1.2), &Dielectric::oxide());
        let narrow = LineGeometry::new(um(0.35), um(0.55), um(1000.0)).unwrap();
        let t1d = thermal_impedance(narrow, &stack, QUASI_1D_PHI).unwrap();
        let t2d = thermal_impedance(narrow, &stack, QUASI_2D_PHI).unwrap();
        assert!(t2d < t1d, "more spreading ⇒ lower θ");
    }

    #[test]
    fn self_heating_small_at_design_current() {
        // At j_rms = 0.6 MA/cm² (the design j₀ at r = 1) heating is < 1 K —
        // the paper's premise that power lines barely self-heat.
        let stack = InsulatorStack::single(um(3.0), &Dielectric::oxide());
        let rise = self_heating_rise(
            CurrentDensity::from_mega_amps_per_cm2(0.6),
            &Metal::copper(),
            Celsius::new(100.0).to_kelvin(),
            paper_line(),
            &stack,
            QUASI_1D_PHI,
        )
        .unwrap();
        assert!(rise.value() < 1.0, "rise = {rise}");
        assert!(rise.value() > 0.1, "rise = {rise}");
    }

    #[test]
    fn self_heating_feedback_exceeds_open_loop() {
        // The ρ(T) feedback must amplify the open-loop estimate.
        let stack = InsulatorStack::single(um(3.0), &Dielectric::oxide());
        let metal = Metal::copper();
        let t_ref = Celsius::new(100.0).to_kelvin();
        let j = CurrentDensity::from_mega_amps_per_cm2(5.0);
        let x = self_heating_constant(paper_line(), &stack, QUASI_1D_PHI).unwrap();
        let open_loop = j.value().powi(2) * metal.resistivity(t_ref).value() * x;
        let closed =
            self_heating_rise(j, &metal, t_ref, paper_line(), &stack, QUASI_1D_PHI).unwrap();
        assert!(closed.value() > open_loop);
    }

    #[test]
    fn thermal_runaway_detected() {
        let stack = InsulatorStack::single(um(3.0), &Dielectric::polyimide());
        let err = self_heating_rise(
            CurrentDensity::from_mega_amps_per_cm2(60.0),
            &Metal::copper(),
            Celsius::new(100.0).to_kelvin(),
            paper_line(),
            &stack,
            QUASI_1D_PHI,
        )
        .unwrap_err();
        assert!(matches!(err, ThermalError::ThermalRunaway { gain } if gain >= 1.0));
    }

    #[test]
    fn self_heating_constant_scales_with_geometry() {
        let stack = InsulatorStack::single(um(3.0), &Dielectric::oxide());
        let thin = LineGeometry::new(um(3.0), um(0.25), um(1000.0)).unwrap();
        let x_thick = self_heating_constant(paper_line(), &stack, QUASI_1D_PHI).unwrap();
        let x_thin = self_heating_constant(thin, &stack, QUASI_1D_PHI).unwrap();
        // Thinner metal ⇒ less dissipating volume ⇒ smaller ΔT per j²ρ.
        assert!(x_thin < x_thick);
        // Independent of length (volume and θ⁻¹ both scale with L).
        let short = LineGeometry::new(um(3.0), um(0.5), um(10.0)).unwrap();
        let x_short = self_heating_constant(short, &stack, QUASI_1D_PHI).unwrap();
        assert!((x_short - x_thick).abs() / x_thick < 1e-9);
    }
}
