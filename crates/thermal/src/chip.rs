//! Chip-scale steady-state thermal map for power-grid straps.
//!
//! The coupled electro-thermal signoff loop needs the temperature of
//! every strap segment given every segment's Joule dissipation. At chip
//! scale the relevant physics is the paper's §2.2 picture applied per
//! node: heat generated in the metal flows *down* through the
//! inter-layer dielectric into the substrate (held at the reference
//! temperature) and *sideways* along the metal straps themselves, whose
//! thermal conductivity is two orders of magnitude above the oxide's.
//! Quasi-2D spreading in the dielectric is folded into the vertical path
//! exactly as eq. 9 does for a single line, via the effective width
//! `W + φ·t_ox` (see [`crate::impedance::effective_width`]).
//!
//! The model is a node-based finite-volume system on the strap
//! intersections:
//!
//! * each node owns the half-segments incident on it and gets their
//!   vertical (node-to-substrate) conductance `G_half` each;
//! * adjacent nodes couple through the strap's axial metal conduction
//!   `G_lat = k_m·W·t_m / ℓ`;
//! * node powers (W) come from splitting each branch's `I²R` equally
//!   onto its endpoints.
//!
//! With uniform current this reduces per segment to exactly
//! ΔT = j²·ρ·κ with κ from [`crate::impedance::self_heating_constant`] —
//! the single-wire limit the eq. 13 solver uses — which is what anchors
//! the coupled loop's single-wire regression test.
//!
//! The conduction matrix is SPD; it is factored **once** per topology
//! because thermal conductances are independent of the metal
//! temperature, so every Picard iteration pays only a substitution.
//! Small grids use a dense-band Cholesky (half-bandwidth = shorter grid
//! axis with that axis ordered fastest); once the half-bandwidth
//! exceeds [`SPARSE_BANDWIDTH_THRESHOLD`] the model switches to the
//! circuit crate's AMD-ordered sparse LDLᵀ, whose fill on a 2-D grid
//! grows like O(n·log n) against the band's O(n·bw) storage and
//! O(n·bw²) factor cost.

use crate::band::{BandedCholesky, BandedSpd};
use crate::error::ThermalError;
use hotwire_circuit::cholesky::CholeskyFactorization;
use hotwire_circuit::sparse::SparseMatrix;
use hotwire_circuit::CircuitError;
use hotwire_obs::{metrics, recorder};

/// Half-bandwidth above which [`ChipThermalModel`] abandons the
/// dense-band Cholesky for the AMD-ordered sparse LDLᵀ. At bw = 64 the
/// band factor already touches ~bw² = 4096 words per node while the
/// sparse factor's per-node fill stays in the tens — the crossover is
/// well before this, but staying banded below it keeps small-grid
/// results bit-identical to the original implementation.
const SPARSE_BANDWIDTH_THRESHOLD: usize = 64;

/// The factored conduction system — which backend depends on grid size.
#[derive(Debug, Clone)]
enum ChipFactor {
    /// Dense-band Cholesky with the shorter grid axis ordered fastest.
    Banded {
        /// The factored band.
        factor: BandedCholesky,
        /// Whether unknowns are stored row-major (`cols ≤ rows`);
        /// otherwise solves permute row-major ↔ column-fast around the
        /// band substitution.
        x_fast: bool,
    },
    /// AMD-ordered sparse LDLᵀ over natural row-major unknowns — the
    /// fill-reducing ordering happens inside the factorization, so no
    /// axis permutation is needed here.
    Sparse(Box<CholeskyFactorization>),
}

/// A factored chip thermal model over a `rows × cols` grid of strap
/// intersections.
#[derive(Debug, Clone)]
pub struct ChipThermalModel {
    rows: usize,
    cols: usize,
    vertical_g: Vec<f64>,
    factor: ChipFactor,
}

impl ChipThermalModel {
    /// Builds and factors the conduction system.
    ///
    /// `lateral_conductance` is the strap-axial metal conductance per
    /// branch, `k_m·W·t_m / ℓ` (W/K); `vertical_half_conductance` is the
    /// node-to-substrate conductance contributed by **one** incident
    /// half-segment, `W_eff·(ℓ/2) / Σ(tᵢ/kᵢ)` (W/K). A node touching
    /// `m` segments gets `m × vertical_half_conductance` to the sink.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidInput`] for a degenerate grid
    /// (fewer than two intersections) or non-physical conductances, and
    /// [`ThermalError::NoConvergence`] if factorization fails (cannot
    /// happen for valid inputs: the system is an M-matrix).
    pub fn new(
        rows: usize,
        cols: usize,
        lateral_conductance: f64,
        vertical_half_conductance: f64,
    ) -> Result<Self, ThermalError> {
        if rows == 0 || cols == 0 || rows * cols < 2 {
            return Err(ThermalError::InvalidInput {
                message: format!("chip thermal map needs ≥ 2 intersections, got {rows}×{cols}"),
            });
        }
        if !(vertical_half_conductance > 0.0) || !vertical_half_conductance.is_finite() {
            return Err(ThermalError::InvalidInput {
                message: format!(
                    "vertical half-segment conductance must be positive, got {vertical_half_conductance}"
                ),
            });
        }
        if !(lateral_conductance >= 0.0) || !lateral_conductance.is_finite() {
            return Err(ThermalError::InvalidInput {
                message: format!(
                    "lateral conductance must be non-negative, got {lateral_conductance}"
                ),
            });
        }
        let n = rows * cols;
        let bw = cols.min(rows);
        let mut vertical_g = vec![0.0; n];
        for r in 0..rows {
            for c in 0..cols {
                let incident = usize::from(c > 0)
                    + usize::from(c + 1 < cols)
                    + usize::from(r > 0)
                    + usize::from(r + 1 < rows);
                vertical_g[r * cols + c] = incident as f64 * vertical_half_conductance;
            }
        }
        metrics::counter("thermal.chip.factor").inc();
        recorder::record(
            "thermal.factor",
            format_args!("chip thermal map {rows}x{cols} (bandwidth {bw})"),
        );
        let factor = if bw > SPARSE_BANDWIDTH_THRESHOLD {
            metrics::counter("thermal.chip.sparse_factor").inc();
            let mut m = SparseMatrix::zeros(n);
            for r in 0..rows {
                for c in 0..cols {
                    let here = r * cols + c;
                    let mut diag = vertical_g[here];
                    // Stamp each lateral branch from both endpoints — the
                    // sparse path wants the full symmetric matrix.
                    let mut couple = |nbr: usize| {
                        diag += lateral_conductance;
                        if lateral_conductance > 0.0 {
                            m.add(here, nbr, -lateral_conductance);
                        }
                    };
                    if c > 0 {
                        couple(here - 1);
                    }
                    if c + 1 < cols {
                        couple(here + 1);
                    }
                    if r > 0 {
                        couple(here - cols);
                    }
                    if r + 1 < rows {
                        couple(here + cols);
                    }
                    m.add(here, here, diag);
                }
            }
            let f = {
                let _t = hotwire_obs::trace::span("thermal.chip.factor_time");
                m.factor_cholesky()
            }
            .map_err(|e| match e {
                CircuitError::NotPositiveDefinite { row } => ThermalError::NoConvergence {
                    iterations: row,
                    residual: 0.0,
                },
                other => ThermalError::InvalidInput {
                    message: format!("sparse thermal factorization failed: {other}"),
                },
            })?;
            ChipFactor::Sparse(Box::new(f))
        } else {
            // Order unknowns with the shorter axis fastest: bw = min(rows, cols).
            let x_fast = cols <= rows;
            let idx = |r: usize, c: usize| -> usize {
                if x_fast {
                    r * cols + c
                } else {
                    c * rows + r
                }
            };
            let mut a = BandedSpd::new(n, bw)?;
            for r in 0..rows {
                for c in 0..cols {
                    let here = idx(r, c);
                    let mut diag = vertical_g[r * cols + c];
                    // Stamp each lateral branch once, from its higher-indexed end.
                    if c > 0 {
                        diag += lateral_conductance;
                        let west = idx(r, c - 1);
                        if west < here && lateral_conductance > 0.0 {
                            a.add(here, west, -lateral_conductance);
                        }
                    }
                    if c + 1 < cols {
                        diag += lateral_conductance;
                        let east = idx(r, c + 1);
                        if east < here && lateral_conductance > 0.0 {
                            a.add(here, east, -lateral_conductance);
                        }
                    }
                    if r > 0 {
                        diag += lateral_conductance;
                        let north = idx(r - 1, c);
                        if north < here && lateral_conductance > 0.0 {
                            a.add(here, north, -lateral_conductance);
                        }
                    }
                    if r + 1 < rows {
                        diag += lateral_conductance;
                        let south = idx(r + 1, c);
                        if south < here && lateral_conductance > 0.0 {
                            a.add(here, south, -lateral_conductance);
                        }
                    }
                    a.add(here, here, diag);
                }
            }
            let factor = {
                let _t = hotwire_obs::trace::span("thermal.chip.factor_time");
                a.factor()?
            };
            ChipFactor::Banded { factor, x_fast }
        };
        Ok(Self {
            rows,
            cols,
            vertical_g,
            factor,
        })
    }

    /// `true` when this model is served by the AMD-ordered sparse LDLᵀ
    /// backend rather than the dense-band Cholesky.
    #[must_use]
    pub fn uses_sparse_backend(&self) -> bool {
        matches!(self.factor, ChipFactor::Sparse(_))
    }

    /// Number of intersections.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.rows * self.cols
    }

    /// The node-to-substrate conductance of intersection
    /// `(row, col)` (W/K), row-major.
    ///
    /// # Panics
    ///
    /// Panics if the intersection is outside the grid.
    #[must_use]
    pub fn vertical_conductance(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols);
        self.vertical_g[row * self.cols + col]
    }

    /// Solves for per-node temperature **rise** above the substrate
    /// reference (K) given per-node powers (W), both row-major
    /// (`row * cols + col`). Reuses the factorization; the solve is a
    /// banded substitution.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidInput`] on a length mismatch or a
    /// non-finite/negative power.
    pub fn solve_into(&self, node_power: &[f64], rise: &mut Vec<f64>) -> Result<(), ThermalError> {
        let n = self.node_count();
        if node_power.len() != n {
            return Err(ThermalError::InvalidInput {
                message: format!("expected {n} node powers, got {}", node_power.len()),
            });
        }
        for (k, &p) in node_power.iter().enumerate() {
            if !(p >= 0.0) || !p.is_finite() {
                return Err(ThermalError::InvalidInput {
                    message: format!("node {k} power must be finite and ≥ 0, got {p}"),
                });
            }
        }
        metrics::counter("thermal.chip.solves").inc();
        let _t = hotwire_obs::trace::span("thermal.chip.solve_time");
        match &self.factor {
            ChipFactor::Sparse(f) => f.solve_into(node_power, rise),
            ChipFactor::Banded {
                factor,
                x_fast: true,
            } => factor.solve_into(node_power, rise),
            ChipFactor::Banded {
                factor,
                x_fast: false,
            } => {
                // Permute row-major → column-fast, solve, permute back.
                let (rows, cols) = (self.rows, self.cols);
                let mut rhs = vec![0.0; n];
                for r in 0..rows {
                    for c in 0..cols {
                        rhs[c * rows + r] = node_power[r * cols + c];
                    }
                }
                let sol = factor.solve(&rhs);
                rise.clear();
                rise.resize(n, 0.0);
                for r in 0..rows {
                    for c in 0..cols {
                        rise[r * cols + c] = sol[c * rows + r];
                    }
                }
            }
        }
        Ok(())
    }

    /// Allocating convenience wrapper around
    /// [`ChipThermalModel::solve_into`].
    ///
    /// # Errors
    ///
    /// As [`ChipThermalModel::solve_into`].
    pub fn solve(&self, node_power: &[f64]) -> Result<Vec<f64>, ThermalError> {
        let mut rise = Vec::new();
        self.solve_into(node_power, &mut rise)?;
        Ok(rise)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(ChipThermalModel::new(1, 1, 1.0, 1.0).is_err());
        assert!(ChipThermalModel::new(0, 5, 1.0, 1.0).is_err());
        assert!(ChipThermalModel::new(2, 2, 1.0, 0.0).is_err());
        assert!(ChipThermalModel::new(2, 2, -1.0, 1.0).is_err());
        assert!(ChipThermalModel::new(2, 2, f64::NAN, 1.0).is_err());
        assert!(ChipThermalModel::new(2, 2, 1.0, 1.0).is_ok());
    }

    #[test]
    fn zero_lateral_decouples_nodes() {
        // Without metal conduction every node is P/G_v exactly.
        let m = ChipThermalModel::new(3, 4, 0.0, 0.5).unwrap();
        let p: Vec<f64> = (0..12).map(|k| 0.1 * (k + 1) as f64).collect();
        let t = m.solve(&p).unwrap();
        for r in 0..3 {
            for c in 0..4 {
                let k = r * 4 + c;
                let expect = p[k] / m.vertical_conductance(r, c);
                assert!((t[k] - expect).abs() < 1e-12, "node {k}");
            }
        }
    }

    #[test]
    fn energy_balance_closes_with_lateral_conduction() {
        // All heat must leave through the vertical conductances.
        let m = ChipThermalModel::new(5, 7, 2.0, 0.3).unwrap();
        let p: Vec<f64> = (0..35).map(|k| ((k * 13) % 7) as f64 * 0.05).collect();
        let t = m.solve(&p).unwrap();
        let total_in: f64 = p.iter().sum();
        let mut total_out = 0.0;
        for r in 0..5 {
            for c in 0..7 {
                total_out += t[r * 7 + c] * m.vertical_conductance(r, c);
            }
        }
        assert!(
            (total_in - total_out).abs() < 1e-9 * total_in,
            "in {total_in} vs out {total_out}"
        );
    }

    #[test]
    fn lateral_conduction_spreads_a_hot_spot() {
        let rows = 5;
        let cols = 5;
        let mut p = vec![0.0; rows * cols];
        p[2 * cols + 2] = 1.0;
        let isolated = ChipThermalModel::new(rows, cols, 0.0, 0.2).unwrap();
        let coupled = ChipThermalModel::new(rows, cols, 1.0, 0.2).unwrap();
        let ti = isolated.solve(&p).unwrap();
        let tc = coupled.solve(&p).unwrap();
        // The heated node cools down; its neighbors warm up.
        assert!(tc[2 * cols + 2] < ti[2 * cols + 2]);
        assert!(ti[2 * cols + 1] == 0.0);
        assert!(tc[2 * cols + 1] > 0.0);
        // Peak stays at the heated node.
        let peak = tc
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(peak, 2 * cols + 2);
    }

    #[test]
    fn tall_and_wide_grids_agree_by_transpose() {
        // Solving a tall grid and its wide transpose must give the same
        // field (exercises both unknown orderings).
        let (rows, cols) = (3, 6);
        let p: Vec<f64> = (0..rows * cols).map(|k| 0.01 * (k % 5) as f64).collect();
        let wide = ChipThermalModel::new(rows, cols, 0.7, 0.2).unwrap();
        let tall = ChipThermalModel::new(cols, rows, 0.7, 0.2).unwrap();
        let tw = wide.solve(&p).unwrap();
        let mut pt = vec![0.0; rows * cols];
        for r in 0..rows {
            for c in 0..cols {
                pt[c * rows + r] = p[r * cols + c];
            }
        }
        let tt = tall.solve(&pt).unwrap();
        for r in 0..rows {
            for c in 0..cols {
                let a = tw[r * cols + c];
                let b = tt[c * rows + r];
                assert!((a - b).abs() < 1e-12, "({r},{c}): {a} vs {b}");
            }
        }
    }

    #[test]
    fn sparse_backend_engages_and_satisfies_the_stencil() {
        // Past the bandwidth threshold the model must switch to the
        // AMD-ordered sparse LDLᵀ and still solve the same physics:
        // check the finite-volume stencil residual at every node.
        let (rows, cols) = (66, 66);
        let gl = 0.8;
        let gh = 0.3;
        let m = ChipThermalModel::new(rows, cols, gl, gh).unwrap();
        assert!(m.uses_sparse_backend());
        assert!(!ChipThermalModel::new(64, 64, gl, gh)
            .unwrap()
            .uses_sparse_backend());
        let p: Vec<f64> = (0..rows * cols)
            .map(|k| ((k * 7) % 11) as f64 * 0.02)
            .collect();
        let t = m.solve(&p).unwrap();
        let mut worst = 0.0f64;
        for r in 0..rows {
            for c in 0..cols {
                let k = r * cols + c;
                let mut acc = m.vertical_conductance(r, c) * t[k];
                let mut couple = |nk: usize| acc += gl * (t[k] - t[nk]);
                if c > 0 {
                    couple(k - 1);
                }
                if c + 1 < cols {
                    couple(k + 1);
                }
                if r > 0 {
                    couple(k - cols);
                }
                if r + 1 < rows {
                    couple(k + cols);
                }
                worst = worst.max((acc - p[k]).abs());
            }
        }
        assert!(worst < 1e-9, "stencil residual {worst}");
    }

    #[test]
    fn single_row_chain_matches_hand_solution() {
        // 1×2 chain, one branch: both nodes have one incident
        // half-segment. Equal powers ⇒ equal temperatures ⇒ no lateral
        // flow: ΔT = P / G_half regardless of the lateral conductance.
        let m = ChipThermalModel::new(1, 2, 3.0, 0.25).unwrap();
        let t = m.solve(&[0.5, 0.5]).unwrap();
        assert!((t[0] - 2.0).abs() < 1e-12);
        assert!((t[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn input_validation_on_solve() {
        let m = ChipThermalModel::new(2, 2, 1.0, 1.0).unwrap();
        assert!(m.solve(&[0.0; 3]).is_err());
        assert!(m.solve(&[0.0, 0.0, 0.0, f64::NAN]).is_err());
        assert!(m.solve(&[0.0, 0.0, 0.0, -1.0]).is_err());
    }
}
