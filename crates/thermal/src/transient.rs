//! Lumped transient Joule heating with melt detection — the engine behind
//! the paper's §6 (thermal failure under short high-current pulses, ESD).
//!
//! On ESD time scales (< 200 ns) an interconnect heats almost
//! adiabatically: the thermal time constant `τ = C_v·X` (with `X` the
//! volumetric self-heating constant of the steady model) is microseconds,
//! two orders above the pulse. The lumped energy balance per unit wire
//! volume is
//!
//! `C_v·dT/dt = j(t)²·ρ(T) − (T − T_ref)/X`
//!
//! which recovers the steady eq. (9) solution as `t → ∞` and the
//! Wunsch–Bell-like `j_crit ∝ t_p^{−1/2}` adiabatic regime for short
//! pulses. When `T` reaches the melting point, additional energy goes into
//! the latent heat of fusion (the temperature plateaus); complete melting
//! is the open-circuit failure criterion of Banerjee et al. \[8\].

use hotwire_tech::Metal;
use hotwire_units::{CurrentDensity, Kelvin, Seconds};
use serde::{Deserialize, Serialize};

use crate::impedance::{self_heating_constant, InsulatorStack, LineGeometry};
use crate::ThermalError;

/// A line prepared for transient simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransientLine {
    metal: Metal,
    line: LineGeometry,
    reference_temperature: Kelvin,
    /// Volumetric self-heating constant X, K per (W/m³) — see
    /// [`self_heating_constant`]; conduction loss = (T − T_ref)/X per m³.
    x_constant: f64,
}

impl TransientLine {
    /// Builds a transient model over the given steady conduction path.
    ///
    /// # Errors
    ///
    /// Propagates [`ThermalError::InvalidInput`] from the impedance model.
    pub fn new(
        metal: Metal,
        line: LineGeometry,
        stack: &InsulatorStack,
        phi: f64,
        reference_temperature: Kelvin,
    ) -> Result<Self, ThermalError> {
        let x = self_heating_constant(line, stack, phi)?;
        // Normalize θ·V to the volumetric constant: ΔT = q·X with q in W/m³.
        Ok(Self {
            metal,
            line,
            reference_temperature,
            x_constant: x,
        })
    }

    /// Builds an *adiabatic* model (no conduction loss) — the conservative
    /// short-pulse limit, and the model of ref. \[8\].
    #[must_use]
    pub fn adiabatic(metal: Metal, line: LineGeometry, reference_temperature: Kelvin) -> Self {
        Self {
            metal,
            line,
            reference_temperature,
            x_constant: f64::INFINITY,
        }
    }

    /// The line's metal.
    #[must_use]
    pub fn metal(&self) -> &Metal {
        &self.metal
    }

    /// The line geometry.
    #[must_use]
    pub fn line(&self) -> LineGeometry {
        self.line
    }

    /// The thermal time constant `τ = C_v·X` (seconds); infinite for an
    /// adiabatic model.
    #[must_use]
    pub fn time_constant(&self) -> f64 {
        self.metal.volumetric_heat_capacity().value() * self.x_constant
    }

    /// Simulates the temperature under a time-varying current density.
    ///
    /// Integration is Heun's method (explicit trapezoidal) with the fixed
    /// step `dt`; the melt plateau is handled by a latent-heat reservoir.
    /// The simulation stops early on complete melting.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidInput`] for non-positive `duration`
    /// or `dt`.
    pub fn simulate(
        &self,
        mut j: impl FnMut(Seconds) -> CurrentDensity,
        duration: Seconds,
        dt: Seconds,
    ) -> Result<TransientResult, ThermalError> {
        if !(duration.value() > 0.0) || !(dt.value() > 0.0) {
            return Err(ThermalError::InvalidInput {
                message: "duration and dt must be positive".to_owned(),
            });
        }
        let cv = self.metal.volumetric_heat_capacity().value();
        let t_melt = self.metal.melting_point().value();
        let latent_vol = self.metal.latent_heat_fusion() * self.metal.mass_density().value(); // J/m³
        let t_ref = self.reference_temperature.value();
        let h = dt.value();

        let rate = |temp: f64, jv: f64| -> f64 {
            let rho = self.metal.resistivity(Kelvin::new(temp)).value();
            let heating = jv * jv * rho;
            let loss = if self.x_constant.is_finite() {
                (temp - t_ref) / self.x_constant
            } else {
                0.0
            };
            (heating - loss) / cv
        };

        let mut temp = t_ref;
        let mut melt_energy = 0.0_f64; // J/m³ absorbed as latent heat
        let mut time = 0.0_f64;
        let mut times = vec![Seconds::new(0.0)];
        let mut temps = vec![Kelvin::new(temp)];
        let mut peak = temp;
        let mut melted_at = None;
        let mut melt_started_at = None;

        while time < duration.value() {
            let jv0 = j(Seconds::new(time)).value();
            let jv1 = j(Seconds::new(time + h)).value();
            if temp >= t_melt && melt_energy < latent_vol {
                // Melt plateau: all net power goes into latent heat.
                let rho = self.metal.resistivity(Kelvin::new(t_melt)).value();
                let jv = 0.5 * (jv0 + jv1);
                let loss = if self.x_constant.is_finite() {
                    (t_melt - t_ref) / self.x_constant
                } else {
                    0.0
                };
                let net = jv * jv * rho - loss;
                if melt_started_at.is_none() {
                    melt_started_at = Some(time);
                }
                if net > 0.0 {
                    melt_energy += net * h;
                } else {
                    // resolidifying
                    melt_energy = (melt_energy + net * h).max(0.0);
                    if melt_energy == 0.0 {
                        temp = t_melt - 1e-9;
                    }
                }
                if melt_energy >= latent_vol {
                    melted_at = Some(time + h);
                }
            } else {
                // Heun step on the sensible-heat ODE.
                let k1 = rate(temp, jv0);
                let k2 = rate(temp + h * k1, jv1);
                temp += 0.5 * h * (k1 + k2);
                if temp > t_melt {
                    temp = t_melt;
                }
            }
            time += h;
            peak = peak.max(temp);
            times.push(Seconds::new(time));
            temps.push(Kelvin::new(temp));
            if melted_at.is_some() {
                break;
            }
        }

        Ok(TransientResult {
            times,
            temperatures: temps,
            peak_temperature: Kelvin::new(peak),
            melt_fraction: (melt_energy / latent_vol).min(1.0),
            melt_onset: melt_started_at.map(Seconds::new),
            failed_at: melted_at.map(Seconds::new),
        })
    }

    /// Simulates a rectangular pulse of amplitude `j` and width
    /// `pulse_width`, following through to 2× the width so resolidification
    /// is observable.
    ///
    /// # Errors
    ///
    /// Propagates from [`TransientLine::simulate`].
    pub fn simulate_square_pulse(
        &self,
        j: CurrentDensity,
        pulse_width: Seconds,
        steps: usize,
    ) -> Result<TransientResult, ThermalError> {
        if steps < 10 {
            return Err(ThermalError::InvalidInput {
                message: "need at least 10 steps".to_owned(),
            });
        }
        #[allow(clippy::cast_precision_loss)]
        let dt = Seconds::new(pulse_width.value() / steps as f64);
        let width = pulse_width.value();
        self.simulate(
            move |t| {
                if t.value() <= width {
                    j
                } else {
                    CurrentDensity::ZERO
                }
            },
            Seconds::new(2.0 * width),
            dt,
        )
    }

    /// Closed-form adiabatic time for a constant density `j` to bring the
    /// line from the reference temperature to *complete* melting
    /// (sensible heat + latent heat):
    ///
    /// `t = C_v/(j²·ρ_ref·β)·ln(ρ(T_melt)/ρ(T_ref)) + ρ_m·L_f/(j²·ρ(T_melt))`
    ///
    /// # Panics
    ///
    /// Panics in debug builds for non-positive `j`.
    #[must_use]
    pub fn adiabatic_time_to_melt(&self, j: CurrentDensity) -> Seconds {
        debug_assert!(j.value() > 0.0);
        let cv = self.metal.volumetric_heat_capacity().value();
        let rho_ref = self.metal.resistivity(self.reference_temperature).value();
        let rho_melt = self.metal.resistivity(self.metal.melting_point()).value();
        let beta_eff =
            self.metal.temperature_coefficient() * self.metal.resistivity_ref().value() / rho_ref;
        let j2 = j.value() * j.value();
        let sensible = cv / (j2 * rho_ref * beta_eff) * (rho_melt / rho_ref).ln();
        let latent_vol = self.metal.latent_heat_fusion() * self.metal.mass_density().value();
        let latent = latent_vol / (j2 * rho_melt);
        Seconds::new(sensible + latent)
    }

    /// Closed-form adiabatic critical current density for a square pulse of
    /// the given width — the Wunsch–Bell-like `j_crit ∝ t_p^{−1/2}` law
    /// (inverts [`TransientLine::adiabatic_time_to_melt`]).
    ///
    /// # Panics
    ///
    /// Panics in debug builds for a non-positive pulse width.
    #[must_use]
    pub fn adiabatic_critical_density(&self, pulse_width: Seconds) -> CurrentDensity {
        debug_assert!(pulse_width.value() > 0.0);
        // t ∝ 1/j² exactly, so j_crit = j_probe·√(t(j_probe)/t_p).
        let probe = CurrentDensity::from_mega_amps_per_cm2(50.0);
        let t_probe = self.adiabatic_time_to_melt(probe);
        probe * (t_probe.value() / pulse_width.value()).sqrt()
    }

    /// Critical current density for a square pulse via bisection on the
    /// full simulation (including conduction loss when the model has one).
    ///
    /// The failure criterion is complete melting before the end of the
    /// observation window (2× the pulse).
    ///
    /// # Errors
    ///
    /// Propagates simulation errors; returns
    /// [`ThermalError::NoConvergence`] when the bracket cannot be
    /// established within physical bounds.
    pub fn critical_density(
        &self,
        pulse_width: Seconds,
        relative_tolerance: f64,
    ) -> Result<CurrentDensity, ThermalError> {
        let fails = |j: CurrentDensity| -> Result<bool, ThermalError> {
            Ok(self
                .simulate_square_pulse(j, pulse_width, 4000)?
                .failed_at
                .is_some())
        };
        // Bracket: start from the adiabatic estimate.
        let mut hi = self.adiabatic_critical_density(pulse_width) * 2.0;
        let mut lo = hi * 0.05;
        let mut grow = 0;
        while !fails(hi)? {
            lo = hi;
            hi = hi * 2.0;
            grow += 1;
            if grow > 20 {
                return Err(ThermalError::NoConvergence {
                    iterations: grow,
                    residual: f64::INFINITY,
                });
            }
        }
        while fails(lo)? {
            hi = lo;
            lo = lo * 0.5;
            grow += 1;
            if grow > 40 {
                return Err(ThermalError::NoConvergence {
                    iterations: grow,
                    residual: f64::INFINITY,
                });
            }
        }
        // Bisection.
        for _ in 0..60 {
            if (hi.value() - lo.value()) / hi.value() < relative_tolerance {
                break;
            }
            let mid = (lo + hi) * 0.5;
            if fails(mid)? {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        Ok((lo + hi) * 0.5)
    }
}

/// The outcome of a transient simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransientResult {
    /// Sample times.
    pub times: Vec<Seconds>,
    /// Temperatures at the sample times.
    pub temperatures: Vec<Kelvin>,
    /// Hottest temperature reached.
    pub peak_temperature: Kelvin,
    /// Fraction of the latent heat of fusion absorbed (1 = fully molten).
    pub melt_fraction: f64,
    /// When the melting point was first reached, if ever.
    pub melt_onset: Option<Seconds>,
    /// When complete melting (open-circuit failure) occurred, if ever.
    pub failed_at: Option<Seconds>,
}

impl TransientResult {
    /// `true` when the line fully melted (open-circuit failure).
    #[must_use]
    pub fn failed(&self) -> bool {
        self.failed_at.is_some()
    }

    /// `true` when the line partially melted and resolidified — the latent
    /// EM damage condition of ref. \[9\].
    #[must_use]
    pub fn latent_damage(&self) -> bool {
        !self.failed() && self.melt_onset.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotwire_tech::Dielectric;
    use hotwire_units::{Celsius, Length};

    fn um(v: f64) -> Length {
        Length::from_micrometers(v)
    }

    fn alcu_line() -> TransientLine {
        // A typical I/O bus line: 3 µm wide, 0.55 µm AlCu over 1.2 µm oxide.
        let line = LineGeometry::new(um(3.0), um(0.55), um(100.0)).unwrap();
        let stack = InsulatorStack::single(um(1.2), &Dielectric::oxide());
        TransientLine::new(
            hotwire_tech::Metal::alcu(),
            line,
            &stack,
            crate::impedance::QUASI_2D_PHI,
            Celsius::new(25.0).to_kelvin(),
        )
        .unwrap()
    }

    #[test]
    fn esd_critical_density_near_sixty_ma_per_cm2() {
        // §6: "the critical current density for causing open circuit metal
        // failure in AlCu interconnects is 60 MA/cm²" at ESD time scales
        // (< 200 ns). Check the 100–200 ns window lands in that decade.
        let line = alcu_line();
        let j100 = line
            .critical_density(Seconds::from_nanos(100.0), 1e-3)
            .unwrap();
        let j = j100.to_mega_amps_per_cm2();
        assert!((30.0..120.0).contains(&j), "j_crit(100 ns) = {j} MA/cm²");
    }

    #[test]
    fn critical_density_follows_inverse_sqrt_width() {
        let line = TransientLine::adiabatic(
            hotwire_tech::Metal::alcu(),
            LineGeometry::new(um(3.0), um(0.55), um(100.0)).unwrap(),
            Celsius::new(25.0).to_kelvin(),
        );
        let j50 = line.adiabatic_critical_density(Seconds::from_nanos(50.0));
        let j200 = line.adiabatic_critical_density(Seconds::from_nanos(200.0));
        let ratio = j50.value() / j200.value();
        assert!(
            (ratio - 2.0).abs() < 1e-9,
            "adiabatic law is exactly t^-1/2"
        );
    }

    #[test]
    fn simulation_matches_adiabatic_closed_form() {
        let line = TransientLine::adiabatic(
            hotwire_tech::Metal::alcu(),
            LineGeometry::new(um(3.0), um(0.55), um(100.0)).unwrap(),
            Celsius::new(25.0).to_kelvin(),
        );
        let j = CurrentDensity::from_mega_amps_per_cm2(60.0);
        let t_closed = line.adiabatic_time_to_melt(j);
        let sim = line
            .simulate_square_pulse(j, Seconds::new(t_closed.value() * 1.5), 20_000)
            .unwrap();
        let t_sim = sim.failed_at.expect("must melt").value();
        assert!(
            (t_sim - t_closed.value()).abs() / t_closed.value() < 0.02,
            "simulated {t_sim:.3e} vs closed form {:.3e}",
            t_closed.value()
        );
    }

    #[test]
    fn low_current_survives() {
        let line = alcu_line();
        let sim = line
            .simulate_square_pulse(
                CurrentDensity::from_mega_amps_per_cm2(5.0),
                Seconds::from_nanos(200.0),
                2000,
            )
            .unwrap();
        assert!(!sim.failed());
        assert!(!sim.latent_damage());
        assert!(sim.peak_temperature.value() < 400.0);
    }

    #[test]
    fn intermediate_current_causes_latent_damage() {
        // Just below the open-circuit threshold the line reaches the melt
        // plateau but resolidifies — latent damage.
        let line = alcu_line();
        let j_crit = line
            .critical_density(Seconds::from_nanos(150.0), 1e-3)
            .unwrap();
        let sim = line
            .simulate_square_pulse(j_crit * 0.98, Seconds::from_nanos(150.0), 6000)
            .unwrap();
        assert!(!sim.failed(), "0.98·j_crit must survive");
        assert!(
            sim.latent_damage(),
            "just below threshold should touch the melt plateau (melt fraction {})",
            sim.melt_fraction
        );
    }

    #[test]
    fn conduction_loss_raises_critical_density_for_long_pulses() {
        // For pulses approaching the thermal time constant, the heat-sunk
        // model must require more current than the adiabatic bound.
        let line = alcu_line();
        let tau = line.time_constant();
        let long_pulse = Seconds::new(tau);
        let j_adiabatic = line.adiabatic_critical_density(long_pulse);
        let j_full = line.critical_density(long_pulse, 1e-3).unwrap();
        assert!(
            j_full.value() > 1.05 * j_adiabatic.value(),
            "with loss {} vs adiabatic {}",
            j_full.to_mega_amps_per_cm2(),
            j_adiabatic.to_mega_amps_per_cm2()
        );
    }

    #[test]
    fn peak_temperature_monotone_in_current() {
        let line = alcu_line();
        let mut prev = 0.0;
        for j in [5.0, 15.0, 30.0, 45.0] {
            let sim = line
                .simulate_square_pulse(
                    CurrentDensity::from_mega_amps_per_cm2(j),
                    Seconds::from_nanos(100.0),
                    2000,
                )
                .unwrap();
            assert!(sim.peak_temperature.value() > prev);
            prev = sim.peak_temperature.value();
        }
    }

    #[test]
    fn validation_errors() {
        let line = alcu_line();
        assert!(line
            .simulate(
                |_| CurrentDensity::ZERO,
                Seconds::new(0.0),
                Seconds::new(1e-9)
            )
            .is_err());
        assert!(line
            .simulate(
                |_| CurrentDensity::ZERO,
                Seconds::new(1e-6),
                Seconds::new(0.0)
            )
            .is_err());
        assert!(line
            .simulate_square_pulse(
                CurrentDensity::from_mega_amps_per_cm2(1.0),
                Seconds::from_nanos(100.0),
                5
            )
            .is_err());
    }

    #[test]
    fn time_constant_is_microseconds() {
        // The premise of the adiabatic ESD treatment.
        let tau = alcu_line().time_constant();
        assert!(tau > 1e-7 && tau < 1e-4, "τ = {tau:.3e} s");
    }
}
