//! Error type for thermal modelling.

/// Errors produced by thermal model construction and solvers.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ThermalError {
    /// A geometric or material input was non-physical.
    InvalidInput {
        /// Description of the defect.
        message: String,
    },
    /// Joule heating exceeds what the conduction path can remove at any
    /// temperature — the linear ρ(T) feedback diverges (thermal runaway).
    ThermalRunaway {
        /// The dimensionless feedback gain `A·β` that reached ≥ 1.
        gain: f64,
    },
    /// An iterative solver did not reach the residual target.
    NoConvergence {
        /// Iterations performed.
        iterations: usize,
        /// The final relative residual.
        residual: f64,
    },
    /// The transient solver reached the melting point (reported as an error
    /// only by entry points that promise melt-free operation).
    Melted {
        /// Time at which the melt began, in seconds.
        at_seconds: f64,
    },
}

impl std::fmt::Display for ThermalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ThermalError::InvalidInput { message } => write!(f, "invalid input: {message}"),
            ThermalError::ThermalRunaway { gain } => {
                write!(f, "thermal runaway: feedback gain {gain} ≥ 1")
            }
            ThermalError::NoConvergence {
                iterations,
                residual,
            } => write!(
                f,
                "solver did not converge after {iterations} iterations (residual {residual:.3e})"
            ),
            ThermalError::Melted { at_seconds } => {
                write!(f, "conductor melted at t = {at_seconds:.3e} s")
            }
        }
    }
}

impl std::error::Error for ThermalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = ThermalError::ThermalRunaway { gain: 1.25 };
        assert_eq!(e.to_string(), "thermal runaway: feedback gain 1.25 ≥ 1");
        let e = ThermalError::NoConvergence {
            iterations: 100,
            residual: 2e-3,
        };
        assert!(e.to_string().contains("100 iterations"));
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ThermalError>();
    }
}
