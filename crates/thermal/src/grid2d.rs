//! Finite-volume conduction solver on interconnect cross-sections.
//!
//! This module plays the role of the *lab* in the paper's methodology:
//!
//! * Fig. 5 measured the thermal impedance of fabricated AlCu lines to
//!   extract the heat-spreading parameter φ of eq. (14). Here,
//!   [`SingleWireStructure`] builds the same cross-section (wire over
//!   oxide over a silicon heat sink, with an optional low-k gap-fill band)
//!   and [`solve`] produces the temperature field from which
//!   [`WireSolution::effective_width`] and φ follow.
//! * Table 7 consumed a finite-element result (Rzepka et al. \[11\]) for
//!   densely packed multi-level arrays. [`ArrayStructure`] builds a
//!   4-level array cross-section and the same solver extracts the
//!   self-heating coupling constant of eq. (18) for any set of heated
//!   lines.
//!
//! The discretization is a standard cell-centered finite-volume scheme on
//! a non-uniform tensor-product mesh with harmonic-mean face conductances,
//! Dirichlet bottom boundary (substrate at the reference temperature) and
//! adiabatic sides/top. The linear system is solved exactly by banded
//! Cholesky by default (see [`SolveMethod`]); SOR is available as an
//! alternative. Everything works in *temperature rise* ΔT above the
//! reference, per unit length of wire (W/m sources).

use hotwire_tech::Dielectric;
use hotwire_units::Length;
use serde::{Deserialize, Serialize};

use crate::band::BandedSpd;
use crate::ThermalError;

/// An axis-aligned rectangle in cross-section coordinates (meters);
/// x runs laterally, y runs from the substrate (0) upward.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    /// Left edge.
    pub x0: f64,
    /// Right edge.
    pub x1: f64,
    /// Bottom edge.
    pub y0: f64,
    /// Top edge.
    pub y1: f64,
}

impl Rect {
    /// Creates a rectangle; coordinates are normalized so `x0 ≤ x1`,
    /// `y0 ≤ y1`.
    #[must_use]
    pub fn new(x0: f64, x1: f64, y0: f64, y1: f64) -> Self {
        Self {
            x0: x0.min(x1),
            x1: x0.max(x1),
            y0: y0.min(y1),
            y1: y0.max(y1),
        }
    }

    /// Area (m² in cross-section).
    #[must_use]
    pub fn area(&self) -> f64 {
        (self.x1 - self.x0) * (self.y1 - self.y0)
    }

    /// `true` when the point is inside (closed on the low edges, open on
    /// the high edges, so abutting rectangles do not overlap).
    #[must_use]
    pub fn contains(&self, x: f64, y: f64) -> bool {
        x >= self.x0 && x < self.x1 && y >= self.y0 && y < self.y1
    }
}

/// A material/source region painted onto the structure. Later regions
/// override earlier ones where they overlap.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Region {
    /// Footprint of the region.
    pub rect: Rect,
    /// Thermal conductivity, W/(m·K).
    pub conductivity: f64,
    /// Volumetric heat source, W/m³ (per unit wire length).
    pub source: f64,
}

/// The thermal condition applied at the top edge of the domain.
///
/// The bottom edge is always the isothermal substrate; the paper's
/// structures have passivation above (adiabatic top, the default), but a
/// flip-chip lid or heat spreader pressed onto the passivation is
/// modelled with an isothermal top at the same reference temperature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum TopBoundary {
    /// No heat leaves through the top (default; passivated die surface).
    #[default]
    Adiabatic,
    /// The top surface is held at the reference temperature (ideal lid).
    Isothermal,
}

/// A 2-D cross-section conduction problem.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Structure {
    width: f64,
    height: f64,
    background_conductivity: f64,
    regions: Vec<Region>,
    #[serde(default)]
    top_boundary: TopBoundary,
}

impl Structure {
    /// Creates a domain of the given extent filled with a background
    /// dielectric conductivity. The bottom edge (y = 0) is the isothermal
    /// substrate.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidInput`] for non-positive extents or
    /// conductivity.
    pub fn new(
        width: Length,
        height: Length,
        background_conductivity: f64,
    ) -> Result<Self, ThermalError> {
        if !(width.value() > 0.0) || !(height.value() > 0.0) {
            return Err(ThermalError::InvalidInput {
                message: "domain extents must be positive".to_owned(),
            });
        }
        if !(background_conductivity > 0.0) {
            return Err(ThermalError::InvalidInput {
                message: "background conductivity must be positive".to_owned(),
            });
        }
        Ok(Self {
            width: width.value(),
            height: height.value(),
            background_conductivity,
            regions: Vec::new(),
            top_boundary: TopBoundary::default(),
        })
    }

    /// Sets the top-edge boundary condition (default adiabatic).
    pub fn set_top_boundary(&mut self, boundary: TopBoundary) {
        self.top_boundary = boundary;
    }

    /// The configured top-edge boundary condition.
    #[must_use]
    pub fn top_boundary(&self) -> TopBoundary {
        self.top_boundary
    }

    /// Paints a region (material and/or heat source) onto the structure.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidInput`] when the region has
    /// non-positive conductivity or pokes outside the domain.
    pub fn add_region(&mut self, region: Region) -> Result<(), ThermalError> {
        if !(region.conductivity > 0.0) {
            return Err(ThermalError::InvalidInput {
                message: "region conductivity must be positive".to_owned(),
            });
        }
        let r = region.rect;
        if r.x0 < -1e-15 || r.x1 > self.width + 1e-15 || r.y0 < -1e-15 || r.y1 > self.height + 1e-15
        {
            return Err(ThermalError::InvalidInput {
                message: "region extends outside the domain".to_owned(),
            });
        }
        self.regions.push(region);
        Ok(())
    }

    /// Domain width (m).
    #[must_use]
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Domain height (m).
    #[must_use]
    pub fn height(&self) -> f64 {
        self.height
    }

    /// The painted regions, in paint order.
    #[must_use]
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    fn material_at(&self, x: f64, y: f64) -> (f64, f64) {
        let mut k = self.background_conductivity;
        let mut q = 0.0;
        for r in &self.regions {
            if r.rect.contains(x, y) {
                k = r.conductivity;
                q = r.source;
            }
        }
        (k, q)
    }

    fn mesh(&self, control: MeshControl) -> Mesh {
        let mut xs: Vec<f64> = vec![0.0, self.width];
        let mut ys: Vec<f64> = vec![0.0, self.height];
        for r in &self.regions {
            xs.extend([r.rect.x0, r.rect.x1]);
            ys.extend([r.rect.y0, r.rect.y1]);
        }
        let xs = refine_axis(xs, control.max_dx);
        let ys = refine_axis(ys, control.max_dy);
        Mesh { xs, ys }
    }
}

/// Mesh-density control for the solver: maximum cell extent per axis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeshControl {
    /// Maximum cell width (m).
    pub max_dx: f64,
    /// Maximum cell height (m).
    pub max_dy: f64,
}

impl MeshControl {
    /// A mesh resolving the given feature size with `cells_per_feature`
    /// cells.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `cells_per_feature` is zero.
    #[must_use]
    pub fn resolving(feature: Length, cells_per_feature: usize) -> Self {
        debug_assert!(cells_per_feature > 0);
        #[allow(clippy::cast_precision_loss)]
        let d = feature.value() / cells_per_feature as f64;
        Self {
            max_dx: d,
            max_dy: d,
        }
    }
}

/// Linear-solver selection.
///
/// The conduction matrix is symmetric positive definite with bandwidth
/// `min(nx, ny)`; the direct banded Cholesky factorization is exact and
/// fast at cross-section sizes (≤ ~10⁵ cells) and is the default. SOR is
/// retained for the ablation benchmark and for very large meshes where the
/// band no longer fits comfortably.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SolveMethod {
    /// Direct banded Cholesky factorization (exact, default).
    Direct,
    /// Successive over-relaxation.
    Sor {
        /// Over-relaxation factor ω ∈ (0, 2); ≈ 1.9 is near-optimal for
        /// these meshes.
        omega: f64,
        /// Relative residual target (energy-balance residual over total
        /// injected power).
        tolerance: f64,
        /// Sweep budget before giving up.
        max_sweeps: usize,
    },
}

/// Options for [`solve`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SolveOptions {
    /// The linear solver to use.
    pub method: SolveMethod,
}

impl Default for SolveOptions {
    fn default() -> Self {
        Self {
            method: SolveMethod::Direct,
        }
    }
}

impl SolveOptions {
    /// SOR with sensible defaults (ω = 1.9, 10⁻⁸ residual, 40 000 sweeps).
    #[must_use]
    pub fn sor() -> Self {
        Self {
            method: SolveMethod::Sor {
                omega: 1.9,
                tolerance: 1e-8,
                max_sweeps: 40_000,
            },
        }
    }
}

/// Non-uniform tensor-product mesh (cell edge coordinates).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mesh {
    xs: Vec<f64>,
    ys: Vec<f64>,
}

impl Mesh {
    /// Number of cells in x.
    #[must_use]
    pub fn nx(&self) -> usize {
        self.xs.len() - 1
    }

    /// Number of cells in y.
    #[must_use]
    pub fn ny(&self) -> usize {
        self.ys.len() - 1
    }

    /// The cell-edge coordinates along x (length `nx + 1`).
    #[must_use]
    pub fn x_edges(&self) -> &[f64] {
        &self.xs
    }

    /// The cell-edge coordinates along y (length `ny + 1`).
    #[must_use]
    pub fn y_edges(&self) -> &[f64] {
        &self.ys
    }

    fn cell_center(&self, i: usize, j: usize) -> (f64, f64) {
        (
            0.5 * (self.xs[i] + self.xs[i + 1]),
            0.5 * (self.ys[j] + self.ys[j + 1]),
        )
    }

    fn dx(&self, i: usize) -> f64 {
        self.xs[i + 1] - self.xs[i]
    }

    fn dy(&self, j: usize) -> f64 {
        self.ys[j + 1] - self.ys[j]
    }
}

fn refine_axis(mut marks: Vec<f64>, max_d: f64) -> Vec<f64> {
    marks.sort_by(f64::total_cmp);
    marks.dedup_by(|a, b| (*a - *b).abs() < 1e-15);
    let mut out = Vec::with_capacity(marks.len() * 4);
    for w in marks.windows(2) {
        let (a, b) = (w[0], w[1]);
        let span = b - a;
        #[allow(
            clippy::cast_possible_truncation,
            clippy::cast_sign_loss,
            clippy::cast_precision_loss
        )]
        let n = (span / max_d).ceil().max(1.0) as usize;
        for k in 0..n {
            #[allow(clippy::cast_precision_loss)]
            out.push(a + span * (k as f64) / (n as f64));
        }
    }
    out.push(*marks.last().expect("at least two marks"));
    out
}

/// The solved temperature-rise field (ΔT above the substrate reference).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Field {
    mesh: Mesh,
    /// Cell-centered rises, row-major (j·nx + i).
    t: Vec<f64>,
    sweeps: usize,
    residual: f64,
}

impl Field {
    /// The mesh the field lives on.
    #[must_use]
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// Number of SOR sweeps performed.
    #[must_use]
    pub fn sweeps(&self) -> usize {
        self.sweeps
    }

    /// Final relative energy-balance residual.
    #[must_use]
    pub fn residual(&self) -> f64 {
        self.residual
    }

    /// Maximum temperature rise anywhere in the domain (K).
    #[must_use]
    pub fn max_rise(&self) -> f64 {
        self.t.iter().copied().fold(0.0, f64::max)
    }

    /// The temperature rise of the cell `(i, j)` (x-index, y-index from
    /// the substrate).
    ///
    /// # Panics
    ///
    /// Panics for out-of-range indices.
    #[must_use]
    pub fn cell_rise(&self, i: usize, j: usize) -> f64 {
        assert!(
            i < self.mesh.nx() && j < self.mesh.ny(),
            "cell ({i},{j}) out of range"
        );
        self.t[j * self.mesh.nx() + i]
    }

    /// The temperature rise of the cell containing the point `(x, y)`
    /// (meters); clamps to the nearest cell outside the domain.
    #[must_use]
    pub fn rise_at(&self, x: f64, y: f64) -> f64 {
        let find = |edges: &[f64], v: f64| -> usize {
            match edges.binary_search_by(|e| e.total_cmp(&v)) {
                Ok(k) => k.min(edges.len() - 2),
                Err(k) => k.saturating_sub(1).min(edges.len() - 2),
            }
        };
        let i = find(self.mesh.x_edges(), x);
        let j = find(self.mesh.y_edges(), y);
        self.cell_rise(i, j)
    }

    /// Area-weighted average rise over the cells whose centers fall inside
    /// `rect` (K). Returns 0 for an empty intersection.
    #[must_use]
    pub fn average_rise_in(&self, rect: Rect) -> f64 {
        let nx = self.mesh.nx();
        let mut sum = 0.0;
        let mut area = 0.0;
        for j in 0..self.mesh.ny() {
            for i in 0..nx {
                let (cx, cy) = self.mesh.cell_center(i, j);
                if rect.contains(cx, cy) {
                    let a = self.mesh.dx(i) * self.mesh.dy(j);
                    sum += self.t[j * nx + i] * a;
                    area += a;
                }
            }
        }
        if area > 0.0 {
            sum / area
        } else {
            0.0
        }
    }
}

/// Solves the conduction problem.
///
/// # Errors
///
/// Returns [`ThermalError::NoConvergence`] when the SOR iteration fails to
/// reach the residual target within the sweep budget, or
/// [`ThermalError::InvalidInput`] for a degenerate mesh/ω.
pub fn solve(
    structure: &Structure,
    control: MeshControl,
    options: SolveOptions,
) -> Result<Field, ThermalError> {
    if let SolveMethod::Sor { omega, .. } = options.method {
        if !(omega > 0.0 && omega < 2.0) {
            return Err(ThermalError::InvalidInput {
                message: format!("SOR omega must be in (0, 2), got {omega}"),
            });
        }
    }
    let mesh = structure.mesh(control);
    let nx = mesh.nx();
    let ny = mesh.ny();
    if nx < 2 || ny < 2 {
        return Err(ThermalError::InvalidInput {
            message: "mesh must have at least 2×2 cells".to_owned(),
        });
    }

    // Sample materials at cell centers.
    let mut k = vec![0.0; nx * ny];
    let mut q = vec![0.0; nx * ny]; // W per meter of wire (integrated over cell)
    let mut total_power = 0.0;
    for j in 0..ny {
        for i in 0..nx {
            let (cx, cy) = mesh.cell_center(i, j);
            let (kc, qc) = structure.material_at(cx, cy);
            k[j * nx + i] = kc;
            let cell_q = qc * mesh.dx(i) * mesh.dy(j);
            q[j * nx + i] = cell_q;
            total_power += cell_q;
        }
    }
    if total_power <= 0.0 {
        // No heat: the field is identically the reference temperature.
        return Ok(Field {
            mesh,
            t: vec![0.0; nx * ny],
            sweeps: 0,
            residual: 0.0,
        });
    }

    // Precompute face conductances (per unit wire length).
    // gx[j*(nx+1)+i]: between cell (i-1,j) and (i,j); boundaries 0 (adiabatic sides).
    let mut gx = vec![0.0; (nx + 1) * ny];
    for j in 0..ny {
        for i in 1..nx {
            let k1 = k[j * nx + i - 1];
            let k2 = k[j * nx + i];
            let d1 = mesh.dx(i - 1);
            let d2 = mesh.dx(i);
            gx[j * (nx + 1) + i] = mesh.dy(j) / (d1 / (2.0 * k1) + d2 / (2.0 * k2));
        }
    }
    // gy[j*nx+i] for j in 0..=ny: between cell (i,j-1) and (i,j);
    // j = 0 is the Dirichlet substrate face, j = ny the adiabatic top.
    let mut gy = vec![0.0; nx * (ny + 1)];
    let structure_top_isothermal = structure.top_boundary() == TopBoundary::Isothermal;
    for i in 0..nx {
        // substrate face: half-cell conduction into the isothermal sink
        gy[i] = mesh.dx(i) * (2.0 * k[i]) / mesh.dy(0);
        for j in 1..ny {
            let k1 = k[(j - 1) * nx + i];
            let k2 = k[j * nx + i];
            let d1 = mesh.dy(j - 1);
            let d2 = mesh.dy(j);
            gy[j * nx + i] = mesh.dx(i) / (d1 / (2.0 * k1) + d2 / (2.0 * k2));
        }
        if structure_top_isothermal {
            // half-cell conduction into the isothermal lid
            gy[ny * nx + i] = mesh.dx(i) * (2.0 * k[(ny - 1) * nx + i]) / mesh.dy(ny - 1);
        }
        // otherwise the top face stays 0 (adiabatic)
    }

    match options.method {
        SolveMethod::Direct => {
            let t = cholesky_banded_solve(&mesh, &gx, &gy, &q)?;
            let residual = energy_residual(&mesh, &gx, &gy, &q, &t) / total_power;
            Ok(Field {
                mesh,
                t,
                sweeps: 1,
                residual,
            })
        }
        SolveMethod::Sor {
            omega,
            tolerance,
            max_sweeps,
        } => {
            let mut t = vec![0.0; nx * ny];
            let mut sweeps = 0;
            let mut residual = f64::INFINITY;
            while sweeps < max_sweeps {
                for _ in 0..20 {
                    sor_sweep(&mesh, &gx, &gy, &q, &mut t, omega);
                    sweeps += 1;
                }
                residual = energy_residual(&mesh, &gx, &gy, &q, &t) / total_power;
                if residual < tolerance {
                    return Ok(Field {
                        mesh,
                        t,
                        sweeps,
                        residual,
                    });
                }
            }
            Err(ThermalError::NoConvergence {
                iterations: sweeps,
                residual,
            })
        }
    }
}

/// Direct solve of the finite-volume system by banded Cholesky.
///
/// Unknowns are ordered with the shorter grid axis varying fastest so the
/// half-bandwidth is `min(nx, ny)`.
fn cholesky_banded_solve(
    mesh: &Mesh,
    gx: &[f64],
    gy: &[f64],
    q: &[f64],
) -> Result<Vec<f64>, ThermalError> {
    let nx = mesh.nx();
    let ny = mesh.ny();
    let n = nx * ny;
    // Map cell (i, j) to an unknown index with the smaller axis fastest.
    let x_fast = nx <= ny;
    let bw = if x_fast { nx } else { ny };
    let idx = |i: usize, j: usize| -> usize {
        if x_fast {
            j * nx + i
        } else {
            i * ny + j
        }
    };
    let mut ab = BandedSpd::new(n, bw)?;
    let mut rhs = vec![0.0_f64; n];
    let set = |r: usize, c: usize, v: f64, ab: &mut BandedSpd| {
        ab.add(r, c, v);
    };
    for j in 0..ny {
        for i in 0..nx {
            let r = idx(i, j);
            let c_cell = j * nx + i;
            rhs[r] = q[c_cell];
            let gw = gx[j * (nx + 1) + i];
            let ge = gx[j * (nx + 1) + i + 1];
            let gs = gy[j * nx + i];
            let gn = gy[(j + 1) * nx + i];
            let mut diag = 0.0;
            if gw > 0.0 {
                diag += gw;
                let cn = idx(i - 1, j);
                if cn < r {
                    set(r, cn, -gw, &mut ab);
                }
            }
            if ge > 0.0 {
                diag += ge;
                let cn = idx(i + 1, j);
                if cn < r {
                    set(r, cn, -ge, &mut ab);
                }
            }
            if gs > 0.0 {
                diag += gs; // j = 0 couples to the Dirichlet sink: diagonal only
                if j > 0 {
                    let cn = idx(i, j - 1);
                    if cn < r {
                        set(r, cn, -gs, &mut ab);
                    }
                }
            }
            if gn > 0.0 {
                diag += gn; // j = ny-1 with an isothermal lid: diagonal only
                if j + 1 < ny {
                    let cn = idx(i, j + 1);
                    if cn < r {
                        set(r, cn, -gn, &mut ab);
                    }
                }
            }
            set(r, r, diag, &mut ab);
        }
    }
    let sol = ab.factor()?.solve(&rhs);
    // Reorder back to cell-major (j*nx + i) if we solved transposed.
    if x_fast {
        Ok(sol)
    } else {
        let mut out = vec![0.0; n];
        for j in 0..ny {
            for i in 0..nx {
                out[j * nx + i] = sol[i * ny + j];
            }
        }
        Ok(out)
    }
}

fn sor_sweep(mesh: &Mesh, gx: &[f64], gy: &[f64], q: &[f64], t: &mut [f64], omega: f64) {
    let nx = mesh.nx();
    let ny = mesh.ny();
    for j in 0..ny {
        for i in 0..nx {
            let c = j * nx + i;
            let gw = gx[j * (nx + 1) + i];
            let ge = gx[j * (nx + 1) + i + 1];
            let gs = gy[j * nx + i];
            let gn = gy[(j + 1) * nx + i];
            let mut num = q[c];
            let mut den = 0.0;
            if gw > 0.0 {
                num += gw * t[c - 1];
                den += gw;
            }
            if ge > 0.0 {
                num += ge * t[c + 1];
                den += ge;
            }
            if gs > 0.0 {
                // j = 0: neighbour is the substrate at rise 0 (adds only to den)
                if j > 0 {
                    num += gs * t[c - nx];
                }
                den += gs;
            }
            if gn > 0.0 {
                // j = ny-1 with an isothermal lid couples to the sink at 0
                if j + 1 < ny {
                    num += gn * t[c + nx];
                }
                den += gn;
            }
            if den > 0.0 {
                let t_new = num / den;
                t[c] += omega * (t_new - t[c]);
            }
        }
    }
}

fn energy_residual(mesh: &Mesh, gx: &[f64], gy: &[f64], q: &[f64], t: &[f64]) -> f64 {
    let nx = mesh.nx();
    let ny = mesh.ny();
    let mut sum_sq = 0.0;
    for j in 0..ny {
        for i in 0..nx {
            let c = j * nx + i;
            let gw = gx[j * (nx + 1) + i];
            let ge = gx[j * (nx + 1) + i + 1];
            let gs = gy[j * nx + i];
            let gn = gy[(j + 1) * nx + i];
            let mut r = q[c];
            if gw > 0.0 {
                r += gw * (t[c - 1] - t[c]);
            }
            if ge > 0.0 {
                r += ge * (t[c + 1] - t[c]);
            }
            if gs > 0.0 {
                let tn = if j > 0 { t[c - nx] } else { 0.0 };
                r += gs * (tn - t[c]);
            }
            if gn > 0.0 {
                let tn = if j + 1 < ny { t[c + nx] } else { 0.0 };
                r += gn * (tn - t[c]);
            }
            sum_sq += r * r;
        }
    }
    sum_sq.sqrt()
}

// ---------------------------------------------------------------------------
// High-level structures
// ---------------------------------------------------------------------------

/// The Fig. 5 test structure: one wire of width `W` and thickness `t_m`
/// sitting on `t_ox` of under-dielectric above the silicon substrate, with
/// an intra-level gap-fill dielectric band beside the wire and a
/// passivation cap above.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SingleWireStructure {
    /// Wire width.
    pub width: Length,
    /// Wire (metal) thickness.
    pub thickness: Length,
    /// Under-dielectric thickness (t_ox of eq. 8).
    pub t_ox: Length,
    /// Dielectric below the wire (usually oxide).
    pub under: Dielectric,
    /// Intra-level gap-fill dielectric beside the wire — the low-k slot.
    pub gap_fill: Dielectric,
    /// Passivation/ILD above the wire.
    pub cap: Dielectric,
    /// Cap thickness above the wire.
    pub cap_thickness: Length,
    /// Metal thermal conductivity, W/(m·K).
    pub metal_conductivity: f64,
    /// Same-level neighbour lines on each side: `(count, pitch, heated)`.
    /// `None` (the default) models the isolated line of the paper's
    /// Fig. 5; heated neighbours model a same-level bus (the lateral part
    /// of the Fig. 8 proximity effect).
    pub neighbors: Option<(usize, Length, bool)>,
}

impl SingleWireStructure {
    /// A structure with oxide everywhere (the paper's "standard oxide
    /// process").
    #[must_use]
    pub fn all_oxide(width: Length, thickness: Length, t_ox: Length) -> Self {
        Self {
            width,
            thickness,
            t_ox,
            under: Dielectric::oxide(),
            gap_fill: Dielectric::oxide(),
            cap: Dielectric::oxide(),
            cap_thickness: Length::from_micrometers(1.0),
            metal_conductivity: 200.0, // AlCu, as in Fig. 5
            neighbors: None,
        }
    }

    /// Adds `count` neighbour lines on *each* side at the given pitch;
    /// `heated` selects whether they dissipate the same line power as the
    /// center wire.
    #[must_use]
    pub fn with_neighbors(mut self, count: usize, pitch: Length, heated: bool) -> Self {
        self.neighbors = Some((count, pitch, heated));
        self
    }

    /// Same geometry with a low-k gap fill (the paper's "HSQ process").
    #[must_use]
    pub fn with_gap_fill(mut self, gap_fill: Dielectric) -> Self {
        self.gap_fill = gap_fill;
        self
    }

    /// Builds the solvable [`Structure`] with `padding` of lateral
    /// dielectric on each side of the wire, and returns it with the wire
    /// footprint.
    ///
    /// # Errors
    ///
    /// Propagates [`ThermalError::InvalidInput`] for degenerate geometry.
    pub fn build(&self, padding: Length) -> Result<(Structure, Rect), ThermalError> {
        let w = self.width.value();
        let tm = self.thickness.value();
        let tox = self.t_ox.value();
        let cap = self.cap_thickness.value();
        let pad = padding.value();
        let domain_w = w + 2.0 * pad;
        let domain_h = tox + tm + cap;
        let mut s = Structure::new(
            Length::new(domain_w),
            Length::new(domain_h),
            self.under.thermal_conductivity().value(),
        )?;
        // gap-fill band at wire level
        s.add_region(Region {
            rect: Rect::new(0.0, domain_w, tox, tox + tm),
            conductivity: self.gap_fill.thermal_conductivity().value(),
            source: 0.0,
        })?;
        // cap above
        s.add_region(Region {
            rect: Rect::new(0.0, domain_w, tox + tm, domain_h),
            conductivity: self.cap.thermal_conductivity().value(),
            source: 0.0,
        })?;
        // the wire itself, heated with unit line power (1 W/m)
        let wire = Rect::new(pad, pad + w, tox, tox + tm);
        s.add_region(Region {
            rect: wire,
            conductivity: self.metal_conductivity,
            source: 1.0 / (w * tm), // W/m³ for 1 W per meter of wire
        })?;
        // optional same-level neighbours
        if let Some((count, pitch, heated)) = self.neighbors {
            let p = pitch.value();
            let center = pad + w / 2.0;
            for k in 1..=count {
                #[allow(clippy::cast_precision_loss)]
                for side in [-1.0, 1.0] {
                    let cx = center + side * (k as f64) * p;
                    let x0 = cx - w / 2.0;
                    let x1 = cx + w / 2.0;
                    if x0 < 0.0 || x1 > domain_w {
                        continue; // neighbour falls outside the padding
                    }
                    s.add_region(Region {
                        rect: Rect::new(x0, x1, tox, tox + tm),
                        conductivity: self.metal_conductivity,
                        source: if heated { 1.0 / (w * tm) } else { 0.0 },
                    })?;
                }
            }
        }
        Ok((s, wire))
    }

    /// Solves the structure and post-processes the thermal impedance and
    /// heat-spreading parameters.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn solve(
        &self,
        padding: Length,
        control: MeshControl,
        options: SolveOptions,
    ) -> Result<WireSolution, ThermalError> {
        let (s, wire) = self.build(padding)?;
        let field = solve(&s, control, options)?;
        let rise = field.average_rise_in(wire);
        Ok(WireSolution {
            structure: self.clone(),
            rise_per_watt_per_meter: rise,
            field,
            wire,
        })
    }
}

/// Post-processed solution for a [`SingleWireStructure`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireSolution {
    structure: SingleWireStructure,
    rise_per_watt_per_meter: f64,
    field: Field,
    wire: Rect,
}

impl WireSolution {
    /// Average wire temperature rise per unit line power, K/(W/m).
    #[must_use]
    pub fn rise_per_line_power(&self) -> f64 {
        self.rise_per_watt_per_meter
    }

    /// Thermal impedance θ_int of a wire of the given length (eq. 8).
    #[must_use]
    pub fn thermal_impedance(&self, length: Length) -> hotwire_units::ThermalImpedance {
        hotwire_units::ThermalImpedance::new(self.rise_per_watt_per_meter / length.value())
    }

    /// The effective heat-conduction width implied by the solve
    /// (inverting eq. 10 with the *under*-dielectric stack):
    /// `W_eff = (t_ox/k_under)/(θ·L)`.
    #[must_use]
    pub fn effective_width(&self) -> Length {
        let series =
            self.structure.t_ox.value() / self.structure.under.thermal_conductivity().value();
        Length::new(series / self.rise_per_watt_per_meter)
    }

    /// The heat-spreading parameter φ implied by the solve (eq. 14).
    #[must_use]
    pub fn phi(&self) -> f64 {
        crate::impedance::extract_phi(
            self.effective_width(),
            self.structure.width,
            self.structure.t_ox,
        )
    }

    /// The raw temperature field.
    #[must_use]
    pub fn field(&self) -> &Field {
        &self.field
    }
}

/// One metallization level of an [`ArrayStructure`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArrayLevel {
    /// Line width.
    pub width: Length,
    /// Wiring pitch.
    pub pitch: Length,
    /// Metal thickness.
    pub thickness: Length,
    /// ILD below this level.
    pub ild_below: Length,
}

/// A densely packed multi-level interconnect array (the paper's Fig. 8),
/// modelled over one wiring pitch with symmetry (adiabatic) side walls —
/// equivalent to an infinite array when every line of a level behaves the
/// same.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrayStructure {
    /// Levels, bottom-up.
    pub levels: Vec<ArrayLevel>,
    /// Dielectric filling everything (inter- and intra-level).
    pub dielectric: Dielectric,
    /// Passivation thickness above the top level.
    pub cap_thickness: Length,
    /// Metal thermal conductivity, W/(m·K).
    pub metal_conductivity: f64,
    /// How many array periods to include laterally (odd; 1 = infinite
    /// dense array by symmetry, larger values with only the center line
    /// heated approximate an isolated line).
    pub periods: usize,
}

impl ArrayStructure {
    /// Builds the solvable structure. `heated_levels[i]` selects whether
    /// the lines of level `i` dissipate; each heated line gets unit line
    /// power (1 W/m). In multi-period domains only the center column's
    /// lines are heated on levels marked heated when `center_only` is
    /// true.
    ///
    /// Returns the structure and the footprint of the center line of
    /// `target_level`.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidInput`] for empty levels, bad target
    /// or even `periods`.
    pub fn build(
        &self,
        heated_levels: &[bool],
        center_only: bool,
        target_level: usize,
    ) -> Result<(Structure, Rect), ThermalError> {
        if self.levels.is_empty() {
            return Err(ThermalError::InvalidInput {
                message: "array needs at least one level".to_owned(),
            });
        }
        if heated_levels.len() != self.levels.len() {
            return Err(ThermalError::InvalidInput {
                message: "heated_levels length must match levels".to_owned(),
            });
        }
        if target_level >= self.levels.len() {
            return Err(ThermalError::InvalidInput {
                message: format!(
                    "target level {target_level} out of range for {} levels",
                    self.levels.len()
                ),
            });
        }
        if self.periods == 0 || self.periods.is_multiple_of(2) {
            return Err(ThermalError::InvalidInput {
                message: "periods must be odd and ≥ 1".to_owned(),
            });
        }
        let max_pitch = self
            .levels
            .iter()
            .map(|l| l.pitch.value())
            .fold(0.0, f64::max);
        #[allow(clippy::cast_precision_loss)]
        let domain_w = max_pitch * self.periods as f64;
        let total_h: f64 = self
            .levels
            .iter()
            .map(|l| l.ild_below.value() + l.thickness.value())
            .sum::<f64>()
            + self.cap_thickness.value();
        let mut s = Structure::new(
            Length::new(domain_w),
            Length::new(total_h),
            self.dielectric.thermal_conductivity().value(),
        )?;

        let mut y = 0.0;
        let mut target_rect = None;
        for (li, level) in self.levels.iter().enumerate() {
            y += level.ild_below.value();
            let w = level.width.value();
            let p = level.pitch.value();
            // lines centered on multiples of the level pitch, offset so one
            // line is centered in the domain
            let center = domain_w / 2.0;
            #[allow(
                clippy::cast_possible_truncation,
                clippy::cast_sign_loss,
                clippy::cast_precision_loss
            )]
            let n_side = (center / p).floor() as i64;
            for m in -n_side..=n_side {
                #[allow(clippy::cast_precision_loss)]
                let cx = center + (m as f64) * p;
                let x0 = cx - w / 2.0;
                let x1 = cx + w / 2.0;
                if x0 < 0.0 || x1 > domain_w {
                    continue;
                }
                let rect = Rect::new(x0, x1, y, y + level.thickness.value());
                let is_center = m == 0;
                let heat = heated_levels[li] && (!center_only || is_center);
                s.add_region(Region {
                    rect,
                    conductivity: self.metal_conductivity,
                    source: if heat {
                        1.0 / (w * level.thickness.value())
                    } else {
                        0.0
                    },
                })?;
                if li == target_level && is_center {
                    target_rect = Some(rect);
                }
            }
            y += level.thickness.value();
        }
        let target = target_rect.ok_or_else(|| ThermalError::InvalidInput {
            message: "target line did not fit in the domain".to_owned(),
        })?;
        Ok((s, target))
    }

    /// Solves for the temperature rise of the center line of
    /// `target_level`, returning K per (W/m) of per-line dissipation.
    ///
    /// * `dense` — every line of every level in `heated_levels` is hot
    ///   (the paper's "M1–M4 heated (3-D)" row of Table 7).
    /// * otherwise — only the center line of the target level is hot
    ///   ("isolated M4 heated").
    ///
    /// # Errors
    ///
    /// Propagates build and solver errors.
    pub fn solve_rise(
        &self,
        heated_levels: &[bool],
        dense: bool,
        target_level: usize,
        control: MeshControl,
        options: SolveOptions,
    ) -> Result<f64, ThermalError> {
        let (s, target) = self.build(heated_levels, !dense, target_level)?;
        let field = solve(&s, control, options)?;
        Ok(field.average_rise_in(target))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn um(v: f64) -> Length {
        Length::from_micrometers(v)
    }

    /// Uniform slab with a full-width heater band on top of the domain —
    /// 1-D conduction with an exact answer.
    #[test]
    fn uniform_slab_matches_1d_conduction() {
        let k = 1.0;
        let h = 1.0e-6; // 1 µm slab
        let w = 2.0e-6;
        let mut s = Structure::new(Length::new(w), Length::new(h), k).unwrap();
        // heater: thin band at the top, total 1 W/m
        let band = Rect::new(0.0, w, 0.9e-6, 1.0e-6);
        s.add_region(Region {
            rect: band,
            conductivity: k,
            source: 1.0 / band.area(),
        })
        .unwrap();
        let field = solve(
            &s,
            MeshControl {
                max_dx: 0.2e-6,
                max_dy: 0.02e-6,
            },
            SolveOptions::default(),
        )
        .unwrap();
        // Exact: heat generated uniformly in [0.9, 1.0] µm flows down through
        // 0.9 µm of slab: ΔT at band bottom = P·t/(k·W) with P = 1 W/m spread
        // over width w ⇒ ΔT = 1·0.9e-6/(1·2e-6) = 0.45 K; inside the band the
        // profile is parabolic adding p·d²/(2k)/... small extra.
        let rise = field.average_rise_in(band);
        assert!((rise - 0.45).abs() < 0.04, "rise = {rise}");
        assert!(field.residual() < 1e-7);
    }

    #[test]
    fn no_heat_means_no_rise() {
        let s = Structure::new(um(1.0), um(1.0), 1.0).unwrap();
        let field = solve(
            &s,
            MeshControl {
                max_dx: 0.2e-6,
                max_dy: 0.2e-6,
            },
            SolveOptions::default(),
        )
        .unwrap();
        assert_eq!(field.max_rise(), 0.0);
        assert_eq!(field.sweeps(), 0);
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(Structure::new(um(0.0), um(1.0), 1.0).is_err());
        assert!(Structure::new(um(1.0), um(1.0), 0.0).is_err());
        let mut s = Structure::new(um(1.0), um(1.0), 1.0).unwrap();
        assert!(s
            .add_region(Region {
                rect: Rect::new(0.0, 2.0e-6, 0.0, 0.5e-6),
                conductivity: 1.0,
                source: 0.0,
            })
            .is_err());
        assert!(s
            .add_region(Region {
                rect: Rect::new(0.0, 0.5e-6, 0.0, 0.5e-6),
                conductivity: -1.0,
                source: 0.0,
            })
            .is_err());
        let opts = SolveOptions {
            method: SolveMethod::Sor {
                omega: 2.5,
                tolerance: 1e-8,
                max_sweeps: 100,
            },
        };
        assert!(matches!(
            solve(
                &s,
                MeshControl {
                    max_dx: 0.5e-6,
                    max_dy: 0.5e-6
                },
                opts
            ),
            Err(ThermalError::InvalidInput { .. })
        ));
    }

    #[test]
    fn wide_wire_approaches_quasi_1d() {
        // For W ≫ t_ox the effective width tends to W + O(t_ox):
        // φ should be a small O(1) number and θ close to t_ox/(k·W·L).
        let sw = SingleWireStructure::all_oxide(um(10.0), um(0.55), um(1.2));
        let sol = sw
            .solve(
                um(8.0),
                MeshControl::resolving(um(0.15), 1),
                SolveOptions::default(),
            )
            .unwrap();
        let weff = sol.effective_width().to_micrometers();
        assert!(weff > 10.0, "W_eff = {weff} must exceed the drawn width");
        assert!(weff < 16.0, "W_eff = {weff} should be W + O(t_ox)");
    }

    #[test]
    fn narrow_wire_has_large_phi() {
        // The paper's regime: W/t_ox ≈ 0.29 ⇒ φ ≈ 2.45. Our solver should
        // land in the same neighbourhood (2-D spreading well beyond 0.88).
        let sw = SingleWireStructure::all_oxide(um(0.35), um(0.55), um(1.2));
        let sol = sw
            .solve(
                um(6.0),
                MeshControl::resolving(um(0.06), 1),
                SolveOptions::default(),
            )
            .unwrap();
        let phi = sol.phi();
        assert!(phi > 1.2, "φ = {phi} should exceed the quasi-1-D 0.88");
        assert!(phi < 4.5, "φ = {phi} should stay physical");
    }

    #[test]
    fn lowk_gap_fill_raises_impedance() {
        let base = SingleWireStructure::all_oxide(um(0.35), um(0.55), um(1.2));
        let hsq = base.clone().with_gap_fill(Dielectric::hsq());
        let c = MeshControl::resolving(um(0.07), 1);
        let o = SolveOptions::default();
        let t_ox = base.solve(um(5.0), c, o).unwrap().rise_per_line_power();
        let t_hsq = hsq.solve(um(5.0), c, o).unwrap().rise_per_line_power();
        let increase = t_hsq / t_ox - 1.0;
        // Paper Fig. 5: ≈ 20 % higher for the narrowest line.
        assert!(
            increase > 0.05 && increase < 0.6,
            "HSQ gap fill raised θ by {increase:.2}"
        );
    }

    #[test]
    fn theta_decreases_with_width() {
        let c = MeshControl::resolving(um(0.1), 1);
        let o = SolveOptions::default();
        let mut prev = f64::INFINITY;
        for w in [0.35, 1.0, 2.0, 3.5] {
            let sw = SingleWireStructure::all_oxide(um(w), um(0.55), um(1.2));
            let r = sw.solve(um(6.0), c, o).unwrap().rise_per_line_power();
            assert!(r < prev, "θ must fall as the line widens");
            prev = r;
        }
    }

    fn four_level_array() -> ArrayStructure {
        ArrayStructure {
            levels: vec![
                ArrayLevel {
                    width: um(0.4),
                    pitch: um(0.8),
                    thickness: um(0.6),
                    ild_below: um(0.8),
                },
                ArrayLevel {
                    width: um(0.4),
                    pitch: um(0.8),
                    thickness: um(0.6),
                    ild_below: um(0.7),
                },
                ArrayLevel {
                    width: um(0.6),
                    pitch: um(1.2),
                    thickness: um(0.8),
                    ild_below: um(0.7),
                },
                ArrayLevel {
                    width: um(1.0),
                    pitch: um(2.0),
                    thickness: um(1.0),
                    ild_below: um(0.8),
                },
            ],
            dielectric: Dielectric::oxide(),
            cap_thickness: um(1.0),
            metal_conductivity: 395.0,
            periods: 5,
        }
    }

    #[test]
    fn dense_array_runs_hotter_than_isolated_line() {
        let array = four_level_array();
        let c = MeshControl::resolving(um(0.12), 1);
        let o = SolveOptions::default();
        let all = vec![true; 4];
        let dense = array.solve_rise(&all, true, 3, c, o).unwrap();
        let isolated = array.solve_rise(&all, false, 3, c, o).unwrap();
        assert!(
            dense > 1.5 * isolated,
            "dense {dense} vs isolated {isolated}: coupling must heat the target"
        );
    }

    #[test]
    fn array_build_validation() {
        let mut a = four_level_array();
        assert!(a.build(&[true; 3], false, 0).is_err()); // wrong mask length
        assert!(a.build(&[true; 4], false, 9).is_err()); // bad target
        a.periods = 2;
        assert!(a.build(&[true; 4], false, 0).is_err()); // even periods
        a.periods = 1;
        a.levels.clear();
        assert!(a.build(&[], false, 0).is_err()); // empty
    }

    #[test]
    fn heated_neighbors_raise_and_cold_neighbors_lower_the_rise() {
        let base = SingleWireStructure::all_oxide(um(0.5), um(0.55), um(1.2));
        let c = MeshControl::resolving(um(0.08), 1);
        let o = SolveOptions::default();
        let isolated = base.solve(um(6.0), c, o).unwrap().rise_per_line_power();
        // cold metal neighbours add lateral heat-spreading paths
        let cold = base
            .clone()
            .with_neighbors(2, um(1.2), false)
            .solve(um(6.0), c, o)
            .unwrap()
            .rise_per_line_power();
        assert!(cold < isolated, "cold {cold} vs isolated {isolated}");
        // heated neighbours couple thermally and raise the center rise
        let hot = base
            .clone()
            .with_neighbors(2, um(1.2), true)
            .solve(um(6.0), c, o)
            .unwrap()
            .rise_per_line_power();
        assert!(hot > 1.2 * isolated, "hot {hot} vs isolated {isolated}");
        // tighter pitch couples harder
        let hot_tight = base
            .clone()
            .with_neighbors(2, um(0.8), true)
            .solve(um(6.0), c, o)
            .unwrap()
            .rise_per_line_power();
        assert!(hot_tight > hot);
    }

    #[test]
    fn isothermal_lid_cools_the_wire() {
        let build = |top: TopBoundary| {
            let sw = SingleWireStructure::all_oxide(um(0.5), um(0.55), um(1.2));
            let (mut structure, wire) = sw.build(um(3.0)).unwrap();
            structure.set_top_boundary(top);
            let field = solve(
                &structure,
                MeshControl::resolving(um(0.1), 1),
                SolveOptions::default(),
            )
            .unwrap();
            field.average_rise_in(wire)
        };
        let adiabatic = build(TopBoundary::Adiabatic);
        let lidded = build(TopBoundary::Isothermal);
        assert!(
            lidded < 0.75 * adiabatic,
            "a lid must cool the wire substantially: {lidded} vs {adiabatic}"
        );
        // and both solvers agree on the lidded problem
        let sw = SingleWireStructure::all_oxide(um(0.5), um(0.55), um(1.2));
        let (mut structure, wire) = sw.build(um(3.0)).unwrap();
        structure.set_top_boundary(TopBoundary::Isothermal);
        let direct = solve(
            &structure,
            MeshControl::resolving(um(0.1), 1),
            SolveOptions::default(),
        )
        .unwrap()
        .average_rise_in(wire);
        let sor = solve(
            &structure,
            MeshControl::resolving(um(0.1), 1),
            SolveOptions::sor(),
        )
        .unwrap()
        .average_rise_in(wire);
        assert!((direct - sor).abs() / direct < 1e-4, "{direct} vs {sor}");
    }

    #[test]
    fn field_accessors() {
        let mut s = Structure::new(um(2.0), um(1.0), 1.0).unwrap();
        let band = Rect::new(0.0, 2.0e-6, 0.8e-6, 1.0e-6);
        s.add_region(Region {
            rect: band,
            conductivity: 1.0,
            source: 1.0 / band.area(),
        })
        .unwrap();
        let field = solve(
            &s,
            MeshControl {
                max_dx: 0.25e-6,
                max_dy: 0.05e-6,
            },
            SolveOptions::default(),
        )
        .unwrap();
        assert_eq!(field.mesh().x_edges().len(), field.mesh().nx() + 1);
        // hotter near the heater than near the substrate
        let top = field.rise_at(1.0e-6, 0.9e-6);
        let bottom = field.rise_at(1.0e-6, 0.05e-6);
        assert!(top > bottom);
        // clamping outside the domain returns edge cells, no panic
        let _ = field.rise_at(-1.0, -1.0);
        let _ = field.rise_at(1.0, 1.0);
        // cell_rise agrees with rise_at for an interior cell
        assert!((field.cell_rise(0, 0) - field.rise_at(1e-9, 1e-9)).abs() < 1e-15);
    }

    #[test]
    fn rect_contains_and_area() {
        let r = Rect::new(1.0, 0.0, 0.0, 2.0); // auto-normalized
        assert_eq!(r.x0, 0.0);
        assert_eq!(r.area(), 2.0);
        assert!(r.contains(0.5, 1.0));
        assert!(!r.contains(1.5, 1.0));
        assert!(!r.contains(0.5, 2.0)); // open on high edge
    }
}
