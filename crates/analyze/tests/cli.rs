//! End-to-end tests of the `hotwire-analyze` binary: exit codes,
//! file:line output, JSON output, and the ratchet workflow.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

/// Creates a throwaway workspace with one library crate whose
/// `src/lib.rs` holds `source`, and returns its root.
fn fake_workspace(tag: &str, source: &str) -> PathBuf {
    let root =
        std::env::temp_dir().join(format!("hotwire-analyze-test-{}-{tag}", std::process::id()));
    let src = root.join("crates/demo/src");
    std::fs::create_dir_all(&src).expect("mkdir fake workspace");
    std::fs::write(
        root.join("crates/demo/Cargo.toml"),
        "[package]\nname = \"demo\"\nversion = \"0.0.0\"\n",
    )
    .expect("write Cargo.toml");
    std::fs::write(src.join("lib.rs"), source).expect("write lib.rs");
    root
}

fn run(root: &Path, extra: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_hotwire-analyze"))
        .arg("--root")
        .arg(root)
        .args(extra)
        .output()
        .expect("spawn hotwire-analyze")
}

const CLEAN: &str = "pub fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n";
const DIRTY: &str = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";

#[test]
fn clean_tree_exits_zero() {
    let root = fake_workspace("clean", CLEAN);
    let out = run(&root, &[]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("analyze: clean"), "{stdout}");
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn new_violation_exits_one_with_file_line_output() {
    let root = fake_workspace("dirty", DIRTY);
    let out = run(&root, &[]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    // file:line:column: LINT message
    assert!(
        stdout.contains("crates/demo/src/lib.rs:1:37: HW001"),
        "{stdout}"
    );
    assert!(stdout.contains("analyze: FAILED"), "{stdout}");
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn baselined_violation_is_tolerated_and_ratchet_rejects_more() {
    let root = fake_workspace("ratchet", DIRTY);
    // Baseline the existing violation: run becomes clean.
    let out = run(&root, &["--write-baseline"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let out = run(&root, &[]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    // A second unwrap exceeds the tolerated count: exit 1 again.
    std::fs::write(
        root.join("crates/demo/src/lib.rs"),
        "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n\
         pub fn g(x: Option<u32>) -> u32 { x.unwrap() }\n",
    )
    .expect("rewrite lib.rs");
    let out = run(&root, &[]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("baseline tolerates 1"), "{stdout}");
    // Fixing both makes the baseline entry stale, not failing.
    std::fs::write(root.join("crates/demo/src/lib.rs"), CLEAN).expect("rewrite lib.rs");
    let out = run(&root, &[]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("stale baseline entry"), "{stdout}");
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn json_output_is_parseable_and_structured() {
    let root = fake_workspace("json", DIRTY);
    let out = run(&root, &["--format", "json"]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let v = hotwire_obs::json::parse(&stdout).expect("valid JSON");
    assert_eq!(v.get("clean").and_then(|j| j.as_bool()), Some(false));
    let totals = v.get("totals").expect("totals object");
    assert_eq!(totals.get("HW001").and_then(|j| j.as_u64()), Some(1));
    let new = v
        .get("new_violations")
        .and_then(|j| j.as_array())
        .expect("array");
    assert_eq!(new.len(), 1);
    assert_eq!(new[0].get("lint").and_then(|j| j.as_str()), Some("HW001"));
    assert_eq!(new[0].get("line").and_then(|j| j.as_u64()), Some(1));
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn usage_errors_exit_two() {
    let root = fake_workspace("usage", CLEAN);
    // Unknown flag.
    let out = run(&root, &["--frobnicate"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown argument"));
    // Bad --format value.
    let out = run(&root, &["--format", "yaml"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    // Nonexistent root.
    let out = Command::new(env!("CARGO_BIN_EXE_hotwire-analyze"))
        .args(["--root", "/nonexistent-hotwire-root"])
        .output()
        .expect("spawn hotwire-analyze");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    // Malformed baseline.
    std::fs::write(root.join("analyze-baseline.toml"), "[HW999]\n").expect("write baseline");
    let out = run(&root, &[]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown lint section"));
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn help_prints_the_lint_catalog() {
    let out = Command::new(env!("CARGO_BIN_EXE_hotwire-analyze"))
        .arg("--help")
        .output()
        .expect("spawn hotwire-analyze");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    for id in ["HW001", "HW002", "HW003", "HW004", "HW005"] {
        assert!(stdout.contains(id), "--help missing {id}");
    }
}

#[test]
fn allow_comment_suppresses_with_reason_only() {
    let allowed = "\
pub fn f(x: Option<u32>) -> u32 {
    // ANALYZE-ALLOW(HW001): demo fixture exercising the escape hatch
    x.unwrap()
}
";
    let root = fake_workspace("allow", allowed);
    let out = run(&root, &[]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");

    let reasonless = "\
pub fn f(x: Option<u32>) -> u32 {
    // ANALYZE-ALLOW(HW001):
    x.unwrap()
}
";
    std::fs::write(root.join("crates/demo/src/lib.rs"), reasonless).expect("rewrite lib.rs");
    let out = run(&root, &[]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("non-empty reason"),
        "{out:?}"
    );
    std::fs::remove_dir_all(&root).ok();
}
