//! End-to-end tests of the `hotwire-analyze` binary: exit codes,
//! file:line output, JSON output, and the ratchet workflow.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

/// Creates a throwaway workspace with one library crate whose
/// `src/lib.rs` holds `source`, and returns its root.
fn fake_workspace(tag: &str, source: &str) -> PathBuf {
    let root =
        std::env::temp_dir().join(format!("hotwire-analyze-test-{}-{tag}", std::process::id()));
    let src = root.join("crates/demo/src");
    std::fs::create_dir_all(&src).expect("mkdir fake workspace");
    std::fs::write(
        root.join("crates/demo/Cargo.toml"),
        "[package]\nname = \"demo\"\nversion = \"0.0.0\"\n",
    )
    .expect("write Cargo.toml");
    std::fs::write(src.join("lib.rs"), source).expect("write lib.rs");
    root
}

fn run(root: &Path, extra: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_hotwire-analyze"))
        .arg("--root")
        .arg(root)
        .args(extra)
        .output()
        .expect("spawn hotwire-analyze")
}

const CLEAN: &str = "pub fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n";
const DIRTY: &str = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";

#[test]
fn clean_tree_exits_zero() {
    let root = fake_workspace("clean", CLEAN);
    let out = run(&root, &[]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("analyze: clean"), "{stdout}");
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn new_violation_exits_one_with_file_line_output() {
    let root = fake_workspace("dirty", DIRTY);
    let out = run(&root, &[]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    // file:line:column: LINT message
    assert!(
        stdout.contains("crates/demo/src/lib.rs:1:37: HW001"),
        "{stdout}"
    );
    assert!(stdout.contains("analyze: FAILED"), "{stdout}");
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn baselined_violation_is_tolerated_and_ratchet_rejects_more() {
    let root = fake_workspace("ratchet", DIRTY);
    // Baseline the existing violation: run becomes clean.
    let out = run(&root, &["--write-baseline"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let out = run(&root, &[]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    // A second unwrap exceeds the tolerated count: exit 1 again.
    std::fs::write(
        root.join("crates/demo/src/lib.rs"),
        "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n\
         pub fn g(x: Option<u32>) -> u32 { x.unwrap() }\n",
    )
    .expect("rewrite lib.rs");
    let out = run(&root, &[]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("baseline tolerates 1"), "{stdout}");
    // Fixing both makes the baseline entry stale, not failing.
    std::fs::write(root.join("crates/demo/src/lib.rs"), CLEAN).expect("rewrite lib.rs");
    let out = run(&root, &[]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("stale baseline entry"), "{stdout}");
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn json_output_is_parseable_and_structured() {
    let root = fake_workspace("json", DIRTY);
    let out = run(&root, &["--format", "json"]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let v = hotwire_obs::json::parse(&stdout).expect("valid JSON");
    assert_eq!(v.get("clean").and_then(|j| j.as_bool()), Some(false));
    let totals = v.get("totals").expect("totals object");
    assert_eq!(totals.get("HW001").and_then(|j| j.as_u64()), Some(1));
    let new = v
        .get("new_violations")
        .and_then(|j| j.as_array())
        .expect("array");
    assert_eq!(new.len(), 1);
    assert_eq!(new[0].get("lint").and_then(|j| j.as_str()), Some("HW001"));
    assert_eq!(new[0].get("line").and_then(|j| j.as_u64()), Some(1));
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn usage_errors_exit_two() {
    let root = fake_workspace("usage", CLEAN);
    // Unknown flag.
    let out = run(&root, &["--frobnicate"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown argument"));
    // Bad --format value.
    let out = run(&root, &["--format", "yaml"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    // Nonexistent root.
    let out = Command::new(env!("CARGO_BIN_EXE_hotwire-analyze"))
        .args(["--root", "/nonexistent-hotwire-root"])
        .output()
        .expect("spawn hotwire-analyze");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    // Malformed baseline.
    std::fs::write(root.join("analyze-baseline.toml"), "[HW999]\n").expect("write baseline");
    let out = run(&root, &[]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown lint section"));
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn help_prints_the_lint_catalog() {
    let out = Command::new(env!("CARGO_BIN_EXE_hotwire-analyze"))
        .arg("--help")
        .output()
        .expect("spawn hotwire-analyze");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    for id in [
        "HW001", "HW002", "HW003", "HW004", "HW005", "HW006", "HW007", "HW008", "HW009",
    ] {
        assert!(stdout.contains(id), "--help missing {id}");
    }
}

#[test]
fn write_baseline_reports_dropped_entries_on_rename() {
    let root = fake_workspace("rename", DIRTY);
    let out = run(&root, &["--write-baseline"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");

    // Rename the file: its baseline entry no longer matches anything.
    // The rewrite must say so out loud instead of silently dropping the
    // tolerated count from the ratchet's history.
    std::fs::rename(
        root.join("crates/demo/src/lib.rs"),
        root.join("crates/demo/src/renamed.rs"),
    )
    .expect("rename source file");
    std::fs::write(root.join("crates/demo/src/lib.rs"), "mod renamed;\n").expect("write lib.rs");
    let out = run(&root, &["--write-baseline"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("dropping baseline entry HW001 crates/demo/src/lib.rs"),
        "{stderr}"
    );
    assert!(
        stderr.contains("file is now clean"),
        "lib.rs still exists (the violation moved): {stderr}"
    );

    // Second flavor: the file vanishes entirely.
    let out = run(&root, &["--write-baseline"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    std::fs::remove_file(root.join("crates/demo/src/renamed.rs")).expect("rm renamed.rs");
    let out = run(&root, &["--write-baseline"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("dropping baseline entry HW001 crates/demo/src/renamed.rs"),
        "{stderr}"
    );
    assert!(
        stderr.contains("no longer exists (renamed or deleted?)"),
        "{stderr}"
    );
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn metric_catalog_drift_fails_in_both_directions() {
    // A registration with no catalog row (code → docs)…
    let root = fake_workspace(
        "catalog",
        "pub fn f() { counter(\"demo.widgets\").inc(); }\n",
    );
    std::fs::create_dir_all(root.join("docs")).expect("mkdir docs");
    let catalog = "\
# Metrics

| Name | Kind | Meaning |
|---|---|---|
| `demo.gadgets` | counter | gadgets processed |
";
    std::fs::write(root.join("docs/OBSERVABILITY.md"), catalog).expect("write catalog");
    let out = run(&root, &[]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    // …fails, and so does the stale row (docs → code).
    assert!(
        stdout.contains("HW007") && stdout.contains("demo.widgets"),
        "{stdout}"
    );
    assert!(
        stdout.contains("demo.gadgets") && stdout.contains("matches no registration"),
        "{stdout}"
    );

    // Documenting the registration and allow-listing the aspirational
    // row makes the tree clean.
    let catalog = "\
# Metrics

| Name | Kind | Meaning |
|---|---|---|
| `demo.widgets` | counter | widgets processed |
| `demo.gadgets` | counter | future gadget counter <!-- ANALYZE-ALLOW(HW007): planned for the next milestone --> |
";
    std::fs::write(root.join("docs/OBSERVABILITY.md"), catalog).expect("write catalog");
    let out = run(&root, &[]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn telemetry_parity_drift_is_caught_in_an_obs_crate() {
    // HW008 only audits the obs crate: a telemetry-gated pub fn with no
    // no-op twin under the same name must fail.
    let root = fake_workspace("parity", CLEAN);
    let obs_src = root.join("crates/obs/src");
    std::fs::create_dir_all(&obs_src).expect("mkdir obs");
    std::fs::write(
        root.join("crates/obs/Cargo.toml"),
        "[package]\nname = \"obs\"\nversion = \"0.0.0\"\n",
    )
    .expect("write obs Cargo.toml");
    std::fs::write(
        obs_src.join("lib.rs"),
        "#[cfg(feature = \"telemetry\")]\npub fn start() -> u32 { 1 }\n",
    )
    .expect("write obs lib.rs");
    let out = run(&root, &[]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("HW008") && stdout.contains("no-op twin"),
        "{stdout}"
    );

    // Adding the disabled twin restores parity.
    std::fs::write(
        obs_src.join("lib.rs"),
        "#[cfg(feature = \"telemetry\")]\npub fn start() -> u32 { 1 }\n\
         #[cfg(not(feature = \"telemetry\"))]\npub fn start() -> u32 { 0 }\n",
    )
    .expect("rewrite obs lib.rs");
    let out = run(&root, &[]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn allow_comment_suppresses_with_reason_only() {
    let allowed = "\
pub fn f(x: Option<u32>) -> u32 {
    // ANALYZE-ALLOW(HW001): demo fixture exercising the escape hatch
    x.unwrap()
}
";
    let root = fake_workspace("allow", allowed);
    let out = run(&root, &[]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");

    let reasonless = "\
pub fn f(x: Option<u32>) -> u32 {
    // ANALYZE-ALLOW(HW001):
    x.unwrap()
}
";
    std::fs::write(root.join("crates/demo/src/lib.rs"), reasonless).expect("rewrite lib.rs");
    let out = run(&root, &[]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("non-empty reason"),
        "{out:?}"
    );
    std::fs::remove_dir_all(&root).ok();
}
