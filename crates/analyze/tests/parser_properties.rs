//! Property tests for the analyzer's scanner → tokenizer → item parser
//! chain: on *arbitrary* input — printable soup, quote-heavy fragments,
//! and shuffled Rust-ish token salad — the chain never panics, always
//! terminates, and keeps its provenance invariants (1-based line and
//! column numbers inside the input).
//!
//! The parser is forgiving by design (it analyzes work-in-progress
//! trees, not rustc-blessed ones), so "doesn't crash, produces *some*
//! item list" is the whole contract these tests pin.

use hotwire_analyze::lints::analyze_source;
use hotwire_analyze::parser::{parse_items, tokenize};
use hotwire_analyze::scan::scan;
use proptest::prelude::*;

/// Rust-ish fragments the salad strategy shuffles together. Heavy on
/// the constructs that have bitten the tokenizer: multi-line strings,
/// raw strings, char literals, lifetimes, nested generics, attributes.
const FRAGMENTS: &[&str] = &[
    "pub fn f(",
    "x: u32",
    ") -> f32 {",
    "}",
    "{",
    "impl Foo for Bar<'a, T> {",
    "mod inner {",
    "#[cfg(feature = \"telemetry\")]",
    "#[cfg_attr(test, allow(dead_code))]",
    "\"a string\nspanning\nlines\"",
    "r#\"raw \" body\"#",
    "'c'",
    "'\\n'",
    "'static",
    "const N: usize = 3;",
    "let v = x as u32;",
    "Ordering::SeqCst",
    "counter(\"em.tree.extracted\")",
    "process::exit(2)",
    "// CAST(bounded):",
    "/* block\ncomment */",
    "macro_rules! m { () => {} }",
    "Vec<Vec<Option<&'a str>>>",
    ";",
    "::",
    "=>",
    "#",
    "\"unterminated",
    "r\"also unterminated",
];

fn fragment_soup(picks: &[usize], seps: &[usize]) -> String {
    let mut out = String::new();
    for (k, &p) in picks.iter().enumerate() {
        out.push_str(FRAGMENTS[p % FRAGMENTS.len()]);
        out.push(match seps.get(k).copied().unwrap_or(0) % 3 {
            0 => ' ',
            1 => '\n',
            _ => '\t',
        });
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary printable text (quotes, braces, and exotic unicode
    /// included) never panics anywhere in the chain, and every token
    /// points at a real (line, column) of the input.
    #[test]
    fn printable_soup_never_panics(src in "\\PC*") {
        let sf = scan(&src);
        let tokens = tokenize(&sf);
        let line_count = src.lines().count().max(1);
        for t in &tokens {
            prop_assert!(t.line >= 1 && t.line <= line_count, "line {} of {line_count}", t.line);
            prop_assert!(t.col >= 1);
        }
        let items = parse_items(&tokens);
        // Termination is the assertion; the item list only has to exist.
        prop_assert!(items.len() <= tokens.len() + 1);
    }

    /// Shuffled Rust-ish fragments — the adversarial mix of multi-line
    /// strings, raw strings, attributes, and unbalanced delimiters —
    /// never panic the full lint pipeline either.
    #[test]
    fn fragment_salad_never_panics(
        picks in prop::collection::vec(0_usize..1000, 0..40),
        seps in prop::collection::vec(0_usize..3, 40),
    ) {
        let src = fragment_soup(&picks, &seps);
        let violations = analyze_source("circuit", "soup.rs", &src);
        for v in &violations {
            prop_assert!(v.line >= 1);
        }
    }

    /// Multi-line strings specifically: whatever surrounds them, the
    /// tokenizer must resume cleanly after the closing quote (this was
    /// a real out-of-range panic).
    #[test]
    fn multiline_strings_resume_cleanly(
        before in "[a-z ]{0,12}",
        body in "[a-zA-Z .(){}]{0,30}",
        lines in 1_usize..5,
    ) {
        let newlines = "\n".repeat(lines);
        let src = format!("{before} \"{body}{newlines}{body}\"; fn tail() {{}}\n");
        let sf = scan(&src);
        let tokens = tokenize(&sf);
        prop_assert!(
            tokens.iter().any(|t| t.ident() == Some("tail")),
            "tokens after a {lines}-line string were lost: {src:?}"
        );
    }
}
