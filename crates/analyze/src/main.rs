//! `cargo xtask analyze` — the workspace invariant gate.
//!
//! Exit codes: `0` clean (no new violations), `1` at least one new
//! violation against the baseline, `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use hotwire_analyze::baseline::{ratchet, Baseline, RatchetReport};
use hotwire_analyze::lints::{Violation, ALL_LINTS};
use hotwire_obs::json::Json;

const USAGE: &str = "\
cargo xtask analyze — project-invariant lints with a baseline ratchet

USAGE:
    cargo xtask analyze [OPTIONS]
    cargo run -p hotwire-analyze -- [OPTIONS]

OPTIONS:
    --root <DIR>        workspace root (default: .)
    --baseline <FILE>   baseline path (default: <root>/analyze-baseline.toml)
    --format <FMT>      text | json (default: text)
    --write-baseline    rewrite the baseline from the current scan and exit
    -h, --help          print this help

LINTS:
    HW001  no unwrap/expect/panic!/todo!/unimplemented! in non-test library code
    HW002  public APIs use units newtypes, not raw f64 dimensional values
    HW003  no Instant::now/SystemTime/println!/eprintln! outside crates/obs
    HW004  every Ordering:: use carries a // SAFETY(ordering): justification
    HW005  public error enums are #[non_exhaustive] and implement Error
    HW006  narrowing `as` casts in kernel crates carry a // CAST(reason): comment
    HW007  metric/span names match the docs/OBSERVABILITY.md catalog both ways
    HW008  telemetry-gated pub obs items have signature-identical no-op twins
    HW009  exit codes flow through the central EXIT_* consts, never literals

The baseline is a ratchet: per-file counts may only decrease. Suppress a
single finding with `// ANALYZE-ALLOW(HWxxx): <reason>` on or above the
line; the reason is mandatory. See docs/STATIC_ANALYSIS.md.
";

struct Options {
    root: PathBuf,
    baseline_path: Option<PathBuf>,
    json: bool,
    write_baseline: bool,
}

fn parse_args(args: &[String]) -> Result<Option<Options>, String> {
    let mut opts = Options {
        root: PathBuf::from("."),
        baseline_path: None,
        json: false,
        write_baseline: false,
    };
    let mut it = args.iter().peekable();
    // Tolerate `cargo xtask analyze`-style invocation where the task
    // name arrives as a positional.
    if it.peek().is_some_and(|a| *a == "analyze") {
        it.next();
    }
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-h" | "--help" => return Ok(None),
            "--root" => {
                opts.root = PathBuf::from(it.next().ok_or("--root needs a directory")?);
            }
            "--baseline" => {
                opts.baseline_path =
                    Some(PathBuf::from(it.next().ok_or("--baseline needs a file")?));
            }
            "--format" => match it.next().map(String::as_str) {
                Some("text") => opts.json = false,
                Some("json") => opts.json = true,
                other => {
                    return Err(format!(
                        "--format must be `text` or `json`, got {}",
                        other.unwrap_or("nothing")
                    ))
                }
            },
            "--write-baseline" => opts.write_baseline = true,
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(Some(opts))
}

fn violation_json(v: &Violation) -> Json {
    Json::object([
        ("lint", Json::from(v.lint.id())),
        ("file", Json::from(v.file.as_str())),
        ("line", Json::from(v.line as f64)),
        ("column", Json::from(v.column as f64)),
        ("message", Json::from(v.message.as_str())),
    ])
}

fn report_json(violations: &[Violation], report: &RatchetReport) -> Json {
    let new_violations: Vec<Json> = report
        .regressions
        .iter()
        .flat_map(|r| r.violations.iter().map(violation_json))
        .collect();
    let totals = Json::object(ALL_LINTS.map(|l| {
        let n = violations.iter().filter(|v| v.lint == l).count();
        (l.id(), Json::from(n as f64))
    }));
    let slack: Vec<Json> = report
        .slack
        .iter()
        .map(|(lint, file, allowed, found)| {
            Json::object([
                ("lint", Json::from(lint.id())),
                ("file", Json::from(file.as_str())),
                ("allowed", Json::from(*allowed as f64)),
                ("found", Json::from(*found as f64)),
            ])
        })
        .collect();
    let tolerated = violations.len()
        - report
            .regressions
            .iter()
            .map(|r| r.violations.len())
            .sum::<usize>();
    let lints = Json::Arr(
        ALL_LINTS
            .map(|l| {
                Json::object([
                    ("id", Json::from(l.id())),
                    ("summary", Json::from(l.summary())),
                ])
            })
            .to_vec(),
    );
    Json::object([
        ("clean", Json::Bool(report.is_clean())),
        ("lints", lints),
        ("totals", totals),
        ("tolerated", Json::from(tolerated as f64)),
        ("new_violations", Json::Arr(new_violations)),
        ("slack", Json::Arr(slack)),
        (
            "stale_baseline_entries",
            Json::Arr(
                report
                    .stale
                    .iter()
                    .map(|(lint, file)| {
                        Json::object([
                            ("lint", Json::from(lint.id())),
                            ("file", Json::from(file.as_str())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn print_text(violations: &[Violation], report: &RatchetReport) {
    for r in &report.regressions {
        for v in &r.violations {
            println!("{v}");
        }
        println!(
            "  -> {} {}: {} violation(s), baseline tolerates {}",
            r.lint.id(),
            r.file,
            r.found,
            r.allowed
        );
    }
    for (lint, file, allowed, found) in &report.slack {
        println!(
            "note: {} {file} improved ({found} < baseline {allowed}) — run --write-baseline to ratchet down",
            lint.id()
        );
    }
    for (lint, file) in &report.stale {
        println!(
            "note: stale baseline entry {} {file} (no violations remain) — run --write-baseline",
            lint.id()
        );
    }
    let total = violations.len();
    let tolerated = total
        - report
            .regressions
            .iter()
            .map(|r| r.violations.len())
            .sum::<usize>();
    if report.is_clean() {
        println!("analyze: clean ({total} tolerated violation(s) under baseline)");
    } else {
        println!(
            "analyze: FAILED — {} new violation(s) ({tolerated} tolerated under baseline)",
            total - tolerated
        );
    }
}

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(opts) = parse_args(&args)? else {
        print!("{USAGE}");
        return Ok(ExitCode::SUCCESS);
    };
    let baseline_path = opts
        .baseline_path
        .clone()
        .unwrap_or_else(|| opts.root.join("analyze-baseline.toml"));

    let violations = hotwire_analyze::analyze_workspace(&opts.root).map_err(|e| e.to_string())?;

    if opts.write_baseline {
        // Load the previous baseline first: entries that vanish from
        // the rewrite (typically because their file was renamed or
        // deleted) used to disappear silently — report each one so a
        // rename doesn't quietly launder tolerated violations out of
        // the ratchet's history.
        let previous = match std::fs::read_to_string(&baseline_path) {
            Ok(text) => Some(Baseline::parse(&text).map_err(|e| e.to_string())?),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => return Err(format!("reading {}: {e}", baseline_path.display())),
        };
        let next = Baseline::from_violations(&violations);
        if let Some(previous) = &previous {
            for (lint, file, count) in previous.entries() {
                if next.allowed(lint, file) > 0 {
                    continue;
                }
                let fate = if opts.root.join(file).is_file() {
                    "file is now clean"
                } else {
                    "file no longer exists (renamed or deleted?)"
                };
                eprintln!(
                    "analyze: dropping baseline entry {} {file} ({count} tolerated) — {fate}",
                    lint.id()
                );
            }
        }
        std::fs::write(&baseline_path, next.render())
            .map_err(|e| format!("writing {}: {e}", baseline_path.display()))?;
        eprintln!(
            "analyze: wrote {} ({} violation(s) baselined)",
            baseline_path.display(),
            violations.len()
        );
        return Ok(ExitCode::SUCCESS);
    }

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => Baseline::parse(&text).map_err(|e| e.to_string())?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Baseline::default(),
        Err(e) => return Err(format!("reading {}: {e}", baseline_path.display())),
    };
    let report = ratchet(&violations, &baseline);

    if opts.json {
        print!("{}", report_json(&violations, &report).to_pretty_string());
    } else {
        print_text(&violations, &report);
    }
    Ok(if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// Usage/I-O error exit status (the tool practices HW009's preaching
/// even though it exempts itself from scanning).
const EXIT_USAGE: u8 = 2;

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(message) => {
            eprintln!("analyze: error: {message}");
            ExitCode::from(EXIT_USAGE)
        }
    }
}
