//! `hotwire-analyze`: workspace static analysis for project invariants.
//!
//! The pass walks every `.rs` file under `crates/*/src` **and the root
//! crate's `src/`** (the `hotwire` CLI + serve layer), scans each with
//! a dependency-free lexer ([`scan`]), lifts an item-level parse on
//! top ([`parser`]), applies the HW001–HW009 lints ([`lints`] and the
//! semantic-pass modules), and diffs the result against the committed
//! `analyze-baseline.toml` ratchet ([`baseline`]). See
//! `docs/STATIC_ANALYSIS.md` for the lint catalog and workflow, and
//! `cargo xtask analyze --help` for the CLI.
//!
//! HW007 is cross-artifact: the workspace's `docs/OBSERVABILITY.md`
//! metric catalog is parsed alongside the sources, and drift in either
//! direction (undocumented registration, stale catalog row) is a
//! violation. A workspace without that file simply has no catalog to
//! drift from, and HW007 stays quiet.
//!
//! Two crates are out of scope by construction: `bench` (a harness
//! binary, not library surface) and `analyze` itself (the tool). Three
//! targeted exemptions encode ownership: `obs` is exempt from HW003
//! (it is the designated owner of wall-clock reads and the
//! stdout/stderr trace sink), the root `hotwire` crate is exempt from
//! HW003's print arm for the same reason (the CLI's stdout is its
//! product), and `units` is exempt from HW002 (its constructors are
//! the raw-`f64` boundary the newtypes exist to wrap).

pub mod baseline;
pub mod casts;
pub mod exit_codes;
pub mod lints;
pub mod metric_names;
pub mod parser;
pub mod scan;
pub mod telemetry_parity;

use std::path::{Path, PathBuf};

use lints::Violation;
use metric_names::Catalog;

/// Crates excluded from analysis entirely.
const SKIP_CRATES: [&str; 2] = ["bench", "analyze"];

/// One discovered workspace crate.
#[derive(Debug, Clone)]
pub struct CrateDir {
    /// Directory name under `crates/` (`"core"`, `"obs"`, …).
    pub name: String,
    /// Absolute path to the crate's `src/` directory.
    pub src: PathBuf,
}

/// A failure to walk or read the workspace.
#[derive(Debug)]
#[non_exhaustive]
pub enum AnalyzeError {
    /// `root` has no `crates/` directory — not a workspace root.
    NotAWorkspace(PathBuf),
    /// An I/O failure while walking or reading sources.
    Io {
        /// The path being read when the failure happened.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
}

impl std::fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NotAWorkspace(root) => {
                write!(
                    f,
                    "{} has no crates/ directory (wrong --root?)",
                    root.display()
                )
            }
            Self::Io { path, source } => write!(f, "reading {}: {source}", path.display()),
        }
    }
}

impl std::error::Error for AnalyzeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io { source, .. } => Some(source),
            Self::NotAWorkspace(_) => None,
        }
    }
}

/// Discovers the analyzable crates under `root/crates`, sorted by name.
pub fn discover_crates(root: &Path) -> Result<Vec<CrateDir>, AnalyzeError> {
    let crates_dir = root.join("crates");
    let entries = std::fs::read_dir(&crates_dir).map_err(|source| {
        if source.kind() == std::io::ErrorKind::NotFound {
            AnalyzeError::NotAWorkspace(root.to_owned())
        } else {
            AnalyzeError::Io {
                path: crates_dir.clone(),
                source,
            }
        }
    })?;
    let mut out = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|source| AnalyzeError::Io {
            path: crates_dir.clone(),
            source,
        })?;
        let path = entry.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()).map(str::to_owned) else {
            continue;
        };
        if SKIP_CRATES.contains(&name.as_str()) {
            continue;
        }
        let src = path.join("src");
        if path.join("Cargo.toml").is_file() && src.is_dir() {
            out.push(CrateDir { name, src });
        }
    }
    out.sort_by(|a, b| a.name.cmp(&b.name));
    if out.is_empty() {
        return Err(AnalyzeError::NotAWorkspace(root.to_owned()));
    }
    // The root crate (CLI binaries + serve layer) is analyzable surface
    // too — exit codes (HW009), metric registrations (HW007), and
    // atomics (HW004) all live there.
    let root_src = root.join("src");
    if root.join("Cargo.toml").is_file() && root_src.is_dir() {
        out.push(CrateDir {
            name: "hotwire".to_owned(),
            src: root_src,
        });
    }
    Ok(out)
}

/// The repo-relative path of the metric catalog HW007 checks against.
pub const CATALOG_PATH: &str = "docs/OBSERVABILITY.md";

/// Loads and parses the workspace's metric catalog; `None` when the
/// file does not exist (HW007 then has nothing to check).
pub fn load_catalog(root: &Path) -> Result<Option<Catalog>, AnalyzeError> {
    let path = root.join(CATALOG_PATH);
    match std::fs::read_to_string(&path) {
        Ok(text) => Ok(Some(Catalog::parse(CATALOG_PATH, &text))),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(source) => Err(AnalyzeError::Io { path, source }),
    }
}

/// Recursively collects the `.rs` files under `dir`, sorted.
fn rust_files(dir: &Path) -> Result<Vec<PathBuf>, AnalyzeError> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_owned()];
    while let Some(d) = stack.pop() {
        let entries = std::fs::read_dir(&d).map_err(|source| AnalyzeError::Io {
            path: d.clone(),
            source,
        })?;
        for entry in entries {
            let entry = entry.map_err(|source| AnalyzeError::Io {
                path: d.clone(),
                source,
            })?;
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Runs every lint over every library crate under `root`; violations
/// come back sorted by (file, line, column, lint) with repo-relative
/// paths.
pub fn analyze_workspace(root: &Path) -> Result<Vec<Violation>, AnalyzeError> {
    let catalog = load_catalog(root)?;
    let mut all = Vec::new();
    let mut regs = Vec::new();
    for krate in discover_crates(root)? {
        let mut files = Vec::new();
        for path in rust_files(&krate.src)? {
            let text = std::fs::read_to_string(&path).map_err(|source| AnalyzeError::Io {
                path: path.clone(),
                source,
            })?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            files.push((rel, text));
        }
        let report = lints::analyze_crate_full(&krate.name, &files, catalog.as_ref());
        all.extend(report.violations);
        regs.extend(report.metric_regs);
    }
    // HW007's docs → code direction needs every crate's registrations,
    // so it runs once here rather than per crate.
    if let Some(catalog) = &catalog {
        all.extend(metric_names::stale_rows(catalog, &regs));
    }
    all.sort_by(|a, b| {
        (&a.file, a.line, a.column, a.lint.id()).cmp(&(&b.file, b.line, b.column, b.lint.id()))
    });
    Ok(all)
}
