//! A lightweight item-level parser over the blanked token stream.
//!
//! [`crate::scan`] gives the lints a per-line *code channel* with
//! comments and literal contents blanked to spaces; that is enough for
//! token-shaped lints (HW001–HW005) but not for the semantic passes,
//! which need to know *what item* a token belongs to, which `#[cfg]`
//! gates sit on it, and what a `pub fn`'s signature is. This module is
//! the missing middle layer: a positioned tokenizer plus a
//! recursive-descent item extractor — still zero external dependencies,
//! still no `syn`.
//!
//! Scope, deliberately: the parser recognizes item *headers* (`fn`,
//! `struct`, `enum`, `mod`, `impl`, `trait`, `const`, `static`, `type`,
//! `use`, macro invocations) with their attributes and visibility, and
//! **skips bodies** — it recurses only into `mod` and `impl` blocks,
//! whose children are themselves items. Statement-level constructs
//! (including statement-level `#[cfg]`, the dominant telemetry-gating
//! idiom in `crates/obs`) are invisible by design: HW008 cares about
//! *item-level* feature gates, where a missing disabled twin changes
//! the public API surface.
//!
//! Like the scanner, the parser is forgiving: any token sequence it
//! cannot shape into an item is skipped token-by-token, never panicking
//! and always making progress. A property test in
//! `tests/parser_properties.rs` drives arbitrary token soup through it
//! to hold that line.

use crate::scan::SourceFile;

/// What a token is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Numeric literal (integers/floats, suffixes kept).
    Num(String),
    /// String literal; the value is the raw literal text recovered
    /// from [`SourceFile::strings`].
    Str(String),
    /// Lifetime (`'a`, `'static`), without the quote.
    Lifetime(String),
    /// Any other single non-space character.
    Punct(char),
}

/// One positioned token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token itself.
    pub tok: Tok,
    /// 1-based source line.
    pub line: usize,
    /// 1-based byte column.
    pub col: usize,
}

impl Token {
    /// The identifier text, when this token is one.
    #[must_use]
    pub fn ident(&self) -> Option<&str> {
        match &self.tok {
            Tok::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// `true` for `Punct(c)`.
    #[must_use]
    pub fn is_punct(&self, c: char) -> bool {
        self.tok == Tok::Punct(c)
    }

    /// Rendered text, for signature/attr normalization.
    #[must_use]
    pub fn text(&self) -> String {
        match &self.tok {
            Tok::Ident(s) | Tok::Num(s) => s.clone(),
            Tok::Str(s) => format!("\"{s}\""),
            Tok::Lifetime(s) => format!("'{s}"),
            Tok::Punct(c) => c.to_string(),
        }
    }
}

/// Tokenizes the blanked code channel of `sf`, resolving string
/// literals back to their captured values.
///
/// String literals appear in the code channel as `"` + blanks + `"`;
/// they are emitted as single [`Tok::Str`] tokens whose value comes
/// from [`SourceFile::strings`] (paired in source order). Char
/// literals are dropped (nothing semantic reads them); lifetimes are
/// kept so signatures normalize faithfully.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn tokenize(sf: &SourceFile) -> Vec<Token> {
    let mut out = Vec::new();
    let mut strs = sf.strings.iter();
    // One explicit (line, column) cursor: multi-line constructs
    // (blanked string bodies) advance `li` mid-line, so the line's
    // bytes are re-fetched on every step.
    let mut li = 0;
    let mut ci = 0;
    // Advances the cursor past the next `delim` byte (the closing quote
    // of a blanked literal), crossing lines; returns false at EOF.
    let skip_past = |li: &mut usize, ci: &mut usize, delim: u8| -> bool {
        loop {
            if *li >= sf.lines.len() {
                return false;
            }
            let lb = sf.lines[*li].code.as_bytes();
            match lb
                .get(*ci..)
                .and_then(|s| s.iter().position(|&c| c == delim))
            {
                Some(rel) => {
                    *ci += rel + 1;
                    return true;
                }
                None => {
                    *li += 1;
                    *ci = 0;
                }
            }
        }
    };
    while li < sf.lines.len() {
        let code = &sf.lines[li].code;
        let bytes = code.as_bytes();
        if ci >= bytes.len() {
            li += 1;
            ci = 0;
            continue;
        }
        let b = bytes[ci];
        if b == b' ' || b == b'\t' || b == b'\r' {
            ci += 1;
            continue;
        }
        if b.is_ascii_alphabetic() || b == b'_' {
            let start = ci;
            while ci < bytes.len() && (bytes[ci].is_ascii_alphanumeric() || bytes[ci] == b'_') {
                ci += 1;
            }
            out.push(Token {
                tok: Tok::Ident(code[start..ci].to_owned()),
                line: li + 1,
                col: start + 1,
            });
            continue;
        }
        if b.is_ascii_digit() {
            let start = ci;
            while ci < bytes.len() && (bytes[ci].is_ascii_alphanumeric() || bytes[ci] == b'_') {
                ci += 1;
            }
            // A fractional part: `1.5` but not `0..n` or `1.method()`.
            if ci + 1 < bytes.len() && bytes[ci] == b'.' && bytes[ci + 1].is_ascii_digit() {
                ci += 1;
                while ci < bytes.len() && (bytes[ci].is_ascii_alphanumeric() || bytes[ci] == b'_') {
                    ci += 1;
                }
            }
            out.push(Token {
                tok: Tok::Num(code[start..ci].to_owned()),
                line: li + 1,
                col: start + 1,
            });
            continue;
        }
        if b == b'"' {
            // Pair with the next captured literal; skip the blanked
            // body to the closing quote (possibly on a later line).
            let value = strs.next().map(|s| s.value.clone()).unwrap_or_default();
            out.push(Token {
                tok: Tok::Str(value),
                line: li + 1,
                col: ci + 1,
            });
            ci += 1;
            if !skip_past(&mut li, &mut ci, b'"') {
                return out;
            }
            continue;
        }
        if b == b'\'' {
            let next = bytes.get(ci + 1).copied();
            if matches!(next, Some(c) if c.is_ascii_alphabetic() || c == b'_') {
                // Lifetime: quote + identifier, no closing quote.
                let start = ci + 1;
                let mut end = start;
                while end < bytes.len()
                    && (bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_')
                {
                    end += 1;
                }
                out.push(Token {
                    tok: Tok::Lifetime(code[start..end].to_owned()),
                    line: li + 1,
                    col: ci + 1,
                });
                ci = end;
                continue;
            }
            // Blanked char literal: `'` + blanks + `'`. Skip it.
            ci += 1;
            if !skip_past(&mut li, &mut ci, b'\'') {
                return out;
            }
            continue;
        }
        out.push(Token {
            tok: Tok::Punct(b as char),
            line: li + 1,
            col: ci + 1,
        });
        ci += 1;
    }
    out
}

/// One attribute (`#[…]` / `#![…]`), with its bracket contents
/// rendered to a canonical text form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attr {
    /// Normalized text inside the brackets, e.g.
    /// `cfg(feature = "telemetry")`.
    pub text: String,
    /// 1-based line of the `#`.
    pub line: usize,
    /// `true` for inner attributes (`#![…]`).
    pub inner: bool,
}

impl Attr {
    /// The attribute text with every space removed — the form the
    /// semantic passes compare against.
    #[must_use]
    pub fn compact(&self) -> String {
        self.text.replace(' ', "")
    }

    /// `true` for `#[cfg(feature = "telemetry")]`.
    #[must_use]
    pub fn gates_telemetry_on(&self) -> bool {
        self.compact() == "cfg(feature=\"telemetry\")"
    }

    /// `true` for `#[cfg(not(feature = "telemetry"))]`.
    #[must_use]
    pub fn gates_telemetry_off(&self) -> bool {
        self.compact() == "cfg(not(feature=\"telemetry\"))"
    }
}

/// The kind of a parsed item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// `fn`, including qualified forms (`pub const unsafe fn …`).
    Fn,
    /// `struct` / `union`.
    Struct,
    /// `enum`.
    Enum,
    /// `mod name { … }` or `mod name;`.
    Mod,
    /// `impl … { … }`.
    Impl,
    /// `trait … { … }`.
    Trait,
    /// `const NAME: …` / `static NAME: …` item (not a fn qualifier).
    Const,
    /// `type Alias = …;`.
    TypeAlias,
    /// `use …;` / `extern crate …;`.
    Use,
    /// A top-level macro invocation (`macro_rules! x { … }`,
    /// `thread_local! { … }`).
    MacroCall,
}

/// Item visibility, as far as the passes care.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Visibility {
    /// Plain `pub` — true public API.
    Pub,
    /// `pub(crate)` / `pub(super)` / `pub(in …)`.
    Restricted,
    /// No `pub`.
    Private,
}

/// One parsed item: header only, body skipped (or recursed for
/// `mod`/`impl`).
#[derive(Debug, Clone)]
pub struct Item {
    /// What it is.
    pub kind: ItemKind,
    /// Its name (`fn` name, type name, `mod` name…). For `impl` blocks
    /// this is the normalized header (`impl Foo` / `impl Trait for
    /// Foo`); for `use` and macro calls it is the leading path.
    pub name: String,
    /// Visibility.
    pub vis: Visibility,
    /// Attributes directly above the item.
    pub attrs: Vec<Attr>,
    /// 1-based line of the defining keyword.
    pub line: usize,
    /// Normalized header text: for fns, everything from `fn` up to the
    /// body/semicolon (signature); for other kinds, a best-effort
    /// header. Tokens joined with single spaces.
    pub signature: String,
    /// Child items, for `mod`/`impl` blocks.
    pub children: Vec<Item>,
}

/// Parses the token stream into a tree of items.
///
/// Never panics; unrecognized token runs are skipped. `tokens` should
/// come from [`tokenize`].
#[must_use]
pub fn parse_items(tokens: &[Token]) -> Vec<Item> {
    let mut p = Parser { tokens, pos: 0 };
    p.items(0)
}

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
}

/// Keywords that may sit between visibility and the defining keyword.
const FN_QUALIFIERS: &[&str] = &["const", "async", "unsafe", "extern", "default"];

impl Parser<'_> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<&Token> {
        let t = self.tokens.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Skips a balanced `open`…`close` group, assuming the cursor sits
    /// on `open`. Robust to truncation: stops at end of input.
    fn skip_group(&mut self, open: char, close: char) {
        let mut depth = 0usize;
        while let Some(t) = self.bump() {
            if t.is_punct(open) {
                depth += 1;
            } else if t.is_punct(close) {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return;
                }
            }
        }
    }

    /// Parses items until end of input (`stop_depth == 0`) or the `}`
    /// closing the current block.
    #[allow(clippy::too_many_lines)]
    fn items(&mut self, nesting: usize) -> Vec<Item> {
        let mut out = Vec::new();
        // A hard cap on nesting guards against pathological inputs
        // (the proptest fuzzer found none, but recursion depth is the
        // one resource a forgiving parser can still exhaust).
        if nesting > 64 {
            return out;
        }
        loop {
            // Collect attributes.
            let mut attrs = Vec::new();
            loop {
                let Some(t) = self.peek() else {
                    return out;
                };
                if t.is_punct('}') {
                    // End of the enclosing block: the caller consumes it.
                    return out;
                }
                if !t.is_punct('#') {
                    break;
                }
                let hash_line = t.line;
                self.pos += 1;
                let inner = self.peek().is_some_and(|t| t.is_punct('!'));
                if inner {
                    self.pos += 1;
                }
                if self.peek().is_some_and(|t| t.is_punct('[')) {
                    let start = self.pos + 1;
                    self.skip_group('[', ']');
                    let end = self.pos.saturating_sub(1).max(start);
                    attrs.push(Attr {
                        text: render(&self.tokens[start..end]),
                        line: hash_line,
                        inner,
                    });
                } // A lone `#` (e.g. from a degenerate raw string): drop it.
            }
            // Visibility.
            let mut vis = Visibility::Private;
            if self.peek().is_some_and(|t| t.ident() == Some("pub")) {
                self.pos += 1;
                if self.peek().is_some_and(|t| t.is_punct('(')) {
                    vis = Visibility::Restricted;
                    self.skip_group('(', ')');
                } else {
                    vis = Visibility::Pub;
                }
            }
            // Qualifiers before `fn` (const/async/unsafe/extern "C").
            // `const` doubles as an item keyword (`const NAME: …`), so
            // it only counts as a qualifier when a further qualifier or
            // `fn` follows.
            let mut saw_extern = false;
            while let Some(t) = self.peek() {
                match t.ident() {
                    Some("const")
                        if !self.tokens.get(self.pos + 1).is_some_and(|n| {
                            matches!(n.ident(), Some("fn" | "async" | "unsafe" | "extern"))
                        }) =>
                    {
                        break;
                    }
                    Some(q) if FN_QUALIFIERS.contains(&q) => {
                        saw_extern |= q == "extern";
                        self.pos += 1;
                        // The ABI string of `extern "C"`.
                        if let Some(Tok::Str(_)) = self.peek().map(|t| &t.tok) {
                            self.pos += 1;
                        }
                    }
                    _ => break,
                }
            }
            let Some(t) = self.peek() else {
                return out;
            };
            let line = t.line;
            let kw = t.ident().map(str::to_owned);
            match kw.as_deref() {
                Some("fn") => {
                    let sig_start = self.pos;
                    self.pos += 1;
                    let name = self.take_ident().unwrap_or_default();
                    let sig_end = self.scan_to_body();
                    out.push(Item {
                        kind: ItemKind::Fn,
                        name,
                        vis,
                        attrs,
                        line,
                        signature: render(&self.tokens[sig_start..sig_end]),
                        children: Vec::new(),
                    });
                }
                Some("const" | "static") => {
                    self.pos += 1;
                    // `static mut NAME` / `const _:` — skip `mut`.
                    if self.peek().is_some_and(|t| t.ident() == Some("mut")) {
                        self.pos += 1;
                    }
                    let name = self.take_ident().unwrap_or_default();
                    let hdr_start = self.pos;
                    self.skip_to_semicolon();
                    out.push(Item {
                        kind: ItemKind::Const,
                        name,
                        vis,
                        attrs,
                        line,
                        signature: render(&self.tokens[hdr_start..self.pos]),
                        children: Vec::new(),
                    });
                }
                Some("struct" | "union" | "enum" | "trait") => {
                    let kind = match kw.as_deref() {
                        Some("enum") => ItemKind::Enum,
                        Some("trait") => ItemKind::Trait,
                        _ => ItemKind::Struct,
                    };
                    let sig_start = self.pos;
                    self.pos += 1;
                    let name = self.take_ident().unwrap_or_default();
                    let sig_end = self.scan_to_body();
                    out.push(Item {
                        kind,
                        name,
                        vis,
                        attrs,
                        line,
                        signature: render(&self.tokens[sig_start..sig_end]),
                        children: Vec::new(),
                    });
                }
                Some("mod") => {
                    self.pos += 1;
                    let name = self.take_ident().unwrap_or_default();
                    let mut children = Vec::new();
                    match self.peek() {
                        Some(t) if t.is_punct('{') => {
                            self.pos += 1;
                            children = self.items(nesting + 1);
                            // Consume the closing `}` our children
                            // stopped at.
                            if self.peek().is_some_and(|t| t.is_punct('}')) {
                                self.pos += 1;
                            }
                        }
                        _ => self.skip_to_semicolon(),
                    }
                    out.push(Item {
                        kind: ItemKind::Mod,
                        name: name.clone(),
                        vis,
                        attrs,
                        line,
                        signature: format!("mod {name}"),
                        children,
                    });
                }
                Some("impl") => {
                    let sig_start = self.pos;
                    self.pos += 1;
                    let sig_end = self.scan_to_body();
                    let signature = render(&self.tokens[sig_start..sig_end]);
                    let mut children = Vec::new();
                    if self.peek().is_some_and(|t| t.is_punct('{')) {
                        self.pos += 1;
                        children = self.items(nesting + 1);
                        if self.peek().is_some_and(|t| t.is_punct('}')) {
                            self.pos += 1;
                        }
                    }
                    out.push(Item {
                        kind: ItemKind::Impl,
                        name: signature.clone(),
                        vis,
                        attrs,
                        line,
                        signature,
                        children,
                    });
                }
                Some("type") => {
                    self.pos += 1;
                    let name = self.take_ident().unwrap_or_default();
                    let hdr_start = self.pos;
                    self.skip_to_semicolon();
                    out.push(Item {
                        kind: ItemKind::TypeAlias,
                        name,
                        vis,
                        attrs,
                        line,
                        signature: render(&self.tokens[hdr_start..self.pos]),
                        children: Vec::new(),
                    });
                }
                // `use path::to::Thing;` and `extern crate name;`.
                Some("use" | "crate") => {
                    self.pos += 1;
                    let name = self.take_ident().unwrap_or_default();
                    self.skip_to_semicolon();
                    out.push(Item {
                        kind: ItemKind::Use,
                        name,
                        vis,
                        attrs,
                        line,
                        signature: String::new(),
                        children: Vec::new(),
                    });
                }
                Some(name_str) => {
                    // `extern { … }` block, a macro invocation
                    // (`ident! …`), or something we don't recognize.
                    let name = name_str.to_owned();
                    self.pos += 1;
                    if self.peek().is_some_and(|t| t.is_punct('!')) {
                        self.pos += 1;
                        // Optional macro path tail / name before the
                        // delimiter (e.g. `macro_rules! name { … }`).
                        while self
                            .peek()
                            .is_some_and(|t| t.ident().is_some() || t.is_punct(':'))
                        {
                            self.pos += 1;
                        }
                        match self.peek().map(|t| t.tok.clone()) {
                            Some(Tok::Punct('{')) => self.skip_group('{', '}'),
                            Some(Tok::Punct('(')) => {
                                self.skip_group('(', ')');
                                self.skip_to_semicolon();
                            }
                            Some(Tok::Punct('[')) => {
                                self.skip_group('[', ']');
                                self.skip_to_semicolon();
                            }
                            _ => {}
                        }
                        out.push(Item {
                            kind: ItemKind::MacroCall,
                            name,
                            vis,
                            attrs,
                            line,
                            signature: String::new(),
                            children: Vec::new(),
                        });
                    } else if saw_extern && self.peek().is_some_and(|t| t.is_punct('{')) {
                        self.skip_group('{', '}');
                    }
                    // else: error recovery — we already advanced one
                    // token, so the loop makes progress.
                }
                None => {
                    // Punct where an item should start: an `extern { … }`
                    // block, or a stray token from a construct we skipped
                    // imperfectly. Swallow braces as balanced groups so
                    // an unrecognized block can't close our enclosing
                    // `mod`/`impl` early; drop anything else one token
                    // at a time.
                    if self.peek().is_some_and(|t| t.is_punct('{')) {
                        self.skip_group('{', '}');
                    } else {
                        self.pos += 1;
                    }
                }
            }
        }
    }

    fn take_ident(&mut self) -> Option<String> {
        let name = self.peek().and_then(|t| t.ident()).map(str::to_owned)?;
        self.pos += 1;
        Some(name)
    }

    /// Advances past an item header to its body or terminator: stops
    /// *on* `{` (leaving it to the caller) after skipping it as a
    /// balanced group for non-recursed kinds, or past `;`. Returns the
    /// token index one past the header (exclusive of `{`/`;`).
    fn scan_to_body(&mut self) -> usize {
        let mut depth = 0usize;
        while let Some(t) = self.peek() {
            if depth == 0 && t.is_punct('{') {
                let end = self.pos;
                self.skip_body_unless_recursed();
                return end;
            }
            if depth == 0 && t.is_punct(';') {
                let end = self.pos;
                self.pos += 1;
                return end;
            }
            match &t.tok {
                Tok::Punct('(' | '[') => depth += 1,
                Tok::Punct(')' | ']') => depth = depth.saturating_sub(1),
                Tok::Punct('}') if depth == 0 => return self.pos,
                Tok::Punct('}') => depth = depth.saturating_sub(1),
                _ => {}
            }
            self.pos += 1;
        }
        self.pos
    }

    /// After [`scan_to_body`] stopped on `{`: fn/struct/enum/trait
    /// bodies are skipped outright; `mod`/`impl` callers never reach
    /// here (they recurse instead).
    fn skip_body_unless_recursed(&mut self) {
        // Peeked token is `{` — callers that recurse (mod/impl) check
        // for it themselves *before* calling scan_to_body… except they
        // don't: impl calls scan_to_body then recurses. So only skip
        // when the caller asked. Kept simple: scan_to_body is used by
        // Fn/Struct/Enum/Trait (skip) and Impl (recurse). Impl's
        // recursion checks `peek() == '{'`, so here we must NOT consume
        // for impl. The flag is threaded via `self.recurse_next`.
        if self.recurse_next() {
            return;
        }
        self.skip_group('{', '}');
    }

    /// Whether the pending `{` belongs to a block the caller recurses
    /// into. `impl` sets this by leaving the decision to `items()`:
    /// the parser distinguishes by the token *before* the header —
    /// instead of real state, we look back for `impl` at the header
    /// start. Cheap and local.
    fn recurse_next(&self) -> bool {
        // Walk back from the current `{` to the start of the header:
        // the previous `fn`/`struct`/`enum`/`trait`/`impl` keyword at
        // group depth zero decides.
        let mut depth = 0i32;
        let mut k = self.pos;
        while k > 0 {
            k -= 1;
            let t = &self.tokens[k];
            match &t.tok {
                Tok::Punct(')' | ']') => depth += 1,
                Tok::Punct('(' | '[') => depth -= 1,
                Tok::Punct('{' | '}' | ';') if depth == 0 => return false,
                Tok::Ident(s) if depth <= 0 => match s.as_str() {
                    "impl" => return true,
                    "fn" | "struct" | "union" | "enum" | "trait" => return false,
                    _ => {}
                },
                _ => {}
            }
        }
        false
    }

    /// Skips to just past the next `;` at group depth zero (or a `}`
    /// closing the enclosing block, left unconsumed).
    fn skip_to_semicolon(&mut self) {
        let mut depth = 0usize;
        while let Some(t) = self.peek() {
            match &t.tok {
                Tok::Punct('(' | '[' | '{') => depth += 1,
                Tok::Punct(')' | ']') => depth = depth.saturating_sub(1),
                Tok::Punct('}') => {
                    if depth == 0 {
                        return;
                    }
                    depth -= 1;
                }
                Tok::Punct(';') if depth == 0 => {
                    self.pos += 1;
                    return;
                }
                _ => {}
            }
            self.pos += 1;
        }
    }
}

/// Renders a token slice to a canonical single-spaced string.
#[must_use]
pub fn render(tokens: &[Token]) -> String {
    let mut out = String::new();
    for t in tokens {
        if !out.is_empty() {
            out.push(' ');
        }
        out.push_str(&t.text());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;

    fn parse(src: &str) -> Vec<Item> {
        parse_items(&tokenize(&scan(src)))
    }

    #[test]
    fn tokenizer_resolves_strings_and_skips_chars() {
        let sf = scan("let a = \"solver.factor\"; let c = 'x'; let l: &'a str;\n");
        let toks = tokenize(&sf);
        assert!(toks
            .iter()
            .any(|t| t.tok == Tok::Str("solver.factor".to_owned())));
        assert!(toks.iter().any(|t| t.tok == Tok::Lifetime("a".to_owned())));
        // The char literal vanished.
        assert!(!toks.iter().any(|t| t.is_punct('\'')));
    }

    #[test]
    fn multi_line_strings_do_not_derail_the_cursor() {
        // Regression: the body of a literal spanning lines used to leave
        // the tokenizer reading a stale line's bytes (out-of-range panic)
        // — tokens after the closing quote must still come through.
        let src = "let msg = \"first line\n  second line\n  third\"; let after = done;\n\
                   pub fn tail() {}\n";
        let sf = scan(src);
        let toks = tokenize(&sf);
        assert!(toks.iter().any(|t| t.ident() == Some("after")));
        let items = parse_items(&toks);
        assert!(
            items
                .iter()
                .any(|i| i.kind == ItemKind::Fn && i.name == "tail"),
            "{items:?}"
        );
    }

    #[test]
    fn parses_fn_signatures_and_visibility() {
        let items = parse(
            "pub fn solve(a: &Grid, t: Kelvin) -> Result<Vec<f64>, SolveError> { body(); }\n\
             pub(crate) fn helper() {}\n\
             fn private(x: u32) -> u32 { x }\n",
        );
        assert_eq!(items.len(), 3);
        assert_eq!(items[0].kind, ItemKind::Fn);
        assert_eq!(items[0].name, "solve");
        assert_eq!(items[0].vis, Visibility::Pub);
        assert!(
            items[0].signature.contains("- > Result < Vec < f64 >"),
            "{}",
            items[0].signature
        );
        assert_eq!(items[1].vis, Visibility::Restricted);
        assert_eq!(items[2].vis, Visibility::Private);
    }

    #[test]
    fn multi_line_signatures_normalize() {
        let one = parse("pub fn f(a: usize, b: &str) -> bool { true }\n");
        let two = parse("pub fn f(\n    a: usize,\n    b: &str,\n) -> bool {\n    true\n}\n");
        // Up to the trailing comma rustfmt adds, the signatures match.
        assert_eq!(
            one[0].signature.replace(" ,", ""),
            two[0].signature.replace(" ,", "")
        );
    }

    #[test]
    fn attrs_capture_cfg_gates_with_string_values() {
        let items = parse(
            "#[cfg(feature = \"telemetry\")]\npub fn start() -> Timer { Timer }\n\
             #[cfg(not(feature = \"telemetry\"))]\npub fn start() -> Timer { Timer }\n",
        );
        assert_eq!(items.len(), 2);
        assert!(items[0].attrs[0].gates_telemetry_on());
        assert!(items[1].attrs[0].gates_telemetry_off());
        assert_eq!(items[0].signature, items[1].signature);
    }

    #[test]
    fn cfg_attr_is_captured_but_not_a_gate() {
        let items =
            parse("#[cfg_attr(docsrs, doc(cfg(feature = \"telemetry\")))]\npub struct S;\n");
        assert_eq!(items.len(), 1);
        assert!(items[0].attrs[0].text.starts_with("cfg_attr"));
        assert!(!items[0].attrs[0].gates_telemetry_on());
    }

    #[test]
    fn mods_and_impls_recurse_and_bodies_are_skipped() {
        let items = parse(
            "pub mod names {\n    pub const A: &str = \"health.a\";\n}\n\
             impl Foo {\n    pub fn method(&self) -> u32 { let x = \"not an item\"; 0 }\n    fn private(&self) {}\n}\n\
             pub struct Bar { field: u32 }\n",
        );
        assert_eq!(items.len(), 3);
        assert_eq!(items[0].kind, ItemKind::Mod);
        assert_eq!(items[0].children.len(), 1);
        assert_eq!(items[0].children[0].kind, ItemKind::Const);
        assert_eq!(items[0].children[0].name, "A");
        assert_eq!(items[1].kind, ItemKind::Impl);
        assert_eq!(items[1].children.len(), 2);
        assert_eq!(items[1].children[0].name, "method");
        assert_eq!(items[1].children[0].vis, Visibility::Pub);
        assert_eq!(items[2].kind, ItemKind::Struct);
        assert!(items[2].children.is_empty());
    }

    #[test]
    fn nested_generics_do_not_derail_the_header_scan() {
        let items = parse(
            "pub fn nested<T: Into<Vec<Box<dyn Fn(usize) -> Result<T, E>>>>>(x: T) -> T { x }\n\
             pub fn after() {}\n",
        );
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].name, "nested");
        assert_eq!(items[1].name, "after");
    }

    #[test]
    fn raw_strings_in_bodies_do_not_confuse_items() {
        let items =
            parse("pub fn f() -> &'static str { r#\"fn not_an_item() {\"# }\npub fn g() {}\n");
        assert_eq!(items.len(), 2);
        assert_eq!(items[1].name, "g");
    }

    #[test]
    fn macro_calls_and_uses_are_items() {
        let items = parse(
            "use std::sync::Arc;\nmacro_rules! m { () => {}; }\nthread_local! { static X: u32 = 0; }\n",
        );
        assert_eq!(items.len(), 3);
        assert_eq!(items[0].kind, ItemKind::Use);
        assert_eq!(items[1].kind, ItemKind::MacroCall);
        assert_eq!(items[1].name, "macro_rules");
        assert_eq!(items[2].kind, ItemKind::MacroCall);
    }

    #[test]
    fn garbage_never_panics_and_terminates() {
        for src in [
            "}}}}",
            "pub pub pub",
            "fn",
            "#[",
            "#[cfg(",
            "impl {",
            "mod m { fn",
            "\"unterminated",
            "pub fn f(",
            "const",
        ] {
            let _ = parse(src);
        }
    }
}
