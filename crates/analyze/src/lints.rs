//! The project-invariant lints, HW001–HW009.
//!
//! Each lint is named, documented, and greppable; `docs/STATIC_ANALYSIS.md`
//! is the user-facing catalog. HW001–HW005 work straight off the
//! scanner's token channels; the semantic passes HW006–HW009 ride the
//! item-level parser ([`crate::parser`]) and live in their own modules
//! ([`crate::casts`], [`crate::metric_names`],
//! [`crate::telemetry_parity`], [`crate::exit_codes`]). All lints skip
//! test code (`#[cfg(test)]` items, `#[test]` functions — see
//! [`crate::scan`]) and honor the `// ANALYZE-ALLOW(HWxxx): <reason>`
//! escape hatch on the flagged line or the line above; an allow without
//! a reason is itself a violation.

use crate::metric_names::{Catalog, MetricReg};
use crate::scan::{self, SourceFile};
use crate::{casts, exit_codes, metric_names, parser, telemetry_parity};

/// A named project invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Lint {
    /// No `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!` in
    /// non-test library code — return typed errors instead.
    Hw001PanicFree,
    /// Public APIs must not take temperatures, current densities, or
    /// resistivities as raw `f64` — use the `hotwire-units` newtypes.
    Hw002RawDimension,
    /// No `Instant::now`/`SystemTime`/`println!`/`eprintln!` outside
    /// `crates/obs` — determinism, one clock, one trace sink.
    Hw003ClockAndSink,
    /// Every `Ordering::…` use carries a `// SAFETY(ordering):`
    /// justification comment.
    Hw004OrderingJustified,
    /// Public error enums are `#[non_exhaustive]` and implement
    /// `std::error::Error`.
    Hw005ErrorHygiene,
    /// Narrowing `as` casts in the numeric kernel crates need a
    /// `// CAST(reason):` justification.
    Hw006NarrowingCast,
    /// Every dotted metric/span name registered via `obs` appears in
    /// docs/OBSERVABILITY.md, and every catalog row is live.
    Hw007MetricCatalog,
    /// Public `obs` items gated on `feature = "telemetry"` have a
    /// signature-identical no-op twin in the disabled branch.
    Hw008TelemetryParity,
    /// Exit statuses flow through the central EXIT_* consts — no bare
    /// `process::exit(n)` / `ExitCode::from(<literal>)`.
    Hw009ExitCodeContract,
}

/// All lints, in catalog order.
pub const ALL_LINTS: [Lint; 9] = [
    Lint::Hw001PanicFree,
    Lint::Hw002RawDimension,
    Lint::Hw003ClockAndSink,
    Lint::Hw004OrderingJustified,
    Lint::Hw005ErrorHygiene,
    Lint::Hw006NarrowingCast,
    Lint::Hw007MetricCatalog,
    Lint::Hw008TelemetryParity,
    Lint::Hw009ExitCodeContract,
];

impl Lint {
    /// The stable identifier used in output, baselines, and allows.
    #[must_use]
    pub fn id(self) -> &'static str {
        match self {
            Self::Hw001PanicFree => "HW001",
            Self::Hw002RawDimension => "HW002",
            Self::Hw003ClockAndSink => "HW003",
            Self::Hw004OrderingJustified => "HW004",
            Self::Hw005ErrorHygiene => "HW005",
            Self::Hw006NarrowingCast => "HW006",
            Self::Hw007MetricCatalog => "HW007",
            Self::Hw008TelemetryParity => "HW008",
            Self::Hw009ExitCodeContract => "HW009",
        }
    }

    /// One-line description for `--help` and the JSON output.
    #[must_use]
    pub fn summary(self) -> &'static str {
        match self {
            Self::Hw001PanicFree => {
                "no unwrap/expect/panic!/todo!/unimplemented! in non-test library code"
            }
            Self::Hw002RawDimension => {
                "public APIs take units newtypes, not raw f64 temperatures/current densities/resistivities"
            }
            Self::Hw003ClockAndSink => {
                "no Instant::now/SystemTime/println!/eprintln! outside crates/obs"
            }
            Self::Hw004OrderingJustified => {
                "every Ordering:: use carries a // SAFETY(ordering): justification"
            }
            Self::Hw005ErrorHygiene => {
                "public error enums are #[non_exhaustive] and implement std::error::Error"
            }
            Self::Hw006NarrowingCast => {
                "narrowing `as` casts in solver/thermal/EM kernels carry a // CAST(reason): justification"
            }
            Self::Hw007MetricCatalog => {
                "dotted metric/span names registered via obs match the docs/OBSERVABILITY.md catalog both ways"
            }
            Self::Hw008TelemetryParity => {
                "pub obs items gated on feature=\"telemetry\" have a signature-identical no-op twin when disabled"
            }
            Self::Hw009ExitCodeContract => {
                "exit statuses go through the central EXIT_* consts, never bare process::exit/ExitCode::from(n)"
            }
        }
    }

    /// Parses a lint id (`"HW001"`).
    #[must_use]
    pub fn from_id(id: &str) -> Option<Self> {
        ALL_LINTS.into_iter().find(|l| l.id() == id)
    }
}

/// One lint violation, pointing into the original source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which invariant was violated.
    pub lint: Lint,
    /// Repo-relative path of the offending file.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based byte column.
    pub column: usize,
    /// Human-readable description of the specific violation.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}:{}: {} {}",
            self.file,
            self.line,
            self.column,
            self.lint.id(),
            self.message
        )
    }
}

/// The result of analyzing one crate: its violations plus the metric
/// registrations HW007's workspace-level staleness check needs.
#[derive(Debug, Clone, Default)]
pub struct CrateReport {
    /// Sorted violations.
    pub violations: Vec<Violation>,
    /// Every dotted metric/span name this crate registers.
    pub metric_regs: Vec<MetricReg>,
}

/// Analyzes every file of one crate (HW005 needs crate-level context:
/// the `impl std::error::Error` may live in a different file than the
/// enum). `files` is `(repo-relative path, source)`. `catalog` is the
/// parsed docs/OBSERVABILITY.md; `None` disables HW007 entirely (the
/// workspace has no catalog to drift from).
#[must_use]
pub fn analyze_crate_full(
    crate_name: &str,
    files: &[(String, String)],
    catalog: Option<&Catalog>,
) -> CrateReport {
    let scanned: Vec<(usize, SourceFile)> = files
        .iter()
        .enumerate()
        .map(|(k, (_, src))| (k, scan::scan(src)))
        .collect();
    let mut report = CrateReport::default();
    // Crate-wide list of `impl … Error for X` targets, for HW005.
    let mut error_impls: Vec<String> = Vec::new();
    for (_, sf) in &scanned {
        collect_error_impls(sf, &mut error_impls);
    }
    for (k, sf) in &scanned {
        let path = &files[*k].0;
        check_file(crate_name, path, sf, &error_impls, catalog, &mut report);
    }
    report.violations.sort_by(|a, b| {
        (&a.file, a.line, a.column, a.lint.id()).cmp(&(&b.file, b.line, b.column, b.lint.id()))
    });
    report
}

/// Back-compat wrapper returning only the violations (HW007 disabled).
#[must_use]
pub fn analyze_crate(crate_name: &str, files: &[(String, String)]) -> Vec<Violation> {
    analyze_crate_full(crate_name, files, None).violations
}

/// Analyzes one lone source text (self-test convenience); HW005's
/// `impl Error` lookup sees only this file, and HW007 is disabled.
#[must_use]
pub fn analyze_source(crate_name: &str, path: &str, source: &str) -> Vec<Violation> {
    analyze_crate(crate_name, &[(path.to_owned(), source.to_owned())])
}

fn check_file(
    crate_name: &str,
    path: &str,
    sf: &SourceFile,
    error_impls: &[String],
    catalog: Option<&Catalog>,
    report: &mut CrateReport,
) {
    let mut file_out = Vec::new();
    hw001_panic_free(sf, path, &mut file_out);
    // The units crate IS the raw-f64 boundary: its constructors must
    // take `f64` to exist at all. Everywhere else, dimensional values
    // arrive pre-wrapped.
    if crate_name != "units" {
        hw002_raw_dimension(sf, path, &mut file_out);
    }
    // The obs crate is the designated owner of wall-clock reads and
    // the stdout/stderr trace sink; the root `hotwire` crate is the
    // CLI, whose stdout *is* its product.
    if crate_name != "obs" && crate_name != "hotwire" {
        hw003_clock_and_sink(sf, path, &mut file_out);
    }
    hw004_ordering_justified(sf, path, &mut file_out);
    hw005_error_hygiene(sf, path, error_impls, &mut file_out);

    // Semantic passes over the item-level parse (HW006–HW009).
    let tokens = parser::tokenize(sf);
    if casts::KERNEL_CRATES.contains(&crate_name) {
        casts::check(sf, &tokens, path, &mut file_out);
    }
    let regs = metric_names::collect_registrations(sf, &tokens, path, crate_name == "obs");
    if let Some(catalog) = catalog {
        metric_names::check_registrations(&regs, catalog, &mut file_out);
    }
    report.metric_regs.extend(regs);
    if crate_name == "obs" {
        let items = parser::parse_items(&tokens);
        telemetry_parity::check(&items, path, &mut file_out);
    }
    exit_codes::check(sf, &tokens, path, &mut file_out);

    // Apply ANALYZE-ALLOW suppression (and flag reasonless allows).
    for v in file_out {
        match allow_state(sf, v.line, v.lint) {
            AllowState::None => report.violations.push(v),
            AllowState::Justified => {}
            AllowState::MissingReason => report.violations.push(Violation {
                message: format!(
                    "{} (the ANALYZE-ALLOW comment needs a non-empty reason after the colon)",
                    v.message
                ),
                ..v
            }),
        }
    }
}

enum AllowState {
    None,
    Justified,
    MissingReason,
}

/// Looks for `ANALYZE-ALLOW(HWxxx): reason` in the comments on `line`
/// (1-based) or the comment-only lines directly above it.
fn allow_state(sf: &SourceFile, line: usize, lint: Lint) -> AllowState {
    let idx = line - 1;
    let mut candidates: Vec<&str> = vec![&sf.lines[idx].comment];
    let mut k = idx;
    while k > 0 {
        k -= 1;
        let l = &sf.lines[k];
        if l.is_code_blank() && !l.comment.trim().is_empty() {
            candidates.push(&l.comment);
        } else {
            break;
        }
    }
    let needle = format!("ANALYZE-ALLOW({})", lint.id());
    for c in candidates {
        if let Some(pos) = c.find(&needle) {
            let rest = &c[pos + needle.len()..];
            let reason = rest.trim_start_matches([')', ':']).trim();
            return if reason.is_empty() {
                AllowState::MissingReason
            } else {
                AllowState::Justified
            };
        }
    }
    AllowState::None
}

/// `true` when the byte before `pos` (skipping spaces) is `want`.
fn prev_nonspace_is(code: &str, pos: usize, want: u8) -> bool {
    code.as_bytes()[..pos]
        .iter()
        .rev()
        .find(|b| **b != b' ')
        .is_some_and(|&b| b == want)
}

/// `true` when the byte at/after `pos` (skipping spaces) is `want`.
fn next_nonspace_is(code: &str, pos: usize, want: u8) -> bool {
    code.as_bytes()[pos..]
        .iter()
        .find(|b| **b != b' ')
        .is_some_and(|&b| b == want)
}

/// Iterates the identifiers of `code` as `(byte_offset, ident)`.
fn idents(code: &str) -> Vec<(usize, &str)> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if b.is_ascii_alphabetic() || b == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            out.push((start, &code[start..i]));
        } else {
            i += 1;
        }
    }
    out
}

fn hw001_panic_free(sf: &SourceFile, path: &str, out: &mut Vec<Violation>) {
    for (idx, line) in sf.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for (pos, ident) in idents(&line.code) {
            let end = pos + ident.len();
            let violation = match ident {
                // `.unwrap()` / `.expect(...)`: a method call — the
                // receiver dot keeps field accesses and free fns out.
                "unwrap" | "expect" => {
                    prev_nonspace_is(&line.code, pos, b'.')
                        && next_nonspace_is(&line.code, end, b'(')
                }
                "panic" | "todo" | "unimplemented" => next_nonspace_is(&line.code, end, b'!'),
                _ => false,
            };
            if violation {
                let what = match ident {
                    "unwrap" | "expect" => format!(".{ident}()"),
                    _ => format!("{ident}!"),
                };
                out.push(Violation {
                    lint: Lint::Hw001PanicFree,
                    file: path.to_owned(),
                    line: idx + 1,
                    column: pos + 1,
                    message: format!(
                        "`{what}` in non-test library code — return a typed error instead"
                    ),
                });
            }
        }
    }
}

/// Parameter names that denote a temperature, current density, or
/// resistivity; an `f64` under one of these names in a public signature
/// should be a `hotwire-units` newtype.
fn dimensional_kind(name: &str) -> Option<&'static str> {
    let n = name.trim_start_matches('_');
    // A *coefficient* (e.g. `temperature_coefficient`, 1/K) is
    // dimensionally not the quantity itself.
    if n.contains("coeff") {
        return None;
    }
    if n.contains("temp") || n.contains("celsius") || n.contains("kelvin") {
        return Some("a temperature (use Kelvin or Celsius)");
    }
    if matches!(
        n,
        "t_ref" | "t_ambient" | "t_chip" | "t_stress" | "t_metal" | "t_line" | "t_sub" | "delta_t"
    ) {
        return Some("a temperature (use Kelvin or TemperatureDelta)");
    }
    if n == "j"
        || n == "j0"
        || n.starts_with("j_")
        || matches!(n, "jdc" | "jrms" | "jpeak" | "javg")
        || n.contains("current_density")
    {
        return Some("a current density (use CurrentDensity)");
    }
    if n == "rho" || n == "rho0" || n.starts_with("rho_") || n.contains("resistivity") {
        return Some("a resistivity (use Resistivity)");
    }
    None
}

fn hw002_raw_dimension(sf: &SourceFile, path: &str, out: &mut Vec<Violation>) {
    // Join the code channel to find signatures spanning lines; keep a
    // byte-offset → line map for diagnostics.
    let mut text = String::new();
    let mut line_starts = Vec::new();
    for line in &sf.lines {
        line_starts.push(text.len());
        text.push_str(&line.code);
        text.push('\n');
    }
    let locate = |off: usize| -> (usize, usize) {
        match line_starts.binary_search(&off) {
            Ok(k) => (k + 1, 1),
            Err(k) => (k, off - line_starts[k - 1] + 1),
        }
    };
    let toks = idents(&text);
    for (t, &(pos, ident)) in toks.iter().enumerate() {
        if ident != "pub" {
            continue;
        }
        let (line, _) = locate(pos);
        if sf.lines[line - 1].in_test {
            continue;
        }
        // `pub(crate)` / `pub(super)` are not public API.
        if next_nonspace_is(&text, pos + ident.len(), b'(') {
            continue;
        }
        // Skip qualifier keywords between `pub` and `fn`.
        let mut k = t + 1;
        while k < toks.len() && matches!(toks[k].1, "const" | "async" | "unsafe" | "extern") {
            k += 1;
        }
        if k >= toks.len() || toks[k].1 != "fn" || k > t + 4 {
            continue;
        }
        let Some(&(name_pos, fn_name)) = toks.get(k + 1) else {
            continue;
        };
        // Find the parameter list: first `(` after the fn name,
        // skipping a balanced `<…>` generics block.
        let Some(params) = extract_params(&text, name_pos + fn_name.len()) else {
            continue;
        };
        for (param_off, pname, ptype) in params {
            if ptype.trim() != "f64" {
                continue;
            }
            if let Some(kind) = dimensional_kind(&pname) {
                let (vline, vcol) = locate(param_off);
                out.push(Violation {
                    lint: Lint::Hw002RawDimension,
                    file: path.to_owned(),
                    line: vline,
                    column: vcol,
                    message: format!(
                        "public fn `{fn_name}` takes `{pname}: f64`, which names {kind}"
                    ),
                });
            }
        }
    }
}

/// Extracts `(offset, name, type)` for each parameter of the fn whose
/// name ends at `after`; `None` when no parameter list is found nearby.
fn extract_params(text: &str, after: usize) -> Option<Vec<(usize, String, String)>> {
    let bytes = text.as_bytes();
    let mut i = after;
    let mut angle = 0i32;
    // Find the opening paren, skipping generics.
    loop {
        let b = *bytes.get(i)?;
        match b {
            b'<' => angle += 1,
            b'>' => angle -= 1,
            b'(' if angle == 0 => break,
            b'{' | b';' => return None,
            _ => {}
        }
        i += 1;
    }
    let open = i;
    let mut depth = 0i32;
    let mut end = None;
    for (j, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => {
                depth -= 1;
                if depth == 0 {
                    end = Some(j);
                    break;
                }
            }
            _ => {}
        }
    }
    let end = end?;
    let inner = &text[open + 1..end];
    let base = open + 1;
    let mut params = Vec::new();
    let mut start = 0;
    let mut depth = 0i32;
    let mut angle = 0i32;
    let flush = |params: &mut Vec<(usize, String, String)>, piece: &str, piece_start: usize| {
        let piece_trim = piece.trim();
        if piece_trim.is_empty() || piece_trim.ends_with("self") {
            return;
        }
        // `name: Type` split at the first top-level colon (skip `::`).
        let pb = piece.as_bytes();
        let mut d = 0i32;
        let mut a = 0i32;
        let mut split = None;
        let mut j = 0;
        while j < pb.len() {
            match pb[j] {
                b'(' | b'[' | b'{' => d += 1,
                b')' | b']' | b'}' => d -= 1,
                b'<' => a += 1,
                b'>' => a -= 1,
                b':' if d == 0 && a == 0 => {
                    if pb.get(j + 1) == Some(&b':') {
                        j += 2;
                        continue;
                    }
                    split = Some(j);
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        let Some(colon) = split else { return };
        let pat = piece[..colon].trim();
        let ty = piece[colon + 1..].trim();
        // The bound name is the last identifier of the pattern
        // (`mut j0`, `(a, b)` patterns keep their last binding).
        let name = idents(pat).last().map(|&(_, id)| id.to_owned());
        if let Some(name) = name {
            // Point at the parameter itself, not the whitespace (or
            // newline) that followed the previous comma.
            let lead = piece.len() - piece.trim_start().len();
            params.push((base + piece_start + lead, name, ty.to_owned()));
        }
    };
    let ib = inner.as_bytes();
    for (j, &b) in ib.iter().enumerate() {
        match b {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => depth -= 1,
            b'<' => angle += 1,
            b'>' => angle -= 1,
            b',' if depth == 0 && angle <= 0 => {
                flush(&mut params, &inner[start..j], start);
                start = j + 1;
            }
            _ => {}
        }
    }
    flush(&mut params, &inner[start..], start);
    Some(params)
}

fn hw003_clock_and_sink(sf: &SourceFile, path: &str, out: &mut Vec<Violation>) {
    for (idx, line) in sf.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for (pos, ident) in idents(&line.code) {
            let end = pos + ident.len();
            let (hit, msg): (bool, &str) = match ident {
                "Instant" => (
                    line.code[end..].trim_start().starts_with("::now"),
                    "`Instant::now` outside crates/obs — use `hotwire_obs::Stopwatch` (single clock owner)",
                ),
                "SystemTime" => (
                    true,
                    "`SystemTime` outside crates/obs — wall-clock reads belong to the obs layer",
                ),
                "println" | "eprintln" => (
                    next_nonspace_is(&line.code, end, b'!'),
                    "direct stdout/stderr print outside crates/obs — emit a structured trace event instead",
                ),
                _ => (false, ""),
            };
            if hit {
                out.push(Violation {
                    lint: Lint::Hw003ClockAndSink,
                    file: path.to_owned(),
                    line: idx + 1,
                    column: pos + 1,
                    message: msg.to_owned(),
                });
            }
        }
    }
}

fn hw004_ordering_justified(sf: &SourceFile, path: &str, out: &mut Vec<Violation>) {
    for (idx, line) in sf.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let Some(pos) = find_ordering_use(&line.code) else {
            continue;
        };
        if has_safety_comment(sf, idx) {
            continue;
        }
        out.push(Violation {
            lint: Lint::Hw004OrderingJustified,
            file: path.to_owned(),
            line: idx + 1,
            column: pos + 1,
            message: "`Ordering::` use without a `// SAFETY(ordering):` justification comment"
                .to_owned(),
        });
    }
}

/// The byte offset of a memory-ordering use (`Ordering::…`) on the
/// line, if any. Import lines (`use …::Ordering;`) don't count, and
/// neither does `cmp::Ordering` (same-name type, different concept).
fn find_ordering_use(code: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(rel) = code[from..].find("Ordering") {
        let pos = from + rel;
        from = pos + "Ordering".len();
        // Word boundary on the left.
        if pos > 0 {
            let prev = code.as_bytes()[pos - 1];
            if prev.is_ascii_alphanumeric() || prev == b'_' {
                continue;
            }
        }
        let rest = &code[pos + "Ordering".len()..];
        if !rest.trim_start().starts_with("::") {
            continue;
        }
        // `cmp::Ordering::Less` — comparison, not memory ordering.
        let before = &code[..pos];
        if before.trim_end().ends_with("cmp::") {
            continue;
        }
        return Some(pos);
    }
    None
}

/// `true` when line `idx` (0-based), an earlier line of the same
/// statement, or the comment block directly above that statement
/// contains a `SAFETY(ordering):` justification.
fn has_safety_comment(sf: &SourceFile, idx: usize) -> bool {
    const NEEDLE: &str = "SAFETY(ordering):";
    if sf.lines[idx].comment.contains(NEEDLE) {
        return true;
    }
    // Walk to the first line of the enclosing statement: a predecessor
    // that ends with `;`, `{`, or `}` terminated something else, so the
    // statement starts after it.
    let mut k = idx;
    while k > 0 {
        let prev = &sf.lines[k - 1];
        if prev.is_code_blank() {
            break;
        }
        let tail = prev.code.trim_end();
        if tail.ends_with(';') || tail.ends_with('{') || tail.ends_with('}') {
            break;
        }
        k -= 1;
        if sf.lines[k].comment.contains(NEEDLE) {
            return true;
        }
    }
    while k > 0 {
        k -= 1;
        let l = &sf.lines[k];
        if l.is_code_blank() && !l.comment.trim().is_empty() {
            if l.comment.contains(NEEDLE) {
                return true;
            }
        } else {
            break;
        }
    }
    false
}

fn collect_error_impls(sf: &SourceFile, out: &mut Vec<String>) {
    // `impl std::error::Error for X` / `impl Error for X`, possibly
    // with the target on the same line.
    for line in &sf.lines {
        let code = &line.code;
        let Some(pos) = code.find("impl") else {
            continue;
        };
        let rest = &code[pos..];
        if let Some(for_pos) = rest.find(" for ") {
            let head = &rest[..for_pos];
            if head.contains("Error") && !head.contains("From<") {
                let target = rest[for_pos + 5..]
                    .trim_start()
                    .split(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
                    .next()
                    .unwrap_or("");
                if !target.is_empty() {
                    out.push(target.to_owned());
                }
            }
        }
    }
}

fn hw005_error_hygiene(
    sf: &SourceFile,
    path: &str,
    error_impls: &[String],
    out: &mut Vec<Violation>,
) {
    for (idx, line) in sf.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let toks = idents(&line.code);
        for (t, &(pos, ident)) in toks.iter().enumerate() {
            if ident != "enum" {
                continue;
            }
            // Must be `pub enum` (not pub(crate)).
            let Some(&(pub_pos, prev)) = t.checked_sub(1).and_then(|p| toks.get(p)) else {
                continue;
            };
            if prev != "pub" || next_nonspace_is(&line.code, pub_pos + 3, b'(') {
                continue;
            }
            let Some(&(_, name)) = toks.get(t + 1) else {
                continue;
            };
            if !name.ends_with("Error") {
                continue;
            }
            if !attr_block_contains(sf, idx, "non_exhaustive") {
                out.push(Violation {
                    lint: Lint::Hw005ErrorHygiene,
                    file: path.to_owned(),
                    line: idx + 1,
                    column: pos + 1,
                    message: format!(
                        "public error enum `{name}` is not `#[non_exhaustive]` — \
                         adding a variant would be a breaking change"
                    ),
                });
            }
            if !error_impls.iter().any(|t| t == name) {
                out.push(Violation {
                    lint: Lint::Hw005ErrorHygiene,
                    file: path.to_owned(),
                    line: idx + 1,
                    column: pos + 1,
                    message: format!(
                        "public error enum `{name}` has no `std::error::Error` impl in its crate"
                    ),
                });
            }
        }
    }
}

/// `true` when the attribute block above line `idx` (0-based; contiguous
/// `#[…]`, comment, or attribute-continuation lines) contains `needle`.
fn attr_block_contains(sf: &SourceFile, idx: usize, needle: &str) -> bool {
    if sf.lines[idx].code.contains(needle) {
        return true;
    }
    let mut k = idx;
    while k > 0 {
        k -= 1;
        let code = sf.lines[k].code.trim();
        // Stop at the end of the previous item.
        if code.contains(';') || code.contains('}') {
            return false;
        }
        if sf.lines[k].code.contains(needle) {
            return true;
        }
        let continues = code.is_empty()
            || code.starts_with("#[")
            || code.starts_with("#!")
            // derive lists and attr args spanning lines
            || code.ends_with(',')
            || code.ends_with('(')
            || code.starts_with(')')
            || code.ends_with(']');
        if !continues {
            return false;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(violations: &[Violation]) -> Vec<&'static str> {
        violations.iter().map(|v| v.lint.id()).collect()
    }

    #[test]
    fn hw001_flags_panics_not_tests() {
        let src = "\
fn f(x: Option<u32>) -> u32 { x.unwrap() }
fn g() { panic!(\"boom\"); }
fn h(r: Result<u8, ()>) -> u8 { r.expect(\"msg\") }
fn ok(x: Option<u32>) -> u32 { x.unwrap_or(0) }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { Some(1).unwrap(); }
}
";
        let v = analyze_source("demo", "demo.rs", src);
        assert_eq!(ids(&v), vec!["HW001", "HW001", "HW001"]);
        assert_eq!(v[0].line, 1);
        assert_eq!(v[1].line, 2);
        assert_eq!(v[2].line, 3);
    }

    #[test]
    fn hw001_allow_needs_a_reason() {
        let allowed = "fn f() {\n  // ANALYZE-ALLOW(HW001): startup-only, config is compiled in\n  x.unwrap();\n}\n";
        // The allow comment is on its own line above the violation.
        let v = analyze_source("demo", "demo.rs", allowed);
        assert!(v.is_empty(), "{v:?}");
        let reasonless = "fn f() {\n  x.unwrap(); // ANALYZE-ALLOW(HW001):\n}\n";
        let v = analyze_source("demo", "demo.rs", reasonless);
        assert_eq!(v.len(), 1);
        assert!(
            v[0].message.contains("non-empty reason"),
            "{}",
            v[0].message
        );
    }

    #[test]
    fn hw002_flags_dimensional_f64() {
        let src = "\
pub fn solve(temp_c: f64, width: f64) {}
pub fn black(j: f64, t_ref: f64) {}
pub fn fine(j: CurrentDensity, ratio: f64) {}
pub fn coeff(temperature_coefficient: f64) {}
pub(crate) fn internal(temp: f64) {}
fn private(rho: f64) {}
";
        let v = analyze_source("demo", "demo.rs", src);
        assert_eq!(ids(&v), vec!["HW002", "HW002", "HW002"]);
        assert!(v[0].message.contains("temp_c"));
        assert!(v[1].message.contains('j'));
        assert!(v[2].message.contains("t_ref"));
        // The units crate is the raw-f64 boundary — exempt.
        assert!(analyze_source("units", "demo.rs", src).is_empty());
    }

    #[test]
    fn hw002_handles_multiline_signatures() {
        let src = "pub fn long(\n    a: usize,\n    rho_al: f64,\n) -> f64 { 0.0 }\n";
        let v = analyze_source("demo", "demo.rs", src);
        assert_eq!(ids(&v), vec!["HW002"]);
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn hw003_flags_clocks_and_prints_outside_obs() {
        let src = "\
fn f() { let t = std::time::Instant::now(); }
fn g() { println!(\"x\"); }
fn h(i: Instant) {}
";
        let v = analyze_source("core", "demo.rs", src);
        assert_eq!(ids(&v), vec!["HW003", "HW003"]);
        // The obs crate is exempt.
        assert!(analyze_source("obs", "demo.rs", src).is_empty());
    }

    #[test]
    fn hw004_requires_safety_comment() {
        let bare = "fn f(a: &AtomicU64) { a.load(Ordering::Relaxed); }\n";
        let v = analyze_source("demo", "demo.rs", bare);
        assert_eq!(ids(&v), vec!["HW004"]);
        let justified = "\
fn f(a: &AtomicU64) {
    // SAFETY(ordering): independent counter, no cross-cell ordering.
    a.load(Ordering::Relaxed);
}
";
        assert!(analyze_source("demo", "demo.rs", justified).is_empty());
        let import = "use std::sync::atomic::Ordering;\n";
        assert!(analyze_source("demo", "demo.rs", import).is_empty());
        let cmp = "fn c() -> cmp::Ordering { cmp::Ordering::Less }\n";
        assert!(analyze_source("demo", "demo.rs", cmp).is_empty());
    }

    #[test]
    fn hw005_requires_non_exhaustive_and_error_impl() {
        let bad = "pub enum DemoError { A, B }\n";
        let v = analyze_source("demo", "demo.rs", bad);
        assert_eq!(ids(&v), vec!["HW005", "HW005"]);
        let good = "\
#[derive(Debug)]
#[non_exhaustive]
pub enum DemoError { A, B }
impl std::error::Error for DemoError {}
";
        assert!(analyze_source("demo", "demo.rs", good).is_empty());
        // Non-error enums and private enums are out of scope.
        assert!(analyze_source("demo", "demo.rs", "pub enum Mode { A }\n").is_empty());
        assert!(analyze_source("demo", "demo.rs", "enum InnerError { A }\n").is_empty());
    }

    #[test]
    fn hw005_sees_impls_in_sibling_files() {
        let files = vec![
            (
                "src/error.rs".to_owned(),
                "#[non_exhaustive]\npub enum CrossError { A }\n".to_owned(),
            ),
            (
                "src/impls.rs".to_owned(),
                "impl std::error::Error for CrossError {}\n".to_owned(),
            ),
        ];
        assert!(analyze_crate("demo", &files).is_empty());
    }
}
