//! HW009 — the exit-code contract.
//!
//! The CLI's exit statuses are API: `0` ok, `1` internal, `2` usage,
//! `3` signoff violation (documented in docs/OBSERVABILITY.md and
//! relied on by scripts and CI). That contract survives only while
//! every exit flows through the central `EXIT_*` consts /
//! `CliError::exit_code()` in `src/bin/hotwire.rs`. This pass bans the
//! two ways a stray status sneaks in:
//!
//! * `process::exit(n)` anywhere in scanned code — it also skips
//!   destructors and the flight-recorder bundle-on-exit hook;
//! * `ExitCode::from(<integer literal>)` — a bare magic number where a
//!   named const belongs.
//!
//! `ExitCode::from(e.exit_code())` and `ExitCode::SUCCESS/FAILURE`
//! remain fine; the escape hatch, as everywhere, is
//! `// ANALYZE-ALLOW(HW009): reason`.

use crate::lints::{Lint, Violation};
use crate::parser::{Tok, Token};
use crate::scan::SourceFile;

/// Runs the pass over one file's token stream.
pub fn check(sf: &SourceFile, tokens: &[Token], path: &str, out: &mut Vec<Violation>) {
    for (i, t) in tokens.iter().enumerate() {
        if sf.lines.get(t.line - 1).is_some_and(|l| l.in_test) {
            continue;
        }
        // `process::exit(`  (with or without a `std::` prefix).
        if t.ident() == Some("exit")
            && path_prefix_is(tokens, i, "process")
            && tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            out.push(Violation {
                lint: Lint::Hw009ExitCodeContract,
                file: path.to_owned(),
                line: t.line,
                column: t.col,
                message: "`process::exit(…)` bypasses the central exit-code contract (and \
                          skips destructors + the bundle-on-exit hook) — return an ExitCode \
                          through the CliError path instead"
                    .to_owned(),
            });
        }
        // `ExitCode::from(<integer literal>)`.
        if t.ident() == Some("from")
            && path_prefix_is(tokens, i, "ExitCode")
            && tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
            && matches!(tokens.get(i + 2).map(|n| &n.tok), Some(Tok::Num(_)))
        {
            out.push(Violation {
                lint: Lint::Hw009ExitCodeContract,
                file: path.to_owned(),
                line: t.line,
                column: t.col,
                message: "`ExitCode::from(<literal>)` hardcodes an exit status — name it via \
                          the central EXIT_* consts"
                    .to_owned(),
            });
        }
    }
}

/// `true` when token `i` is preceded by `prefix ::`.
fn path_prefix_is(tokens: &[Token], i: usize, prefix: &str) -> bool {
    i >= 3
        && tokens[i - 1].is_punct(':')
        && tokens[i - 2].is_punct(':')
        && tokens[i - 3].ident() == Some(prefix)
}

#[cfg(test)]
mod tests {
    use crate::lints::analyze_source;

    #[test]
    fn flags_process_exit_and_literal_exitcode() {
        let src = "\
fn f() { std::process::exit(7); }
fn g() -> ExitCode { ExitCode::from(2) }
";
        let v = analyze_source("core", "demo.rs", src);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|v| v.lint.id() == "HW009"));
    }

    #[test]
    fn named_paths_and_tests_are_fine() {
        let src = "\
fn ok(e: &CliError) -> ExitCode { ExitCode::from(e.exit_code()) }
fn ok2() -> ExitCode { ExitCode::SUCCESS }
fn ok3(p: &Process) { p.exit(); }
#[cfg(test)]
mod tests {
    fn t() { std::process::exit(0); }
}
";
        assert!(analyze_source("core", "demo.rs", src).is_empty());
    }

    #[test]
    fn allow_comment_applies() {
        let src = "\
fn f() {
    // ANALYZE-ALLOW(HW009): abort from a signal handler, no unwinding allowed
    std::process::exit(1);
}
";
        assert!(analyze_source("core", "demo.rs", src).is_empty());
    }
}
