//! HW007 — metric/span-name drift between code and docs/OBSERVABILITY.md.
//!
//! `docs/OBSERVABILITY.md` carries the metric catalog: one table row per
//! dotted name (`| `solver.factor` | counter | … |`). The catalog is
//! only useful while it is *true*, so this pass checks both directions:
//!
//! * every dotted name registered in code via the `obs` entry points
//!   (`metrics::counter/gauge/timer`, `trace::span/span_with`) — or
//!   published as a dotted `const NAME: &str` in `crates/obs` (the
//!   `health::names` indirection) — must have a catalog row;
//! * every catalog row must correspond to at least one such
//!   registration, or it is stale and fails the run.
//!
//! Only **dotted** literal names participate: dynamic (`format!`-built)
//! names and short test/doc names (`"noop"`) are invisible by design.
//! A stale catalog row can be suppressed with
//! `<!-- ANALYZE-ALLOW(HW007): reason -->` on the row itself.

use crate::lints::{Lint, Violation};
use crate::parser::{Tok, Token};
use crate::scan::SourceFile;

/// The `obs` entry points whose first string argument registers a name.
const REGISTRARS: [&str; 5] = ["counter", "gauge", "timer", "span", "span_with"];

/// One name registration found in code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricReg {
    /// The dotted name.
    pub name: String,
    /// Repo-relative file.
    pub file: String,
    /// 1-based line of the literal.
    pub line: usize,
    /// 1-based column of the literal.
    pub column: usize,
}

/// `true` for names the pass tracks: lowercase dotted identifiers
/// (`solver.chol.factor`), excluding things that merely look dotted —
/// file names with a known extension, and anything with `/`.
#[must_use]
pub fn is_dotted_metric_name(name: &str) -> bool {
    if !name.contains('.') || name.starts_with('.') || name.ends_with('.') || name.contains("..") {
        return false;
    }
    if !name
        .chars()
        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '_')
    {
        return false;
    }
    if !name.starts_with(|c: char| c.is_ascii_lowercase()) {
        return false;
    }
    // `bench.json`, `grid.rs` … are paths, not metric names.
    let last = name.rsplit('.').next().unwrap_or("");
    !matches!(
        last,
        "json" | "jsonl" | "toml" | "md" | "rs" | "txt" | "log" | "csv" | "yaml" | "yml" | "lock"
    )
}

/// Collects the metric-name registrations of one file.
///
/// `collect_consts` enables the dotted-`const` rule, which only the
/// `obs` crate (the `health::names` owner) opts into — elsewhere a
/// dotted string constant is far more likely to be a file name or
/// format fragment.
#[must_use]
pub fn collect_registrations(
    sf: &SourceFile,
    tokens: &[Token],
    path: &str,
    collect_consts: bool,
) -> Vec<MetricReg> {
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        let Tok::Str(value) = &t.tok else { continue };
        if !is_dotted_metric_name(value) {
            continue;
        }
        if sf.lines.get(t.line - 1).is_some_and(|l| l.in_test) {
            continue;
        }
        // `counter("…")` / `span_with("…", …)`: the literal directly
        // follows `<registrar>(`.
        let is_call = i >= 2
            && tokens[i - 1].is_punct('(')
            && tokens[i - 2]
                .ident()
                .is_some_and(|id| REGISTRARS.contains(&id));
        // `const COND_EST: &str = "health.cond_est";` — the literal
        // directly follows `str =` in a const header.
        let is_const = collect_consts
            && i >= 2
            && tokens[i - 1].is_punct('=')
            && tokens[i - 2].ident() == Some("str");
        if is_call || is_const {
            out.push(MetricReg {
                name: value.clone(),
                file: path.to_owned(),
                line: t.line,
                column: t.col,
            });
        }
    }
    out
}

/// One catalog row from docs/OBSERVABILITY.md.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CatalogRow {
    /// The documented name.
    pub name: String,
    /// 1-based line of the row.
    pub line: usize,
    /// `true` when the row carries an `ANALYZE-ALLOW(HW007)` comment.
    pub allowed: bool,
}

/// The parsed metric catalog.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    /// Repo-relative path of the catalog file.
    pub path: String,
    /// All rows, in file order.
    pub rows: Vec<CatalogRow>,
}

impl Catalog {
    /// Parses the markdown catalog: rows of shape
    /// `| \`dotted.name\` | counter/gauge/timer | … |`. Tables whose
    /// second column is not a metric kind (CLI flags, endpoints) are
    /// ignored.
    #[must_use]
    pub fn parse(path: &str, text: &str) -> Self {
        let mut rows = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if !line.starts_with('|') {
                continue;
            }
            let mut cells = line.split('|').skip(1).map(str::trim);
            let (Some(first), Some(second)) = (cells.next(), cells.next()) else {
                continue;
            };
            if !matches!(second, "counter" | "gauge" | "timer") {
                continue;
            }
            let Some(name) = first.strip_prefix('`').and_then(|s| s.strip_suffix('`')) else {
                continue;
            };
            if !is_dotted_metric_name(name) {
                continue;
            }
            rows.push(CatalogRow {
                name: name.to_owned(),
                line: idx + 1,
                allowed: raw.contains("ANALYZE-ALLOW(HW007)"),
            });
        }
        Self {
            path: path.to_owned(),
            rows,
        }
    }

    /// `true` when `name` has a catalog row.
    #[must_use]
    pub fn documents(&self, name: &str) -> bool {
        self.rows.iter().any(|r| r.name == name)
    }
}

/// Code → docs direction: a registration without a catalog row.
pub fn check_registrations(regs: &[MetricReg], catalog: &Catalog, out: &mut Vec<Violation>) {
    for r in regs {
        if !catalog.documents(&r.name) {
            out.push(Violation {
                lint: Lint::Hw007MetricCatalog,
                file: r.file.clone(),
                line: r.line,
                column: r.column,
                message: format!(
                    "metric/span `{}` is registered here but has no row in {}",
                    r.name, catalog.path
                ),
            });
        }
    }
}

/// Docs → code direction: catalog rows matching no registration.
/// Called once per workspace with the union of all crates' regs.
#[must_use]
pub fn stale_rows(catalog: &Catalog, regs: &[MetricReg]) -> Vec<Violation> {
    let mut out = Vec::new();
    for row in &catalog.rows {
        if row.allowed {
            continue;
        }
        if !regs.iter().any(|r| r.name == row.name) {
            out.push(Violation {
                lint: Lint::Hw007MetricCatalog,
                file: catalog.path.clone(),
                line: row.line,
                column: 1,
                message: format!(
                    "catalog row `{}` matches no registration in the code — delete the stale \
                     row (or mark it `<!-- ANALYZE-ALLOW(HW007): reason -->`)",
                    row.name
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::tokenize;
    use crate::scan::scan;

    fn regs(src: &str, consts: bool) -> Vec<String> {
        let sf = scan(src);
        let toks = tokenize(&sf);
        collect_registrations(&sf, &toks, "demo.rs", consts)
            .into_iter()
            .map(|r| r.name)
            .collect()
    }

    #[test]
    fn collects_direct_calls_including_multiline() {
        let src = "\
fn f() {
    metrics::counter(\"solver.factor\").inc();
    let _t = trace::span_with(
        \"coupled.iteration\",
        &[(\"iteration\", FieldValue::U64(1))],
    );
    metrics::gauge(names::COND_EST).set(1.0); // const indirection: not a literal
    recorder::record(\"em.nucleation\", format_args!(\"x\")); // flight-recorder kind, not a metric
}
";
        assert_eq!(regs(src, false), vec!["solver.factor", "coupled.iteration"]);
    }

    #[test]
    fn collects_dotted_consts_only_when_asked() {
        let src = "pub const COND_EST: &str = \"health.cond_est\";\n\
                   pub const OUT: &str = \"bench.json\";\n";
        assert_eq!(regs(src, true), vec!["health.cond_est"]);
        assert!(regs(src, false).is_empty());
    }

    #[test]
    fn test_code_and_undotted_names_are_ignored() {
        let src = "\
fn f() { trace::span(\"noop\"); }
#[cfg(test)]
mod tests {
    fn t() { metrics::counter(\"t.counter\").inc(); }
}
";
        assert!(regs(src, false).is_empty());
    }

    #[test]
    fn catalog_parses_metric_rows_only() {
        let md = "\
| Flag | Scope | Effect |
|---|---|---|
| `--log-level <x>` | global | verbosity |

| Name | Kind | Meaning |
|---|---|---|
| `solver.factor` | counter | factorizations |
| `solver.factor_time` | timer | wall time |
| `gone.metric` | gauge | stale | <!-- ANALYZE-ALLOW(HW007): kept for dashboards -->
";
        let c = Catalog::parse("docs/OBSERVABILITY.md", md);
        let names: Vec<&str> = c.rows.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["solver.factor", "solver.factor_time", "gone.metric"]
        );
        assert!(c.rows[2].allowed);
    }

    #[test]
    fn drift_is_flagged_both_ways() {
        let c = Catalog::parse(
            "docs/OBSERVABILITY.md",
            "| `doc.only` | counter | x |\n| `both.sides` | gauge | y |\n",
        );
        let regs = vec![
            MetricReg {
                name: "both.sides".into(),
                file: "a.rs".into(),
                line: 1,
                column: 1,
            },
            MetricReg {
                name: "code.only".into(),
                file: "a.rs".into(),
                line: 2,
                column: 1,
            },
        ];
        let mut v = Vec::new();
        check_registrations(&regs, &c, &mut v);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("code.only"));
        let stale = stale_rows(&c, &regs);
        assert_eq!(stale.len(), 1);
        assert!(stale[0].message.contains("doc.only"));
        assert_eq!(stale[0].file, "docs/OBSERVABILITY.md");
    }
}
