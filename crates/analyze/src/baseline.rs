//! The committed violation baseline and its ratchet semantics.
//!
//! `analyze-baseline.toml` records, per lint and per file, how many
//! violations are currently tolerated. The comparison is a ratchet:
//!
//! * a file may only ever have **at most** its baselined count — any
//!   increase is a new violation and fails the run;
//! * when a file's real count drops below its baselined count, the run
//!   reports the slack so the baseline can be re-tightened with
//!   `--write-baseline` (counts only decrease over time);
//! * files absent from the baseline have an implicit count of zero.
//!
//! The format is a deliberately tiny TOML subset (tables of
//! `"path" = count`), written and parsed here so the tool stays
//! dependency-free:
//!
//! ```toml
//! [HW001]
//! "crates/core/src/sweep.rs" = 2
//! ```

use std::collections::BTreeMap;

use crate::lints::{Lint, Violation, ALL_LINTS};

/// Tolerated violation counts: `(lint, file) -> count`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    counts: BTreeMap<(Lint, String), usize>,
}

/// A malformed `analyze-baseline.toml`.
#[derive(Debug)]
#[non_exhaustive]
pub struct BaselineParseError {
    /// 1-based line of the offending entry.
    pub line: usize,
    /// What was wrong with it.
    pub message: String,
}

impl std::fmt::Display for BaselineParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "baseline line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for BaselineParseError {}

impl Baseline {
    /// Builds a baseline recording the given violations verbatim.
    #[must_use]
    pub fn from_violations(violations: &[Violation]) -> Self {
        let mut counts = BTreeMap::new();
        for v in violations {
            *counts.entry((v.lint, v.file.clone())).or_insert(0) += 1;
        }
        Self { counts }
    }

    /// The tolerated count for `(lint, file)`; zero when unlisted.
    #[must_use]
    pub fn allowed(&self, lint: Lint, file: &str) -> usize {
        self.counts
            .get(&(lint, file.to_owned()))
            .copied()
            .unwrap_or(0)
    }

    /// Iterates every `(lint, file, count)` entry, sorted.
    pub fn entries(&self) -> impl Iterator<Item = (Lint, &str, usize)> {
        self.counts
            .iter()
            .map(|((lint, file), n)| (*lint, file.as_str(), *n))
    }

    /// Total tolerated count for one lint across all files.
    #[must_use]
    pub fn total(&self, lint: Lint) -> usize {
        self.counts
            .iter()
            .filter(|((l, _), _)| *l == lint)
            .map(|(_, n)| n)
            .sum()
    }

    /// Parses the TOML-subset baseline format.
    pub fn parse(text: &str) -> Result<Self, BaselineParseError> {
        let mut counts = BTreeMap::new();
        let mut current: Option<Lint> = None;
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let lineno = idx + 1;
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(section) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                current =
                    Some(
                        Lint::from_id(section.trim()).ok_or_else(|| BaselineParseError {
                            line: lineno,
                            message: format!("unknown lint section `[{section}]`"),
                        })?,
                    );
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(BaselineParseError {
                    line: lineno,
                    message: format!("expected `\"path\" = count`, got `{line}`"),
                });
            };
            let lint = current.ok_or_else(|| BaselineParseError {
                line: lineno,
                message: "entry before any `[HWxxx]` section".to_owned(),
            })?;
            let path = key.trim().trim_matches('"').to_owned();
            let count: usize = value.trim().parse().map_err(|_| BaselineParseError {
                line: lineno,
                message: format!("count `{}` is not a non-negative integer", value.trim()),
            })?;
            if count == 0 {
                return Err(BaselineParseError {
                    line: lineno,
                    message: format!("zero-count entry for `{path}` — delete the line instead"),
                });
            }
            counts.insert((lint, path), count);
        }
        Ok(Self { counts })
    }

    /// Renders the baseline in its canonical committed form (sorted,
    /// zero-count entries dropped, header comment explaining the
    /// ratchet).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# Tolerated violations of the project invariants (HW001-HW009).\n\
             # This file is a ratchet: counts may only decrease. Regenerate with\n\
             #   cargo xtask analyze --write-baseline\n\
             # after *reducing* violations; never hand-edit a count upward.\n",
        );
        for lint in ALL_LINTS {
            let entries: Vec<_> = self
                .counts
                .iter()
                .filter(|((l, _), n)| *l == lint && **n > 0)
                .collect();
            if entries.is_empty() {
                continue;
            }
            out.push_str(&format!("\n[{}]\n", lint.id()));
            for ((_, path), n) in entries {
                out.push_str(&format!("\"{path}\" = {n}\n"));
            }
        }
        out
    }
}

/// One ratchet regression: a file exceeding its tolerated count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Regression {
    /// Which invariant regressed.
    pub lint: Lint,
    /// The offending file.
    pub file: String,
    /// The tolerated count.
    pub allowed: usize,
    /// The observed count.
    pub found: usize,
    /// The violations in that file (for file:line output).
    pub violations: Vec<Violation>,
}

/// The outcome of diffing a scan against the baseline.
#[derive(Debug, Clone, Default)]
pub struct RatchetReport {
    /// Files over their tolerated count — these fail the run.
    pub regressions: Vec<Regression>,
    /// `(lint, file, allowed, found)` where the tree is now better
    /// than the baseline: the baseline can be tightened.
    pub slack: Vec<(Lint, String, usize, usize)>,
    /// Baseline entries whose file no longer has any violations at
    /// all (or no longer exists) — pure staleness.
    pub stale: Vec<(Lint, String)>,
}

impl RatchetReport {
    /// `true` when nothing regressed.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Diffs `violations` against `baseline` under ratchet semantics.
#[must_use]
pub fn ratchet(violations: &[Violation], baseline: &Baseline) -> RatchetReport {
    let mut by_key: BTreeMap<(Lint, String), Vec<Violation>> = BTreeMap::new();
    for v in violations {
        by_key
            .entry((v.lint, v.file.clone()))
            .or_default()
            .push(v.clone());
    }
    let mut report = RatchetReport::default();
    for ((lint, file), vs) in &by_key {
        let allowed = baseline.allowed(*lint, file);
        if vs.len() > allowed {
            report.regressions.push(Regression {
                lint: *lint,
                file: file.clone(),
                allowed,
                found: vs.len(),
                violations: vs.clone(),
            });
        } else if vs.len() < allowed {
            report.slack.push((*lint, file.clone(), allowed, vs.len()));
        }
    }
    for ((lint, file), allowed) in &baseline.counts {
        if *allowed > 0 && !by_key.contains_key(&(*lint, file.clone())) {
            report.stale.push((*lint, file.clone()));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(lint: Lint, file: &str, line: usize) -> Violation {
        Violation {
            lint,
            file: file.to_owned(),
            line,
            column: 1,
            message: String::new(),
        }
    }

    #[test]
    fn round_trips_through_render_and_parse() {
        let vs = vec![
            v(Lint::Hw001PanicFree, "crates/a/src/lib.rs", 3),
            v(Lint::Hw001PanicFree, "crates/a/src/lib.rs", 9),
            v(Lint::Hw004OrderingJustified, "crates/b/src/x.rs", 1),
        ];
        let b = Baseline::from_violations(&vs);
        let parsed = Baseline::parse(&b.render()).expect("canonical form parses");
        assert_eq!(parsed, b);
        assert_eq!(
            parsed.allowed(Lint::Hw001PanicFree, "crates/a/src/lib.rs"),
            2
        );
        assert_eq!(parsed.allowed(Lint::Hw001PanicFree, "crates/b/src/x.rs"), 0);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(Baseline::parse("[HW999]\n").is_err());
        assert!(Baseline::parse("\"orphan\" = 1\n").is_err());
        assert!(Baseline::parse("[HW001]\n\"f\" = -2\n").is_err());
        assert!(Baseline::parse("[HW001]\n\"f\" = 0\n").is_err());
        assert!(Baseline::parse("[HW001]\nnot an entry\n").is_err());
    }

    #[test]
    fn ratchet_flags_regressions_and_slack() {
        let base = Baseline::parse("[HW001]\n\"a.rs\" = 2\n\"gone.rs\" = 1\n").expect("parses");
        let now = vec![
            v(Lint::Hw001PanicFree, "a.rs", 1),
            v(Lint::Hw001PanicFree, "b.rs", 1),
        ];
        let r = ratchet(&now, &base);
        assert_eq!(r.regressions.len(), 1, "{r:?}");
        assert_eq!(r.regressions[0].file, "b.rs");
        assert_eq!((r.regressions[0].allowed, r.regressions[0].found), (0, 1));
        assert_eq!(
            r.slack,
            vec![(Lint::Hw001PanicFree, "a.rs".to_owned(), 2, 1)]
        );
        assert_eq!(r.stale, vec![(Lint::Hw001PanicFree, "gone.rs".to_owned())]);
        assert!(!r.is_clean());
    }

    #[test]
    fn clean_tree_against_empty_baseline_is_clean() {
        let r = ratchet(&[], &Baseline::default());
        assert!(r.is_clean());
        assert!(r.slack.is_empty() && r.stale.is_empty());
    }
}
