//! HW006 — narrowing numeric casts in solver/thermal/EM kernels.
//!
//! The paper's signoff math is f64 end to end; an `as f32` (or a
//! narrowing integer cast) in a numeric kernel silently throws away
//! precision or range exactly where it matters most — ρ(T) feeding
//! Black's MTF, Korhonen stress updates, sparse index arithmetic. The
//! rule: inside the kernel crates, every `as` cast whose **target** is
//! narrower than 64 bits carries a `// CAST(<reason>):` comment on the
//! line, the statement, or the comment block above, saying why the
//! loss is fine (index fits, value clamped, display only…).
//!
//! The source type is unknowable at token level, so the pass keys on
//! the target alone; wide/platform targets (`f64`, `i64`, `u64`,
//! `usize`, `isize`) are never flagged.

use crate::lints::{Lint, Violation};
use crate::parser::Token;
use crate::scan::SourceFile;

/// Crates whose numeric kernels the pass covers.
pub const KERNEL_CRATES: [&str; 5] = ["circuit", "thermal", "em", "em-tree", "coupled"];

/// Cast targets considered narrowing.
const NARROW_TARGETS: [&str; 7] = ["f32", "i32", "u32", "i16", "u16", "i8", "u8"];

/// Runs the pass over one file's token stream.
pub fn check(sf: &SourceFile, tokens: &[Token], path: &str, out: &mut Vec<Violation>) {
    for (i, t) in tokens.iter().enumerate() {
        if t.ident() != Some("as") {
            continue;
        }
        let Some(next) = tokens.get(i + 1) else {
            continue;
        };
        let Some(target) = next.ident() else {
            continue;
        };
        if !NARROW_TARGETS.contains(&target) {
            continue;
        }
        if sf.lines.get(t.line - 1).is_some_and(|l| l.in_test) {
            continue;
        }
        match cast_justification(sf, t.line - 1) {
            CastComment::Justified => {}
            CastComment::MissingReason => out.push(Violation {
                lint: Lint::Hw006NarrowingCast,
                file: path.to_owned(),
                line: t.line,
                column: t.col,
                message: format!(
                    "narrowing `as {target}` cast — the CAST comment needs a non-empty \
                     reason between the parentheses"
                ),
            }),
            CastComment::None => out.push(Violation {
                lint: Lint::Hw006NarrowingCast,
                file: path.to_owned(),
                line: t.line,
                column: t.col,
                message: format!(
                    "narrowing `as {target}` cast in a numeric kernel without a \
                     `// CAST(reason):` justification"
                ),
            }),
        }
    }
}

enum CastComment {
    None,
    Justified,
    MissingReason,
}

/// Looks for `CAST(<reason>):` on the flagged line, earlier lines of
/// the same statement, or the comment block directly above — the same
/// scope HW004 gives `SAFETY(ordering):`.
fn cast_justification(sf: &SourceFile, idx: usize) -> CastComment {
    let mut best = CastComment::None;
    let mut consider = |comment: &str| {
        if let Some(pos) = comment.find("CAST(") {
            let rest = &comment[pos + "CAST(".len()..];
            let reason = rest.split(')').next().unwrap_or("").trim();
            best = if reason.is_empty() {
                CastComment::MissingReason
            } else {
                CastComment::Justified
            };
            true
        } else {
            false
        }
    };
    if consider(&sf.lines[idx].comment) {
        return best;
    }
    // Earlier lines of the same statement.
    let mut k = idx;
    while k > 0 {
        let prev = &sf.lines[k - 1];
        if prev.is_code_blank() {
            break;
        }
        let tail = prev.code.trim_end();
        if tail.ends_with(';') || tail.ends_with('{') || tail.ends_with('}') {
            break;
        }
        k -= 1;
        if consider(&sf.lines[k].comment) {
            return best;
        }
    }
    // The comment block directly above the statement.
    while k > 0 {
        k -= 1;
        let l = &sf.lines[k];
        if l.is_code_blank() && !l.comment.trim().is_empty() {
            if consider(&l.comment) {
                return best;
            }
        } else {
            break;
        }
    }
    CastComment::None
}

#[cfg(test)]
mod tests {
    use crate::lints::analyze_source;

    #[test]
    fn flags_narrowing_casts_in_kernel_crates_only() {
        let src = "pub fn f(x: f64) -> f32 { x as f32 }\n";
        let v = analyze_source("circuit", "demo.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].lint.id(), "HW006");
        // Non-kernel crates are out of scope.
        assert!(analyze_source("tech", "demo.rs", src).is_empty());
    }

    #[test]
    fn wide_targets_and_tests_are_exempt() {
        let src = "\
pub fn f(x: u32) -> u64 { x as u64 }
pub fn g(x: u32) -> usize { x as usize }
pub fn h(x: f32) -> f64 { f64::from(x) }
#[cfg(test)]
mod tests {
    fn t(x: f64) -> f32 { x as f32 }
}
";
        assert!(analyze_source("thermal", "demo.rs", src).is_empty());
    }

    #[test]
    fn cast_comment_with_reason_justifies() {
        let good = "\
pub fn f(n: usize) -> u32 {
    // CAST(node indices are bounded by the grid size, far below u32::MAX):
    n as u32
}
";
        assert!(analyze_source("circuit", "demo.rs", good).is_empty());
        let same_line = "pub fn f(n: usize) -> u32 { n as u32 } // CAST(bounded): grid index\n";
        assert!(analyze_source("circuit", "demo.rs", same_line).is_empty());
        let empty_reason = "pub fn f(n: usize) -> u32 { n as u32 } // CAST():\n";
        let v = analyze_source("circuit", "demo.rs", empty_reason);
        assert_eq!(v.len(), 1);
        assert!(
            v[0].message.contains("non-empty reason"),
            "{}",
            v[0].message
        );
    }

    #[test]
    fn use_renames_are_not_casts() {
        let src = "use std::fmt::Debug as DebugTrait;\n";
        assert!(analyze_source("circuit", "demo.rs", src).is_empty());
    }
}
