//! HW008 — telemetry no-op parity in `crates/obs`.
//!
//! The whole obs layer compiles away under `--no-default-features`;
//! that only holds if every *public* item gated on
//! `#[cfg(feature = "telemetry")]` has a twin under
//! `#[cfg(not(feature = "telemetry"))]` with the same kind, name and —
//! for functions — a whitespace-identical signature. A missing or
//! mismatched twin means the disabled build has a different public API,
//! which the no-telemetry CI leg only discovers for code paths it
//! happens to compile; this pass catches it statically for all of them.
//!
//! Scope: item-level gates on `pub` items, recursively through `mod`
//! and `impl` blocks. The dominant obs idiom — statement-level `#[cfg]`
//! *inside* an unconditionally-compiled `pub fn` — is invisible to the
//! item parser and intentionally fine: the signature is shared by
//! construction there.

use crate::lints::{Lint, Violation};
use crate::parser::{Item, Visibility};

/// Runs the pass over one file's parsed item tree.
pub fn check(items: &[Item], path: &str, out: &mut Vec<Violation>) {
    check_siblings(items, path, out);
}

fn check_siblings(siblings: &[Item], path: &str, out: &mut Vec<Violation>) {
    for item in siblings {
        if item.vis == Visibility::Pub {
            let on = item
                .attrs
                .iter()
                .any(super::parser::Attr::gates_telemetry_on);
            let off = item
                .attrs
                .iter()
                .any(super::parser::Attr::gates_telemetry_off);
            if on {
                match find_twin(siblings, item, false) {
                    None => out.push(violation(
                        item,
                        path,
                        format!(
                            "pub {} `{}` is gated on `feature = \"telemetry\"` but has no \
                             `#[cfg(not(feature = \"telemetry\"))]` no-op twin",
                            kind_word(item),
                            item.name
                        ),
                    )),
                    Some(twin) => {
                        if item.kind == crate::parser::ItemKind::Fn
                            && twin.signature != item.signature
                        {
                            out.push(violation(
                                item,
                                path,
                                format!(
                                    "pub fn `{}`: the disabled-branch twin's signature differs \
                                     (`{}` vs `{}`)",
                                    item.name, item.signature, twin.signature
                                ),
                            ));
                        }
                    }
                }
            } else if off && find_twin(siblings, item, true).is_none() {
                out.push(violation(
                    item,
                    path,
                    format!(
                        "pub {} `{}` exists only with telemetry disabled — the enabled branch \
                         has no matching item",
                        kind_word(item),
                        item.name
                    ),
                ));
            }
        }
        check_siblings(&item.children, path, out);
    }
}

/// Finds the sibling twin of `item` on the other side of the feature
/// gate (`want_on` selects which side to look for).
fn find_twin<'a>(siblings: &'a [Item], item: &Item, want_on: bool) -> Option<&'a Item> {
    siblings.iter().find(|s| {
        !std::ptr::eq(*s, item)
            && s.kind == item.kind
            && s.name == item.name
            && s.attrs.iter().any(|a| {
                if want_on {
                    a.gates_telemetry_on()
                } else {
                    a.gates_telemetry_off()
                }
            })
    })
}

fn kind_word(item: &Item) -> &'static str {
    use crate::parser::ItemKind;
    match item.kind {
        ItemKind::Fn => "fn",
        ItemKind::Struct => "struct",
        ItemKind::Enum => "enum",
        ItemKind::Mod => "mod",
        ItemKind::Impl => "impl",
        ItemKind::Trait => "trait",
        ItemKind::Const => "const",
        ItemKind::TypeAlias => "type",
        ItemKind::Use => "use",
        ItemKind::MacroCall => "macro",
    }
}

fn violation(item: &Item, path: &str, message: String) -> Violation {
    Violation {
        lint: Lint::Hw008TelemetryParity,
        file: path.to_owned(),
        line: item.line,
        column: 1,
        message,
    }
}

#[cfg(test)]
mod tests {
    use crate::lints::analyze_source;

    #[test]
    fn missing_twin_is_flagged_in_obs_only() {
        let src = "#[cfg(feature = \"telemetry\")]\npub fn start() -> u32 { 1 }\n";
        let v = analyze_source("obs", "demo.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].lint.id(), "HW008");
        assert!(v[0].message.contains("no-op twin"), "{}", v[0].message);
        // Other crates are out of scope.
        assert!(analyze_source("core", "demo.rs", src).is_empty());
    }

    #[test]
    fn matching_twin_passes_and_signature_drift_fails() {
        let good = "\
#[cfg(feature = \"telemetry\")]
pub fn start(name: &'static str) -> Timer { Timer::real(name) }
#[cfg(not(feature = \"telemetry\"))]
pub fn start(name: &'static str) -> Timer { let _ = name; Timer }
";
        assert!(analyze_source("obs", "demo.rs", good).is_empty());
        let drift = "\
#[cfg(feature = \"telemetry\")]
pub fn start(name: &'static str) -> Timer { Timer::real(name) }
#[cfg(not(feature = \"telemetry\"))]
pub fn start(name: &str) -> Timer { let _ = name; Timer }
";
        let v = analyze_source("obs", "demo.rs", drift);
        assert_eq!(v.len(), 1);
        assert!(
            v[0].message.contains("signature differs"),
            "{}",
            v[0].message
        );
    }

    #[test]
    fn private_items_and_statement_level_cfg_are_fine() {
        let src = "\
#[cfg(feature = \"telemetry\")]
mod imp { pub fn real() {} }
#[cfg(feature = \"telemetry\")]
pub(crate) struct Inner;
pub fn outer() {
    #[cfg(feature = \"telemetry\")]
    imp::real();
}
";
        assert!(analyze_source("obs", "demo.rs", src).is_empty());
    }

    #[test]
    fn orphaned_disabled_twin_is_flagged() {
        let src = "#[cfg(not(feature = \"telemetry\"))]\npub struct Timer;\n";
        let v = analyze_source("obs", "demo.rs", src);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("enabled branch"), "{}", v[0].message);
    }

    #[test]
    fn twins_inside_impl_blocks_are_matched_as_siblings() {
        let src = "\
impl Timer {
    #[cfg(feature = \"telemetry\")]
    pub fn observe(&self, d: Duration) { self.real(d) }
    #[cfg(not(feature = \"telemetry\"))]
    pub fn observe(&self, d: Duration) { let _ = d; }
}
";
        assert!(analyze_source("obs", "demo.rs", src).is_empty());
    }
}
