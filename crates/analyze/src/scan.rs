//! A line-oriented Rust scanner: enough lexing for invariant lints.
//!
//! The upstream plan of record for this pass is a `syn` AST walk; this
//! build environment is offline (see `shims/README.md`), so the scanner
//! hand-rolls the fraction of lexing the lints in [`crate::lints`]
//! actually need, which is deliberately token-shaped rather than
//! grammar-shaped:
//!
//! * comments, string/char literals, and raw strings are recognized and
//!   **blanked** out of the code channel (replaced by spaces, so byte
//!   columns survive for diagnostics) — a `panic!` inside a string or a
//!   doc example can never fire a lint;
//! * comment *text* is kept per line, because HW004's
//!   `// SAFETY(ordering):` justifications and the
//!   `ANALYZE-ALLOW(HWxxx)` escape hatch live in comments;
//! * `#[cfg(test)]` / `#[test]` items are tracked by brace depth so
//!   test code is exempt from the panic-free rule (HW001) without
//!   moving tests out of library files.
//!
//! The scanner is intentionally forgiving: on input it cannot make
//! sense of it degrades to treating bytes as code, which can only
//! produce a false *positive* (surfaced, reviewed, then allowed or
//! fixed) — never a silent false negative from a skipped region.

/// One scanned source line.
#[derive(Debug, Clone, Default)]
pub struct Line {
    /// Source text with comments and literal contents blanked to
    /// spaces. Byte columns match the original line.
    pub code: String,
    /// Concatenated comment text on this line (both `//` and `/* */`).
    pub comment: String,
    /// `true` when the line is inside a `#[cfg(test)]` or `#[test]`
    /// item (including the attribute lines themselves).
    pub in_test: bool,
}

impl Line {
    /// `true` when the line carries no code tokens (blank or
    /// comment-only).
    #[must_use]
    pub fn is_code_blank(&self) -> bool {
        self.code.trim().is_empty()
    }
}

/// One string literal lifted out of the code channel, with provenance.
///
/// The code channel blanks literal *contents* to spaces (keeping the
/// delimiting quotes), so token-level lints can't read them; semantic
/// passes that care about the text — HW007's metric-name catalog check
/// above all — get it here instead. `value` is the raw source text
/// between the delimiters (escape sequences unprocessed, embedded
/// newlines kept), which is exact for the dotted metric names the
/// passes match on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrLit {
    /// 1-based line of the opening delimiter.
    pub line: usize,
    /// 1-based byte column of the opening delimiter (the `r`/`br`
    /// sigil for raw strings).
    pub column: usize,
    /// Raw text between the delimiters.
    pub value: String,
}

/// A scanned file: per-line code/comment channels plus test marking.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// The scanned lines, in order.
    pub lines: Vec<Line>,
    /// Every string literal, in source order (see [`StrLit`]).
    pub strings: Vec<StrLit>,
}

/// Scans `source` into per-line code and comment channels and marks
/// test regions.
#[must_use]
pub fn scan(source: &str) -> SourceFile {
    let (mut lines, strings) = split_channels(source);
    mark_test_regions(&mut lines);
    SourceFile { lines, strings }
}

/// Lexer state for [`split_channels`].
enum State {
    Code,
    LineComment,
    /// Nestable `/* */`; the value is the nesting depth.
    BlockComment(u32),
    /// Inside `"…"`; `true` right after a `\`.
    Str(bool),
    /// Inside `r#*"…"#*`; the value is the hash count.
    RawStr(u32),
    /// Inside `'…'`; `true` right after a `\`.
    Char(bool),
}

#[allow(clippy::too_many_lines)]
fn split_channels(source: &str) -> (Vec<Line>, Vec<StrLit>) {
    let mut lines = Vec::new();
    let mut strings = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut state = State::Code;
    let bytes = source.as_bytes();
    let mut i = 0;
    // Tracks the identifier immediately before the cursor, to tell a
    // raw-string sigil (`r"`, `br#"`) from an identifier ending in `r`,
    // and a lifetime (`'a`) from a char literal (`'a'`).
    let mut ident_start: Option<usize> = None;
    // The string literal currently being captured: (line index, column,
    // accumulated raw text).
    let mut cur_str: Option<(usize, usize, String)> = None;

    macro_rules! flush_line {
        () => {
            lines.push(Line {
                code: std::mem::take(&mut code),
                comment: std::mem::take(&mut comment),
                in_test: false,
            });
        };
    }

    while i < bytes.len() {
        let b = bytes[i];
        if b == b'\n' {
            flush_line!();
            if let State::LineComment = state {
                state = State::Code;
            }
            if let Some((_, _, value)) = cur_str.as_mut() {
                value.push('\n');
            }
            ident_start = None;
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let rest = &bytes[i..];
                if rest.starts_with(b"//") {
                    state = State::LineComment;
                    i += 2;
                    continue;
                }
                if rest.starts_with(b"/*") {
                    state = State::BlockComment(1);
                    code.push_str("  ");
                    i += 2;
                    continue;
                }
                let is_ident_byte = b.is_ascii_alphanumeric() || b == b'_';
                if b == b'"' {
                    // Raw string if the preceding identifier is exactly
                    // `r`/`br`/`rb` or `r`+hashes handled below.
                    let sigil = prev_ident(bytes, ident_start, i);
                    let raw = matches!(sigil, Some("r" | "br"));
                    let col = if raw {
                        code.len() - sigil.map_or(0, str::len)
                    } else {
                        code.len()
                    };
                    cur_str = Some((lines.len(), col + 1, String::new()));
                    code.push('"');
                    state = if raw {
                        State::RawStr(0)
                    } else {
                        State::Str(false)
                    };
                    ident_start = None;
                    i += 1;
                    continue;
                }
                if b == b'#' {
                    // `r#"`, `br##"` … : hashes between the sigil and
                    // the quote.
                    if let Some(sigil @ ("r" | "br")) = prev_ident(bytes, ident_start, i) {
                        let mut hashes = 0;
                        while i + hashes < bytes.len() && bytes[i + hashes] == b'#' {
                            hashes += 1;
                        }
                        if bytes.get(i + hashes) == Some(&b'"') {
                            cur_str =
                                Some((lines.len(), code.len() - sigil.len() + 1, String::new()));
                            // Blank the hashes but keep the quote, so
                            // the code channel always renders a string
                            // literal as `"…"` for downstream tokenizing.
                            for _ in 0..hashes {
                                code.push(' ');
                            }
                            code.push('"');
                            #[allow(clippy::cast_possible_truncation)]
                            {
                                state = State::RawStr(hashes as u32);
                            }
                            ident_start = None;
                            i += hashes + 1;
                            continue;
                        }
                    }
                    code.push('#');
                    ident_start = None;
                    i += 1;
                    continue;
                }
                if b == b'\'' {
                    // Lifetime (`'a`, `'static`) vs char literal
                    // (`'a'`, `'\n'`): a lifetime is `'` + ident with
                    // no closing quote right after one character.
                    let next = bytes.get(i + 1).copied();
                    let after = bytes.get(i + 2).copied();
                    let lifetime = matches!(next, Some(c) if c.is_ascii_alphabetic() || c == b'_')
                        && after != Some(b'\'');
                    code.push('\'');
                    if !lifetime {
                        state = State::Char(false);
                    }
                    ident_start = None;
                    i += 1;
                    continue;
                }
                if is_ident_byte {
                    if ident_start.is_none() {
                        ident_start = Some(i);
                    }
                } else {
                    ident_start = None;
                }
                code.push(b as char);
                i += 1;
            }
            State::LineComment => {
                comment.push(b as char);
                i += 1;
            }
            State::BlockComment(depth) => {
                let rest = &bytes[i..];
                if rest.starts_with(b"*/") {
                    state = if depth == 1 {
                        code.push_str("  ");
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    if depth > 1 {
                        comment.push_str("*/");
                    }
                    i += 2;
                } else if rest.starts_with(b"/*") {
                    state = State::BlockComment(depth + 1);
                    comment.push_str("/*");
                    i += 2;
                } else {
                    comment.push(b as char);
                    i += 1;
                }
            }
            State::Str(escaped) => {
                if escaped {
                    state = State::Str(false);
                } else if b == b'\\' {
                    state = State::Str(true);
                } else if b == b'"' {
                    if let Some((line, col, value)) = cur_str.take() {
                        strings.push(StrLit {
                            line: line + 1,
                            column: col,
                            value,
                        });
                    }
                    code.push('"');
                    state = State::Code;
                    i += 1;
                    continue;
                }
                if let Some((_, _, value)) = cur_str.as_mut() {
                    value.push(b as char);
                }
                code.push(' ');
                i += 1;
            }
            State::RawStr(hashes) => {
                if b == b'"' {
                    let h = hashes as usize;
                    if bytes[i + 1..].len() >= h
                        && bytes[i + 1..i + 1 + h].iter().all(|&c| c == b'#')
                    {
                        if let Some((line, col, value)) = cur_str.take() {
                            strings.push(StrLit {
                                line: line + 1,
                                column: col,
                                value,
                            });
                        }
                        code.push('"');
                        for _ in 0..h {
                            code.push(' ');
                        }
                        state = State::Code;
                        i += 1 + h;
                        continue;
                    }
                }
                if let Some((_, _, value)) = cur_str.as_mut() {
                    value.push(b as char);
                }
                code.push(' ');
                i += 1;
            }
            State::Char(escaped) => {
                if escaped {
                    state = State::Char(false);
                } else if b == b'\\' {
                    state = State::Char(true);
                } else if b == b'\'' {
                    code.push('\'');
                    state = State::Code;
                    i += 1;
                    continue;
                }
                code.push(' ');
                i += 1;
            }
        }
    }
    flush_line!();
    // An unterminated literal at EOF is simply dropped: the code
    // channel already degraded to blanks, which is the forgiving
    // direction (see module docs).
    (lines, strings)
}

/// The identifier ending exactly at byte `end` (exclusive), if any.
fn prev_ident(bytes: &[u8], ident_start: Option<usize>, end: usize) -> Option<&str> {
    let start = ident_start?;
    std::str::from_utf8(&bytes[start..end]).ok()
}

/// Marks lines inside `#[cfg(test)]` / `#[test]` items by tracking
/// brace depth in the blanked code channel.
fn mark_test_regions(lines: &mut [Line]) {
    let mut depth: i64 = 0;
    // Depth at which a test attribute is waiting for its item's `{`.
    let mut pending: Option<i64> = None;
    // Depths of currently-open test items (nested test mods are fine).
    let mut open: Vec<i64> = Vec::new();
    for line in lines.iter_mut() {
        let has_test_attr = line.code.contains("#[cfg(test)")
            || line.code.contains("#[test]")
            || line.code.contains("#[cfg(all(test");
        if has_test_attr {
            pending = Some(depth);
            line.in_test = true;
        }
        if !open.is_empty() || pending.is_some() {
            line.in_test = true;
        }
        for ch in line.code.chars() {
            match ch {
                '{' => {
                    depth += 1;
                    if let Some(d) = pending {
                        if depth == d + 1 {
                            open.push(d);
                            pending = None;
                            line.in_test = true;
                        }
                    }
                }
                '}' => {
                    depth -= 1;
                    if open.last() == Some(&depth) {
                        open.pop();
                    }
                }
                // `#[cfg(test)] use …;` — attribute consumed by a
                // braceless item.
                ';' if pending == Some(depth) => pending = None,
                _ => {}
            }
        }
        if !open.is_empty() {
            line.in_test = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked() {
        let f = scan("let x = \"panic!()\"; // unwrap() here\nlet y = 'a';\n");
        assert!(!f.lines[0].code.contains("panic"));
        assert!(f.lines[0].comment.contains("unwrap()"));
        assert!(f.lines[0].code.contains("let x ="));
        assert!(f.lines[1].code.contains("let y ="));
    }

    #[test]
    fn raw_strings_and_lifetimes() {
        let f = scan("let s = r#\"unwrap() \"# ;\nfn f<'a>(x: &'a str) {}\nlet c = '\\'';\n");
        assert!(!f.lines[0].code.contains("unwrap"));
        assert!(f.lines[0].code.trim_end().ends_with(';'));
        assert!(f.lines[1].code.contains("&'a str"));
        assert!(f.lines[2].code.starts_with("let c ="));
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let f = scan("a /* one /* two */ still */ b\n/* open\n unwrap() \n*/ c\n");
        assert_eq!(f.lines[0].code.replace(' ', ""), "ab");
        assert!(f.lines[2].code.trim().is_empty());
        assert!(f.lines[2].comment.contains("unwrap"));
        assert_eq!(f.lines[3].code.trim(), "c");
    }

    #[test]
    fn test_regions_are_marked() {
        let src = "\
fn lib() { x.unwrap(); }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { y.unwrap(); }
}
fn lib2() {}
";
        let f = scan(src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[1].in_test, "attribute line");
        assert!(f.lines[2].in_test);
        assert!(f.lines[4].in_test);
        assert!(f.lines[5].in_test, "closing brace");
        assert!(!f.lines[6].in_test);
    }

    #[test]
    fn cfg_test_on_braceless_item_does_not_leak() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn lib() {}\n";
        let f = scan(src);
        assert!(!f.lines[2].in_test);
    }

    #[test]
    fn string_literals_are_captured_with_provenance() {
        let f = scan("let a = \"solver.factor\";\nlet b = r#\"raw \"quoted\" text\"#;\n");
        assert_eq!(f.strings.len(), 2);
        assert_eq!(f.strings[0].value, "solver.factor");
        assert_eq!(f.strings[0].line, 1);
        assert_eq!(f.strings[0].column, 9, "column of the opening quote");
        assert_eq!(f.strings[1].value, "raw \"quoted\" text");
        assert_eq!(f.strings[1].line, 2);
        // The code channel renders every literal as `"…"` even for
        // `r#"…"#`, so a tokenizer can pair the quotes.
        assert_eq!(f.lines[1].code.matches('"').count(), 2);
    }

    #[test]
    fn multiline_and_escaped_strings_capture_raw_text() {
        let f = scan("let s = \"a\\\"b\";\nlet m = \"one\ntwo\";\n");
        assert_eq!(f.strings[0].value, "a\\\"b", "escapes kept verbatim");
        assert_eq!(f.strings[1].value, "one\ntwo");
        assert_eq!(f.strings[1].line, 2);
    }

    #[test]
    fn columns_are_preserved() {
        let src = "let s = \"xx\"; foo.unwrap();\n";
        let f = scan(src);
        let col = f.lines[0].code.find("unwrap").expect("kept");
        assert_eq!(&src[col..col + 6], "unwrap");
    }
}
