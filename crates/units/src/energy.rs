//! Energies, including the electron-volt activation energies of Black's law.

use crate::consts::ELEMENTARY_CHARGE_C;

crate::quantity!(
    /// Energy. Canonical unit: joule (J).
    Energy,
    "J",
    "energy"
);

impl Energy {
    /// Creates an energy from electron-volts.
    #[must_use]
    pub fn from_electron_volts(ev: f64) -> Self {
        Self::new(ev * ELEMENTARY_CHARGE_C)
    }

    /// The magnitude in electron-volts.
    #[must_use]
    pub fn to_electron_volts(self) -> f64 {
        self.value() / ELEMENTARY_CHARGE_C
    }
}

/// An activation energy expressed in electron-volts. Canonical unit: eV.
///
/// Black's equation quotes `Q ≈ 0.7 eV` for grain-boundary diffusion in
/// AlCu. This type keeps the eV magnitude explicit and pairs with
/// [`crate::consts::BOLTZMANN_EV_PER_K`] in Arrhenius factors.
///
/// ```
/// use hotwire_units::{consts::BOLTZMANN_EV_PER_K, ElectronVolts, Kelvin};
///
/// let q = ElectronVolts::new(0.7);
/// let t = Kelvin::new(373.15);
/// let exponent = q.value() / (BOLTZMANN_EV_PER_K * t.value());
/// assert!((exponent - 21.77).abs() < 0.01);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, PartialOrd, Default, serde::Serialize, serde::Deserialize,
)]
#[serde(transparent)]
pub struct ElectronVolts(f64);

impl ElectronVolts {
    /// Creates an energy in electron-volts.
    #[must_use]
    pub const fn new(ev: f64) -> Self {
        Self(ev)
    }

    /// Magnitude in electron-volts.
    #[must_use]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Converts to joules.
    #[must_use]
    pub fn to_joules(self) -> Energy {
        Energy::from_electron_volts(self.0)
    }

    /// The Arrhenius exponent `Q/(k_B·T)` at the given absolute temperature.
    #[must_use]
    pub fn arrhenius_exponent(self, temperature: crate::Kelvin) -> f64 {
        self.0 / (crate::consts::BOLTZMANN_EV_PER_K * temperature.value())
    }
}

impl std::fmt::Display for ElectronVolts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if let Some(prec) = f.precision() {
            write!(f, "{:.*} eV", prec, self.0)
        } else {
            write!(f, "{} eV", self.0)
        }
    }
}

impl From<ElectronVolts> for Energy {
    fn from(ev: ElectronVolts) -> Self {
        ev.to_joules()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Kelvin;

    #[test]
    fn ev_joule_round_trip() {
        let e = Energy::from_electron_volts(0.7);
        assert!((e.to_electron_volts() - 0.7).abs() < 1e-12);
        assert!((e.value() - 1.1215e-19).abs() < 1e-22);
    }

    #[test]
    fn arrhenius_exponent_matches_manual() {
        let q = ElectronVolts::new(0.7);
        let t = Kelvin::new(373.15);
        let manual = 0.7 / (crate::consts::BOLTZMANN_EV_PER_K * 373.15);
        assert!((q.arrhenius_exponent(t) - manual).abs() < 1e-12);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{:.1}", ElectronVolts::new(0.7)), "0.7 eV");
    }
}
