//! Lengths, areas and volumes.

crate::quantity!(
    /// A physical length. Canonical unit: meter (m).
    ///
    /// Interconnect geometry is most naturally quoted in micrometers; use
    /// [`Length::from_micrometers`] / [`Length::to_micrometers`] or the
    /// dedicated [`Micrometers`] edge type.
    ///
    /// ```
    /// use hotwire_units::Length;
    ///
    /// let w = Length::from_micrometers(0.35);
    /// assert!((w.value() - 3.5e-7).abs() < 1e-20);
    /// assert!((w.to_micrometers() - 0.35).abs() < 1e-12);
    /// ```
    Length,
    "m",
    "length"
);

impl Length {
    /// Creates a length from micrometers.
    #[must_use]
    pub fn from_micrometers(um: f64) -> Self {
        Self::new(um * 1e-6)
    }

    /// Creates a length from nanometers.
    #[must_use]
    pub fn from_nanometers(nm: f64) -> Self {
        Self::new(nm * 1e-9)
    }

    /// Creates a length from millimeters.
    #[must_use]
    pub fn from_millimeters(mm: f64) -> Self {
        Self::new(mm * 1e-3)
    }

    /// The magnitude in micrometers.
    #[must_use]
    pub fn to_micrometers(self) -> f64 {
        self.value() * 1e6
    }

    /// The magnitude in nanometers.
    #[must_use]
    pub fn to_nanometers(self) -> f64 {
        self.value() * 1e9
    }
}

impl std::ops::Mul for Length {
    /// Length × length = area.
    type Output = Area;
    fn mul(self, rhs: Length) -> Area {
        Area::new(self.value() * rhs.value())
    }
}

impl std::ops::Mul<Area> for Length {
    /// Length × area = volume.
    type Output = Volume;
    fn mul(self, rhs: Area) -> Volume {
        Volume::new(self.value() * rhs.value())
    }
}

crate::quantity!(
    /// An area. Canonical unit: square meter (m²).
    ///
    /// Current-density cross sections in the paper are quoted in cm²; use
    /// [`Area::from_cm2`] / [`Area::to_cm2`] at those edges.
    Area,
    "m²",
    "area"
);

impl Area {
    /// Creates an area from square centimeters.
    #[must_use]
    pub fn from_cm2(cm2: f64) -> Self {
        Self::new(cm2 * 1e-4)
    }

    /// Creates an area from square micrometers.
    #[must_use]
    pub fn from_um2(um2: f64) -> Self {
        Self::new(um2 * 1e-12)
    }

    /// The magnitude in square centimeters.
    #[must_use]
    pub fn to_cm2(self) -> f64 {
        self.value() * 1e4
    }

    /// The magnitude in square micrometers.
    #[must_use]
    pub fn to_um2(self) -> f64 {
        self.value() * 1e12
    }
}

impl std::ops::Mul<Length> for Area {
    /// Area × length = volume.
    type Output = Volume;
    fn mul(self, rhs: Length) -> Volume {
        Volume::new(self.value() * rhs.value())
    }
}

impl std::ops::Div<Length> for Area {
    /// Area ÷ length = length.
    type Output = Length;
    fn div(self, rhs: Length) -> Length {
        Length::new(self.value() / rhs.value())
    }
}

crate::quantity!(
    /// A volume. Canonical unit: cubic meter (m³).
    Volume,
    "m³",
    "volume"
);

impl std::ops::Div<Area> for Volume {
    /// Volume ÷ area = length.
    type Output = Length;
    fn div(self, rhs: Area) -> Length {
        Length::new(self.value() / rhs.value())
    }
}

impl std::ops::Div<Length> for Volume {
    /// Volume ÷ length = area.
    type Output = Area;
    fn div(self, rhs: Length) -> Area {
        Area::new(self.value() / rhs.value())
    }
}

/// A length expressed in micrometers — the working unit of interconnect
/// geometry. Canonical unit: µm.
///
/// This is an edge/display convenience; convert to [`Length`] for physics.
///
/// ```
/// use hotwire_units::{Length, Micrometers};
///
/// let w = Micrometers::new(3.0);
/// let m: Length = w.to_meters();
/// assert!((m.value() - 3.0e-6).abs() < 1e-18);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, PartialOrd, Default, serde::Serialize, serde::Deserialize,
)]
#[serde(transparent)]
pub struct Micrometers(f64);

impl Micrometers {
    /// Creates a value in micrometers.
    #[must_use]
    pub const fn new(um: f64) -> Self {
        Self(um)
    }

    /// Magnitude in micrometers.
    #[must_use]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Converts to the canonical meter representation.
    #[must_use]
    pub fn to_meters(self) -> Length {
        Length::from_micrometers(self.0)
    }
}

impl std::fmt::Display for Micrometers {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if let Some(prec) = f.precision() {
            write!(f, "{:.*} µm", prec, self.0)
        } else {
            write!(f, "{} µm", self.0)
        }
    }
}

impl From<Micrometers> for Length {
    fn from(um: Micrometers) -> Self {
        um.to_meters()
    }
}

impl From<Length> for Micrometers {
    fn from(l: Length) -> Self {
        Micrometers::new(l.to_micrometers())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micrometer_round_trip() {
        let l = Length::from_micrometers(0.25);
        assert!((l.to_micrometers() - 0.25).abs() < 1e-12);
        let um: Micrometers = l.into();
        assert!((um.value() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn nanometers() {
        let l = Length::from_nanometers(650.0);
        assert!((l.to_micrometers() - 0.65).abs() < 1e-12);
        assert!((l.to_nanometers() - 650.0).abs() < 1e-9);
    }

    #[test]
    fn area_products() {
        let w = Length::from_micrometers(3.0);
        let t = Length::from_micrometers(0.5);
        let a = w * t;
        assert!((a.to_um2() - 1.5).abs() < 1e-12);
        // 1.5 µm² = 1.5e-8 cm²
        assert!((a.to_cm2() - 1.5e-8).abs() < 1e-20);
    }

    #[test]
    fn volume_and_back() {
        let a = Area::from_um2(2.0);
        let l = Length::from_micrometers(10.0);
        let v = a * l;
        let l2 = v / a;
        assert!((l2.to_micrometers() - 10.0).abs() < 1e-9);
        let a2 = v / l;
        assert!((a2.to_um2() - 2.0).abs() < 1e-9);
        let v2 = l * a;
        assert!((v2.value() - v.value()).abs() < 1e-30);
    }

    #[test]
    fn length_sum() {
        let total: Length = (0..4).map(|_| Length::from_micrometers(0.5)).sum();
        assert!((total.to_micrometers() - 2.0).abs() < 1e-12);
    }
}
