//! Physical constants used throughout the workspace.

/// Boltzmann constant in J/K.
pub const BOLTZMANN_J_PER_K: f64 = 1.380_649e-23;

/// Boltzmann constant in eV/K — the form used in Black's equation
/// `TTF = A · j⁻ⁿ · exp(Q / (k_B · T))` when `Q` is quoted in eV.
pub const BOLTZMANN_EV_PER_K: f64 = 8.617_333_262e-5;

/// Elementary charge in coulombs.
pub const ELEMENTARY_CHARGE_C: f64 = 1.602_176_634e-19;

/// 0 °C expressed in Kelvin.
pub const ZERO_CELSIUS_IN_KELVIN: f64 = 273.15;

/// Vacuum permittivity ε₀ in F/m, used by the capacitance extractor.
pub const VACUUM_PERMITTIVITY_F_PER_M: f64 = 8.854_187_812_8e-12;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boltzmann_forms_are_consistent() {
        // k_B[eV/K] = k_B[J/K] / q[C]
        let derived = BOLTZMANN_J_PER_K / ELEMENTARY_CHARGE_C;
        assert!((derived - BOLTZMANN_EV_PER_K).abs() / BOLTZMANN_EV_PER_K < 1e-9);
    }
}
