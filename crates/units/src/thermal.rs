//! Thermal quantities: conductivity, impedance, heat capacity, power.

use crate::length::Volume;
use crate::temperature::TemperatureDelta;

crate::quantity!(
    /// Thermal conductivity k. Canonical unit: W/(m·K).
    ///
    /// Table 1 of the paper: PETEOS oxide 1.15, HSQ 0.6, polyimide
    /// 0.25 W/(m·K).
    ThermalConductivity,
    "W/(m·K)",
    "thermal conductivity"
);

crate::quantity!(
    /// Thermal impedance θ of a structure to its heat sink.
    /// Canonical unit: K/W (equivalently °C/W).
    ///
    /// Eq. (8) of the paper: `ΔT_self-heating = I²_rms · R · θ_int`.
    ThermalImpedance,
    "K/W",
    "thermal impedance"
);

impl ThermalImpedance {
    /// Temperature rise produced by the given dissipated power:
    /// `ΔT = P · θ`.
    #[must_use]
    pub fn temperature_rise(self, power: Power) -> TemperatureDelta {
        TemperatureDelta::new(self.value() * power.value())
    }
}

crate::quantity!(
    /// Power. Canonical unit: watt (W).
    Power,
    "W",
    "power"
);

impl Power {
    /// Creates a power from milliwatts.
    #[must_use]
    pub fn from_milliwatts(mw: f64) -> Self {
        Self::new(mw * 1e-3)
    }

    /// The magnitude in milliwatts.
    #[must_use]
    pub fn to_milliwatts(self) -> f64 {
        self.value() * 1e3
    }
}

impl std::ops::Mul<ThermalImpedance> for Power {
    /// P × θ = ΔT.
    type Output = TemperatureDelta;
    fn mul(self, rhs: ThermalImpedance) -> TemperatureDelta {
        rhs.temperature_rise(self)
    }
}

crate::quantity!(
    /// Volumetric power (heat-generation) density. Canonical unit: W/m³.
    ///
    /// Joule heating in a wire carrying current density j is `q = j²·ρ`.
    PowerDensity,
    "W/m³",
    "power density"
);

impl std::ops::Mul<Volume> for PowerDensity {
    /// q × V = P.
    type Output = Power;
    fn mul(self, rhs: Volume) -> Power {
        Power::new(self.value() * rhs.value())
    }
}

crate::quantity!(
    /// Specific heat capacity c_p. Canonical unit: J/(kg·K).
    SpecificHeat,
    "J/(kg·K)",
    "specific heat"
);

crate::quantity!(
    /// Mass density. Canonical unit: kg/m³.
    Density,
    "kg/m³",
    "density"
);

crate::quantity!(
    /// Volumetric heat capacity C_v = ρ_mass·c_p. Canonical unit: J/(m³·K).
    ///
    /// Governs transient (ESD-time-scale) heating: in the adiabatic limit
    /// `C_v · dT/dt = j²·ρ(T)`.
    VolumetricHeatCapacity,
    "J/(m³·K)",
    "volumetric heat capacity"
);

impl std::ops::Mul<SpecificHeat> for Density {
    /// ρ_mass × c_p = C_v.
    type Output = VolumetricHeatCapacity;
    fn mul(self, rhs: SpecificHeat) -> VolumetricHeatCapacity {
        VolumetricHeatCapacity::new(self.value() * rhs.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::length::{Area, Length};

    #[test]
    fn impedance_rise() {
        let theta = ThermalImpedance::new(4.0e3); // 4000 K/W
        let p = Power::from_milliwatts(10.0);
        let dt = theta.temperature_rise(p);
        assert!((dt.value() - 40.0).abs() < 1e-9);
        let dt2 = p * theta;
        assert!((dt2.value() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn volumetric_heat_capacity_of_copper() {
        // Cu: 8960 kg/m³ × 385 J/(kg·K) ≈ 3.45e6 J/(m³·K)
        let cv = Density::new(8960.0) * SpecificHeat::new(385.0);
        assert!((cv.value() - 3.4496e6).abs() < 1.0);
    }

    #[test]
    fn power_density_times_volume() {
        let q = PowerDensity::new(1.0e15); // typical ESD-level Joule heating
        let v = Area::from_um2(1.0) * Length::from_micrometers(100.0); // 1e-16 m³
        let p = q * v;
        assert!((p.to_milliwatts() - 100.0).abs() < 1e-6);
    }
}
