//! Mechanical stress / pressure.
//!
//! The Korhonen electromigration model tracks hydrostatic stress in the
//! metal: tensile stress (positive here) nucleates voids once it crosses
//! a critical threshold, compressive stress (negative) extrudes
//! hillocks. Literature values are quoted in MPa, hence the dedicated
//! constructors.

crate::quantity!(
    /// Mechanical (hydrostatic) stress. Canonical unit: pascal (Pa).
    ///
    /// Sign convention throughout the workspace: **positive = tensile**
    /// (void-nucleating), negative = compressive.
    ///
    /// ```
    /// use hotwire_units::Pascals;
    ///
    /// let sigma = Pascals::from_megapascals(500.0);
    /// assert!((sigma.value() - 5.0e8).abs() < 1e-3);
    /// assert!((sigma.to_megapascals() - 500.0).abs() < 1e-12);
    /// ```
    Pascals,
    "Pa",
    "stress"
);

impl Pascals {
    /// Creates a stress from megapascals.
    #[must_use]
    pub fn from_megapascals(mpa: f64) -> Self {
        Self::new(mpa * 1.0e6)
    }

    /// The magnitude in megapascals.
    #[must_use]
    pub fn to_megapascals(self) -> f64 {
        self.value() * 1.0e-6
    }

    /// Creates a stress from gigapascals (bulk moduli are quoted in GPa).
    #[must_use]
    pub fn from_gigapascals(gpa: f64) -> Self {
        Self::new(gpa * 1.0e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let s = Pascals::from_megapascals(600.0);
        assert!((s.to_megapascals() - 600.0).abs() < 1e-12);
        let b = Pascals::from_gigapascals(28.0);
        assert!((b.value() - 2.8e10).abs() < 1e-3);
    }

    #[test]
    fn tensile_compressive_ordering() {
        let tensile = Pascals::from_megapascals(400.0);
        let compressive = -tensile;
        assert!(compressive < Pascals::ZERO);
        assert!(tensile.max(compressive) == tensile);
    }
}
