//! Absolute temperatures and temperature differences.
//!
//! Kelvin is the canonical internal representation: every Arrhenius factor,
//! conduction equation and material model in the workspace takes [`Kelvin`].
//! [`Celsius`] exists for API edges (the paper quotes 100 °C as the chip
//! reference temperature), and [`TemperatureDelta`] keeps temperature *rises*
//! (ΔT of self-heating) from being confused with absolute temperatures.

use crate::consts::ZERO_CELSIUS_IN_KELVIN;
use crate::QuantityError;

/// Absolute thermodynamic temperature. Canonical unit: kelvin (K).
///
/// ```
/// use hotwire_units::{Celsius, Kelvin};
///
/// let t = Kelvin::new(373.15);
/// assert!((t.to_celsius().value() - 100.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, serde::Serialize, serde::Deserialize)]
#[serde(transparent)]
pub struct Kelvin(f64);

impl Kelvin {
    /// Absolute zero.
    pub const ZERO: Self = Self(0.0);

    /// Creates a temperature from a magnitude in kelvin.
    #[must_use]
    pub const fn new(kelvin: f64) -> Self {
        Self(kelvin)
    }

    /// Creates a temperature, rejecting negative (sub-absolute-zero) or
    /// non-finite values.
    ///
    /// # Errors
    ///
    /// Returns [`QuantityError`] when `kelvin` is negative, NaN or infinite.
    pub fn try_new(kelvin: f64) -> Result<Self, QuantityError> {
        crate::check_non_negative("temperature", kelvin).map(Self)
    }

    /// Magnitude in kelvin.
    #[must_use]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Converts to Celsius.
    #[must_use]
    pub fn to_celsius(self) -> Celsius {
        Celsius::new(self.0 - ZERO_CELSIUS_IN_KELVIN)
    }

    /// The smaller of two temperatures.
    #[must_use]
    pub fn min(self, other: Self) -> Self {
        Self(self.0.min(other.0))
    }

    /// The larger of two temperatures.
    #[must_use]
    pub fn max(self, other: Self) -> Self {
        Self(self.0.max(other.0))
    }

    /// `true` when the magnitude is finite.
    #[must_use]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }
}

impl std::fmt::Display for Kelvin {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if let Some(prec) = f.precision() {
            write!(f, "{:.*} K", prec, self.0)
        } else {
            write!(f, "{} K", self.0)
        }
    }
}

/// Temperature expressed on the Celsius scale. Canonical unit: °C.
///
/// A convenience edge type: convert to [`Kelvin`] before doing physics.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, serde::Serialize, serde::Deserialize)]
#[serde(transparent)]
pub struct Celsius(f64);

impl Celsius {
    /// Creates a temperature from a magnitude in degrees Celsius.
    #[must_use]
    pub const fn new(celsius: f64) -> Self {
        Self(celsius)
    }

    /// Magnitude in degrees Celsius.
    #[must_use]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Converts to the canonical Kelvin representation.
    #[must_use]
    pub fn to_kelvin(self) -> Kelvin {
        Kelvin::new(self.0 + ZERO_CELSIUS_IN_KELVIN)
    }
}

impl std::fmt::Display for Celsius {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if let Some(prec) = f.precision() {
            write!(f, "{:.*} °C", prec, self.0)
        } else {
            write!(f, "{} °C", self.0)
        }
    }
}

impl From<Celsius> for Kelvin {
    fn from(c: Celsius) -> Self {
        c.to_kelvin()
    }
}

impl From<Kelvin> for Celsius {
    fn from(k: Kelvin) -> Self {
        k.to_celsius()
    }
}

crate::quantity!(
    /// A temperature difference ΔT. Canonical unit: kelvin (K).
    ///
    /// Identical in magnitude on the Kelvin and Celsius scales, so no scale
    /// conversion exists — only arithmetic against absolute temperatures.
    ///
    /// ```
    /// use hotwire_units::{Kelvin, TemperatureDelta};
    ///
    /// let t_ref = Kelvin::new(373.15);
    /// let rise = TemperatureDelta::new(25.0);
    /// assert_eq!((t_ref + rise).value(), 398.15);
    /// ```
    TemperatureDelta,
    "K",
    "temperature delta"
);

impl std::ops::Add<TemperatureDelta> for Kelvin {
    type Output = Kelvin;
    fn add(self, rhs: TemperatureDelta) -> Kelvin {
        Kelvin::new(self.0 + rhs.value())
    }
}

impl std::ops::Sub<TemperatureDelta> for Kelvin {
    type Output = Kelvin;
    fn sub(self, rhs: TemperatureDelta) -> Kelvin {
        Kelvin::new(self.0 - rhs.value())
    }
}

impl std::ops::Sub for Kelvin {
    /// The difference of two absolute temperatures is a [`TemperatureDelta`].
    type Output = TemperatureDelta;
    fn sub(self, rhs: Kelvin) -> TemperatureDelta {
        TemperatureDelta::new(self.0 - rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn celsius_kelvin_round_trip() {
        let c = Celsius::new(100.0);
        let k = c.to_kelvin();
        assert!((k.value() - 373.15).abs() < 1e-12);
        assert!((k.to_celsius().value() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn from_impls() {
        let k: Kelvin = Celsius::new(0.0).into();
        assert!((k.value() - 273.15).abs() < 1e-12);
        let c: Celsius = Kelvin::new(273.15).into();
        assert!(c.value().abs() < 1e-12);
    }

    #[test]
    fn delta_arithmetic() {
        let a = Kelvin::new(400.0);
        let b = Kelvin::new(373.15);
        let d = a - b;
        assert!((d.value() - 26.85).abs() < 1e-12);
        assert_eq!((b + d).value(), 400.0);
        assert!((a - d).value() - 373.15 < 1e-12);
    }

    #[test]
    fn try_new_rejects_sub_absolute_zero() {
        assert!(Kelvin::try_new(-0.1).is_err());
        assert!(Kelvin::try_new(0.0).is_ok());
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{:.2}", Kelvin::new(373.154)), "373.15 K");
        assert_eq!(format!("{:.1}", Celsius::new(99.96)), "100.0 °C");
        assert_eq!(format!("{:.0}", TemperatureDelta::new(25.4)), "25 K");
    }

    #[test]
    fn delta_ratio_is_dimensionless() {
        let r = TemperatureDelta::new(50.0) / TemperatureDelta::new(25.0);
        assert_eq!(r, 2.0);
    }
}
