//! Electrical quantities: current, current density, resistivity, resistance,
//! capacitance and voltage.

use crate::length::{Area, Length};

crate::quantity!(
    /// Electric current. Canonical unit: ampere (A).
    Current,
    "A",
    "current"
);

impl Current {
    /// Creates a current from milliamperes.
    #[must_use]
    pub fn from_milliamps(ma: f64) -> Self {
        Self::new(ma * 1e-3)
    }

    /// The magnitude in milliamperes.
    #[must_use]
    pub fn to_milliamps(self) -> f64 {
        self.value() * 1e3
    }
}

impl std::ops::Div<Area> for Current {
    /// Current ÷ cross-section area = current density.
    type Output = CurrentDensity;
    fn div(self, rhs: Area) -> CurrentDensity {
        CurrentDensity::new(self.value() / rhs.value())
    }
}

crate::quantity!(
    /// Current density. Canonical unit: A/m².
    ///
    /// The paper quotes current densities in A/cm² and MA/cm²; dedicated
    /// constructors and accessors cover both.
    ///
    /// ```
    /// use hotwire_units::CurrentDensity;
    ///
    /// let j0 = CurrentDensity::from_mega_amps_per_cm2(0.6);
    /// assert!((j0.to_amps_per_cm2() - 6.0e5).abs() < 1e-6);
    /// assert!((j0.value() - 6.0e9).abs() < 1e-2); // A/m²
    /// ```
    CurrentDensity,
    "A/m²",
    "current density"
);

impl CurrentDensity {
    /// Creates a current density from A/cm².
    #[must_use]
    pub fn from_amps_per_cm2(j: f64) -> Self {
        Self::new(j * 1e4)
    }

    /// Creates a current density from MA/cm² (= 10⁶ A/cm²).
    #[must_use]
    pub fn from_mega_amps_per_cm2(j: f64) -> Self {
        Self::new(j * 1e10)
    }

    /// The magnitude in A/cm².
    #[must_use]
    pub fn to_amps_per_cm2(self) -> f64 {
        self.value() * 1e-4
    }

    /// The magnitude in MA/cm².
    #[must_use]
    pub fn to_mega_amps_per_cm2(self) -> f64 {
        self.value() * 1e-10
    }
}

impl std::ops::Mul<Area> for CurrentDensity {
    /// Current density × cross-section area = current.
    type Output = Current;
    fn mul(self, rhs: Area) -> Current {
        Current::new(self.value() * rhs.value())
    }
}

crate::quantity!(
    /// Electrical resistivity ρ. Canonical unit: Ω·m.
    ///
    /// Metal resistivities are quoted in µΩ·cm in the paper
    /// (Cu: 1.67 µΩ·cm at 100 °C).
    ///
    /// ```
    /// use hotwire_units::Resistivity;
    ///
    /// let rho = Resistivity::from_micro_ohm_cm(1.67);
    /// assert!((rho.value() - 1.67e-8).abs() < 1e-20);
    /// ```
    Resistivity,
    "Ω·m",
    "resistivity"
);

impl Resistivity {
    /// Creates a resistivity from µΩ·cm.
    #[must_use]
    pub fn from_micro_ohm_cm(rho: f64) -> Self {
        Self::new(rho * 1e-8)
    }

    /// Creates a resistivity from Ω·cm.
    #[must_use]
    pub fn from_ohm_cm(rho: f64) -> Self {
        Self::new(rho * 1e-2)
    }

    /// The magnitude in µΩ·cm.
    #[must_use]
    pub fn to_micro_ohm_cm(self) -> f64 {
        self.value() * 1e8
    }

    /// Resistance of a uniform bar: `R = ρ·L/A`.
    ///
    /// ```
    /// use hotwire_units::{Area, Length, Resistivity};
    ///
    /// let rho = Resistivity::from_micro_ohm_cm(1.67);
    /// let r = rho.bar_resistance(
    ///     Length::from_micrometers(1000.0),
    ///     Area::from_um2(1.5),
    /// );
    /// assert!((r.value() - 11.13).abs() / 11.13 < 1e-3);
    /// ```
    #[must_use]
    pub fn bar_resistance(self, length: Length, cross_section: Area) -> Resistance {
        Resistance::new(self.value() * length.value() / cross_section.value())
    }

    /// Sheet resistance of a film of this resistivity and the given
    /// thickness: `ρ_s = ρ / t`.
    #[must_use]
    pub fn sheet_resistance(self, thickness: Length) -> SheetResistance {
        SheetResistance::new(self.value() / thickness.value())
    }
}

crate::quantity!(
    /// Sheet resistance ρ_s. Canonical unit: Ω/□ (ohms per square).
    SheetResistance,
    "Ω/□",
    "sheet resistance"
);

impl SheetResistance {
    /// Resistance per unit length of a wire of the given width:
    /// `r = ρ_s / W`.
    #[must_use]
    pub fn per_length(self, width: Length) -> ResistancePerLength {
        ResistancePerLength::new(self.value() / width.value())
    }

    /// The film resistivity implied by this sheet resistance at the given
    /// thickness: `ρ = ρ_s · t`.
    #[must_use]
    pub fn resistivity(self, thickness: Length) -> Resistivity {
        Resistivity::new(self.value() * thickness.value())
    }
}

crate::quantity!(
    /// Lumped resistance. Canonical unit: ohm (Ω).
    Resistance,
    "Ω",
    "resistance"
);

impl Resistance {
    /// The corresponding conductance `G = 1/R`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the resistance is zero.
    #[must_use]
    pub fn to_conductance(self) -> Conductance {
        debug_assert!(self.value() != 0.0, "zero resistance has no conductance");
        Conductance::new(1.0 / self.value())
    }
}

crate::quantity!(
    /// Conductance. Canonical unit: siemens (S).
    Conductance,
    "S",
    "conductance"
);

crate::quantity!(
    /// Resistance per unit length of a wire. Canonical unit: Ω/m.
    ResistancePerLength,
    "Ω/m",
    "resistance per length"
);

impl std::ops::Mul<Length> for ResistancePerLength {
    /// r × L = total resistance.
    type Output = Resistance;
    fn mul(self, rhs: Length) -> Resistance {
        Resistance::new(self.value() * rhs.value())
    }
}

crate::quantity!(
    /// Capacitance. Canonical unit: farad (F).
    Capacitance,
    "F",
    "capacitance"
);

impl Capacitance {
    /// Creates a capacitance from femtofarads.
    #[must_use]
    pub fn from_femtofarads(ff: f64) -> Self {
        Self::new(ff * 1e-15)
    }

    /// Creates a capacitance from picofarads.
    #[must_use]
    pub fn from_picofarads(pf: f64) -> Self {
        Self::new(pf * 1e-12)
    }

    /// The magnitude in femtofarads.
    #[must_use]
    pub fn to_femtofarads(self) -> f64 {
        self.value() * 1e15
    }
}

crate::quantity!(
    /// Capacitance per unit length of a wire. Canonical unit: F/m.
    CapacitancePerLength,
    "F/m",
    "capacitance per length"
);

impl CapacitancePerLength {
    /// Creates from pF/cm (a common extraction output unit).
    #[must_use]
    pub fn from_pf_per_cm(c: f64) -> Self {
        Self::new(c * 1e-10)
    }

    /// The magnitude in pF/cm.
    #[must_use]
    pub fn to_pf_per_cm(self) -> f64 {
        self.value() * 1e10
    }

    /// The magnitude in aF/µm (attofarads per micrometer), another common
    /// extraction unit (1 aF/µm = 1e-12 F/m).
    #[must_use]
    pub fn to_af_per_um(self) -> f64 {
        self.value() * 1e12
    }
}

impl std::ops::Mul<Length> for CapacitancePerLength {
    /// c × L = total capacitance.
    type Output = Capacitance;
    fn mul(self, rhs: Length) -> Capacitance {
        Capacitance::new(self.value() * rhs.value())
    }
}

crate::quantity!(
    /// Electric potential. Canonical unit: volt (V).
    Voltage,
    "V",
    "voltage"
);

impl std::ops::Div<Resistance> for Voltage {
    /// Ohm's law: V ÷ R = I.
    type Output = Current;
    fn div(self, rhs: Resistance) -> Current {
        Current::new(self.value() / rhs.value())
    }
}

impl std::ops::Mul<Resistance> for Current {
    /// Ohm's law: I × R = V.
    type Output = Voltage;
    fn mul(self, rhs: Resistance) -> Voltage {
        Voltage::new(self.value() * rhs.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn current_density_unit_conversions() {
        let j = CurrentDensity::from_amps_per_cm2(6.0e5);
        assert!((j.to_mega_amps_per_cm2() - 0.6).abs() < 1e-12);
        let j2 = CurrentDensity::from_mega_amps_per_cm2(60.0);
        assert!((j2.to_amps_per_cm2() - 6.0e7).abs() < 1.0);
    }

    #[test]
    fn current_from_density_and_area() {
        // 1 MA/cm² through 1.5 µm² = 1e10 A/m² * 1.5e-12 m² = 15 mA
        let j = CurrentDensity::from_mega_amps_per_cm2(1.0);
        let a = Area::from_um2(1.5);
        let i = j * a;
        assert!((i.to_milliamps() - 15.0).abs() < 1e-9);
        let j_back = i / a;
        assert!((j_back.to_mega_amps_per_cm2() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn resistivity_bar_and_sheet() {
        let rho = Resistivity::from_micro_ohm_cm(2.2);
        // Sheet resistance of a 0.5 µm film: 2.2e-8 / 0.5e-6 = 0.044 Ω/□
        let rs = rho.sheet_resistance(Length::from_micrometers(0.5));
        assert!((rs.value() - 0.044).abs() < 1e-12);
        // Per-length of a 1 µm wide wire: 44 kΩ/m
        let rl = rs.per_length(Length::from_micrometers(1.0));
        assert!((rl.value() - 4.4e4).abs() < 1e-6);
        // And back to resistivity
        let rho2 = rs.resistivity(Length::from_micrometers(0.5));
        assert!((rho2.to_micro_ohm_cm() - 2.2).abs() < 1e-12);
    }

    #[test]
    fn ohms_law() {
        let v = Voltage::new(2.5);
        let r = Resistance::new(500.0);
        let i = v / r;
        assert!((i.to_milliamps() - 5.0).abs() < 1e-12);
        let v2 = i * r;
        assert!((v2.value() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn capacitance_per_length() {
        let c = CapacitancePerLength::from_pf_per_cm(2.0); // 2e-10 F/m
        assert!((c.value() - 2e-10).abs() < 1e-22);
        assert!((c.to_af_per_um() - 200.0).abs() < 1e-9);
        let total = c * Length::from_millimeters(1.0);
        assert!((total.to_femtofarads() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn conductance_inverse() {
        let g = Resistance::new(4.0).to_conductance();
        assert!((g.value() - 0.25).abs() < 1e-15);
    }
}
