//! Typed physical quantities for interconnect thermal / electromigration
//! analysis.
//!
//! Every quantity in the `hotwire` workspace is carried as a dedicated
//! newtype over `f64` with an unambiguous canonical SI unit, so that a
//! current density can never be confused with a resistivity, and a Celsius
//! temperature can never silently enter an Arrhenius exponential (which needs
//! Kelvin). Constructors and accessors are provided for the domain units the
//! DAC'99 paper uses (µm, MA/cm², µΩ·cm, eV, …).
//!
//! # Examples
//!
//! ```
//! use hotwire_units::{Celsius, CurrentDensity, Kelvin, Micrometers};
//!
//! let t_ref = Celsius::new(100.0).to_kelvin();
//! assert!((t_ref.value() - 373.15).abs() < 1e-12);
//!
//! let j0 = CurrentDensity::from_amps_per_cm2(6.0e5);
//! assert!((j0.to_mega_amps_per_cm2() - 0.6).abs() < 1e-12);
//!
//! let w = Micrometers::new(0.35);
//! assert!((w.to_meters().value() - 0.35e-6).abs() < 1e-18);
//! ```
//!
//! The canonical unit of each type is documented on the type itself; the
//! `value()` accessor always returns the canonical-unit magnitude.

#![forbid(unsafe_code)]
// HW001 is fully enforced here (zero baseline entries): keep it that way
// at compile time, not just in `cargo xtask analyze`.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]
// `!(x > 0.0)` is used deliberately throughout validation code: unlike
// `x <= 0.0` it also rejects NaN, which must never enter a solver.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod consts;
mod electrical;
mod energy;
mod length;
mod pressure;
mod temperature;
mod thermal;
mod time;

pub use electrical::{
    Capacitance, CapacitancePerLength, Conductance, Current, CurrentDensity, Resistance,
    ResistancePerLength, Resistivity, SheetResistance, Voltage,
};
pub use energy::{ElectronVolts, Energy};
pub use length::{Area, Length, Micrometers, Volume};
pub use pressure::Pascals;
pub use temperature::{Celsius, Kelvin, TemperatureDelta};
pub use thermal::{
    Density, Power, PowerDensity, SpecificHeat, ThermalConductivity, ThermalImpedance,
    VolumetricHeatCapacity,
};
pub use time::{Frequency, Seconds};

/// Error returned when constructing a quantity from an out-of-domain value.
///
/// Most quantities in this crate are physically non-negative (lengths,
/// conductivities, capacitances, absolute temperatures, …); the checked
/// `try_new` constructors return this error instead of admitting NaN or a
/// negative magnitude.
///
/// ```
/// use hotwire_units::{Kelvin, QuantityError};
///
/// let err = Kelvin::try_new(-3.0).unwrap_err();
/// assert!(matches!(err, QuantityError::Negative { .. }));
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum QuantityError {
    /// The supplied magnitude was negative for a quantity that must be ≥ 0.
    Negative {
        /// Human-readable name of the quantity ("temperature", "length", …).
        quantity: &'static str,
        /// The offending value, in the quantity's canonical unit.
        value: f64,
    },
    /// The supplied magnitude was NaN or infinite.
    NotFinite {
        /// Human-readable name of the quantity.
        quantity: &'static str,
    },
}

impl std::fmt::Display for QuantityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuantityError::Negative { quantity, value } => {
                write!(f, "{quantity} must be non-negative, got {value}")
            }
            QuantityError::NotFinite { quantity } => {
                write!(f, "{quantity} must be a finite number")
            }
        }
    }
}

impl std::error::Error for QuantityError {}

pub(crate) fn check_non_negative(quantity: &'static str, value: f64) -> Result<f64, QuantityError> {
    if !value.is_finite() {
        return Err(QuantityError::NotFinite { quantity });
    }
    if value < 0.0 {
        return Err(QuantityError::Negative { quantity, value });
    }
    Ok(value)
}

/// Declares a thin `f64` newtype with the standard quantity plumbing:
/// constructors, `value()`, ordering helpers, arithmetic with itself and
/// scalar scaling, `Display` with the canonical unit suffix, and serde.
macro_rules! quantity {
    (
        $(#[$meta:meta])*
        $name:ident, $unit:literal, $qname:literal
    ) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, serde::Serialize, serde::Deserialize)]
        #[serde(transparent)]
        pub struct $name(f64);

        impl $name {
            /// Zero of this quantity.
            pub const ZERO: Self = Self(0.0);

            /// Creates the quantity from its canonical-unit magnitude.
            #[must_use]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Creates the quantity, rejecting negative or non-finite values.
            ///
            /// # Errors
            ///
            /// Returns [`crate::QuantityError`] if `value` is negative, NaN
            /// or infinite.
            pub fn try_new(value: f64) -> Result<Self, $crate::QuantityError> {
                $crate::check_non_negative($qname, value).map(Self)
            }

            /// The magnitude in the canonical unit ($unit).
            #[must_use]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Absolute value.
            #[must_use]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// The smaller of `self` and `other`.
            #[must_use]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// The larger of `self` and `other`.
            #[must_use]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// `true` when the magnitude is a finite number.
            #[must_use]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                if let Some(prec) = f.precision() {
                    write!(f, "{:.*} {}", prec, self.0, $unit)
                } else {
                    write!(f, "{} {}", self.0, $unit)
                }
            }
        }

        impl std::ops::Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl std::ops::Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl std::ops::Neg for $name {
            type Output = Self;
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl std::ops::Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl std::ops::Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl std::ops::Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl std::ops::Div<$name> for $name {
            /// Dividing two like quantities yields their dimensionless ratio.
            type Output = f64;
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl std::ops::AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl std::ops::SubAssign for $name {
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl std::iter::Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }
    };
}

pub(crate) use quantity;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantity_error_display() {
        let e = QuantityError::Negative {
            quantity: "length",
            value: -1.0,
        };
        assert_eq!(e.to_string(), "length must be non-negative, got -1");
        let e = QuantityError::NotFinite { quantity: "length" };
        assert_eq!(e.to_string(), "length must be a finite number");
    }

    #[test]
    fn check_non_negative_accepts_zero() {
        assert_eq!(check_non_negative("x", 0.0).unwrap(), 0.0);
    }

    #[test]
    fn check_non_negative_rejects_nan() {
        assert!(check_non_negative("x", f64::NAN).is_err());
        assert!(check_non_negative("x", f64::INFINITY).is_err());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<QuantityError>();
    }
}
