//! Time and frequency.

crate::quantity!(
    /// Time interval. Canonical unit: second (s).
    ///
    /// ESD events live at the 1–200 ns scale; clock periods at the ~ns
    /// scale. Nanosecond/picosecond constructors cover both.
    Seconds,
    "s",
    "time"
);

impl Seconds {
    /// Creates a duration from nanoseconds.
    #[must_use]
    pub fn from_nanos(ns: f64) -> Self {
        Self::new(ns * 1e-9)
    }

    /// Creates a duration from picoseconds.
    #[must_use]
    pub fn from_picos(ps: f64) -> Self {
        Self::new(ps * 1e-12)
    }

    /// Creates a duration from microseconds.
    #[must_use]
    pub fn from_micros(us: f64) -> Self {
        Self::new(us * 1e-6)
    }

    /// The magnitude in nanoseconds.
    #[must_use]
    pub fn to_nanos(self) -> f64 {
        self.value() * 1e9
    }

    /// The magnitude in picoseconds.
    #[must_use]
    pub fn to_picos(self) -> f64 {
        self.value() * 1e12
    }

    /// Creates a duration from Julian years (365.25 days) — lifetime
    /// horizons.
    #[must_use]
    pub fn from_years(years: f64) -> Self {
        Self::new(years * 31_557_600.0)
    }

    /// The magnitude in Julian years.
    #[must_use]
    pub fn to_years(self) -> f64 {
        self.value() / 31_557_600.0
    }
}

crate::quantity!(
    /// Frequency. Canonical unit: hertz (Hz).
    Frequency,
    "Hz",
    "frequency"
);

impl Frequency {
    /// Creates a frequency from megahertz.
    #[must_use]
    pub fn from_megahertz(mhz: f64) -> Self {
        Self::new(mhz * 1e6)
    }

    /// Creates a frequency from gigahertz.
    #[must_use]
    pub fn from_gigahertz(ghz: f64) -> Self {
        Self::new(ghz * 1e9)
    }

    /// The magnitude in gigahertz.
    #[must_use]
    pub fn to_gigahertz(self) -> f64 {
        self.value() * 1e-9
    }

    /// The period of one cycle: `T = 1/f`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the frequency is zero.
    #[must_use]
    pub fn period(self) -> Seconds {
        debug_assert!(self.value() != 0.0, "zero frequency has no period");
        Seconds::new(1.0 / self.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nanosecond_round_trip() {
        let t = Seconds::from_nanos(150.0);
        assert!((t.to_nanos() - 150.0).abs() < 1e-9);
        assert!((t.value() - 1.5e-7).abs() < 1e-20);
    }

    #[test]
    fn frequency_period() {
        let f = Frequency::from_megahertz(750.0);
        let t = f.period();
        assert!((t.to_nanos() - 4.0 / 3.0).abs() < 1e-9);
        let f2 = Frequency::from_gigahertz(2.0);
        assert!((f2.period().to_picos() - 500.0).abs() < 1e-6);
        assert!((f2.to_gigahertz() - 2.0).abs() < 1e-12);
    }
}
