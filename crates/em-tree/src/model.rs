//! Physical parameters of the Korhonen stress-evolution model.
//!
//! Korhonen et al. (JAP 1993) reduce electromigration in a confined
//! metal line to a single 1-D diffusion equation for the hydrostatic
//! stress `σ(x, t)`:
//!
//! ```text
//! ∂σ/∂t = ∂/∂x [ κ(T) · ( ∂σ/∂x + G ) ]
//! κ(T) = D_a(T) · B · Ω / (k_B · T)          (stress diffusivity, m²/s)
//! D_a(T) = D₀ · exp(−E_a / k_B T)            (atomic diffusivity)
//! G = −e · Z* · ρ(T) · j / Ω                 (electron-wind term, Pa/m)
//! ```
//!
//! with `j` the **conventional** current density signed along the local
//! `x` axis. The sign convention makes the steady profile
//! `∂σ/∂x = −G = +e·Z*·ρ·j/Ω`: tensile stress (positive) builds at the
//! cathode end — the end the conventional current flows *into* — which
//! is where voids nucleate.

use hotwire_tech::Metal;
use hotwire_units::consts::{BOLTZMANN_EV_PER_K, BOLTZMANN_J_PER_K, ELEMENTARY_CHARGE_C};
use hotwire_units::{CurrentDensity, ElectronVolts, Kelvin, Length, Pascals, Volume};
use serde::{Deserialize, Serialize};

use crate::TreeEmError;

/// Parameters of the Korhonen stress PDE for one metal system.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KorhonenModel {
    metal: Metal,
    /// |Z*| — magnitude of the effective charge number.
    effective_charge: f64,
    /// Ω — atomic volume.
    atomic_volume: Volume,
    /// B — effective (confinement) bulk modulus.
    effective_modulus: Pascals,
    /// D₀ — atomic diffusivity prefactor, m²/s.
    diffusivity_prefactor: f64,
    /// E_a — activation energy of the dominant diffusion path.
    activation_energy: ElectronVolts,
    /// σ_crit — tensile stress at which a void nucleates.
    critical_stress: Pascals,
    /// Void length at which the segment is declared failed (the liner
    /// carries current across smaller voids at elevated resistance).
    critical_void_length: Length,
}

impl KorhonenModel {
    /// Builds a model from its full parameter set.
    ///
    /// # Errors
    ///
    /// Returns [`TreeEmError::InvalidParameter`] when any magnitude is
    /// non-positive or non-finite.
    // One physical parameter per argument — a builder would add
    // ceremony without removing any of them.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        metal: Metal,
        effective_charge: f64,
        atomic_volume: Volume,
        effective_modulus: Pascals,
        diffusivity_prefactor: f64,
        activation_energy: ElectronVolts,
        critical_stress: Pascals,
        critical_void_length: Length,
    ) -> Result<Self, TreeEmError> {
        let positive = [
            ("effective charge |Z*|", effective_charge),
            ("atomic volume", atomic_volume.value()),
            ("effective modulus", effective_modulus.value()),
            ("diffusivity prefactor", diffusivity_prefactor),
            ("activation energy", activation_energy.value()),
            ("critical stress", critical_stress.value()),
            ("critical void length", critical_void_length.value()),
        ];
        for (name, v) in positive {
            if !(v > 0.0) || !v.is_finite() {
                return Err(TreeEmError::InvalidParameter {
                    message: format!("{name} must be positive and finite, got {v}"),
                });
            }
        }
        Ok(Self {
            metal,
            effective_charge,
            atomic_volume,
            effective_modulus,
            diffusivity_prefactor,
            activation_energy,
            critical_stress,
            critical_void_length,
        })
    }

    /// Damascene copper, with `σ_crit` calibrated so that a single
    /// two-terminal segment is immortal exactly below the
    /// [`hotwire_em::blech::BlechModel::copper`] product at 100 °C
    /// (see [`Self::calibrated_to_blech`]).
    ///
    /// |Z*| = 1, Ω = 1.18×10⁻²⁹ m³, B = 28 GPa (low-k confinement),
    /// D₀ = 1.3×10⁻⁹ m²/s with E_a from
    /// [`hotwire_tech::Metal::copper`]'s EM parameters (Cu/cap
    /// interface diffusion), 25 nm critical void.
    ///
    /// # Errors
    ///
    /// Propagates [`TreeEmError::InvalidParameter`] (unreachable for the
    /// built-in constants, but the constructor stays checked).
    pub fn copper() -> Result<Self, TreeEmError> {
        let metal = Metal::copper();
        let ea = metal.em().activation_energy;
        Self::new(
            metal,
            1.0,
            Volume::new(1.18e-29),
            Pascals::from_gigapascals(28.0),
            1.3e-9,
            ea,
            Pascals::from_megapascals(500.0),
            Length::from_nanometers(25.0),
        )?
        .calibrated_to_blech(hotwire_em::blech::BlechModel::copper(), Kelvin::new(373.15))
    }

    /// AlCu between tungsten studs, calibrated to
    /// [`hotwire_em::blech::BlechModel::alcu`] at 100 °C.
    ///
    /// |Z*| = 4, Ω = 1.66×10⁻²⁹ m³, B = 25 GPa, D₀ = 4.7×10⁻⁶ m²/s with
    /// E_a from [`hotwire_tech::Metal::alcu`] (grain-boundary
    /// diffusion), 50 nm critical void.
    ///
    /// # Errors
    ///
    /// Propagates [`TreeEmError::InvalidParameter`] (unreachable for the
    /// built-in constants).
    pub fn alcu() -> Result<Self, TreeEmError> {
        let metal = Metal::alcu();
        let ea = metal.em().activation_energy;
        Self::new(
            metal,
            4.0,
            Volume::new(1.66e-29),
            Pascals::from_gigapascals(25.0),
            4.7e-6,
            ea,
            Pascals::from_megapascals(400.0),
            Length::from_nanometers(50.0),
        )?
        .calibrated_to_blech(hotwire_em::blech::BlechModel::alcu(), Kelvin::new(373.15))
    }

    /// Looks up the preset for a built-in metal by name
    /// (`"copper"` / `"alcu"`, as [`hotwire_tech::Metal::builtin`]).
    ///
    /// # Errors
    ///
    /// Returns [`TreeEmError::InvalidParameter`] for unknown names.
    pub fn for_metal_name(name: &str) -> Result<Self, TreeEmError> {
        match name.to_ascii_lowercase().as_str() {
            "copper" | "cu" => Self::copper(),
            "alcu" | "al" | "aluminum" => Self::alcu(),
            other => Err(TreeEmError::InvalidParameter {
                message: format!("no Korhonen preset for metal '{other}'"),
            }),
        }
    }

    /// Replaces `σ_crit` so that on a single isolated segment the
    /// steady-state immortality filter coincides *exactly* with the
    /// given Blech product at the calibration temperature.
    ///
    /// On an isolated line of length `L` at uniform density `j`, the
    /// zero-flux steady state is linear with peak tensile stress
    /// `σ_max = e·|Z*|·ρ(T)·j·L / (2Ω)`; setting
    /// `σ_crit = e·|Z*|·ρ(T_cal)·(jL)_crit / (2Ω)` therefore reproduces
    /// `j·L < (jL)_crit` verbatim.
    ///
    /// # Errors
    ///
    /// Returns [`TreeEmError::InvalidParameter`] if the resulting
    /// threshold is non-positive (degenerate resistivity fit).
    pub fn calibrated_to_blech(
        self,
        blech: hotwire_em::blech::BlechModel,
        calibration_temperature: Kelvin,
    ) -> Result<Self, TreeEmError> {
        let jl_crit = blech.critical_product_amps_per_cm() * 100.0; // A/cm → A/m
        let rho = self.metal.resistivity(calibration_temperature).value();
        let sigma = ELEMENTARY_CHARGE_C * self.effective_charge * rho * jl_crit
            / (2.0 * self.atomic_volume.value());
        Self::new(
            self.metal,
            self.effective_charge,
            self.atomic_volume,
            self.effective_modulus,
            self.diffusivity_prefactor,
            self.activation_energy,
            Pascals::new(sigma),
            self.critical_void_length,
        )
    }

    /// The underlying metal (resistivity fit, EM parameters).
    #[must_use]
    pub fn metal(&self) -> &Metal {
        &self.metal
    }

    /// σ_crit — the tensile void-nucleation threshold.
    #[must_use]
    pub fn critical_stress(&self) -> Pascals {
        self.critical_stress
    }

    /// The void length at which a segment is declared failed.
    #[must_use]
    pub fn critical_void_length(&self) -> Length {
        self.critical_void_length
    }

    /// B — the effective confinement modulus.
    #[must_use]
    pub fn effective_modulus(&self) -> Pascals {
        self.effective_modulus
    }

    /// Stress diffusivity `κ(T) = D₀·exp(−E_a/k_B T)·B·Ω/(k_B·T)` in
    /// m²/s.
    #[must_use]
    pub fn kappa(&self, temperature: Kelvin) -> f64 {
        let t = temperature.value();
        let d_a = self.diffusivity_prefactor
            * (-self.activation_energy.value() / (BOLTZMANN_EV_PER_K * t)).exp();
        d_a * self.effective_modulus.value() * self.atomic_volume.value() / (BOLTZMANN_J_PER_K * t)
    }

    /// Electron-wind term `G = −e·|Z*|·ρ(T)·j/Ω` in Pa/m, with `j` the
    /// conventional current density signed along the segment axis. The
    /// steady-state stress slope is `−G` (tensile toward the node the
    /// conventional current flows into).
    #[must_use]
    pub fn wind_term(&self, density: CurrentDensity, temperature: Kelvin) -> f64 {
        let rho = self.metal.resistivity(temperature).value();
        -ELEMENTARY_CHARGE_C * self.effective_charge * rho * density.value()
            / self.atomic_volume.value()
    }

    /// The single-segment critical `j·L` product implied by `σ_crit` at
    /// the given temperature: `(jL)_crit = 2·σ_crit·Ω/(e·|Z*|·ρ(T))`,
    /// in A/m. Inverse of [`Self::calibrated_to_blech`].
    #[must_use]
    pub fn implied_blech_product(&self, temperature: Kelvin) -> f64 {
        let rho = self.metal.resistivity(temperature).value();
        2.0 * self.critical_stress.value() * self.atomic_volume.value()
            / (ELEMENTARY_CHARGE_C * self.effective_charge * rho)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid_and_distinct() {
        let cu = KorhonenModel::copper().unwrap();
        let al = KorhonenModel::alcu().unwrap();
        assert!(cu.critical_stress().value() > 0.0);
        assert!(al.critical_stress().value() > 0.0);
        assert!(cu.kappa(Kelvin::new(373.15)) > 0.0);
        // AlCu diffuses much faster at equal temperature.
        assert!(al.kappa(Kelvin::new(373.15)) > cu.kappa(Kelvin::new(373.15)));
    }

    #[test]
    fn blech_calibration_round_trips() {
        let t = Kelvin::new(373.15);
        let cu = KorhonenModel::copper().unwrap();
        let implied = cu.implied_blech_product(t) / 100.0; // A/m → A/cm
        let quoted = hotwire_em::blech::BlechModel::copper().critical_product_amps_per_cm();
        assert!(
            ((implied - quoted) / quoted).abs() < 1e-12,
            "implied {implied} A/cm vs quoted {quoted} A/cm"
        );
    }

    #[test]
    fn wind_term_sign_tracks_current() {
        let cu = KorhonenModel::copper().unwrap();
        let t = Kelvin::new(373.15);
        let j = CurrentDensity::from_mega_amps_per_cm2(1.0);
        // Positive conventional j ⇒ negative G ⇒ positive steady slope.
        assert!(cu.wind_term(j, t) < 0.0);
        assert!(cu.wind_term(-j, t) > 0.0);
    }

    #[test]
    fn kappa_grows_with_temperature() {
        let cu = KorhonenModel::copper().unwrap();
        assert!(cu.kappa(Kelvin::new(423.15)) > cu.kappa(Kelvin::new(373.15)));
    }

    #[test]
    fn validation_rejects_nonpositive() {
        let metal = Metal::copper();
        let r = KorhonenModel::new(
            metal,
            0.0,
            Volume::new(1.0e-29),
            Pascals::from_gigapascals(28.0),
            1.0e-9,
            ElectronVolts::new(0.8),
            Pascals::from_megapascals(500.0),
            Length::from_nanometers(25.0),
        );
        assert!(matches!(r, Err(TreeEmError::InvalidParameter { .. })));
    }
}
