//! Implicit finite-volume transient Korhonen solver with void
//! nucleation and growth-to-failure.
//!
//! Each branch is discretized into vertex-centered finite volumes;
//! junction nodes are shared between branches, which enforces both
//! stress continuity and atom-flux conservation at junctions
//! automatically. Zero-flux (blocking-boundary) conditions at leaves
//! fall out of the FV formulation for free. The implicit (backward
//! Euler) step
//!
//! ```text
//! (M/Δt + K) σᵏ⁺¹ = (M/Δt) σᵏ + S
//! ```
//!
//! is SPD, so [`hotwire_circuit::solver::MnaMatrix`] routes it to the
//! shared sparse LDLᵀ (or dense Cholesky for small meshes); the
//! factorization is reused across every step taken at the same Δt. A
//! geometric block-doubling Δt schedule covers the ~10-decade span from
//! the early `√t` stress build-up to ten-year horizons with a handful
//! of refactorizations.
//!
//! Two-point flux is exact for piecewise-linear profiles, so the FV
//! steady state matches the continuum steady state at the nodes to
//! round-off — the transient and [`crate::steady`] solvers agree by
//! construction, which the proptest suite pins.
//!
//! Once the peak tensile stress crosses `σ_crit` a void nucleates
//! there: the node switches to an absorbing `σ = 0` (Dirichlet)
//! boundary and the net atom volume flowing out of it accrues as void
//! volume (one growing void per tree — the weakest site; consistent
//! with the weakest-link chip rollup this feeds). The segment fails
//! when the void spans [`crate::model::KorhonenModel::critical_void_length`].

use hotwire_circuit::solver::{MnaFactorization, MnaMatrix};
use hotwire_obs::{metrics, recorder};
use hotwire_units::{CurrentDensity, Kelvin, Length, Pascals, Seconds};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::model::KorhonenModel;
use crate::tree::InterconnectTree;
use crate::TreeEmError;

/// Time-integration options.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransientOptions {
    /// Finite volumes per segment (mesh resolution).
    pub resolution: usize,
    /// Total simulated horizon for [`KorhonenSolver::run_to_failure`].
    pub horizon: Seconds,
    /// Number of Δt-doubling blocks in the schedule.
    pub blocks: usize,
    /// Steps per block (one factorization per block).
    pub steps_per_block: usize,
}

impl TransientOptions {
    /// Defaults for a given horizon: 8 volumes per segment, 12 blocks
    /// of 64 steps (Δt spans ~3.6 decades, 768 steps, 12
    /// factorizations).
    #[must_use]
    pub fn for_horizon(horizon: Seconds) -> Self {
        Self {
            resolution: 8,
            horizon,
            blocks: 12,
            steps_per_block: 64,
        }
    }

    fn validate(&self) -> Result<(), TreeEmError> {
        if self.resolution == 0 || self.blocks == 0 || self.steps_per_block == 0 {
            return Err(TreeEmError::InvalidParameter {
                message: "transient options must have non-zero resolution/blocks/steps".into(),
            });
        }
        if !(self.horizon.value() > 0.0) || !self.horizon.is_finite() {
            return Err(TreeEmError::InvalidParameter {
                message: format!("horizon must be positive and finite, got {}", self.horizon),
            });
        }
        Ok(())
    }
}

/// Result of (a window of) transient integration on one tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransientOutcome {
    /// Tree name, for report joins.
    pub tree: String,
    /// Time at which the first void nucleated, if it did.
    pub nucleation_time: Option<Seconds>,
    /// Time at which the void spanned the critical length, if it did.
    pub failure_time: Option<Seconds>,
    /// Tree node nearest the void site (`None` until nucleation).
    pub nucleation_node: Option<usize>,
    /// Current void length (zero until nucleation).
    pub void_length: Length,
    /// Peak tensile stress seen so far anywhere in the tree.
    pub peak_tensile: Pascals,
    /// Total simulated time so far.
    pub simulated: Seconds,
    /// Implicit steps taken so far.
    pub steps: usize,
}

#[derive(Debug, Clone, Copy)]
struct MeshEdge {
    a: usize,
    b: usize,
    /// κ·A/h — conductance of the two-point flux.
    w: f64,
    /// κ·A·G — the wind source carried by this face pair.
    src: f64,
    /// Owning tree segment.
    seg: usize,
}

#[derive(Debug, Clone, Copy)]
struct VoidState {
    mesh_node: usize,
    seg: usize,
    /// Tree node nearest the void.
    tree_node: usize,
    /// Accrued void volume, m³.
    volume: f64,
}

/// Stateful transient Korhonen solver for one tree.
///
/// The solver owns its stress field, so the coupled aging loop can
/// alternate [`KorhonenSolver::set_operating_points`] (fresh
/// electro-thermal state) with [`KorhonenSolver::advance`] windows
/// while stress history accumulates.
#[derive(Debug)]
pub struct KorhonenSolver {
    tree: InterconnectTree,
    model: KorhonenModel,
    options: TransientOptions,
    /// Finite volume of each mesh node, m³.
    volume: Vec<f64>,
    edges: Vec<MeshEdge>,
    /// Sub-edge length per segment (h), m.
    seg_h: Vec<f64>,
    stress: Vec<f64>,
    time: f64,
    steps: usize,
    peak_tensile: f64,
    void: Option<VoidState>,
    /// Cached factorization: (Δt it was built for, void node it
    /// eliminated, unknown map, factors).
    factored: Option<(f64, Option<usize>, Vec<isize>, MnaFactorization)>,
}

impl KorhonenSolver {
    /// Builds the FV mesh and zero-stress initial state.
    ///
    /// # Errors
    ///
    /// Returns [`TreeEmError::InvalidParameter`] for bad options.
    pub fn new(
        tree: &InterconnectTree,
        model: &KorhonenModel,
        options: TransientOptions,
    ) -> Result<Self, TreeEmError> {
        options.validate()?;
        let n_tree = tree.node_count();
        let segs = tree.segments();
        let sub = options.resolution;
        let n_mesh = n_tree + segs.len() * (sub - 1);
        let mut volume = vec![0.0; n_mesh];
        let mut edges = Vec::with_capacity(segs.len() * sub);
        let mut seg_h = Vec::with_capacity(segs.len());
        let mut next_internal = n_tree;
        for (si, s) in segs.iter().enumerate() {
            let h = s.length.value() / sub as f64;
            seg_h.push(h);
            let area = s.area().value();
            let kappa = model.kappa(s.temperature);
            let wind = model.wind_term(s.current_density, s.temperature);
            let w = kappa * area / h;
            let src = kappa * area * wind;
            let mut prev = s.from;
            for k in 0..sub {
                let next = if k + 1 == sub {
                    s.to
                } else {
                    let id = next_internal;
                    next_internal += 1;
                    id
                };
                edges.push(MeshEdge {
                    a: prev,
                    b: next,
                    w,
                    src,
                    seg: si,
                });
                volume[prev] += 0.5 * area * h;
                volume[next] += 0.5 * area * h;
                prev = next;
            }
        }
        Ok(Self {
            tree: tree.clone(),
            model: model.clone(),
            options,
            volume,
            edges,
            seg_h,
            stress: vec![0.0; n_mesh],
            time: 0.0,
            steps: 0,
            peak_tensile: 0.0,
            void: None,
            factored: None,
        })
    }

    /// The tree being integrated.
    #[must_use]
    pub fn tree(&self) -> &InterconnectTree {
        &self.tree
    }

    /// Total simulated time so far.
    #[must_use]
    pub fn time(&self) -> Seconds {
        Seconds::new(self.time)
    }

    /// Stress at the tree nodes (junctions and endpoints).
    #[must_use]
    pub fn node_stress(&self) -> Vec<Pascals> {
        (0..self.tree.node_count())
            .map(|i| Pascals::new(self.stress[i]))
            .collect()
    }

    /// Current void length (zero before nucleation).
    #[must_use]
    pub fn void_length(&self) -> Length {
        match &self.void {
            Some(v) => {
                let area = self.tree.segments()[v.seg].area().value();
                Length::new(v.volume / area)
            }
            None => Length::new(0.0),
        }
    }

    /// Per-segment void length — the resistance back-annotation input
    /// for the coupled aging loop (all-zero until nucleation; only the
    /// void-carrying segment is non-zero).
    #[must_use]
    pub fn segment_void_lengths(&self) -> Vec<Length> {
        let mut out = vec![Length::new(0.0); self.tree.segments().len()];
        if let Some(v) = &self.void {
            out[v.seg] = self.void_length();
        }
        out
    }

    /// Re-stamps per-segment densities and temperatures (same topology
    /// and geometry) without resetting the accumulated stress state —
    /// the aging loop calls this after each coupled re-solve.
    ///
    /// # Errors
    ///
    /// Returns [`TreeEmError::InvalidTree`] on a length mismatch.
    pub fn set_operating_points(
        &mut self,
        points: &[(CurrentDensity, Kelvin)],
    ) -> Result<(), TreeEmError> {
        self.tree = self.tree.with_operating_points(points)?;
        let segs = self.tree.segments();
        for e in &mut self.edges {
            let s = &segs[e.seg];
            let h = self.seg_h[e.seg];
            let area = s.area().value();
            let kappa = self.model.kappa(s.temperature);
            let wind = self.model.wind_term(s.current_density, s.temperature);
            e.w = kappa * area / h;
            e.src = kappa * area * wind;
        }
        self.factored = None;
        Ok(())
    }

    fn ensure_factored(&mut self, dt: f64) -> Result<(), TreeEmError> {
        let void_node = self.void.as_ref().map(|v| v.mesh_node);
        if let Some((fdt, fvoid, _, _)) = &self.factored {
            if *fdt == dt && *fvoid == void_node {
                return Ok(());
            }
        }
        let n_mesh = self.stress.len();
        // Map mesh nodes to unknowns, eliminating the Dirichlet void
        // node (σ pinned to 0 there).
        let mut map = vec![0isize; n_mesh];
        let mut n_unknown = 0usize;
        for (i, m) in map.iter_mut().enumerate() {
            if Some(i) == void_node {
                *m = -1;
            } else {
                *m = n_unknown as isize;
                n_unknown += 1;
            }
        }
        let mut matrix = MnaMatrix::auto(n_unknown);
        for (i, &v) in self.volume.iter().enumerate() {
            if map[i] >= 0 {
                let u = map[i] as usize;
                matrix.add(u, u, v / dt);
            }
        }
        for e in &self.edges {
            let (ua, ub) = (map[e.a], map[e.b]);
            match (ua >= 0, ub >= 0) {
                (true, true) => {
                    let (ua, ub) = (ua as usize, ub as usize);
                    matrix.add(ua, ua, e.w);
                    matrix.add(ub, ub, e.w);
                    matrix.add(ua, ub, -e.w);
                    matrix.add(ub, ua, -e.w);
                }
                // One end pinned to σ = 0: only the live end's
                // diagonal survives (the coupling term carries a zero).
                (true, false) => matrix.add(ua as usize, ua as usize, e.w),
                (false, true) => matrix.add(ub as usize, ub as usize, e.w),
                (false, false) => {}
            }
        }
        let factors = matrix.factor()?;
        metrics::counter("em.stress.factorizations").inc();
        self.factored = Some((dt, void_node, map, factors));
        Ok(())
    }

    /// One backward-Euler step at Δt; assumes `ensure_factored(dt)` ran.
    fn step(&mut self, dt: f64) -> Result<(), TreeEmError> {
        let Some((_, _, map, factors)) = &self.factored else {
            return Err(TreeEmError::InvalidParameter {
                message: "internal: step() before factorization".into(),
            });
        };
        let n_unknown = map.iter().filter(|&&m| m >= 0).count();
        let mut rhs = vec![0.0; n_unknown];
        for (i, &v) in self.volume.iter().enumerate() {
            if map[i] >= 0 {
                rhs[map[i] as usize] = v / dt * self.stress[i];
            }
        }
        for e in &self.edges {
            if map[e.a] >= 0 {
                rhs[map[e.a] as usize] += e.src;
            }
            if map[e.b] >= 0 {
                rhs[map[e.b] as usize] -= e.src;
            }
        }
        let x = factors.solve(&rhs);
        for (i, s) in self.stress.iter_mut().enumerate() {
            *s = if map[i] >= 0 { x[map[i] as usize] } else { 0.0 };
        }
        self.time += dt;
        self.steps += 1;
        Ok(())
    }

    fn max_tensile(&self) -> (f64, usize) {
        let mut best = f64::NEG_INFINITY;
        let mut at = 0usize;
        for (i, &s) in self.stress.iter().enumerate() {
            if s > best {
                best = s;
                at = i;
            }
        }
        (best, at)
    }

    /// Net atom volume per second leaving the void node (positive =
    /// void grows), m³/s.
    fn void_outflow(&self, v: &VoidState) -> f64 {
        let modulus = self.model.effective_modulus().value();
        let mut out = 0.0;
        for e in &self.edges {
            // Atom-volume flux along +x (a→b): (κA/B)·(∂σ/∂x + G).
            let flux = (e.w * (self.stress[e.b] - self.stress[e.a]) + e.src) / modulus;
            if e.a == v.mesh_node {
                out += flux;
            } else if e.b == v.mesh_node {
                out -= flux;
            }
        }
        out
    }

    /// Nearest tree node to a mesh node (itself if it is one, else the
    /// closer endpoint of the owning segment).
    fn nearest_tree_node(&self, mesh_node: usize) -> (usize, usize) {
        let n_tree = self.tree.node_count();
        if mesh_node < n_tree {
            // Endpoint: find a segment that touches it.
            let seg = self
                .tree
                .segments()
                .iter()
                .position(|s| s.from == mesh_node || s.to == mesh_node)
                .unwrap_or(0);
            return (seg, mesh_node);
        }
        let sub = self.options.resolution;
        let internal = mesh_node - n_tree;
        let seg = internal / (sub - 1);
        let k = internal % (sub - 1); // 0-based internal index, node k+1 of sub+1
        let s = &self.tree.segments()[seg];
        let node = if (k + 1) * 2 <= sub { s.from } else { s.to };
        (seg, node)
    }

    /// Marches `steps` backward-Euler steps at fixed `dt`, watching for
    /// nucleation and failure. Returns `true` when failure occurred
    /// (integration should stop).
    fn march(
        &mut self,
        dt: f64,
        steps: usize,
        nucleation: &mut Option<f64>,
        failure: &mut Option<f64>,
    ) -> Result<bool, TreeEmError> {
        let sigma_crit = self.model.critical_stress().value();
        let len_crit = self.model.critical_void_length().value();
        for _ in 0..steps {
            self.ensure_factored(dt)?;
            let prev_max = self.max_tensile().0;
            let prev_void_len = self.void_length().value();
            self.step(dt)?;
            let (cur_max, at) = self.max_tensile();
            self.peak_tensile = self.peak_tensile.max(cur_max);
            if self.void.is_none() && cur_max >= sigma_crit {
                // Interpolate the crossing inside this step.
                let frac = if cur_max > prev_max {
                    ((sigma_crit - prev_max) / (cur_max - prev_max)).clamp(0.0, 1.0)
                } else {
                    1.0
                };
                *nucleation = Some(self.time - dt + frac * dt);
                let (seg, tree_node) = self.nearest_tree_node(at);
                self.void = Some(VoidState {
                    mesh_node: at,
                    seg,
                    tree_node,
                    volume: 0.0,
                });
                self.stress[at] = 0.0;
                self.factored = None; // pattern changed: refactor lazily
                metrics::counter("em.stress.nucleations").inc();
                recorder::record(
                    "em.nucleation",
                    format_args!(
                        "tree {} voided at mesh node {at} (t = {:.3e} s)",
                        self.tree.name(),
                        self.time
                    ),
                );
            } else if let Some(mut v) = self.void.take() {
                let outflow = self.void_outflow(&v);
                v.volume = (v.volume + dt * outflow).max(0.0);
                let area = self.tree.segments()[v.seg].area().value();
                let cur_len = v.volume / area;
                self.void = Some(v);
                if cur_len >= len_crit && failure.is_none() {
                    let frac = if cur_len > prev_void_len {
                        ((len_crit - prev_void_len) / (cur_len - prev_void_len)).clamp(0.0, 1.0)
                    } else {
                        1.0
                    };
                    *failure = Some(self.time - dt + frac * dt);
                    metrics::counter("em.stress.failures").inc();
                    recorder::record(
                        "em.failure",
                        format_args!(
                            "tree {} open-circuited: void {cur_len:.3e} m ≥ critical \
                             {len_crit:.3e} m (t = {:.3e} s)",
                            self.tree.name(),
                            self.time
                        ),
                    );
                    return Ok(true);
                }
            }
        }
        Ok(false)
    }

    fn outcome(&self, nucleation: Option<f64>, failure: Option<f64>) -> TransientOutcome {
        TransientOutcome {
            tree: self.tree.name().to_string(),
            nucleation_time: nucleation.map(Seconds::new),
            failure_time: failure.map(Seconds::new),
            nucleation_node: self.void.as_ref().map(|v| v.tree_node),
            void_length: self.void_length(),
            peak_tensile: Pascals::new(self.peak_tensile),
            simulated: Seconds::new(self.time),
            steps: self.steps,
        }
    }

    /// Runs the block-doubling schedule from the current state to the
    /// options horizon (or early failure).
    ///
    /// # Errors
    ///
    /// Propagates FV solve failures ([`TreeEmError::Circuit`]).
    pub fn run_to_failure(&mut self) -> Result<TransientOutcome, TreeEmError> {
        let _t = hotwire_obs::trace::span("em.stress.transient_time");
        let b = self.options.blocks;
        let s = self.options.steps_per_block;
        // Σ s·dt0·2^k over blocks = horizon ⇒ dt0:
        let dt0 = self.options.horizon.value() / (s as f64 * ((1u64 << b) - 1) as f64);
        let mut nucleation = None;
        let mut failure = None;
        let steps_before = self.steps;
        for k in 0..b {
            let dt = dt0 * (1u64 << k) as f64;
            if self.march(dt, s, &mut nucleation, &mut failure)? {
                break;
            }
        }
        metrics::counter("em.stress.transient_steps").add((self.steps - steps_before) as u64);
        Ok(self.outcome(nucleation, failure))
    }

    /// Advances a uniform-Δt window from the current state — the aging
    /// loop's building block between operating-point re-stamps.
    ///
    /// # Errors
    ///
    /// Returns [`TreeEmError::InvalidParameter`] for a non-positive
    /// window or zero steps; propagates FV solve failures.
    pub fn advance(
        &mut self,
        window: Seconds,
        steps: usize,
    ) -> Result<TransientOutcome, TreeEmError> {
        if !(window.value() > 0.0) || steps == 0 {
            return Err(TreeEmError::InvalidParameter {
                message: format!("advance needs positive window and steps, got {window}, {steps}"),
            });
        }
        let _t = hotwire_obs::trace::span("em.stress.transient_time");
        let dt = window.value() / steps as f64;
        let mut nucleation = None;
        let mut failure = None;
        let steps_before = self.steps;
        self.march(dt, steps, &mut nucleation, &mut failure)?;
        metrics::counter("em.stress.transient_steps").add((self.steps - steps_before) as u64);
        Ok(self.outcome(nucleation, failure))
    }
}

/// Runs each tree's transient to failure, optionally in parallel.
/// Order-preserving and byte-identical between the two paths (each
/// solve is independent; results collect in input order).
///
/// # Errors
///
/// Propagates the first per-tree error in input order.
pub fn batch_to_failure(
    trees: &[InterconnectTree],
    model: &KorhonenModel,
    options: TransientOptions,
    parallel: bool,
) -> Result<Vec<TransientOutcome>, TreeEmError> {
    let run = |t: &InterconnectTree| -> Result<TransientOutcome, TreeEmError> {
        KorhonenSolver::new(t, model, options)?.run_to_failure()
    };
    if parallel {
        trees.par_iter().map(run).collect::<Result<Vec<_>, _>>()
    } else {
        trees.iter().map(run).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotwire_units::{CurrentDensity, Kelvin, Length};

    fn um(v: f64) -> Length {
        Length::from_micrometers(v)
    }

    fn hot_line(j_ma: f64, t_c: f64, segs: usize) -> InterconnectTree {
        InterconnectTree::straight_line(
            "line",
            segs,
            um(10.0),
            um(0.5),
            um(0.5),
            CurrentDensity::from_mega_amps_per_cm2(j_ma),
            Kelvin::new(t_c + 273.15),
        )
        .unwrap()
    }

    #[test]
    fn transient_relaxes_to_steady_state_on_immortal_line() {
        // Short line well under the Blech product: stress must saturate
        // at the linear steady profile, never nucleate.
        // jL = 1.6 kA/cm; at 150 °C the ρ(T) factor over the 100 °C
        // calibration is 1.34, so the peak sits at ~0.71 σ_crit.
        let model = crate::model::KorhonenModel::copper().unwrap();
        let line = hot_line(0.4, 150.0, 4);
        let steady = crate::steady::steady_state(&line, &model).unwrap();
        assert!(steady.immortal);

        // Horizon ≫ L²/κ so the transient fully settles.
        let l_total = line.total_length().value();
        let kappa = model.kappa(Kelvin::new(423.15));
        let horizon = Seconds::new(50.0 * l_total * l_total / kappa);
        let mut solver =
            KorhonenSolver::new(&line, &model, TransientOptions::for_horizon(horizon)).unwrap();
        let out = solver.run_to_failure().unwrap();
        assert!(out.nucleation_time.is_none(), "immortal line nucleated");
        let got = solver.node_stress();
        for (g, want) in got.iter().zip(&steady.node_stress) {
            let denom = steady.max_tensile.value();
            assert!(
                ((g.value() - want.value()) / denom).abs() < 1e-3,
                "transient {} vs steady {}",
                g,
                want
            );
        }
    }

    #[test]
    fn mortal_line_nucleates_then_fails() {
        // Far above the Blech product at high temperature: must
        // nucleate at the cathode node and grow to failure within a
        // generous horizon.
        let model = crate::model::KorhonenModel::copper().unwrap();
        let line = hot_line(4.0, 300.0, 4); // jL = 16 kA/cm
        let l_total = line.total_length().value();
        let kappa = model.kappa(Kelvin::new(573.15));
        let horizon = Seconds::new(500.0 * l_total * l_total / kappa);
        let out = KorhonenSolver::new(&line, &model, TransientOptions::for_horizon(horizon))
            .unwrap()
            .run_to_failure()
            .unwrap();
        let t_nuc = out.nucleation_time.expect("must nucleate");
        assert_eq!(out.nucleation_node, Some(4), "void at cathode end");
        let t_fail = out.failure_time.expect("must fail");
        assert!(t_fail > t_nuc);
        assert!(out.void_length >= model.critical_void_length());
    }

    #[test]
    fn advance_windows_compose_like_one_run() {
        let model = crate::model::KorhonenModel::copper().unwrap();
        let line = hot_line(0.5, 250.0, 3);
        let l_total = line.total_length().value();
        let kappa = model.kappa(Kelvin::new(523.15));
        let t_char = l_total * l_total / kappa;
        let opts = TransientOptions::for_horizon(Seconds::new(t_char));

        let mut one = KorhonenSolver::new(&line, &model, opts).unwrap();
        one.advance(Seconds::new(t_char), 128).unwrap();

        let mut two = KorhonenSolver::new(&line, &model, opts).unwrap();
        two.advance(Seconds::new(t_char / 2.0), 64).unwrap();
        two.advance(Seconds::new(t_char / 2.0), 64).unwrap();

        for (a, b) in one.node_stress().iter().zip(two.node_stress()) {
            assert!(
                (a.value() - b.value()).abs() <= 1e-6 * a.value().abs().max(1.0),
                "split-window mismatch: {a} vs {b}"
            );
        }
    }

    #[test]
    fn batch_parallel_matches_serial_bitwise() {
        let model = crate::model::KorhonenModel::copper().unwrap();
        let trees: Vec<_> = (1..6).map(|i| hot_line(3.0 + i as f64, 280.0, i)).collect();
        let opts = TransientOptions {
            resolution: 4,
            horizon: Seconds::new(1.0e6),
            blocks: 6,
            steps_per_block: 16,
        };
        let serial = batch_to_failure(&trees, &model, opts, false).unwrap();
        let par = batch_to_failure(&trees, &model, opts, true).unwrap();
        for (a, b) in serial.iter().zip(&par) {
            assert_eq!(
                a.peak_tensile.value().to_bits(),
                b.peak_tensile.value().to_bits()
            );
            assert_eq!(
                a.nucleation_time.map(|t| t.value().to_bits()),
                b.nucleation_time.map(|t| t.value().to_bits())
            );
            assert_eq!(
                a.failure_time.map(|t| t.value().to_bits()),
                b.failure_time.map(|t| t.value().to_bits())
            );
        }
    }
}
