//! Error type for the tree-EM subsystem.

use hotwire_circuit::CircuitError;
use hotwire_em::EmError;

/// Errors produced by tree construction and the stress solvers.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TreeEmError {
    /// A model or solver parameter was non-physical (non-positive stress
    /// threshold, zero atomic volume, …).
    InvalidParameter {
        /// Description of the defect.
        message: String,
    },
    /// The segment list does not describe a valid tree (disconnected,
    /// cyclic, bad node index, non-positive geometry).
    InvalidTree {
        /// Description of the defect.
        message: String,
    },
    /// A netlist component could not be mapped onto a supply tree — no
    /// (or more than one) boundary node, unsupported devices, or a
    /// resistor mesh containing loops.
    UnsupportedNetlist {
        /// Description of the defect.
        message: String,
    },
    /// The inner linear solve failed (singular FV system — should not
    /// happen for a valid mesh; surfaced rather than swallowed).
    Circuit(CircuitError),
    /// A downstream per-segment EM model rejected its inputs.
    Em(EmError),
}

impl std::fmt::Display for TreeEmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TreeEmError::InvalidParameter { message } => {
                write!(f, "invalid Korhonen model parameter: {message}")
            }
            TreeEmError::InvalidTree { message } => {
                write!(f, "invalid interconnect tree: {message}")
            }
            TreeEmError::UnsupportedNetlist { message } => {
                write!(f, "netlist is not a supply-tree set: {message}")
            }
            TreeEmError::Circuit(e) => write!(f, "stress FV solve failed: {e}"),
            TreeEmError::Em(e) => write!(f, "segment EM model rejected input: {e}"),
        }
    }
}

impl std::error::Error for TreeEmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TreeEmError::Circuit(e) => Some(e),
            TreeEmError::Em(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CircuitError> for TreeEmError {
    fn from(e: CircuitError) -> Self {
        TreeEmError::Circuit(e)
    }
}

impl From<EmError> for TreeEmError {
    fn from(e: EmError) -> Self {
        TreeEmError::Em(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = TreeEmError::InvalidTree {
            message: "2 components".into(),
        };
        assert!(e.to_string().contains("2 components"));
        assert!(std::error::Error::source(&e).is_none());

        let e = TreeEmError::from(CircuitError::Singular { row: 3 });
        assert!(std::error::Error::source(&e).is_some());
    }
}
