//! Interconnect-tree topology: segments, junctions, validation, and
//! construction helpers.
//!
//! A tree is a connected, cycle-free set of metal segments over
//! `node_count` nodes. Each segment carries its own geometry (length,
//! width, thickness), a signed conventional current density along its
//! `from → to` orientation, and a local metal temperature — junction
//! trees with per-branch widths and currents are exactly the scenario
//! class the per-strap Black/Blech model cannot express.

use hotwire_units::{Area, CurrentDensity, Kelvin, Length};
use serde::{Deserialize, Serialize};

use crate::TreeEmError;

/// One straight metal segment between two tree nodes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeSegment {
    /// Tail node index (the local `x = 0` end).
    pub from: usize,
    /// Head node index (the local `x = L` end).
    pub to: usize,
    /// Segment length.
    pub length: Length,
    /// Drawn width.
    pub width: Length,
    /// Metal thickness.
    pub thickness: Length,
    /// Conventional current density, signed along `from → to`
    /// (positive = conventional current flows from `from` into `to`,
    /// so tensile stress builds at `to`).
    pub current_density: CurrentDensity,
    /// Local metal temperature.
    pub temperature: Kelvin,
}

impl TreeSegment {
    /// Cross-sectional area `w · t`.
    #[must_use]
    pub fn area(&self) -> Area {
        Area::new(self.width.value() * self.thickness.value())
    }
}

/// A validated interconnect tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InterconnectTree {
    name: String,
    node_count: usize,
    segments: Vec<TreeSegment>,
}

impl InterconnectTree {
    /// Builds and validates a tree over `node_count` nodes.
    ///
    /// # Errors
    ///
    /// Returns [`TreeEmError::InvalidTree`] when the segments do not
    /// form a connected tree (exactly `node_count − 1` edges, one
    /// component), reference out-of-range nodes, or carry non-positive
    /// geometry / non-finite operating points.
    pub fn new(
        name: impl Into<String>,
        node_count: usize,
        segments: Vec<TreeSegment>,
    ) -> Result<Self, TreeEmError> {
        let name = name.into();
        let invalid = |message: String| TreeEmError::InvalidTree {
            message: format!("tree '{name}': {message}"),
        };
        if node_count < 2 {
            return Err(invalid(format!("need at least 2 nodes, got {node_count}")));
        }
        if segments.len() != node_count - 1 {
            return Err(invalid(format!(
                "{} segments over {node_count} nodes is not a tree (want {})",
                segments.len(),
                node_count - 1
            )));
        }
        for (i, s) in segments.iter().enumerate() {
            if s.from >= node_count || s.to >= node_count {
                return Err(invalid(format!(
                    "segment {i} references node {} outside 0..{node_count}",
                    s.from.max(s.to)
                )));
            }
            if s.from == s.to {
                return Err(invalid(format!(
                    "segment {i} is a self-loop at node {}",
                    s.from
                )));
            }
            for (what, v) in [
                ("length", s.length.value()),
                ("width", s.width.value()),
                ("thickness", s.thickness.value()),
                ("temperature", s.temperature.value()),
            ] {
                if !(v > 0.0) || !v.is_finite() {
                    return Err(invalid(format!(
                        "segment {i} {what} must be positive and finite, got {v}"
                    )));
                }
            }
            if !s.current_density.is_finite() {
                return Err(invalid(format!(
                    "segment {i} current density is not finite"
                )));
            }
        }
        let tree = Self {
            name,
            node_count,
            segments,
        };
        // Edge count is right; connectivity now rules out cycles too.
        let adj = tree.adjacency();
        let mut seen = vec![false; node_count];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut reached = 1usize;
        while let Some(u) = stack.pop() {
            for &(_, v) in &adj[u] {
                if !seen[v] {
                    seen[v] = true;
                    reached += 1;
                    stack.push(v);
                }
            }
        }
        if reached != node_count {
            return Err(TreeEmError::InvalidTree {
                message: format!(
                    "tree '{}': disconnected ({reached} of {node_count} nodes reachable)",
                    tree.name
                ),
            });
        }
        Ok(tree)
    }

    /// A uniform multi-segment straight line: `segment_count` equal
    /// segments in series (nodes `0 — 1 — … — segment_count`), all at
    /// the same density and temperature. The classic Blech/Korhonen
    /// test structure.
    ///
    /// # Errors
    ///
    /// Returns [`TreeEmError::InvalidTree`] on degenerate geometry or
    /// `segment_count == 0`.
    pub fn straight_line(
        name: impl Into<String>,
        segment_count: usize,
        segment_length: Length,
        width: Length,
        thickness: Length,
        density: CurrentDensity,
        temperature: Kelvin,
    ) -> Result<Self, TreeEmError> {
        let segments = (0..segment_count)
            .map(|i| TreeSegment {
                from: i,
                to: i + 1,
                length: segment_length,
                width,
                thickness,
                current_density: density,
                temperature,
            })
            .collect();
        Self::new(name, segment_count + 1, segments)
    }

    /// The tree's name (netlist component root, grid row/column, …).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nodes (junctions + endpoints).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// The validated segments.
    #[must_use]
    pub fn segments(&self) -> &[TreeSegment] {
        &self.segments
    }

    /// Total metal length.
    #[must_use]
    pub fn total_length(&self) -> Length {
        self.segments.iter().map(|s| s.length).sum()
    }

    /// Replaces each segment's operating point (density, temperature)
    /// while keeping the topology and geometry — the aging loop uses
    /// this to re-stamp a tree from a freshly converged electro-thermal
    /// state.
    ///
    /// # Errors
    ///
    /// Returns [`TreeEmError::InvalidTree`] if the slice length does not
    /// match the segment count or an entry is non-finite/non-positive
    /// temperature.
    pub fn with_operating_points(
        &self,
        points: &[(CurrentDensity, Kelvin)],
    ) -> Result<Self, TreeEmError> {
        if points.len() != self.segments.len() {
            return Err(TreeEmError::InvalidTree {
                message: format!(
                    "tree '{}': {} operating points for {} segments",
                    self.name,
                    points.len(),
                    self.segments.len()
                ),
            });
        }
        let segments = self
            .segments
            .iter()
            .zip(points)
            .map(|(s, &(j, t))| TreeSegment {
                current_density: j,
                temperature: t,
                ..*s
            })
            .collect();
        Self::new(self.name.clone(), self.node_count, segments)
    }

    /// Adjacency list: for each node, `(segment index, other endpoint)`.
    #[must_use]
    pub(crate) fn adjacency(&self) -> Vec<Vec<(usize, usize)>> {
        let mut adj = vec![Vec::new(); self.node_count];
        for (i, s) in self.segments.iter().enumerate() {
            adj[s.from].push((i, s.to));
            adj[s.to].push((i, s.from));
        }
        adj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(from: usize, to: usize) -> TreeSegment {
        TreeSegment {
            from,
            to,
            length: Length::from_micrometers(10.0),
            width: Length::from_micrometers(0.5),
            thickness: Length::from_micrometers(0.5),
            current_density: CurrentDensity::from_mega_amps_per_cm2(1.0),
            temperature: Kelvin::new(373.15),
        }
    }

    #[test]
    fn straight_line_and_junction_trees_validate() {
        let line = InterconnectTree::straight_line(
            "line",
            4,
            Length::from_micrometers(5.0),
            Length::from_micrometers(0.5),
            Length::from_micrometers(0.5),
            CurrentDensity::from_mega_amps_per_cm2(1.0),
            Kelvin::new(373.15),
        )
        .unwrap();
        assert_eq!(line.node_count(), 5);
        assert!((line.total_length().to_micrometers() - 20.0).abs() < 1e-9);

        // A T-junction: 0-1, 1-2, 1-3.
        let t = InterconnectTree::new("tee", 4, vec![seg(0, 1), seg(1, 2), seg(1, 3)]).unwrap();
        assert_eq!(t.adjacency()[1].len(), 3);
    }

    #[test]
    fn rejects_cycles_disconnects_and_bad_geometry() {
        // 3 edges over 3 nodes: a triangle.
        let r = InterconnectTree::new("cyc", 3, vec![seg(0, 1), seg(1, 2), seg(2, 0)]);
        assert!(matches!(r, Err(TreeEmError::InvalidTree { .. })));
        // Right edge count but disconnected (0-1, 2-3 over 4 nodes + dup).
        let r = InterconnectTree::new("disc", 4, vec![seg(0, 1), seg(0, 1), seg(2, 3)]);
        assert!(matches!(r, Err(TreeEmError::InvalidTree { .. })));
        // Self-loop.
        let r = InterconnectTree::new("loop", 2, vec![seg(1, 1)]);
        assert!(matches!(r, Err(TreeEmError::InvalidTree { .. })));
        // Zero width.
        let mut bad = seg(0, 1);
        bad.width = Length::new(0.0);
        let r = InterconnectTree::new("flat", 2, vec![bad]);
        assert!(matches!(r, Err(TreeEmError::InvalidTree { .. })));
    }

    #[test]
    fn operating_point_restamp_preserves_topology() {
        let t = InterconnectTree::new("tee", 4, vec![seg(0, 1), seg(1, 2), seg(1, 3)]).unwrap();
        let pts: Vec<_> = t
            .segments()
            .iter()
            .map(|_| {
                (
                    CurrentDensity::from_mega_amps_per_cm2(2.0),
                    Kelvin::new(400.0),
                )
            })
            .collect();
        let t2 = t.with_operating_points(&pts).unwrap();
        assert_eq!(t2.node_count(), 4);
        assert!((t2.segments()[0].current_density.to_mega_amps_per_cm2() - 2.0).abs() < 1e-12);
        assert!(t.with_operating_points(&pts[..2]).is_err());
    }
}
