//! Korhonen stress-evolution electromigration over interconnect trees.
//!
//! The per-strap Black/Blech model in [`hotwire_em`] treats every wire
//! as an isolated two-terminal segment. Modern signoff instead follows
//! the hydrostatic stress `σ(x, t)` over whole supply *trees* —
//! multi-segment lines, junctions, reservoirs — where mass flowing out
//! of one branch loads its neighbors. This crate provides that layer:
//!
//! * [`tree`] — validated interconnect-tree topology with per-segment
//!   geometry, signed current density, and temperature; built directly
//!   or extracted from SPICE netlists ([`netlist`]).
//! * [`model`] — the Korhonen PDE parameters
//!   (`∂σ/∂t = ∂/∂x[κ(∂σ/∂x + G)]`), with presets calibrated so a
//!   single segment reproduces the classic Blech product exactly.
//! * [`steady`] — the zero-flux steady state in **O(segments)** by two
//!   tree traversals (no matrix), used as an immortality filter that
//!   generalizes the Blech check to trees.
//! * [`transient`] — an implicit finite-volume integrator with flux
//!   continuity at junctions, void nucleation at `σ_crit`, and
//!   growth-to-failure times that feed the existing
//!   [`hotwire_em::lifetime::WeakestLinkPopulation`] chip rollup.
//!
//! ```
//! use hotwire_em_tree::model::KorhonenModel;
//! use hotwire_em_tree::steady::steady_state;
//! use hotwire_em_tree::tree::InterconnectTree;
//! use hotwire_units::{CurrentDensity, Kelvin, Length};
//!
//! let model = KorhonenModel::copper()?;
//! // A 20 µm line at 1 MA/cm²: jL = 2000 A/cm < 3000 A/cm ⇒ immortal,
//! // in exact agreement with the Blech filter it generalizes.
//! let line = InterconnectTree::straight_line(
//!     "m2_strap",
//!     4,
//!     Length::from_micrometers(5.0),
//!     Length::from_micrometers(0.5),
//!     Length::from_micrometers(0.5),
//!     CurrentDensity::from_mega_amps_per_cm2(1.0),
//!     Kelvin::new(373.15),
//! )?;
//! assert!(steady_state(&line, &model)?.immortal);
//! # Ok::<(), hotwire_em_tree::TreeEmError>(())
//! ```

#![forbid(unsafe_code)]
// HW001 holds with an empty baseline for this crate: enforce at
// compile time as well, like units/core/coupled.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]
// `!(x > 0.0)` deliberately rejects NaN alongside non-positives.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

mod error;
pub mod model;
pub mod netlist;
pub mod steady;
pub mod transient;
pub mod tree;

pub use error::TreeEmError;
