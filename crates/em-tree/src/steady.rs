//! Linear-time steady-state stress over a tree — the immortality
//! filter.
//!
//! At steady state the atomic flux vanishes on every branch, so the
//! stress profile is piecewise linear with slope `−G_b` along each
//! branch and continuous at junctions (continuity of the chemical
//! potential). Two tree traversals therefore solve the PDE exactly,
//! with no matrix factorization (Shohel/Chhabria/Sapatnekar,
//! arXiv:2112.13451):
//!
//! 1. a BFS from node 0 propagates relative offsets
//!    `σ̂(to) = σ̂(from) − G_b·L_b`;
//! 2. conservation of atoms fixes the free constant: with metal volume
//!    weight `w_b = A_b·L_b` and the branch average
//!    `(σ̂(from)+σ̂(to))/2`, the volume-weighted mean stress must stay
//!    zero, so `σ₀ = −Σ w_b·(σ̂_u+σ̂_v)/2 / Σ w_b`.
//!
//! A tree whose peak tensile stress stays below `σ_crit` can never
//! nucleate a void — it is *immortal*, generalizing the per-strap Blech
//! product to junction trees where a reservoir branch can buy slack for
//! a hot neighbor.

use hotwire_obs::metrics;
use hotwire_units::Pascals;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::model::KorhonenModel;
use crate::tree::InterconnectTree;
use crate::TreeEmError;

/// Zero-flux steady-state stress of one tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SteadyStateStress {
    /// Stress at each tree node (the per-branch profile is linear
    /// between them, so node values carry the extrema).
    pub node_stress: Vec<Pascals>,
    /// Peak tensile stress over the tree.
    pub max_tensile: Pascals,
    /// Peak compressive (most negative) stress — hillock risk.
    pub max_compressive: Pascals,
    /// Node index at which the peak tensile stress occurs (the
    /// void-nucleation site if the tree is mortal).
    pub critical_node: usize,
    /// `true` when `max_tensile < σ_crit`: the tree can never nucleate
    /// a void at these operating conditions.
    pub immortal: bool,
}

/// Solves the zero-flux steady state in `O(segments)`.
///
/// # Errors
///
/// Currently infallible for a validated [`InterconnectTree`], but kept
/// fallible so the signature survives richer models (stress-dependent
/// diffusivity needs an iteration that can fail).
pub fn steady_state(
    tree: &InterconnectTree,
    model: &KorhonenModel,
) -> Result<SteadyStateStress, TreeEmError> {
    let _t = hotwire_obs::trace::span("em.stress.steady_time");
    metrics::counter("em.stress.steady_solves").inc();
    metrics::counter("em.tree.segments").add(tree.segments().len() as u64);

    let n = tree.node_count();
    let adj = tree.adjacency();
    let segs = tree.segments();

    // Pass 1: relative offsets by BFS (explicit queue — 10k-segment
    // chains would overflow a recursive stack).
    let mut offset = vec![f64::NAN; n];
    offset[0] = 0.0;
    let mut queue = std::collections::VecDeque::with_capacity(n);
    queue.push_back(0usize);
    while let Some(u) = queue.pop_front() {
        for &(e, v) in &adj[u] {
            if !offset[v].is_nan() {
                continue;
            }
            let s = &segs[e];
            let g = model.wind_term(s.current_density, s.temperature);
            let drop = g * s.length.value();
            // σ(to) = σ(from) − G·L, applied in the edge's own
            // orientation regardless of traversal direction.
            offset[v] = if s.from == u {
                offset[u] - drop
            } else {
                offset[u] + drop
            };
            queue.push_back(v);
        }
    }

    // Pass 2: atom conservation pins the free constant — the
    // volume-weighted mean of the linear profile must vanish.
    let mut weighted = 0.0;
    let mut total_w = 0.0;
    for s in segs {
        let w = s.area().value() * s.length.value();
        weighted += w * 0.5 * (offset[s.from] + offset[s.to]);
        total_w += w;
    }
    let sigma0 = -weighted / total_w;

    let mut max_tensile = f64::NEG_INFINITY;
    let mut max_compressive = f64::INFINITY;
    let mut critical_node = 0usize;
    let node_stress: Vec<Pascals> = offset
        .iter()
        .enumerate()
        .map(|(i, &off)| {
            let sigma = off + sigma0;
            if sigma > max_tensile {
                max_tensile = sigma;
                critical_node = i;
            }
            max_compressive = max_compressive.min(sigma);
            Pascals::new(sigma)
        })
        .collect();

    let immortal = max_tensile < model.critical_stress().value();
    if immortal {
        metrics::counter("em.tree.immortal").inc();
    } else {
        metrics::counter("em.tree.mortal").inc();
    }
    Ok(SteadyStateStress {
        node_stress,
        max_tensile: Pascals::new(max_tensile),
        max_compressive: Pascals::new(max_compressive),
        critical_node,
        immortal,
    })
}

/// Steady-state filter over a batch of trees, optionally in parallel.
///
/// The parallel path is order-preserving and byte-identical to the
/// serial one: each tree's solve touches only its own data, and results
/// are collected back in input order (the same contract as the
/// workspace's sweep suites).
///
/// # Errors
///
/// Propagates the first per-tree error in input order.
pub fn batch_steady_state(
    trees: &[InterconnectTree],
    model: &KorhonenModel,
    parallel: bool,
) -> Result<Vec<SteadyStateStress>, TreeEmError> {
    if parallel {
        trees
            .par_iter()
            .map(|t| steady_state(t, model))
            .collect::<Result<Vec<_>, _>>()
    } else {
        trees.iter().map(|t| steady_state(t, model)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeSegment;
    use hotwire_units::{CurrentDensity, Kelvin, Length};

    fn um(v: f64) -> Length {
        Length::from_micrometers(v)
    }

    #[test]
    fn single_line_matches_closed_form() {
        // σ(x) = eZρj/Ω · (x − L/2); peak = eZρjL/(2Ω) at the cathode.
        let model = KorhonenModel::copper().unwrap();
        let t = Kelvin::new(373.15);
        let j = CurrentDensity::from_mega_amps_per_cm2(1.0);
        let line =
            InterconnectTree::straight_line("l", 8, um(5.0), um(0.5), um(0.5), j, t).unwrap();
        let s = steady_state(&line, &model).unwrap();
        let g = model.wind_term(j, t);
        let total = 8.0 * 5.0e-6;
        let expect_peak = -g * total / 2.0;
        assert!(
            (s.max_tensile.value() - expect_peak).abs() / expect_peak < 1e-12,
            "peak {} vs {}",
            s.max_tensile.value(),
            expect_peak
        );
        // Cathode = last node (conventional current flows into it).
        assert_eq!(s.critical_node, 8);
        // Anode end is equally compressive.
        assert!((s.max_compressive.value() + expect_peak).abs() / expect_peak < 1e-12);
    }

    #[test]
    fn reservoir_branch_buys_immortality() {
        // A driven segment just above its solo Blech product becomes
        // immortal when a zero-current reservoir hangs off its cathode:
        // the reservoir's metal volume shifts the conserved mean, so
        // the tensile peak never reaches σ_crit.
        let model = KorhonenModel::copper().unwrap();
        let t = Kelvin::new(373.15);
        let jl_crit = model.implied_blech_product(t); // A/m
        let len = 20.0e-6;
        let j = CurrentDensity::new(jl_crit / len * 1.05); // 5 % mortal solo
        let seg = |from, to, density: CurrentDensity| TreeSegment {
            from,
            to,
            length: Length::new(len),
            width: um(0.5),
            thickness: um(0.5),
            current_density: density,
            temperature: t,
        };
        let solo = InterconnectTree::new("solo", 2, vec![seg(0, 1, j)]).unwrap();
        assert!(!steady_state(&solo, &model).unwrap().immortal);

        // Same driven segment 0→1 plus a quiet reservoir past the
        // cathode (node 1), where the void would otherwise nucleate.
        let with_res = InterconnectTree::new(
            "res",
            3,
            vec![seg(0, 1, j), seg(1, 2, CurrentDensity::new(0.0))],
        )
        .unwrap();
        let s = steady_state(&with_res, &model).unwrap();
        assert!(
            s.immortal,
            "reservoir should shift the mean: peak {} vs crit {}",
            s.max_tensile.value(),
            model.critical_stress().value()
        );
    }

    #[test]
    fn batch_parallel_is_bit_identical_to_serial() {
        let model = KorhonenModel::copper().unwrap();
        let t = Kelvin::new(373.15);
        let trees: Vec<_> = (1..20)
            .map(|i| {
                InterconnectTree::straight_line(
                    format!("l{i}"),
                    i,
                    um(3.0 + i as f64),
                    um(0.4),
                    um(0.5),
                    CurrentDensity::from_mega_amps_per_cm2(0.3 * i as f64),
                    t,
                )
                .unwrap()
            })
            .collect();
        let serial = batch_steady_state(&trees, &model, false).unwrap();
        let par = batch_steady_state(&trees, &model, true).unwrap();
        assert_eq!(serial.len(), par.len());
        for (a, b) in serial.iter().zip(&par) {
            assert_eq!(
                a.max_tensile.value().to_bits(),
                b.max_tensile.value().to_bits()
            );
            for (x, y) in a.node_stress.iter().zip(&b.node_stress) {
                assert_eq!(x.value().to_bits(), y.value().to_bits());
            }
        }
    }
}
