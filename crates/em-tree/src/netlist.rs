//! Interconnect-tree extraction from SPICE netlists.
//!
//! Supply trees come in through the existing netlist format
//! ([`hotwire_circuit::parser`]): resistors are metal segments, current
//! sources are the load taps, and a voltage source (or ground) marks
//! each tree's supply root. Because the network is a tree, every branch
//! current follows from Kirchhoff's current law alone — one DFS, no
//! matrix solve — which keeps the whole extract-and-filter path linear
//! in the segment count.
//!
//! Geometry that a netlist cannot carry (drawn width, metal thickness)
//! comes from [`NetlistTreeOptions`]; each resistor's length is
//! recovered from its resistance via `L = R·w·t/ρ(T)`.

use hotwire_circuit::netlist::{Circuit, Device};
use hotwire_circuit::parser::{parse_netlist, ParsedCircuit};
use hotwire_circuit::CircuitError;
use hotwire_obs::metrics;
use hotwire_tech::Metal;
use hotwire_units::{CurrentDensity, Kelvin, Length};

use crate::tree::{InterconnectTree, TreeSegment};
use crate::TreeEmError;

/// Uniform geometry and operating point applied to extracted trees.
#[derive(Debug, Clone)]
pub struct NetlistTreeOptions {
    /// Drawn wire width.
    pub width: Length,
    /// Metal thickness.
    pub thickness: Length,
    /// Metal system (resistivity fit for the R → length inversion).
    pub metal: Metal,
    /// Uniform metal temperature (the coupled engine refines this
    /// per-segment later).
    pub temperature: Kelvin,
}

/// One tree lifted out of a netlist, with its name mapping preserved.
#[derive(Debug, Clone)]
pub struct ExtractedTree {
    /// The validated tree. Local node 0 is the supply root; segments
    /// are oriented root-outward in DFS order.
    pub tree: InterconnectTree,
    /// Netlist node name for each tree-local node index.
    pub node_names: Vec<String>,
}

/// Extracts every resistor-connected component as a supply tree.
///
/// # Errors
///
/// Returns [`TreeEmError::UnsupportedNetlist`] when a component has a
/// resistor loop, no supply root, or more than one root (branch
/// currents would need a full solve), and propagates geometry errors
/// from tree validation.
pub fn trees_from_netlist(
    parsed: &ParsedCircuit,
    options: &NetlistTreeOptions,
) -> Result<Vec<ExtractedTree>, TreeEmError> {
    // `node_count()` counts non-ground nodes; ids span 0..=node_count.
    let n = parsed.circuit.node_count() + 1;
    let mut names: Vec<String> = (0..n).map(|i| format!("n{i}")).collect();
    if Circuit::GROUND < n {
        names[Circuit::GROUND] = "0".to_string();
    }
    for name in parsed.node_names() {
        if let Some(id) = parsed.node(&name) {
            names[id] = name;
        }
    }

    // Resistor edges, injections, and supply attachments.
    let mut edges: Vec<(usize, usize, f64)> = Vec::new();
    let mut injection = vec![0.0f64; n];
    let mut supply = vec![false; n];
    supply[Circuit::GROUND] = true;
    for d in parsed.circuit.devices() {
        match d {
            Device::Resistor { a, b, ohms } => edges.push((*a, *b, *ohms)),
            Device::CurrentSource {
                from,
                into,
                waveform,
            } => {
                let amps = waveform.at(0.0);
                injection[*into] += amps;
                injection[*from] -= amps;
            }
            Device::VoltageSource { plus, minus, .. } => {
                supply[*plus] = true;
                supply[*minus] = true;
            }
            Device::Capacitor { .. } => {} // no DC current path
            Device::Mosfet { .. } => {
                return Err(TreeEmError::UnsupportedNetlist {
                    message: "tree extraction handles linear R/I/V netlists only, found a MOSFET"
                        .into(),
                })
            }
        }
    }

    // Union resistor edges into components.
    let mut adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
    for (e, &(a, b, _)) in edges.iter().enumerate() {
        if a == b {
            return Err(TreeEmError::UnsupportedNetlist {
                message: format!("resistor {e} is a self-loop at node '{}'", names[a]),
            });
        }
        adj[a].push((e, b));
        adj[b].push((e, a));
    }

    let rho = options.metal.resistivity(options.temperature).value();
    let area = options.width.value() * options.thickness.value();
    let mut component = vec![usize::MAX; n];
    let mut out = Vec::new();
    for start in 0..n {
        if component[start] != usize::MAX || adj[start].is_empty() {
            continue;
        }
        // Gather this component (iterative — trees can be 10k deep).
        let comp_id = out.len();
        let mut nodes = vec![start];
        component[start] = comp_id;
        let mut head = 0;
        while head < nodes.len() {
            let u = nodes[head];
            head += 1;
            for &(_, v) in &adj[u] {
                if component[v] == usize::MAX {
                    component[v] = comp_id;
                    nodes.push(v);
                }
            }
        }
        let edge_count: usize = nodes.iter().map(|&u| adj[u].len()).sum::<usize>() / 2;
        if edge_count != nodes.len() - 1 {
            return Err(TreeEmError::UnsupportedNetlist {
                message: format!(
                    "component at '{}' has {edge_count} resistors over {} nodes — resistor loops \
                     need a mesh solver, not the tree path",
                    names[start],
                    nodes.len()
                ),
            });
        }
        let roots: Vec<usize> = nodes.iter().copied().filter(|&u| supply[u]).collect();
        let root = match roots.as_slice() {
            [r] => *r,
            [] => {
                return Err(TreeEmError::UnsupportedNetlist {
                    message: format!(
                        "component at '{}' has no supply root (voltage source or ground)",
                        names[start]
                    ),
                })
            }
            many => {
                return Err(TreeEmError::UnsupportedNetlist {
                    message: format!(
                        "component at '{}' has {} supply roots — branch currents are not \
                         determined by KCL alone",
                        names[start],
                        many.len()
                    ),
                })
            }
        };

        // DFS from the root: local ids in pre-order (root = 0), subtree
        // injection sums give every branch current in one pass.
        let mut local = vec![usize::MAX; n];
        local[root] = 0;
        let mut local_names = vec![names[root].clone()];
        let mut order = vec![(root, usize::MAX)]; // (node, incoming edge)
        let mut stack = vec![root];
        while let Some(u) = stack.pop() {
            for &(e, v) in &adj[u] {
                if local[v] == usize::MAX {
                    local[v] = local_names.len();
                    local_names.push(names[v].clone());
                    order.push((v, e));
                    stack.push(v);
                }
            }
        }
        // Subtree injection totals, children before parents.
        let mut subtree = vec![0.0f64; order.len()];
        for (k, &(u, _)) in order.iter().enumerate() {
            subtree[k] = injection[u];
        }
        let parent_of: Vec<usize> = {
            let mut p = vec![usize::MAX; order.len()];
            for (k, &(u, e)) in order.iter().enumerate().skip(1) {
                let (a, b, _) = edges[e];
                p[k] = local[if a == u { b } else { a }];
            }
            p
        };
        // Parents precede children in `order`, so a reverse sweep sums
        // each subtree before its parent consumes it.
        for k in (1..order.len()).rev() {
            let add = subtree[k];
            subtree[parent_of[k]] += add;
        }

        let mut segments = Vec::with_capacity(order.len() - 1);
        for (k, &(u, e)) in order.iter().enumerate().skip(1) {
            let (_, _, ohms) = edges[e];
            let length = ohms * area / rho;
            // Conventional current from parent into this subtree must
            // balance everything the subtree's taps draw.
            let amps = -subtree[k];
            segments.push(TreeSegment {
                from: parent_of[k],
                to: local[u],
                length: Length::new(length),
                width: options.width,
                thickness: options.thickness,
                current_density: CurrentDensity::new(amps / area),
                temperature: options.temperature,
            });
        }
        let tree = InterconnectTree::new(names[root].clone(), order.len(), segments)?;
        metrics::counter("em.tree.extracted").inc();
        out.push(ExtractedTree {
            tree,
            node_names: local_names,
        });
    }
    Ok(out)
}

/// Parses a netlist and extracts its supply trees in one call.
///
/// # Errors
///
/// Propagates parse errors as [`TreeEmError::Circuit`] and extraction
/// errors from [`trees_from_netlist`].
pub fn trees_from_netlist_text(
    text: &str,
    options: &NetlistTreeOptions,
) -> Result<Vec<ExtractedTree>, TreeEmError> {
    let parsed = parse_netlist(text).map_err(CircuitError::from)?;
    trees_from_netlist(&parsed, options)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> NetlistTreeOptions {
        NetlistTreeOptions {
            width: Length::from_micrometers(0.5),
            thickness: Length::from_micrometers(0.5),
            metal: Metal::copper(),
            temperature: Kelvin::new(373.15),
        }
    }

    #[test]
    fn straight_line_roundtrip() {
        // vdd --R1-- n1 --R2-- n2 --load(2 mA)--> gnd
        let text = "\
V1 vdd 0 DC 1.0
R1 vdd n1 10
R2 n1 n2 10
I1 n2 0 DC 2e-3
";
        let o = opts();
        let trees = trees_from_netlist_text(text, &o).unwrap();
        assert_eq!(trees.len(), 1);
        let t = &trees[0].tree;
        assert_eq!(t.name(), "vdd");
        assert_eq!(trees[0].node_names[0], "vdd");
        assert_eq!(t.segments().len(), 2);
        // Both segments carry the full 2 mA away from the root.
        let area = 0.25e-12;
        for s in t.segments() {
            assert!(
                (s.current_density.value() - 2.0e-3 / area).abs() / (2.0e-3 / area) < 1e-12,
                "j = {}",
                s.current_density
            );
            // L = R·A/ρ at 100 °C.
            let rho = o.metal.resistivity(o.temperature).value();
            assert!((s.length.value() - 10.0 * area / rho).abs() / s.length.value() < 1e-12);
        }
    }

    #[test]
    fn junction_tree_splits_current_by_kcl() {
        // One trunk feeding two branch loads of 1 mA and 3 mA.
        let text = "\
V1 vdd 0 DC 1.0
R1 vdd mid 5
R2 mid a 10
R3 mid b 10
I1 a 0 DC 1e-3
I2 b 0 DC 3e-3
";
        let trees = trees_from_netlist_text(text, &opts()).unwrap();
        assert_eq!(trees.len(), 1);
        let ex = &trees[0];
        let area = 0.25e-12;
        let by_head = |name: &str| {
            let idx = ex.node_names.iter().position(|n| n == name).unwrap();
            ex.tree
                .segments()
                .iter()
                .find(|s| s.to == idx)
                .unwrap()
                .current_density
                .value()
                * area
        };
        assert!((by_head("mid") - 4.0e-3).abs() < 1e-15);
        assert!((by_head("a") - 1.0e-3).abs() < 1e-15);
        assert!((by_head("b") - 3.0e-3).abs() < 1e-15);
    }

    #[test]
    fn rejects_loops_and_missing_roots() {
        let looped = "\
V1 vdd 0 DC 1.0
R1 vdd a 1
R2 a b 1
R3 b vdd 1
";
        assert!(matches!(
            trees_from_netlist_text(looped, &opts()),
            Err(TreeEmError::UnsupportedNetlist { .. })
        ));
        let floating = "\
R1 a b 1
I1 b a DC 1e-3
";
        assert!(matches!(
            trees_from_netlist_text(floating, &opts()),
            Err(TreeEmError::UnsupportedNetlist { .. })
        ));
    }

    #[test]
    fn two_components_give_two_trees() {
        let text = "\
V1 vdd1 0 DC 1.0
R1 vdd1 a 10
I1 a 0 DC 1e-3
V2 vdd2 0 DC 1.0
R2 vdd2 b 10
I2 b 0 DC 2e-3
";
        let trees = trees_from_netlist_text(text, &opts()).unwrap();
        assert_eq!(trees.len(), 2);
    }
}
