//! Property tests for the tree-EM stress solvers.
//!
//! Three claims are pinned over randomized inputs: (1) on a single
//! strap the linear-time steady-state filter is *the same predicate*
//! as the classical Blech product check it was calibrated to; (2) on
//! arbitrary random trees the BFS recurrence agrees with a dense
//! direct solve of the zero-flux equations; (3) the batch drivers are
//! byte-identical between their rayon and serial paths.

use hotwire_circuit::linalg::Matrix;
use hotwire_em::blech::BlechModel;
use hotwire_em_tree::model::KorhonenModel;
use hotwire_em_tree::steady::{batch_steady_state, steady_state};
use hotwire_em_tree::transient::{KorhonenSolver, TransientOptions};
use hotwire_em_tree::tree::{InterconnectTree, TreeSegment};
use hotwire_units::{CurrentDensity, Kelvin, Length, Seconds};
use proptest::prelude::*;

const CALIBRATION_TEMPERATURE: f64 = 373.15;

fn um(v: f64) -> Length {
    Length::from_micrometers(v)
}

/// A random tree: node v ∈ 1..n hangs off a random earlier node, so
/// every topology from a path to a star appears.
fn random_tree(
    parents: &[usize],
    lengths: &[f64],
    densities: &[f64],
    temps: &[f64],
) -> InterconnectTree {
    let segments: Vec<TreeSegment> = parents
        .iter()
        .enumerate()
        .map(|(k, &p)| TreeSegment {
            from: p % (k + 1), // any node already placed
            to: k + 1,
            length: um(lengths[k]),
            width: um(0.4),
            thickness: um(0.4),
            current_density: CurrentDensity::from_mega_amps_per_cm2(densities[k]),
            temperature: Kelvin::new(temps[k] + 273.15),
        })
        .collect();
    InterconnectTree::new("prop", parents.len() + 1, segments).expect("valid random tree")
}

/// Dense cross-check: stamp the zero-flux equations
/// `Σ w_ij(σ_i − σ_j) = Σ ±κAG` with σ_0 pinned, solve directly, then
/// shift by the same atom-conservation constant the fast path uses.
fn dense_node_stress(tree: &InterconnectTree, model: &KorhonenModel) -> Vec<f64> {
    let n = tree.node_count();
    let mut k_mat = Matrix::zeros(n - 1, n - 1);
    let mut rhs = vec![0.0_f64; n - 1];
    // Unknowns are nodes 1..n (node 0 pinned at 0); equation rows are
    // the FV balances at those same nodes.
    for seg in tree.segments() {
        let area = seg.area().value();
        let kappa = model.kappa(seg.temperature);
        let w = kappa * area / seg.length.value();
        let s = kappa * area * model.wind_term(seg.current_density, seg.temperature);
        let (a, b) = (seg.from, seg.to);
        if a > 0 {
            k_mat.add(a - 1, a - 1, w);
            rhs[a - 1] += s;
        }
        if b > 0 {
            k_mat.add(b - 1, b - 1, w);
            rhs[b - 1] -= s;
        }
        if a > 0 && b > 0 {
            k_mat.add(a - 1, b - 1, -w);
            k_mat.add(b - 1, a - 1, -w);
        }
    }
    let x = k_mat.solve(&rhs).expect("grounded Laplacian is SPD");
    let mut sigma = vec![0.0_f64];
    sigma.extend(x);
    // Atom conservation: ∫σ dx = 0 with σ linear along each segment.
    let mut weighted = 0.0;
    let mut total = 0.0;
    for seg in tree.segments() {
        let w_b = seg.area().value() * seg.length.value();
        weighted += w_b * (sigma[seg.from] + sigma[seg.to]) / 2.0;
        total += w_b;
    }
    let shift = -weighted / total;
    for s in &mut sigma {
        *s += shift;
    }
    sigma
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Satellite consistency claim: a single-segment tree and
    /// `em::blech` are the same immortality predicate at the
    /// calibration temperature — for any (j, L), including points
    /// straddling the (jL)_crit threshold.
    #[test]
    fn single_strap_filter_is_exactly_blech(
        j_ma in 0.01_f64..4.0,
        length_um in 1.0_f64..400.0,
    ) {
        let blech = BlechModel::copper();
        let model = KorhonenModel::copper().unwrap();
        let j = CurrentDensity::from_mega_amps_per_cm2(j_ma);
        let strap = InterconnectTree::straight_line(
            "strap", 1, um(length_um), um(0.4), um(0.4), j,
            Kelvin::new(CALIBRATION_TEMPERATURE),
        ).unwrap();
        let steady = steady_state(&strap, &model).unwrap();
        prop_assert_eq!(steady.immortal, blech.is_immortal(j, um(length_um)));
        // And the implied product inverts the calibration exactly.
        let implied = model.implied_blech_product(Kelvin::new(CALIBRATION_TEMPERATURE));
        let reference = blech.critical_product_amps_per_cm() * 100.0; // A/cm -> A/m
        prop_assert!((implied - reference).abs() / reference < 1.0e-9);
    }

    /// The O(segments) BFS recurrence equals a dense direct solve of
    /// the zero-flux system on arbitrary trees with per-segment
    /// geometry, drive, and temperature.
    #[test]
    fn steady_state_matches_dense_direct_solve(
        parents in prop::collection::vec(0_usize..64, 1..12),
        lengths in prop::collection::vec(2.0_f64..80.0, 12),
        densities in prop::collection::vec(-2.0_f64..2.0, 12),
        temps in prop::collection::vec(40.0_f64..250.0, 12),
    ) {
        let tree = random_tree(&parents, &lengths, &densities, &temps);
        let model = KorhonenModel::copper().unwrap();
        let fast = steady_state(&tree, &model).unwrap();
        let dense = dense_node_stress(&tree, &model);
        let scale = dense.iter().fold(1.0_f64, |m, &s| m.max(s.abs()));
        for (a, b) in fast.node_stress.iter().zip(&dense) {
            prop_assert!(
                (a.value() - b).abs() <= 1.0e-8 * scale,
                "fast {} vs dense {} (scale {})", a.value(), b, scale
            );
        }
    }

    /// Per-tree sweeps must not depend on rayon scheduling: the
    /// parallel batch is byte-identical to the serial one.
    #[test]
    fn parallel_steady_batch_is_bit_identical(
        parents in prop::collection::vec(0_usize..64, 1..8),
        lengths in prop::collection::vec(2.0_f64..80.0, 8),
        densities in prop::collection::vec(-2.0_f64..2.0, 8),
        temps in prop::collection::vec(40.0_f64..250.0, 8),
        copies in 2_usize..6,
    ) {
        let tree = random_tree(&parents, &lengths, &densities, &temps);
        // Perturb each copy so equal results cannot hide reordering.
        let trees: Vec<InterconnectTree> = (0..copies)
            .map(|i| {
                let points: Vec<(CurrentDensity, Kelvin)> = tree
                    .segments()
                    .iter()
                    .map(|s| {
                        (
                            CurrentDensity::new(s.current_density.value() * (1.0 + i as f64 * 0.1)),
                            s.temperature,
                        )
                    })
                    .collect();
                tree.with_operating_points(&points).unwrap()
            })
            .collect();
        let model = KorhonenModel::copper().unwrap();
        let serial = batch_steady_state(&trees, &model, false).unwrap();
        let parallel = batch_steady_state(&trees, &model, true).unwrap();
        prop_assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            prop_assert_eq!(a.immortal, b.immortal);
            prop_assert_eq!(a.max_tensile.value().to_bits(), b.max_tensile.value().to_bits());
            for (x, y) in a.node_stress.iter().zip(&b.node_stress) {
                prop_assert_eq!(x.value().to_bits(), y.value().to_bits());
            }
        }
    }
}

proptest! {
    // The transient cases integrate ~900 implicit steps each; a small
    // case count keeps the suite in tier-1 time while still sweeping
    // drive, length, and temperature.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Transient-vs-analytic: on any immortal line the Korhonen
    /// integrator must relax to the closed-form linear stress ramp.
    #[test]
    fn transient_relaxes_to_the_analytic_ramp(
        j_ma in 0.05_f64..0.4,
        segment_um in 4.0_f64..12.0,
        segments in 2_usize..5,
        temp_c in 80.0_f64..140.0,
    ) {
        let model = KorhonenModel::copper().unwrap();
        let line = InterconnectTree::straight_line(
            "prop-line", segments, um(segment_um), um(0.4), um(0.4),
            CurrentDensity::from_mega_amps_per_cm2(j_ma),
            Kelvin::new(temp_c + 273.15),
        ).unwrap();
        let steady = steady_state(&line, &model).unwrap();
        prop_assume!(steady.immortal); // mortal lines nucleate instead of relaxing
        let total_l = line.total_length().value();
        let kappa = model.kappa(Kelvin::new(temp_c + 273.15));
        // ~50 diffusion times: the slowest mode has decayed by e^-50.
        let horizon = Seconds::new(50.0 * total_l * total_l / kappa);
        let mut solver = KorhonenSolver::new(
            &line, &model, TransientOptions::for_horizon(horizon),
        ).unwrap();
        let out = solver.run_to_failure().unwrap();
        prop_assert!(out.failure_time.is_none());
        let peak = steady.max_tensile.value().abs().max(1.0);
        for (t, s) in solver.node_stress().iter().zip(&steady.node_stress) {
            prop_assert!(
                (t.value() - s.value()).abs() < 5.0e-3 * peak,
                "node stress {} vs analytic {}", t.value(), s.value()
            );
        }
    }
}
