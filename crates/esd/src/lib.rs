//! Thermal failure of interconnects under ESD-scale current pulses —
//! the paper's §6 and its refs. \[8\], \[9\], \[25\]–\[27\].
//!
//! ESD is a high-current (> 1 A), short-time-scale (< 200 ns) event. The
//! self-consistent design rules of `hotwire-core` protect against wearout;
//! interconnects in ESD protection circuits and I/O buffers must
//! additionally survive these single pulses without melting open — and
//! preferably without the melt-and-resolidify *latent damage* that
//! degrades EM lifetime.
//!
//! This crate provides the standard stress models ([`EsdStress`]: human
//! body, machine, charged device, TLP), drives the transient Joule-heating
//! solver from `hotwire-thermal`, classifies the outcome
//! ([`EsdVerdict`]), and inverts the analysis into the width design rule
//! of ref. \[8\] ([`minimum_width`]).
//!
//! # Examples
//!
//! ```
//! use hotwire_esd::{check_robustness, EsdStress, EsdVerdict};
//! use hotwire_tech::{Dielectric, Metal};
//! use hotwire_thermal::impedance::{InsulatorStack, LineGeometry, QUASI_2D_PHI};
//! use hotwire_units::{Celsius, Length};
//!
//! let um = Length::from_micrometers;
//! // A wide I/O bus line easily survives a 2 kV human-body discharge…
//! let line = LineGeometry::new(um(20.0), um(0.55), um(100.0))?;
//! let stack = InsulatorStack::single(um(1.2), &Dielectric::oxide());
//! let verdict = check_robustness(
//!     &Metal::alcu(),
//!     line,
//!     &stack,
//!     QUASI_2D_PHI,
//!     Celsius::new(25.0).to_kelvin(),
//!     &EsdStress::human_body(2000.0),
//! )?;
//! assert_eq!(verdict.outcome, hotwire_esd::EsdOutcome::Pass);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// `!(x > 0.0)` is used deliberately throughout validation code: unlike
// `x <= 0.0` it also rejects NaN, which must never enter a solver.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

mod robustness;
mod stress;

pub use robustness::{check_robustness, minimum_width, EsdOutcome, EsdVerdict};
pub use stress::EsdStress;
