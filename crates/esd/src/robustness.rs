//! ESD robustness classification and the minimum-width design rule.

use hotwire_em::derating::latent_damage_factor;
use hotwire_tech::Metal;
use hotwire_thermal::impedance::{InsulatorStack, LineGeometry};
use hotwire_thermal::transient::TransientLine;
use hotwire_thermal::ThermalError;
use hotwire_units::{CurrentDensity, Kelvin, Length, Seconds};
use serde::{Deserialize, Serialize};

use crate::EsdStress;

/// How a line fared under an ESD event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EsdOutcome {
    /// Peak temperature stayed below the latent-damage onset.
    Pass,
    /// The line touched the melt plateau but resolidified — it survives
    /// electrically, with degraded EM lifetime (ref. \[9\]).
    LatentDamage,
    /// Complete melting: open-circuit failure (ref. \[8\]).
    OpenCircuit,
}

/// The full verdict of an ESD robustness check.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EsdVerdict {
    /// The classified outcome.
    pub outcome: EsdOutcome,
    /// Peak metal temperature reached during the event.
    pub peak_temperature: Kelvin,
    /// Peak current density through the line.
    pub peak_density: CurrentDensity,
    /// Multiplicative EM-lifetime derating implied by the thermal
    /// excursion (1.0 = pristine; see
    /// [`hotwire_em::derating::latent_damage_factor`]).
    pub em_lifetime_factor: f64,
}

/// Simulates the line under the stress and classifies the outcome.
///
/// # Errors
///
/// Propagates [`ThermalError`] from geometry validation and the transient
/// solver.
pub fn check_robustness(
    metal: &Metal,
    line: LineGeometry,
    stack: &InsulatorStack,
    phi: f64,
    ambient: Kelvin,
    stress: &EsdStress,
) -> Result<EsdVerdict, ThermalError> {
    let model = TransientLine::new(metal.clone(), line, stack, phi, ambient)?;
    let area = line.cross_section();
    let duration = stress.duration();
    let dt = Seconds::new(duration.value() / 8000.0);
    let result = model.simulate(
        |t| {
            let i = stress.current_at(t);
            CurrentDensity::new(i.value().abs() / area.value())
        },
        duration,
        dt,
    )?;
    let outcome = if result.failed() {
        EsdOutcome::OpenCircuit
    } else if result.latent_damage() {
        EsdOutcome::LatentDamage
    } else {
        EsdOutcome::Pass
    };
    let peak_density = stress.peak_current() / area;
    Ok(EsdVerdict {
        outcome,
        peak_temperature: result.peak_temperature,
        peak_density,
        em_lifetime_factor: latent_damage_factor(
            result.peak_temperature,
            metal.melting_point(),
            0.3,
        ),
    })
}

/// The width design rule of ref. \[8\]: the smallest line width (at the
/// given metal thickness) that survives the stress.
///
/// * `require_pristine = false` — survive without open circuit (the hard
///   failure rule).
/// * `require_pristine = true` — additionally avoid latent damage (the
///   reliability-hazard rule of ref. \[9\]).
///
/// # Errors
///
/// Propagates solver errors; returns [`ThermalError::NoConvergence`] when
/// no width up to 1 mm suffices.
#[allow(clippy::too_many_arguments)] // mirrors the physical parameter list of ref. [8]'s rule
pub fn minimum_width(
    metal: &Metal,
    thickness: Length,
    length: Length,
    stack: &InsulatorStack,
    phi: f64,
    ambient: Kelvin,
    stress: &EsdStress,
    require_pristine: bool,
) -> Result<Length, ThermalError> {
    let acceptable = |w: Length| -> Result<bool, ThermalError> {
        let line = LineGeometry::new(w, thickness, length)?;
        let verdict = check_robustness(metal, line, stack, phi, ambient, stress)?;
        Ok(match verdict.outcome {
            EsdOutcome::Pass => true,
            EsdOutcome::LatentDamage => !require_pristine,
            EsdOutcome::OpenCircuit => false,
        })
    };
    let mut lo = Length::from_micrometers(0.05);
    let mut hi = lo;
    let mut expand = 0;
    while !acceptable(hi)? {
        lo = hi;
        hi = hi * 2.0;
        expand += 1;
        if hi.value() > 1.0e-3 {
            return Err(ThermalError::NoConvergence {
                iterations: expand,
                residual: f64::INFINITY,
            });
        }
    }
    if expand == 0 {
        return Ok(lo); // already fine at the smallest probe width
    }
    for _ in 0..40 {
        let mid = (lo + hi) * 0.5;
        if acceptable(mid)? {
            hi = mid;
        } else {
            lo = mid;
        }
        if (hi.value() - lo.value()) / hi.value() < 1e-3 {
            break;
        }
    }
    Ok(hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotwire_tech::Dielectric;
    use hotwire_units::Celsius;

    fn um(v: f64) -> Length {
        Length::from_micrometers(v)
    }

    fn stack() -> InsulatorStack {
        InsulatorStack::single(um(1.2), &Dielectric::oxide())
    }

    fn ambient() -> Kelvin {
        Celsius::new(25.0).to_kelvin()
    }

    #[test]
    fn wide_line_passes_hbm() {
        let line = LineGeometry::new(um(20.0), um(0.55), um(100.0)).unwrap();
        let v = check_robustness(
            &Metal::alcu(),
            line,
            &stack(),
            2.45,
            ambient(),
            &EsdStress::human_body(2000.0),
        )
        .unwrap();
        assert_eq!(v.outcome, EsdOutcome::Pass);
        assert!((v.em_lifetime_factor - 1.0).abs() < 1e-12);
    }

    #[test]
    fn narrow_line_melts_open_under_hbm() {
        // 2 kV HBM ⇒ 1.33 A; through a 0.5 × 0.55 µm line that is
        // ~480 MA/cm² — far beyond the ~60 MA/cm² failure threshold.
        let line = LineGeometry::new(um(0.5), um(0.55), um(100.0)).unwrap();
        let v = check_robustness(
            &Metal::alcu(),
            line,
            &stack(),
            2.45,
            ambient(),
            &EsdStress::human_body(2000.0),
        )
        .unwrap();
        assert_eq!(v.outcome, EsdOutcome::OpenCircuit);
        assert!(v.peak_density.to_mega_amps_per_cm2() > 100.0);
    }

    #[test]
    fn verdict_ordering_with_width() {
        // Sweep width downward: Pass → LatentDamage → OpenCircuit in order.
        let mut seen_pass = false;
        let mut seen_open = false;
        let mut last_rank = 3;
        for w in [12.0, 6.0, 4.0, 3.0, 2.5, 2.0, 1.5, 1.0, 0.6] {
            let line = LineGeometry::new(um(w), um(0.55), um(100.0)).unwrap();
            let v = check_robustness(
                &Metal::alcu(),
                line,
                &stack(),
                2.45,
                ambient(),
                &EsdStress::human_body(2000.0),
            )
            .unwrap();
            let rank = match v.outcome {
                EsdOutcome::Pass => 3,
                EsdOutcome::LatentDamage => 2,
                EsdOutcome::OpenCircuit => 1,
            };
            assert!(rank <= last_rank, "outcomes must degrade monotonically");
            last_rank = rank;
            seen_pass |= rank == 3;
            seen_open |= rank == 1;
        }
        assert!(seen_pass && seen_open, "sweep must cover both extremes");
    }

    #[test]
    fn minimum_width_rule_brackets_the_transition() {
        let w_open = minimum_width(
            &Metal::alcu(),
            um(0.55),
            um(100.0),
            &stack(),
            2.45,
            ambient(),
            &EsdStress::human_body(2000.0),
            false,
        )
        .unwrap();
        // The rule must sit in a physical range…
        let w_um = w_open.to_micrometers();
        assert!((0.3..20.0).contains(&w_um), "min width = {w_um} µm");
        // …and the pristine rule must be at least as wide.
        let w_pristine = minimum_width(
            &Metal::alcu(),
            um(0.55),
            um(100.0),
            &stack(),
            2.45,
            ambient(),
            &EsdStress::human_body(2000.0),
            true,
        )
        .unwrap();
        assert!(w_pristine >= w_open);
        // And just below the open-circuit rule, the line must fail.
        let line = LineGeometry::new(w_open * 0.8, um(0.55), um(100.0)).unwrap();
        let v = check_robustness(
            &Metal::alcu(),
            line,
            &stack(),
            2.45,
            ambient(),
            &EsdStress::human_body(2000.0),
        )
        .unwrap();
        assert_eq!(v.outcome, EsdOutcome::OpenCircuit);
    }

    #[test]
    fn stronger_stress_needs_wider_lines() {
        let w2kv = minimum_width(
            &Metal::alcu(),
            um(0.55),
            um(100.0),
            &stack(),
            2.45,
            ambient(),
            &EsdStress::human_body(2000.0),
            false,
        )
        .unwrap();
        let w4kv = minimum_width(
            &Metal::alcu(),
            um(0.55),
            um(100.0),
            &stack(),
            2.45,
            ambient(),
            &EsdStress::human_body(4000.0),
            false,
        )
        .unwrap();
        assert!(w4kv > w2kv);
    }

    #[test]
    fn copper_outperforms_alcu_under_esd() {
        // Cu's higher melting point, heat capacity and lower ρ buy margin.
        // (Width chosen so both metals survive — peak temperatures are
        // capped at the melting point once a line melts, which would make
        // the comparison meaningless.)
        let line = LineGeometry::new(um(6.0), um(0.55), um(100.0)).unwrap();
        let al = check_robustness(
            &Metal::alcu(),
            line,
            &stack(),
            2.45,
            ambient(),
            &EsdStress::human_body(2000.0),
        )
        .unwrap();
        let cu = check_robustness(
            &Metal::copper(),
            line,
            &stack(),
            2.45,
            ambient(),
            &EsdStress::human_body(2000.0),
        )
        .unwrap();
        assert!(cu.peak_temperature < al.peak_temperature);
    }

    #[test]
    fn self_consistent_rules_sit_far_below_esd_failure() {
        // §6's closing point: j_peak,self-consistent (≤ ~10 MA/cm²) is far
        // below ESD-scale failure densities (~60 MA/cm²) — but ESD circuits
        // still need the dedicated rule. Here: a line carrying 10 MA/cm²
        // for a full 200 ns TLP barely warms.
        let line = LineGeometry::new(um(1.0), um(0.55), um(100.0)).unwrap();
        let i = 10.0e10 * line.cross_section().value(); // 10 MA/cm² in A
        let v = check_robustness(
            &Metal::alcu(),
            line,
            &stack(),
            2.45,
            ambient(),
            &EsdStress::tlp(i, Seconds::from_nanos(200.0)),
        )
        .unwrap();
        assert_eq!(v.outcome, EsdOutcome::Pass);
        assert!(v.peak_temperature.value() < ambient().value() + 40.0);
    }
}
