//! Standard ESD stress current waveforms.

use hotwire_units::{Current, Seconds};
use serde::{Deserialize, Serialize};

/// An ESD stress event, parameterized the way test standards do.
///
/// All models reduce to a current waveform `i(t)` delivered into the
/// interconnect under test.
///
/// ```
/// use hotwire_esd::EsdStress;
///
/// let hbm = EsdStress::human_body(2000.0);
/// // HBM: I_peak = V / 1.5 kΩ ≈ 1.33 A
/// assert!((hbm.peak_current().value() - 1.333).abs() < 0.01);
/// // …and the event is over within a few hundred ns.
/// assert!(hbm.duration().to_nanos() < 1000.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EsdStress {
    /// Human-body model (MIL-STD-883 / JS-001): 100 pF through 1.5 kΩ.
    /// Double-exponential with ≈ 5 ns rise and 150 ns decay.
    HumanBody {
        /// Precharge voltage, volts.
        voltage: f64,
    },
    /// Machine model (JS-002 heritage): 200 pF, ≈ 0.75 µH, ~13 MHz damped
    /// oscillation.
    Machine {
        /// Precharge voltage, volts.
        voltage: f64,
    },
    /// Charged-device model: very fast (~1 ns) single-lobe discharge.
    ChargedDevice {
        /// Peak current, amperes (CDM is usually specified by peak
        /// current for a given package).
        peak: f64,
    },
    /// Transmission-line pulse: the rectangular lab stress used to
    /// characterize failure thresholds (ref. \[8\] used 100–200 ns TLP).
    Tlp {
        /// Pulse amplitude, amperes.
        current: f64,
        /// Pulse width, seconds.
        width: f64,
    },
}

impl EsdStress {
    /// A human-body discharge from the given precharge voltage.
    #[must_use]
    pub fn human_body(voltage: f64) -> Self {
        EsdStress::HumanBody { voltage }
    }

    /// A machine-model discharge from the given precharge voltage.
    #[must_use]
    pub fn machine(voltage: f64) -> Self {
        EsdStress::Machine { voltage }
    }

    /// A charged-device discharge with the given peak current.
    #[must_use]
    pub fn charged_device(peak: f64) -> Self {
        EsdStress::ChargedDevice { peak }
    }

    /// A rectangular transmission-line pulse.
    #[must_use]
    pub fn tlp(current: f64, width: Seconds) -> Self {
        EsdStress::Tlp {
            current,
            width: width.value(),
        }
    }

    /// Peak current of the event.
    #[must_use]
    pub fn peak_current(&self) -> Current {
        match self {
            EsdStress::HumanBody { voltage } => Current::new(voltage / 1500.0),
            EsdStress::Machine { voltage } => {
                // I_peak ≈ V·√(C/L) damped slightly by the first quarter-wave
                Current::new(voltage * (200.0e-12_f64 / 0.75e-6).sqrt() * 0.9)
            }
            EsdStress::ChargedDevice { peak } => Current::new(*peak),
            EsdStress::Tlp { current, .. } => Current::new(*current),
        }
    }

    /// The current at time `t` after the start of the event.
    #[must_use]
    pub fn current_at(&self, t: Seconds) -> Current {
        let t = t.value();
        if t < 0.0 {
            return Current::ZERO;
        }
        match self {
            EsdStress::HumanBody { voltage } => {
                let tau_d = 150.0e-9_f64;
                let tau_r = 5.0e-9_f64;
                let t_peak = (tau_d / tau_r).ln() * tau_r * tau_d / (tau_d - tau_r);
                let norm = (-t_peak / tau_d).exp() - (-t_peak / tau_r).exp();
                let ip = voltage / 1500.0;
                Current::new(ip * ((-t / tau_d).exp() - (-t / tau_r).exp()) / norm)
            }
            EsdStress::Machine { voltage } => {
                let l = 0.75e-6_f64;
                let c = 200.0e-12_f64;
                let omega = 1.0 / (l * c).sqrt();
                let tau = 60.0e-9;
                let ip = voltage * (c / l).sqrt();
                Current::new(ip * (-t / tau).exp() * (omega * t).sin())
            }
            EsdStress::ChargedDevice { peak } => {
                // Single half-sine lobe of 1 ns.
                let width = 1.0e-9;
                if t < width {
                    Current::new(peak * (std::f64::consts::PI * t / width).sin())
                } else {
                    Current::ZERO
                }
            }
            EsdStress::Tlp { current, width } => {
                if t <= *width {
                    Current::new(*current)
                } else {
                    Current::ZERO
                }
            }
        }
    }

    /// Samples the stress into a [`hotwire_em::SampledWaveform`] of
    /// current *density* for a given conductor cross-section, so the
    /// event can be analyzed with the same statistics machinery as
    /// operational waveforms (peak/average/RMS, effective duty cycle).
    ///
    /// # Errors
    ///
    /// Returns [`hotwire_em::EmError`] for `samples < 2` or a
    /// non-positive cross-section (propagated from the waveform
    /// constructor).
    pub fn to_density_waveform(
        &self,
        cross_section: hotwire_units::Area,
        samples: usize,
    ) -> Result<hotwire_em::SampledWaveform, hotwire_em::EmError> {
        let area = cross_section.value();
        hotwire_em::SampledWaveform::from_fn(self.duration(), samples, |t| {
            hotwire_units::CurrentDensity::new(self.current_at(t).value() / area)
        })
    }

    /// A conservative event duration (after which the current is
    /// negligible) — the simulation window used by the robustness check.
    #[must_use]
    pub fn duration(&self) -> Seconds {
        match self {
            EsdStress::HumanBody { .. } => Seconds::from_nanos(600.0),
            EsdStress::Machine { .. } => Seconds::from_nanos(400.0),
            EsdStress::ChargedDevice { .. } => Seconds::from_nanos(5.0),
            EsdStress::Tlp { width, .. } => Seconds::new(2.0 * width),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hbm_peak_normalization() {
        let s = EsdStress::human_body(2000.0);
        // Scan for the actual waveform maximum — must equal V/1.5 kΩ.
        let mut max = 0.0_f64;
        for k in 0..5000 {
            let t = Seconds::from_nanos(0.1 * f64::from(k));
            max = max.max(s.current_at(t).value());
        }
        assert!((max - 2000.0 / 1500.0).abs() < 1e-3, "max = {max}");
    }

    #[test]
    fn hbm_decays_within_duration() {
        let s = EsdStress::human_body(2000.0);
        let end = s.current_at(s.duration());
        assert!(end.value() < 0.03 * s.peak_current().value());
        assert_eq!(s.current_at(Seconds::new(-1.0e-9)), Current::ZERO);
    }

    #[test]
    fn machine_model_oscillates() {
        let s = EsdStress::machine(200.0);
        let mut saw_negative = false;
        let mut saw_positive = false;
        for k in 0..400 {
            let i = s.current_at(Seconds::from_nanos(f64::from(k))).value();
            saw_positive |= i > 0.01;
            saw_negative |= i < -0.01;
        }
        assert!(saw_positive && saw_negative, "MM must ring bipolar");
    }

    #[test]
    fn cdm_is_fast_single_lobe() {
        let s = EsdStress::charged_device(5.0);
        let mid = s.current_at(Seconds::from_nanos(0.5));
        assert!((mid.value() - 5.0).abs() < 1e-9, "peak at mid-lobe");
        assert_eq!(s.current_at(Seconds::from_nanos(1.5)), Current::ZERO);
        assert!(s.duration().to_nanos() <= 10.0);
    }

    #[test]
    fn tlp_is_rectangular() {
        let s = EsdStress::tlp(2.0, Seconds::from_nanos(100.0));
        assert_eq!(s.current_at(Seconds::from_nanos(50.0)).value(), 2.0);
        assert_eq!(s.current_at(Seconds::from_nanos(150.0)).value(), 0.0);
        assert_eq!(s.peak_current().value(), 2.0);
        assert!((s.duration().to_nanos() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn density_waveform_statistics() {
        use hotwire_units::Area;
        let s = EsdStress::human_body(2000.0);
        let area = Area::from_um2(1.65); // 3 × 0.55 µm line
        let w = s.to_density_waveform(area, 4000).unwrap();
        let stats = w.stats();
        assert!(stats.is_consistent());
        // peak density = I_peak / A, within sampling resolution
        let expected = s.peak_current().value() / area.value();
        assert!(
            (stats.peak.value() - expected).abs() / expected < 0.01,
            "{} vs {expected}",
            stats.peak.value()
        );
        // HBM is a one-shot decaying pulse: low effective duty cycle over
        // its observation window
        assert!(stats.effective_duty_cycle() < 0.6);
        assert!(s.to_density_waveform(area, 1).is_err());
    }

    #[test]
    fn higher_voltage_scales_current() {
        let a = EsdStress::human_body(1000.0).peak_current();
        let b = EsdStress::human_body(4000.0).peak_current();
        assert!((b.value() / a.value() - 4.0).abs() < 1e-12);
    }
}
