//! Flight recorder: a fixed-memory ring of recent structured events,
//! and the diagnostic-bundle snapshot built from it.
//!
//! The metrics registry says *how much* and *how long*; the trace sink
//! says everything, but only if someone was capturing stderr. Neither
//! survives a crash usefully. This module is the black box in between:
//! every numeric layer drops terse, timestamped breadcrumbs — stage
//! transitions, per-iteration residuals, health samples, per-request
//! lines in `hotwire serve` — into a process-global ring of
//! [`CAPACITY`] slots. Recording is always on and bounded: one atomic
//! sequence claim plus one uncontended per-slot lock, overwriting the
//! oldest event once the ring laps.
//!
//! On an error-path exit, a panic, or SIGUSR1, the binary freezes the
//! ring together with a metrics snapshot and a numerical-health
//! summary into a **diagnostic bundle** ([`bundle`]) — one
//! self-contained JSON document that `hotwire doctor` can analyze
//! offline. The bundle schema is documented in
//! `docs/OBSERVABILITY.md`.
//!
//! With the `telemetry` feature off, [`record`] is an empty inline
//! function and the ring does not exist; [`bundle`] still produces a
//! schema-valid (if event-free) document so error paths need no
//! feature gates.

use std::fmt;

use crate::json::Json;

/// Ring capacity: the recorder keeps this many most-recent events.
/// 1024 events × ~100 bytes ≈ 100 KiB, the fixed memory bound.
pub const CAPACITY: usize = 1024;

/// Identifier of the bundle JSON schema emitted by [`bundle`].
pub const BUNDLE_SCHEMA: &str = "hotwire.bundle/v1";

/// One recorded breadcrumb, as it appears in snapshots and bundles.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightEvent {
    /// Global sequence number (monotone across the whole process).
    pub seq: u64,
    /// Milliseconds since the recorder's first event (process-relative
    /// monotonic time, *not* wall-clock).
    pub t_ms: f64,
    /// Event family: `"stage"`, `"residual"`, `"health"`, `"request"`,
    /// `"error"`, …
    pub kind: &'static str,
    /// Human-readable detail line.
    pub detail: String,
}

impl FlightEvent {
    /// Serializes to the bundle schema's event shape.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::object([
            ("seq", Json::from(self.seq)),
            ("t_ms", Json::from(self.t_ms)),
            ("kind", Json::from(self.kind)),
            ("detail", Json::from(self.detail.as_str())),
        ])
    }
}

#[cfg(feature = "telemetry")]
mod imp {
    use std::sync::{LazyLock, Mutex, PoisonError};
    use std::time::Instant;

    use crate::sync::{AtomicU64, Ordering};

    use super::{FlightEvent, CAPACITY};

    // SAFETY(ordering): the head counter only hands out unique sequence
    // numbers (a single RMW `fetch_add`); the event payload it indexes
    // is published through the slot's Mutex, which provides the
    // happens-before edge to readers. Loads of the head are used for
    // counts and capacity math where an approximate in-flight value is
    // acceptable. The loom model in tests/loom.rs checks uniqueness of
    // sequence numbers and that a drain observes every completed write.
    pub const RELAXED: Ordering = Ordering::Relaxed;

    struct Slot {
        seq: u64,
        t_ms: f64,
        kind: &'static str,
        detail: String,
    }

    pub struct Ring {
        head: AtomicU64,
        slots: Vec<Mutex<Option<Slot>>>,
    }

    fn lock_slot(slot: &Mutex<Option<Slot>>) -> std::sync::MutexGuard<'_, Option<Slot>> {
        // A panic while holding the guard can at worst leave one stale
        // event behind; the recorder must never take the process down.
        slot.lock().unwrap_or_else(PoisonError::into_inner)
    }

    static RING: LazyLock<Ring> = LazyLock::new(|| Ring {
        head: AtomicU64::new(0),
        slots: (0..CAPACITY).map(|_| Mutex::new(None)).collect(),
    });

    static EPOCH: LazyLock<Instant> = LazyLock::new(Instant::now);

    pub fn record(kind: &'static str, detail: String) {
        let t_ms = EPOCH.elapsed().as_secs_f64() * 1e3;
        let ring = &*RING;
        let seq = ring.head.fetch_add(1, RELAXED);
        #[allow(clippy::cast_possible_truncation)]
        let idx = (seq % CAPACITY as u64) as usize;
        let mut guard = lock_slot(&ring.slots[idx]);
        // Lap guard: if a writer stalled long enough for the ring to
        // wrap past it, the newer event wins and the stale one is
        // dropped — the ring is strictly "most recent CAPACITY events".
        if guard.as_ref().is_none_or(|s| s.seq < seq) {
            *guard = Some(Slot {
                seq,
                t_ms,
                kind,
                detail,
            });
        }
    }

    pub fn snapshot_events() -> Vec<FlightEvent> {
        let ring = &*RING;
        let mut events: Vec<FlightEvent> = ring
            .slots
            .iter()
            .filter_map(|slot| {
                lock_slot(slot).as_ref().map(|s| FlightEvent {
                    seq: s.seq,
                    t_ms: s.t_ms,
                    kind: s.kind,
                    detail: s.detail.clone(),
                })
            })
            .collect();
        events.sort_by_key(|e| e.seq);
        events
    }

    pub fn recorded() -> u64 {
        RING.head.load(RELAXED)
    }

    pub fn clear() {
        let ring = &*RING;
        for slot in &ring.slots {
            *lock_slot(slot) = None;
        }
        ring.head.store(0, RELAXED);
    }
}

/// Records one breadcrumb into the ring.
///
/// `kind` is a short static family name (`"stage"`, `"residual"`,
/// `"health"`, `"request"`, `"error"`); the detail line is rendered
/// from `args` only when telemetry is compiled in, so call sites pass
/// `format_args!` and a `--no-default-features` build pays nothing:
///
/// ```
/// hotwire_obs::recorder::record("stage", format_args!("doc example"));
/// ```
#[allow(unused_variables)]
pub fn record(kind: &'static str, args: fmt::Arguments<'_>) {
    #[cfg(feature = "telemetry")]
    imp::record(kind, fmt::format(args));
}

/// Copies the ring's current contents, oldest first.
#[must_use]
pub fn snapshot_events() -> Vec<FlightEvent> {
    #[cfg(feature = "telemetry")]
    {
        imp::snapshot_events()
    }
    #[cfg(not(feature = "telemetry"))]
    Vec::new()
}

/// Total events ever recorded (≥ the ring's current population; the
/// difference is what the ring has forgotten).
#[must_use]
pub fn recorded() -> u64 {
    #[cfg(feature = "telemetry")]
    {
        imp::recorded()
    }
    #[cfg(not(feature = "telemetry"))]
    0
}

/// Empties the ring and resets the sequence counter. Intended for
/// tests and for bracketing a measured region in a benchmark binary —
/// concurrent [`record`] calls during a clear may survive it.
pub fn clear() {
    #[cfg(feature = "telemetry")]
    imp::clear();
}

/// Freezes the recorder, the metrics registry, and an optional health
/// summary into one diagnostic-bundle JSON document.
///
/// * `reason` — why the bundle exists: `"error-exit"`, `"panic"`,
///   `"sigusr1"`, `"request-error"`.
/// * `detail` — the triggering error message (or signal description).
/// * `health` — a [`crate::health::HealthReport`] in JSON form, when
///   the failing layer produced one.
/// * `spec_hash` — fingerprint of the resolved input spec, so bundles
///   from different workloads are distinguishable at a glance.
///
/// The document always satisfies [`BUNDLE_SCHEMA`]; a no-telemetry
/// build emits it with an empty event list and a disabled metrics
/// snapshot.
#[must_use]
pub fn bundle(reason: &str, detail: &str, health: Option<&Json>, spec_hash: Option<&str>) -> Json {
    let events: Vec<Json> = snapshot_events().iter().map(FlightEvent::to_json).collect();
    let generated_unix_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0.0, |d| d.as_secs_f64() * 1e3);
    Json::object([
        ("schema", Json::from(BUNDLE_SCHEMA)),
        ("version", Json::from(env!("CARGO_PKG_VERSION"))),
        ("generated_unix_ms", Json::from(generated_unix_ms)),
        ("reason", Json::from(reason)),
        ("detail", Json::from(detail)),
        ("spec_hash", spec_hash.map_or(Json::Null, Json::from)),
        ("recorded_events", Json::from(recorded())),
        ("events", Json::Arr(events)),
        ("metrics", crate::metrics::snapshot().to_json()),
        ("health", health.map_or(Json::Null, Clone::clone)),
    ])
}

/// Builds a [`bundle`] and writes it into `dir` (created if missing)
/// under a process-unique name, returning the written path.
///
/// This is the one write path shared by every bundle producer — the
/// CLI's error-exit and panic hooks, `hotwire serve`'s 500 handler,
/// and the SIGUSR1 snapshot — so they all emit the same schema.
///
/// # Errors
///
/// Propagates directory-creation and file-write failures; the caller
/// decides whether a failed dump is worth reporting (it must never
/// mask the original error).
pub fn write_bundle(
    dir: &str,
    reason: &str,
    detail: &str,
    health: Option<&Json>,
    spec_hash: Option<&str>,
) -> std::io::Result<String> {
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    // SAFETY(ordering): a pure filename uniquifier — `fetch_add` hands
    // out distinct values at any ordering; nothing is published through
    // this counter.
    let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    std::fs::create_dir_all(dir)?;
    let name = format!("hotwire-bundle-{}-{n}.json", std::process::id());
    let path = std::path::Path::new(dir).join(name);
    let doc = bundle(reason, detail, health, spec_hash);
    std::fs::write(&path, format!("{}\n", doc.to_pretty_string()))?;
    Ok(path.to_string_lossy().into_owned())
}

#[cfg(all(test, feature = "telemetry"))]
mod tests {
    use super::*;
    use crate::metrics::testutil::lock;

    #[test]
    fn events_come_back_in_order_with_unique_seqs() {
        let _guard = lock();
        clear();
        for i in 0..10 {
            record("stage", format_args!("step {i}"));
        }
        let events = snapshot_events();
        assert_eq!(events.len(), 10);
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.detail, format!("step {i}"));
            assert_eq!(e.kind, "stage");
            if i > 0 {
                assert!(e.seq > events[i - 1].seq);
                assert!(e.t_ms >= events[i - 1].t_ms);
            }
        }
        assert_eq!(recorded(), 10);
        clear();
    }

    #[test]
    fn ring_keeps_only_the_most_recent_capacity_events() {
        let _guard = lock();
        clear();
        let total = CAPACITY + 37;
        for i in 0..total {
            record("stage", format_args!("e{i}"));
        }
        let events = snapshot_events();
        assert_eq!(events.len(), CAPACITY);
        assert_eq!(events[0].detail, format!("e{}", total - CAPACITY));
        assert_eq!(events[CAPACITY - 1].detail, format!("e{}", total - 1));
        assert_eq!(recorded(), total as u64);
        clear();
    }

    #[test]
    fn concurrent_records_all_land() {
        let _guard = lock();
        clear();
        std::thread::scope(|s| {
            for t in 0..4 {
                s.spawn(move || {
                    for i in 0..100 {
                        record("stage", format_args!("t{t}:{i}"));
                    }
                });
            }
        });
        let events = snapshot_events();
        assert_eq!(events.len(), 400);
        let mut seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        seqs.dedup();
        assert_eq!(seqs.len(), 400, "sequence numbers are unique");
        clear();
    }

    #[test]
    fn write_bundle_creates_the_directory_and_file() {
        let _guard = lock();
        let dir = std::env::temp_dir().join(format!("hotwire-bundle-test-{}", std::process::id()));
        let dir_s = dir.to_string_lossy().into_owned();
        let path = write_bundle(&dir_s, "sigusr1", "operator snapshot", None, None).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let back = crate::json::parse(&text).unwrap();
        assert_eq!(
            back.get("schema").and_then(Json::as_str),
            Some(BUNDLE_SCHEMA)
        );
        assert_eq!(back.get("reason").and_then(Json::as_str), Some("sigusr1"));
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn bundle_has_the_documented_shape() {
        let _guard = lock();
        clear();
        crate::metrics::reset();
        crate::metrics::counter("t.bundle").inc();
        record("error", format_args!("it broke"));
        let health = crate::json::parse(r#"{"class": "diverging"}"#).unwrap();
        let b = bundle("error-exit", "it broke", Some(&health), Some("fnv-abc123"));
        let text = b.to_pretty_string();
        let back = crate::json::parse(&text).unwrap();
        assert_eq!(
            back.get("schema").and_then(Json::as_str),
            Some(BUNDLE_SCHEMA)
        );
        assert_eq!(
            back.get("reason").and_then(Json::as_str),
            Some("error-exit")
        );
        assert_eq!(
            back.get("spec_hash").and_then(Json::as_str),
            Some("fnv-abc123")
        );
        assert_eq!(back.get("recorded_events").and_then(Json::as_u64), Some(1));
        let events = back.get("events").and_then(Json::as_array).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].get("kind").and_then(Json::as_str), Some("error"));
        assert!(back
            .get("metrics")
            .and_then(|m| m.get("counters"))
            .is_some());
        assert_eq!(
            back.get("health")
                .and_then(|h| h.get("class"))
                .and_then(Json::as_str),
            Some("diverging")
        );
        crate::metrics::reset();
        clear();
    }
}
