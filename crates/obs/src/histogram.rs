//! A log-linear (HDR-style) histogram with bounded relative error.
//!
//! The registry's wall-time timers need latency *distributions*, not
//! just count/total/min/max — one 372 ms outlier solve must be
//! distinguishable from uniformly slow iterations. This module supplies
//! the bucketing shared by the lock-free atomic histogram inside every
//! timer cell (`telemetry` builds only) and the plain mergeable
//! [`HistogramSnapshot`] that tests and tools use directly.
//!
//! # Bucket scheme
//!
//! Values are non-negative integers (the timers record nanoseconds).
//! The first 32 buckets are exact: value `v < 32` lands in bucket `v`.
//! Above that, each power-of-two octave `[2^e, 2^(e+1))` is split into
//! 32 linear sub-buckets of width `2^(e-5)`, so a bucket's width is at
//! most `1/32` of its lower bound. Reconstruction quotes the bucket
//! midpoint, which bounds the relative quantile error by half a bucket
//! width: **`|estimate − true| / true ≤ 2⁻⁶ ≈ 1.6 %`** (the
//! conservative `1/32` bound in [`RELATIVE_ERROR_BOUND`] is what tests
//! assert against). Every `u64` is representable — there is no
//! saturating "overflow" bucket to hide a pathological outlier in.
//!
//! Counts are exact: merging per-worker histograms with
//! [`HistogramSnapshot::merge`] produces bucket counts identical to a
//! serial histogram fed the same values in any order
//! (`tests/histogram_properties.rs` proves both claims).

/// Sub-bucket resolution: each octave is split into `2^5 = 32` linear
/// sub-buckets.
pub const SUB_BUCKET_BITS: u32 = 5;

/// Sub-buckets per octave (`32`).
pub const SUB_BUCKETS: usize = 1 << SUB_BUCKET_BITS;

/// Total bucket count covering the full `u64` range: 32 exact buckets
/// plus 59 octaves (`e = 5 … 63`) of 32 sub-buckets each.
pub const BUCKETS: usize = SUB_BUCKETS * (64 - SUB_BUCKET_BITS as usize + 1);

/// Documented bound on the relative error of a quantile estimate
/// (`1/32`; the midpoint reconstruction actually achieves `2⁻⁶`).
pub const RELATIVE_ERROR_BOUND: f64 = 1.0 / SUB_BUCKETS as f64;

/// The bucket index of `value`.
#[must_use]
#[allow(clippy::cast_possible_truncation)]
pub fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS as u64 {
        return value as usize;
    }
    let e = 63 - value.leading_zeros(); // ≥ SUB_BUCKET_BITS
    let sub = ((value >> (e - SUB_BUCKET_BITS)) as usize) & (SUB_BUCKETS - 1);
    (e - SUB_BUCKET_BITS + 1) as usize * SUB_BUCKETS + sub
}

/// The half-open value range `[lo, hi)` covered by bucket `index`.
#[must_use]
pub fn bucket_bounds(index: usize) -> (f64, f64) {
    assert!(index < BUCKETS, "bucket index {index} out of range");
    if index < SUB_BUCKETS {
        #[allow(clippy::cast_precision_loss)]
        return (index as f64, index as f64 + 1.0);
    }
    #[allow(clippy::cast_possible_truncation, clippy::cast_precision_loss)]
    let e = (index / SUB_BUCKETS - 1) as i32 + SUB_BUCKET_BITS as i32;
    #[allow(clippy::cast_precision_loss)]
    let sub = (index % SUB_BUCKETS) as f64;
    let width = (e - SUB_BUCKET_BITS as i32).max(0); // 2^(e-5)
    let width = 2.0_f64.powi(width);
    let lo = 2.0_f64.powi(e) + sub * width;
    (lo, lo + width)
}

/// The value a bucket reports for everything it absorbed: exact for the
/// first 32 buckets, the midpoint above.
#[must_use]
pub fn bucket_value(index: usize) -> f64 {
    let (lo, hi) = bucket_bounds(index);
    if index < SUB_BUCKETS {
        lo
    } else {
        0.5 * (lo + hi)
    }
}

/// A frozen (or serially built) histogram: plain bucket counts, no
/// atomics, mergeable and feature-independent.
///
/// This is both the snapshot type produced by the registry's atomic
/// histograms and a directly usable serial histogram — call
/// [`HistogramSnapshot::record`] to build one by hand (per rayon
/// worker, say) and [`HistogramSnapshot::merge`] to combine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    counts: Vec<u64>,
    total: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::new()
    }
}

impl HistogramSnapshot {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            counts: vec![0; BUCKETS],
            total: 0,
        }
    }

    /// Rebuilds from dense bucket counts (must be `BUCKETS` long).
    #[cfg(feature = "telemetry")]
    #[must_use]
    pub(crate) fn from_counts(counts: Vec<u64>) -> Self {
        debug_assert_eq!(counts.len(), BUCKETS);
        let total = counts.iter().sum();
        Self { counts, total }
    }

    /// Adds one observation.
    pub fn record(&mut self, value: u64) {
        self.counts[bucket_index(value)] += 1;
        self.total += 1;
    }

    /// Adds every count of `other` into `self`. Count-exact: merging is
    /// commutative and associative, so any partition of the input
    /// stream across workers reproduces the serial histogram.
    pub fn merge(&mut self, other: &Self) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.total += other.total;
    }

    /// Observations recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.total
    }

    /// The estimated `q`-quantile (`q ∈ [0, 1]`), in the recorded unit,
    /// within [`RELATIVE_ERROR_BOUND`] of the true order statistic.
    /// Returns 0 for an empty histogram.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        #[allow(
            clippy::cast_possible_truncation,
            clippy::cast_sign_loss,
            clippy::cast_precision_loss
        )]
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0;
        for (index, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_value(index);
            }
        }
        unreachable!("cumulative count reaches total")
    }

    /// The midpoint of the highest occupied bucket (0 when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.counts
            .iter()
            .rposition(|&c| c > 0)
            .map_or(0.0, bucket_value)
    }

    /// The representative of the lowest occupied bucket (0 when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.counts
            .iter()
            .position(|&c| c > 0)
            .map_or(0.0, bucket_value)
    }
}

/// A lock-free histogram cell: one relaxed `fetch_add` per record.
#[cfg(feature = "telemetry")]
#[derive(Debug)]
pub(crate) struct AtomicHistogram {
    counts: Vec<crate::sync::AtomicU64>,
}

#[cfg(feature = "telemetry")]
impl Default for AtomicHistogram {
    fn default() -> Self {
        Self {
            counts: (0..BUCKETS)
                .map(|_| crate::sync::AtomicU64::new(0))
                .collect(),
        }
    }
}

#[cfg(feature = "telemetry")]
impl AtomicHistogram {
    pub fn record(&self, value: u64) {
        // SAFETY(ordering): each bucket is an independent monotone
        // counter; `fetch_add` is atomic per cell, so no increment is
        // ever lost regardless of interleaving, and nothing reads a
        // bucket to decide a write elsewhere — there is no cross-cell
        // happens-before to establish. The loom model
        // `timer_histogram_counts_are_exact` checks the no-lost-update
        // claim under preempted schedules.
        self.counts[bucket_index(value)].fetch_add(1, crate::sync::Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        // SAFETY(ordering): relaxed per-bucket loads mean a snapshot
        // concurrent with recording may split one logical observation
        // set across buckets (count it in one bucket but miss a
        // later-indexed one). Each bucket read is still atomic and
        // monotone, so a snapshot never under-counts a bucket it has
        // already passed, and a quiescent snapshot (all recorders
        // joined) is exact — the property the loom and determinism
        // tests assert; in-flight snapshots are documented as
        // point-in-time approximations.
        HistogramSnapshot::from_counts(
            self.counts
                .iter()
                .map(|c| c.load(crate::sync::Ordering::Relaxed))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..SUB_BUCKETS as u64 {
            assert_eq!(bucket_index(v), usize::try_from(v).unwrap());
            #[allow(clippy::cast_precision_loss)]
            let expected = v as f64;
            assert_eq!(bucket_value(bucket_index(v)), expected);
        }
    }

    #[test]
    fn buckets_partition_the_u64_range() {
        // Boundaries and interior points land in a bucket whose bounds
        // contain them, and indexes are monotone in the value.
        let mut last = 0;
        for &v in &[
            0u64,
            1,
            31,
            32,
            33,
            63,
            64,
            65,
            1000,
            4095,
            4096,
            1 << 20,
            (1 << 20) + 12345,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let idx = bucket_index(v);
            assert!(idx < BUCKETS, "{v} → {idx}");
            let (lo, hi) = bucket_bounds(idx);
            #[allow(clippy::cast_precision_loss)]
            let vf = v as f64;
            if v < (1 << 53) {
                assert!(lo <= vf && vf < hi, "{v} ∉ [{lo}, {hi})");
            } else {
                // v itself rounds when widened to f64 (u64::MAX/2 lands
                // exactly on its bucket's exclusive bound), so only the
                // closed bracketing is testable up here.
                assert!(lo <= vf && vf <= hi, "{v} ∉ [{lo}, {hi}]");
            }
            assert!(idx >= last, "indexes are monotone");
            last = idx;
        }
    }

    #[test]
    fn quantiles_respect_the_error_bound() {
        let mut h = HistogramSnapshot::new();
        let values: Vec<u64> = (1..=1000).map(|i| i * 977).collect();
        for &v in &values {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        for &(q, rank) in &[(0.5, 500usize), (0.9, 900), (0.99, 990)] {
            #[allow(clippy::cast_precision_loss)]
            let truth = values[rank - 1] as f64;
            let est = h.quantile(q);
            assert!(
                (est - truth).abs() / truth <= RELATIVE_ERROR_BOUND,
                "p{q}: {est} vs {truth}"
            );
        }
        #[allow(clippy::cast_precision_loss)]
        let top = values[999] as f64;
        assert!((h.max() - top).abs() / top <= RELATIVE_ERROR_BOUND);
    }

    #[test]
    fn merge_is_count_exact() {
        let mut serial = HistogramSnapshot::new();
        let mut a = HistogramSnapshot::new();
        let mut b = HistogramSnapshot::new();
        for v in 0..500u64 {
            let v = v * v * 31;
            serial.record(v);
            if v % 3 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        a.merge(&b);
        assert_eq!(a, serial);
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = HistogramSnapshot::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.max(), 0.0);
        assert_eq!(h.min(), 0.0);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn atomic_histogram_matches_serial() {
        let atomic = AtomicHistogram::default();
        let mut serial = HistogramSnapshot::new();
        std::thread::scope(|s| {
            for chunk in 0..4u64 {
                let atomic = &atomic;
                s.spawn(move || {
                    for i in 0..250 {
                        atomic.record((chunk * 250 + i) * 7919);
                    }
                });
            }
        });
        for v in 0..1000u64 {
            serial.record(v * 7919);
        }
        assert_eq!(atomic.snapshot(), serial);
    }
}
