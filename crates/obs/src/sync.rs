//! Atomic primitives facade: std by default, loom's instrumented types
//! under `--cfg loom`.
//!
//! Everything lock-free in this crate (the registry's counter cells,
//! the histogram buckets, the tracing level/format flags) goes through
//! these re-exports, so building with `RUSTFLAGS="--cfg loom"` swaps
//! the whole layer onto the model checker's atomics at once and the
//! interleaving models in `tests/loom.rs` exercise the real recording
//! paths, not parallel reimplementations. The workspace's `loom` is the
//! offline stress-mode shim (`shims/loom`); its intentional deviations
//! from the real crate are documented there.

#[cfg(loom)]
pub(crate) use loom::sync::atomic::{AtomicU64, AtomicU8, Ordering};

#[cfg(not(loom))]
pub(crate) use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
