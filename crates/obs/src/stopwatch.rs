//! Wall-clock measurement, owned by the observability layer.
//!
//! Project invariant **HW003** (see `docs/STATIC_ANALYSIS.md`) keeps
//! `Instant::now` and `SystemTime` out of every other library crate:
//! engines that need a duration for their *data model* — the coupled
//! Picard loop's per-iteration `electrical_ms`, the sweep throughput
//! gauges — read the clock through this type instead, so the workspace
//! has a single, greppable point of contact with the system clock.
//! Unlike the metrics registry this module is feature-independent: a
//! `ConvergenceTrace` carries stage timings even in a
//! `--no-default-features` build.

use std::time::Duration;

/// A started wall-clock stopwatch.
///
/// ```
/// let sw = hotwire_obs::Stopwatch::start();
/// let ms = sw.elapsed_ms();
/// assert!(ms >= 0.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: std::time::Instant,
}

impl Stopwatch {
    /// Reads the clock and starts timing.
    #[must_use]
    pub fn start() -> Self {
        Self {
            start: std::time::Instant::now(),
        }
    }

    /// Wall time since [`Stopwatch::start`].
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Wall time since [`Stopwatch::start`], in milliseconds.
    #[must_use]
    pub fn elapsed_ms(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotone() {
        let sw = Stopwatch::start();
        let a = sw.elapsed();
        let b = sw.elapsed();
        assert!(b >= a);
        assert!(sw.elapsed_ms() >= b.as_secs_f64() * 1e3);
    }
}
