//! A small dependency-free JSON value type, writer, and parser.
//!
//! The workspace's `serde` is an offline no-op shim, so everything that
//! must produce or consume real JSON — metric snapshots, convergence
//! traces, the `BENCH_*.json` baselines, the JSONL log sink — goes
//! through this module. Coverage is deliberately the JSON core and
//! nothing else: objects preserve insertion order (so emitted files are
//! stable and diffable), numbers are `f64` (every value this workspace
//! writes fits, and Rust's shortest-representation `Display` round-trips
//! `f64` exactly), and non-finite numbers serialize as `null`.
//!
//! ```
//! use hotwire_obs::json::{parse, Json};
//!
//! let v = Json::object([("grid", Json::from("50x50")), ("iters", Json::from(5.0))]);
//! let text = v.to_string();
//! assert_eq!(parse(&text).unwrap(), v);
//! assert_eq!(parse(&text).unwrap().get("iters").and_then(Json::as_f64), Some(5.0));
//! ```

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered (not sorted, never deduplicated).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn object<K: Into<String>, I: IntoIterator<Item = (K, Json)>>(pairs: I) -> Self {
        Self::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Member lookup on an object (first match); `None` otherwise.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Self::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Self::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric value as a non-negative integer, if it is one.
    #[must_use]
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Self::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 2.0_f64.powi(53) => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The string value, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Self::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Self::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Self::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Self::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Multi-line rendering with two-space indentation, for files meant
    /// to be read by people (`--metrics-out`, `--trace-out`).
    #[must_use]
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        let pad = |out: &mut String, d: usize| out.push_str(&"  ".repeat(d));
        match self {
            Self::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    pad(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, depth);
                out.push(']');
            }
            Self::Obj(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    pad(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                    if i + 1 < pairs.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, depth);
                out.push('}');
            }
            other => out.push_str(&other.to_string()),
        }
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Self::Num(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Self {
        #[allow(clippy::cast_precision_loss)]
        Self::Num(v as f64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Self {
        #[allow(clippy::cast_precision_loss)]
        Self::Num(v as f64)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Self::Bool(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Self::Str(v.to_owned())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Self {
        Self::Str(v)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    /// Compact (single-line) JSON rendering.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Null => f.write_str("null"),
            Self::Bool(b) => write!(f, "{b}"),
            Self::Num(v) if !v.is_finite() => f.write_str("null"),
            Self::Num(v) => write!(f, "{v}"),
            Self::Str(s) => {
                let mut buf = String::with_capacity(s.len() + 2);
                write_escaped(&mut buf, s);
                f.write_str(&buf)
            }
            Self::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Self::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut buf = String::with_capacity(k.len() + 2);
                    write_escaped(&mut buf, k);
                    write!(f, "{buf}:{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// A parse failure, with the byte offset where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What was wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document (trailing whitespace allowed, nothing else).
///
/// # Errors
///
/// Returns [`JsonError`] on malformed input, including trailing garbage.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_owned(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn consume(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", char::from(byte))))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.consume(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.consume(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.consume(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.consume(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let first = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&first) {
                                // High surrogate: a \uXXXX low half must follow.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.consume(b'u')?;
                                    let low = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    0x10000 + ((first - 0xD800) << 10) + (low - 0xDC00)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                first
                            };
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                c if c < 0x20 => return Err(self.err("raw control character in string")),
                c if c < 0x80 => out.push(char::from(c)),
                _ => {
                    // Multi-byte UTF-8: re-decode from the source slice
                    // (the input is a &str, so it is valid UTF-8).
                    let start = self.pos - 1;
                    let rest =
                        std::str::from_utf8(&self.bytes[start..]).map_err(|_| JsonError {
                            message: "invalid UTF-8".to_owned(),
                            offset: start,
                        })?;
                    let ch = rest
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("unexpected end of input"))?;
                    out.push(ch);
                    self.pos = start + ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let Some(c) = self.peek() else {
                return Err(self.err("truncated \\u escape"));
            };
            let d = match c {
                b'0'..=b'9' => u32::from(c - b'0'),
                b'a'..=b'f' => u32::from(c - b'a') + 10,
                b'A'..=b'F' => u32::from(c - b'A') + 10,
                _ => return Err(self.err("non-hex digit in \\u escape")),
            };
            v = (v << 4) | d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("malformed number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-1.5", "1e3", "\"hi\""] {
            let v = parse(text).unwrap();
            assert_eq!(parse(&v.to_string()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn f64_display_round_trips_exactly() {
        for v in [0.1, 1.0 / 3.0, 6.02e23, -2.5e-9, f64::MAX, 5e-324] {
            let j = Json::Num(v);
            assert_eq!(parse(&j.to_string()).unwrap().as_f64(), Some(v));
        }
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = Json::object([
            ("name", Json::from("grid \"A\"\n")),
            (
                "sizes",
                Json::Arr(vec![Json::from(50u64), Json::from(100u64)]),
            ),
            (
                "nested",
                Json::object([("ok", Json::from(true)), ("x", Json::Null)]),
            ),
        ]);
        assert_eq!(parse(&v.to_string()).unwrap(), v);
        assert_eq!(parse(&v.to_pretty_string()).unwrap(), v);
    }

    #[test]
    fn escapes_and_unicode() {
        let v = parse(r#""a\u00e9b\u0041 \ud83d\ude00 \t""#).unwrap();
        assert_eq!(v.as_str(), Some("aébA 😀 \t"));
        // Raw multi-byte UTF-8 passes through too.
        let v = parse("\"héλlo\"").unwrap();
        assert_eq!(v.as_str(), Some("héλlo"));
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"a": 3, "b": [1], "c": "s"}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(3));
        assert_eq!(
            v.get("b").and_then(Json::as_array).map(<[Json]>::len),
            Some(1)
        );
        assert_eq!(v.get("c").and_then(Json::as_str), Some("s"));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
    }

    #[test]
    fn malformed_inputs_error() {
        for text in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "1.2.3",
            "\"\\q\"",
            "[1] x",
            "\"\\ud800\"",
            "nan",
        ] {
            assert!(parse(text).is_err(), "{text:?} must not parse");
        }
    }

    #[test]
    fn non_finite_serializes_as_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }
}
