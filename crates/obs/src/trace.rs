//! Structured tracing: levelled events and RAII spans with a text or
//! JSONL sink on stderr.
//!
//! The design follows the `tracing` crate's span/event split scaled to
//! what this workspace needs, with no external dependency:
//!
//! * an **event** is one structured record — a level, a target (dotted
//!   module-ish name), a message, and typed key/value fields;
//! * a **span** is a named region of work ([`span`] returns a guard).
//!   Every span records its wall time into the metrics timer of the
//!   same name (so spans are visible in `--metrics-out` even when the
//!   log sink is quiet), maintains a thread-local stack that stamps
//!   events with their enclosing span path, and emits an exit event at
//!   [`Level::Trace`].
//!
//! While a [`crate::spantree`] capture is active, every span
//! additionally records a begin/end event pair with a process-unique
//! span ID and a *logical parent* link — the enclosing span on this
//! thread, or, on a rayon worker, the span adopted through a
//! [`TraceContext`]. The capture path is independent of the stderr
//! sink: the level filter decides what is *printed*, never what the
//! retained trace *keeps*, so `--trace-out` files are identical at
//! `--log-level error` and `--log-level trace`.
//!
//! Crossing a thread boundary (a `par_iter`, a worker pool) snaps the
//! context explicitly:
//!
//! ```
//! let _outer = hotwire_obs::trace::span("doc.batch");
//! let ctx = hotwire_obs::trace::context();   // before the fan-out
//! // inside each worker closure:
//! let _adopt = ctx.adopt();                  // re-parents this thread
//! let _inner = hotwire_obs::trace::span("doc.item");
//! ```
//!
//! Nothing is written until [`init`] installs a [`LogConfig`]; the
//! `hotwire` CLI does this from `--log-level` / `--log-format`. The
//! JSONL format emits exactly one JSON object per line on stderr —
//! machine-parseable with the schema in `docs/OBSERVABILITY.md`. With
//! the `telemetry` feature off the whole module is inert: [`init`] is a
//! no-op, no event can ever be emitted, and the span/context guards
//! are zero-sized.

use std::fmt;
use std::str::FromStr;

#[cfg(feature = "telemetry")]
use crate::json::Json;

/// Event severity, conventional ordering (`Error` most severe).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// The operation failed.
    Error,
    /// Something surprising that does not stop the run.
    Warn,
    /// High-level progress (one line per stage, not per iteration).
    Info,
    /// Per-iteration diagnostics (convergence residuals, stage times).
    Debug,
    /// Per-span-exit firehose.
    Trace,
}

impl Level {
    fn as_str(self) -> &'static str {
        match self {
            Self::Error => "error",
            Self::Warn => "warn",
            Self::Info => "info",
            Self::Debug => "debug",
            Self::Trace => "trace",
        }
    }

    #[cfg(feature = "telemetry")]
    fn as_u8(self) -> u8 {
        match self {
            Self::Error => 0,
            Self::Warn => 1,
            Self::Info => 2,
            Self::Debug => 3,
            Self::Trace => 4,
        }
    }
}

impl FromStr for Level {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "error" => Ok(Self::Error),
            "warn" | "warning" => Ok(Self::Warn),
            "info" => Ok(Self::Info),
            "debug" => Ok(Self::Debug),
            "trace" => Ok(Self::Trace),
            other => Err(format!(
                "unknown log level `{other}` (expected error|warn|info|debug|trace)"
            )),
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How emitted events are rendered on stderr.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LogFormat {
    /// `[level] target: message key=value …` — for people.
    #[default]
    Text,
    /// One JSON object per line — for machines (JSONL).
    Json,
}

impl FromStr for LogFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "text" => Ok(Self::Text),
            "json" | "jsonl" => Ok(Self::Json),
            other => Err(format!("unknown log format `{other}` (expected text|json)")),
        }
    }
}

/// Sink configuration installed by [`init`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogConfig {
    /// Most verbose level that is emitted.
    pub level: Level,
    /// Output rendering.
    pub format: LogFormat,
}

impl Default for LogConfig {
    /// Warnings and errors, as text — quiet on a healthy run.
    fn default() -> Self {
        Self {
            level: Level::Warn,
            format: LogFormat::Text,
        }
    }
}

/// A typed field value attached to an event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FieldValue<'a> {
    /// An unsigned count or index.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A floating-point quantity.
    F64(f64),
    /// A borrowed string.
    Str(&'a str),
    /// A flag.
    Bool(bool),
}

impl From<u64> for FieldValue<'_> {
    fn from(v: u64) -> Self {
        Self::U64(v)
    }
}

impl From<usize> for FieldValue<'_> {
    fn from(v: usize) -> Self {
        Self::U64(v as u64)
    }
}

impl From<i64> for FieldValue<'_> {
    fn from(v: i64) -> Self {
        Self::I64(v)
    }
}

impl From<f64> for FieldValue<'_> {
    fn from(v: f64) -> Self {
        Self::F64(v)
    }
}

impl<'a> From<&'a str> for FieldValue<'a> {
    fn from(v: &'a str) -> Self {
        Self::Str(v)
    }
}

impl From<bool> for FieldValue<'_> {
    fn from(v: bool) -> Self {
        Self::Bool(v)
    }
}

#[cfg(feature = "telemetry")]
impl FieldValue<'_> {
    fn to_json(self) -> Json {
        match self {
            Self::U64(v) => Json::from(v),
            #[allow(clippy::cast_precision_loss)]
            Self::I64(v) => Json::Num(v as f64),
            Self::F64(v) => Json::Num(v),
            Self::Str(v) => Json::from(v),
            Self::Bool(v) => Json::from(v),
        }
    }
}

impl fmt::Display for FieldValue<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::U64(v) => write!(f, "{v}"),
            Self::I64(v) => write!(f, "{v}"),
            Self::F64(v) => write!(f, "{v}"),
            Self::Str(v) => write!(f, "{v}"),
            Self::Bool(v) => write!(f, "{v}"),
        }
    }
}

/// Event fields: ordered `(name, value)` pairs.
pub type Fields<'a> = &'a [(&'a str, FieldValue<'a>)];

#[cfg(feature = "telemetry")]
mod imp {
    use super::{Fields, Json, Level, LogConfig, LogFormat};
    use crate::sync::{AtomicU8, Ordering};
    use std::cell::RefCell;
    use std::io::Write;
    use std::sync::Mutex;

    /// 255 = no subscriber installed.
    pub static LEVEL: AtomicU8 = AtomicU8::new(255);
    pub static FORMAT: AtomicU8 = AtomicU8::new(0);
    static WRITE: Mutex<()> = Mutex::new(());

    /// One entry per open span on this thread. `id` is `Some` only for
    /// spans opened while a [`crate::spantree`] capture was recording.
    pub struct Frame {
        pub name: &'static str,
        pub id: Option<u64>,
    }

    thread_local! {
        pub static SPAN_STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
        /// Parents adopted from another thread via [`super::TraceContext::adopt`].
        pub static ADOPTED: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    }

    /// The logical parent for a span opened now on this thread: the
    /// nearest enclosing *captured* span, else the innermost adopted
    /// cross-thread context.
    pub fn current_parent() -> Option<u64> {
        SPAN_STACK
            .with(|stack| stack.borrow().iter().rev().find_map(|f| f.id))
            .or_else(|| ADOPTED.with(|adopted| adopted.borrow().last().copied()))
    }

    pub fn install(config: LogConfig) {
        let format = match config.format {
            LogFormat::Text => 0,
            LogFormat::Json => 1,
        };
        // SAFETY(ordering): LEVEL and FORMAT are independent one-byte
        // configuration flags, each atomic on its own; no other memory
        // is published through them, so there is no release edge to
        // establish. A reader racing a reconfiguration may briefly
        // combine the new format with the old level (or vice versa) —
        // both fields are self-contained, every combination is a valid
        // configuration, and `init` documents last-writer-wins. The
        // loom model `trace_flags_never_tear` checks that each flag
        // individually only ever reads an installed value.
        FORMAT.store(format, Ordering::Relaxed);
        // SAFETY(ordering): same argument as FORMAT above — a
        // self-contained flag with last-writer-wins semantics.
        LEVEL.store(config.level.as_u8(), Ordering::Relaxed);
    }

    pub fn enabled(level: Level) -> bool {
        // SAFETY(ordering): a stale LEVEL read merely routes one event
        // through the previous verbosity setting — acceptable by the
        // last-writer-wins contract above; no data is guarded by this
        // flag.
        let current = LEVEL.load(Ordering::Relaxed);
        current != 255 && level.as_u8() <= current
    }

    pub fn span_path() -> Option<String> {
        SPAN_STACK.with(|stack| {
            let stack = stack.borrow();
            if stack.is_empty() {
                None
            } else {
                Some(
                    stack
                        .iter()
                        .map(|f| f.name)
                        .collect::<Vec<&'static str>>()
                        .join("/"),
                )
            }
        })
    }

    pub fn emit(level: Level, target: &str, message: &str, fields: Fields<'_>) {
        let line = render(level, target, message, fields);
        let _lock = WRITE
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let _ = writeln!(std::io::stderr(), "{line}");
    }

    pub fn render(level: Level, target: &str, message: &str, fields: Fields<'_>) -> String {
        let span = span_path();
        // SAFETY(ordering): see `install` — FORMAT is a self-contained
        // rendering flag; a stale read renders one line in the previous
        // format, which last-writer-wins permits.
        if FORMAT.load(Ordering::Relaxed) == 1 {
            let ts = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map_or(0.0, |d| d.as_secs_f64());
            let mut pairs = vec![
                ("ts".to_owned(), Json::Num(ts)),
                ("level".to_owned(), Json::from(level.as_str())),
                ("target".to_owned(), Json::from(target)),
                ("msg".to_owned(), Json::from(message)),
            ];
            if let Some(path) = span {
                pairs.push(("span".to_owned(), Json::from(path)));
            }
            for &(k, v) in fields {
                pairs.push((k.to_owned(), v.to_json()));
            }
            Json::Obj(pairs).to_string()
        } else {
            use std::fmt::Write;
            let mut line = format!("[{level}] {target}: {message}");
            if let Some(path) = span {
                let _ = write!(line, " span={path}");
            }
            for &(k, v) in fields {
                let _ = write!(line, " {k}={v}");
            }
            line
        }
    }
}

/// Installs the stderr sink. Until this is called nothing is emitted.
///
/// Safe to call again (e.g. per test); the latest configuration wins.
#[allow(unused_variables)]
pub fn init(config: LogConfig) {
    #[cfg(feature = "telemetry")]
    imp::install(config);
}

/// `true` when an event at `level` would currently be emitted.
#[allow(unused_variables)]
#[must_use]
pub fn enabled(level: Level) -> bool {
    #[cfg(feature = "telemetry")]
    {
        imp::enabled(level)
    }
    #[cfg(not(feature = "telemetry"))]
    false
}

/// Emits one structured event.
#[allow(unused_variables)]
pub fn event(level: Level, target: &str, message: &str, fields: Fields<'_>) {
    #[cfg(feature = "telemetry")]
    if imp::enabled(level) {
        imp::emit(level, target, message, fields);
    }
}

/// [`Level::Error`] event.
pub fn error(target: &str, message: &str, fields: Fields<'_>) {
    event(Level::Error, target, message, fields);
}

/// [`Level::Warn`] event.
pub fn warn(target: &str, message: &str, fields: Fields<'_>) {
    event(Level::Warn, target, message, fields);
}

/// [`Level::Info`] event.
pub fn info(target: &str, message: &str, fields: Fields<'_>) {
    event(Level::Info, target, message, fields);
}

/// [`Level::Debug`] event.
pub fn debug(target: &str, message: &str, fields: Fields<'_>) {
    event(Level::Debug, target, message, fields);
}

/// A named region of work; see [`span`].
#[derive(Debug)]
#[must_use = "a dropped Span closes immediately; bind it with `let _span = ...`"]
pub struct Span {
    #[cfg(feature = "telemetry")]
    name: &'static str,
    #[cfg(feature = "telemetry")]
    id: Option<u64>,
    #[cfg(feature = "telemetry")]
    start: std::time::Instant,
}

impl Span {
    /// The capture-assigned span ID — `Some` only when a
    /// [`crate::spantree`] capture was recording when the span opened.
    #[must_use]
    pub fn id(&self) -> Option<u64> {
        #[cfg(feature = "telemetry")]
        {
            self.id
        }
        #[cfg(not(feature = "telemetry"))]
        None
    }
}

/// Opens a span named `name` (dotted, e.g. `"coupled.step"`).
///
/// On drop the span records its wall time into the metrics timer of the
/// same name, pops itself from the thread-local span stack, and emits a
/// `close` event at [`Level::Trace`] with `elapsed_ms`. While a
/// [`crate::spantree`] capture is active it also records a begin/end
/// pair into the span tree, parented per [`context`].
pub fn span(name: &'static str) -> Span {
    span_with(name, &[])
}

/// Like [`span`], with attributes retained in the captured span tree
/// (e.g. the Picard iteration index). The attributes do not reach the
/// metrics timer or the stderr sink; outside a capture they are not
/// even converted.
#[allow(unused_variables)]
pub fn span_with(name: &'static str, fields: Fields<'_>) -> Span {
    #[cfg(feature = "telemetry")]
    let (id, start) = {
        let start = std::time::Instant::now();
        let id = if crate::spantree::capture_active() {
            let parent = imp::current_parent();
            let args = fields
                .iter()
                .map(|&(key, value)| (key.to_owned(), value.to_json()))
                .collect();
            Some(crate::spantree::cap::begin(name, parent, args, start))
        } else {
            None
        };
        imp::SPAN_STACK.with(|stack| stack.borrow_mut().push(imp::Frame { name, id }));
        (id, start)
    };
    Span {
        #[cfg(feature = "telemetry")]
        name,
        #[cfg(feature = "telemetry")]
        id,
        #[cfg(feature = "telemetry")]
        start,
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        #[cfg(feature = "telemetry")]
        {
            let end_at = std::time::Instant::now();
            let elapsed = end_at.saturating_duration_since(self.start);
            if let Some(id) = self.id {
                // Unconditional once the span holds an ID: if the
                // capture was drained mid-span, this end is an orphan
                // the next assembly discards — never a torn pair.
                crate::spantree::cap::end(id, end_at);
            }
            crate::metrics::timer(self.name).observe(elapsed);
            if imp::enabled(Level::Trace) {
                imp::emit(
                    Level::Trace,
                    self.name,
                    "close",
                    &[("elapsed_ms", FieldValue::F64(elapsed.as_secs_f64() * 1e3))],
                );
            }
            imp::SPAN_STACK.with(|stack| {
                let popped = stack.borrow_mut().pop();
                debug_assert_eq!(
                    popped.map(|f| f.name),
                    Some(self.name),
                    "span stack out of order"
                );
            });
        }
    }
}

/// A snapshot of the current logical span, for re-parenting work that
/// crosses a thread boundary (rayon `par_iter` closures, worker
/// pools). `Copy`, and zero-sized without `telemetry`.
///
/// Capture it *before* the fan-out with [`context`], then [`adopt`] it
/// inside each worker closure; spans the worker opens record the
/// originating span as their logical parent even though it lives on a
/// different OS thread. Outside a capture the context is empty and
/// adoption is free.
///
/// [`adopt`]: TraceContext::adopt
#[derive(Debug, Clone, Copy, Default)]
pub struct TraceContext {
    #[cfg(feature = "telemetry")]
    parent: Option<u64>,
}

/// Captures the current logical span context on this thread. Empty
/// (and nearly free) unless a [`crate::spantree`] capture is active.
#[must_use]
pub fn context() -> TraceContext {
    TraceContext {
        #[cfg(feature = "telemetry")]
        parent: if crate::spantree::capture_active() {
            imp::current_parent()
        } else {
            None
        },
    }
}

impl TraceContext {
    /// Adopts this context on the current thread until the returned
    /// guard drops: spans opened meanwhile (with no captured local
    /// ancestor) parent to the context's span. Nesting adoptions is
    /// fine; the innermost wins.
    pub fn adopt(&self) -> ContextGuard {
        #[cfg(feature = "telemetry")]
        {
            let pushed = match self.parent {
                Some(parent) => {
                    imp::ADOPTED.with(|adopted| adopted.borrow_mut().push(parent));
                    true
                }
                None => false,
            };
            ContextGuard { pushed }
        }
        #[cfg(not(feature = "telemetry"))]
        ContextGuard {}
    }
}

/// RAII guard from [`TraceContext::adopt`]; un-adopts on drop.
#[derive(Debug)]
#[must_use = "a dropped ContextGuard un-adopts immediately; bind it with `let _ctx = ...`"]
pub struct ContextGuard {
    #[cfg(feature = "telemetry")]
    pushed: bool,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        #[cfg(feature = "telemetry")]
        if self.pushed {
            imp::ADOPTED.with(|adopted| {
                adopted.borrow_mut().pop();
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_and_format_parse() {
        assert_eq!("debug".parse::<Level>(), Ok(Level::Debug));
        assert!("loud".parse::<Level>().is_err());
        assert_eq!("json".parse::<LogFormat>(), Ok(LogFormat::Json));
        assert!("xml".parse::<LogFormat>().is_err());
        assert!(Level::Error < Level::Trace);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn rendering_both_formats() {
        init(LogConfig {
            level: Level::Info,
            format: LogFormat::Text,
        });
        let fields: &[(&str, FieldValue<'_>)] = &[
            ("iter", 3usize.into()),
            ("dt", 0.5f64.into()),
            ("tag", "x".into()),
        ];
        let text = imp::render(Level::Info, "coupled", "iteration", fields);
        assert_eq!(text, "[info] coupled: iteration iter=3 dt=0.5 tag=x");

        init(LogConfig {
            level: Level::Info,
            format: LogFormat::Json,
        });
        let line = imp::render(Level::Warn, "cli", "bad \"flag\"", fields);
        let v = crate::json::parse(&line).expect("JSONL line parses");
        assert_eq!(
            v.get("level").and_then(crate::json::Json::as_str),
            Some("warn")
        );
        assert_eq!(
            v.get("msg").and_then(crate::json::Json::as_str),
            Some("bad \"flag\"")
        );
        assert_eq!(v.get("iter").and_then(crate::json::Json::as_u64), Some(3));
        // Leave the sink quiet for other tests.
        init(LogConfig {
            level: Level::Error,
            format: LogFormat::Text,
        });
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn spans_feed_timers_and_stack() {
        let _guard = crate::metrics::testutil::lock();
        crate::metrics::reset();
        {
            let _outer = span("t.outer");
            let _inner = span("t.inner");
            assert_eq!(imp::span_path().as_deref(), Some("t.outer/t.inner"));
        }
        assert_eq!(imp::span_path(), None);
        let snap = crate::metrics::snapshot();
        assert_eq!(snap.timers["t.outer"].count, 1);
        assert_eq!(snap.timers["t.inner"].count, 1);
        crate::metrics::reset();
    }

    #[cfg(not(feature = "telemetry"))]
    #[test]
    fn disabled_module_is_inert() {
        init(LogConfig::default());
        assert!(!enabled(Level::Error));
        let _span = span("t.noop");
    }
}
