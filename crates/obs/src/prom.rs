//! Prometheus text-exposition (version 0.0.4) rendering of a
//! [`MetricsSnapshot`].
//!
//! This is what `hotwire serve` returns from `GET /metrics`, and it is
//! deliberately dependency-free: a snapshot is already a frozen tree of
//! numbers, so exposition is pure string formatting. The module is
//! feature-independent — without `telemetry` the snapshot is empty and
//! the exposition degenerates to the single `hotwire_telemetry_enabled`
//! gauge.
//!
//! # Naming conventions
//!
//! Registry names are dotted (`coupled.picard_iterations`); Prometheus
//! names must match `[a-zA-Z_:][a-zA-Z0-9_:]*`, so every metric is
//! rendered as `hotwire_` + the registry name with each `.` (or any
//! other illegal character) replaced by `_`:
//!
//! * counters  → `hotwire_<name>_total` (TYPE `counter`)
//! * gauges    → `hotwire_<name>` plus `hotwire_<name>_min` /
//!   `hotwire_<name>_max` for the write envelope (TYPE `gauge`)
//! * timers    → `hotwire_<name>_seconds` (TYPE `summary`): one sample
//!   per quantile (`{quantile="0.5"}`, `0.9`, `0.99`) from the timer's
//!   log-linear histogram, plus `_seconds_sum` and `_seconds_count`.
//!   Times are recorded in nanoseconds and exposed in seconds, per the
//!   Prometheus base-unit convention.

use crate::metrics::MetricsSnapshot;

/// Maps a dotted registry name onto a legal Prometheus metric name:
/// `hotwire_` prefix, every character outside `[a-zA-Z0-9_:]` becomes
/// `_`, and a leading digit gains a `_` guard.
#[must_use]
pub fn metric_name(registry_name: &str) -> String {
    let mut out = String::with_capacity(registry_name.len() + 8);
    out.push_str("hotwire_");
    for c in registry_name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Formats a float the way the exposition format expects (`Inf`,
/// `-Inf`, `NaN` spelled out; plain decimal otherwise — Rust's `{}`
/// never produces exponent notation for `f64`).
fn number(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_owned()
    } else if v == f64::INFINITY {
        "+Inf".to_owned()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_owned()
    } else {
        format!("{v}")
    }
}

fn header(out: &mut String, name: &str, kind: &str, help: &str) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
}

/// Renders `snapshot` in Prometheus text-exposition format 0.0.4.
///
/// The output always contains at least `hotwire_telemetry_enabled`
/// (1 when the workspace was compiled with the `telemetry` feature),
/// so a scrape of a no-op build is distinguishable from a scrape that
/// found nothing to report.
#[must_use]
pub fn render(snapshot: &MetricsSnapshot) -> String {
    const MS_PER_SEC: f64 = 1.0e3;
    let mut out = String::new();

    header(
        &mut out,
        "hotwire_telemetry_enabled",
        "gauge",
        "1 when the workspace was compiled with the telemetry feature.",
    );
    out.push_str(&format!(
        "hotwire_telemetry_enabled {}\n",
        u8::from(snapshot.enabled)
    ));

    for (name, &value) in &snapshot.counters {
        let prom = format!("{}_total", metric_name(name));
        header(
            &mut out,
            &prom,
            "counter",
            &format!("Monotone event count of registry counter `{name}`."),
        );
        out.push_str(&format!("{prom} {value}\n"));
    }

    for (name, stats) in &snapshot.gauges {
        let prom = metric_name(name);
        header(
            &mut out,
            &prom,
            "gauge",
            &format!("Last value written to registry gauge `{name}`."),
        );
        out.push_str(&format!("{prom} {}\n", number(stats.value)));
        for (suffix, v, what) in [
            ("min", stats.min, "Smallest"),
            ("max", stats.max, "Largest"),
        ] {
            let sub = format!("{prom}_{suffix}");
            header(
                &mut out,
                &sub,
                "gauge",
                &format!("{what} value ever written to registry gauge `{name}`."),
            );
            out.push_str(&format!("{sub} {}\n", number(v)));
        }
    }

    for (name, t) in &snapshot.timers {
        let prom = format!("{}_seconds", metric_name(name));
        header(
            &mut out,
            &prom,
            "summary",
            &format!("Wall time of registry timer `{name}`, in seconds."),
        );
        for (q, v) in [("0.5", t.p50_ms), ("0.9", t.p90_ms), ("0.99", t.p99_ms)] {
            out.push_str(&format!(
                "{prom}{{quantile=\"{q}\"}} {}\n",
                number(v / MS_PER_SEC)
            ));
        }
        out.push_str(&format!("{prom}_sum {}\n", number(t.total_ms / MS_PER_SEC)));
        out.push_str(&format!("{prom}_count {}\n", t.count));
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{GaugeStats, TimerStats};
    use std::collections::BTreeMap;

    fn sample() -> MetricsSnapshot {
        let mut counters = BTreeMap::new();
        counters.insert("solver.factor".to_owned(), 42);
        let mut gauges = BTreeMap::new();
        gauges.insert(
            "coupled.residual".to_owned(),
            GaugeStats {
                value: 1.5e-7,
                min: 1.5e-7,
                max: 0.25,
            },
        );
        let mut timers = BTreeMap::new();
        timers.insert(
            "coupled.run".to_owned(),
            TimerStats {
                count: 3,
                total_ms: 120.0,
                min_ms: 20.0,
                max_ms: 60.0,
                p50_ms: 40.0,
                p90_ms: 58.0,
                p99_ms: 60.0,
            },
        );
        MetricsSnapshot {
            enabled: true,
            counters,
            gauges,
            timers,
        }
    }

    #[test]
    fn names_are_sanitized() {
        assert_eq!(metric_name("coupled.run"), "hotwire_coupled_run");
        assert_eq!(metric_name("a-b c.d"), "hotwire_a_b_c_d");
    }

    #[test]
    fn exposition_covers_every_metric_kind() {
        let text = render(&sample());
        assert!(text.contains("# TYPE hotwire_solver_factor_total counter\n"));
        assert!(text.contains("hotwire_solver_factor_total 42\n"));
        assert!(text.contains("# TYPE hotwire_coupled_residual gauge\n"));
        assert!(text.contains("hotwire_coupled_residual 0.00000015\n"));
        assert!(text.contains("hotwire_coupled_residual_max 0.25\n"));
        assert!(text.contains("# TYPE hotwire_coupled_run_seconds summary\n"));
        assert!(text.contains("hotwire_coupled_run_seconds{quantile=\"0.5\"} 0.04\n"));
        assert!(text.contains("hotwire_coupled_run_seconds_sum 0.12\n"));
        assert!(text.contains("hotwire_coupled_run_seconds_count 3\n"));
    }

    #[test]
    fn every_sample_line_is_well_formed() {
        // Each non-comment line is `<name>[{labels}] <value>`, the name
        // matches the Prometheus grammar, and HELP/TYPE precede samples.
        let text = render(&sample());
        let mut seen_type: Vec<String> = Vec::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut parts = rest.split(' ');
                seen_type.push(parts.next().unwrap().to_owned());
                assert!(matches!(
                    parts.next().unwrap(),
                    "counter" | "gauge" | "summary"
                ));
                continue;
            }
            if line.starts_with('#') {
                continue;
            }
            let (series, value) = line.rsplit_once(' ').expect("sample has a value");
            let name = series.split('{').next().unwrap();
            let base = name
                .trim_end_matches("_sum")
                .trim_end_matches("_count")
                .trim_end_matches("_min")
                .trim_end_matches("_max");
            assert!(
                seen_type.iter().any(|t| t == name || t == base),
                "sample `{name}` has no TYPE header"
            );
            assert!(name.starts_with("hotwire_"));
            assert!(
                name.chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "bad metric name `{name}`"
            );
            assert!(value.parse::<f64>().is_ok(), "bad value `{value}`");
        }
    }

    #[test]
    fn disabled_snapshot_still_renders() {
        let text = render(&MetricsSnapshot::default());
        assert!(text.contains("hotwire_telemetry_enabled 0\n"));
    }
}
