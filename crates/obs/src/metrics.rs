//! A process-global, rayon-safe metrics registry.
//!
//! Three metric kinds cover what the solver stack needs:
//!
//! * **Counters** — monotone event counts (`solver.factor`,
//!   `sweep.points`). Atomic `fetch_add`, so totals are identical no
//!   matter how a rayon fan-out interleaves — the determinism tests
//!   compare serial and parallel snapshots for equality.
//! * **Gauges** — last-written values (`solver.sparse.fill_nnz`,
//!   `sweep.points_per_sec`). Not deterministic under parallelism by
//!   nature; use for descriptive, not asserted, quantities.
//! * **Timers** — wall-time accumulators (count / total / min / max)
//!   fed by [`Timer::observe`] or a [`TimerGuard`]. Counts are
//!   deterministic; durations obviously are not.
//!
//! Handles are cheap clones of `Arc`ed atomic cells; look one up once
//! (`metrics::counter("name")` takes a short registry lock) and record
//! lock-free afterwards. [`snapshot`] freezes the registry into a
//! [`MetricsSnapshot`] that serializes through [`crate::json`] (the
//! workspace serde is a no-op shim), and [`reset`] clears it — tests
//! bracket measured regions with `reset()` … `snapshot()`.
//!
//! With the `telemetry` feature off every recording call is an empty
//! inline function, handles are zero-sized, and [`snapshot`] returns
//! `enabled: false` with empty maps.

use std::collections::BTreeMap;
use std::time::Duration;

use crate::json::Json;

#[cfg(feature = "telemetry")]
mod imp {
    use std::collections::BTreeMap;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, LazyLock, Mutex};

    /// Timer accumulator cell (nanosecond resolution).
    #[derive(Debug)]
    pub struct TimerCell {
        pub count: AtomicU64,
        pub total_ns: AtomicU64,
        pub min_ns: AtomicU64,
        pub max_ns: AtomicU64,
    }

    impl Default for TimerCell {
        fn default() -> Self {
            Self {
                count: AtomicU64::new(0),
                total_ns: AtomicU64::new(0),
                // fetch_min seed: the first observation always wins.
                min_ns: AtomicU64::new(u64::MAX),
                max_ns: AtomicU64::new(0),
            }
        }
    }

    #[derive(Debug, Default)]
    pub struct Registry {
        pub counters: Mutex<BTreeMap<&'static str, Arc<AtomicU64>>>,
        pub gauges: Mutex<BTreeMap<&'static str, Arc<AtomicU64>>>,
        pub timers: Mutex<BTreeMap<&'static str, Arc<TimerCell>>>,
    }

    pub static REGISTRY: LazyLock<Registry> = LazyLock::new(Registry::default);

    pub fn intern<T: Default>(
        map: &Mutex<BTreeMap<&'static str, Arc<T>>>,
        name: &'static str,
    ) -> Arc<T> {
        Arc::clone(
            map.lock()
                .expect("metrics registry poisoned")
                .entry(name)
                .or_default(),
        )
    }

    pub const RELAXED: Ordering = Ordering::Relaxed;
}

/// A monotone event counter.
///
/// Increments are atomic and order-independent, so totals are
/// deterministic under rayon fan-outs.
#[derive(Debug, Clone)]
pub struct Counter {
    #[cfg(feature = "telemetry")]
    cell: std::sync::Arc<std::sync::atomic::AtomicU64>,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[allow(unused_variables)]
    pub fn add(&self, n: u64) {
        #[cfg(feature = "telemetry")]
        self.cell.fetch_add(n, imp::RELAXED);
    }
}

/// A last-value-wins gauge.
#[derive(Debug, Clone)]
pub struct Gauge {
    #[cfg(feature = "telemetry")]
    cell: std::sync::Arc<std::sync::atomic::AtomicU64>,
}

impl Gauge {
    /// Stores `value` (last write wins).
    #[allow(unused_variables)]
    pub fn set(&self, value: f64) {
        #[cfg(feature = "telemetry")]
        self.cell.store(value.to_bits(), imp::RELAXED);
    }
}

/// A wall-time accumulator (count / total / min / max).
#[derive(Debug, Clone)]
pub struct Timer {
    #[cfg(feature = "telemetry")]
    cell: std::sync::Arc<imp::TimerCell>,
}

impl Timer {
    /// Records one observation.
    #[allow(unused_variables)]
    pub fn observe(&self, elapsed: Duration) {
        #[cfg(feature = "telemetry")]
        {
            let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
            self.cell.count.fetch_add(1, imp::RELAXED);
            self.cell.total_ns.fetch_add(ns, imp::RELAXED);
            self.cell.min_ns.fetch_min(ns, imp::RELAXED);
            self.cell.max_ns.fetch_max(ns, imp::RELAXED);
        }
    }

    /// Starts a guard that records the elapsed wall time when dropped.
    pub fn start(&self) -> TimerGuard {
        TimerGuard {
            #[cfg(feature = "telemetry")]
            timer: self.clone(),
            #[cfg(feature = "telemetry")]
            start: std::time::Instant::now(),
        }
    }

    /// Times one closure, recording its wall time.
    pub fn time<T>(&self, f: impl FnOnce() -> T) -> T {
        let _guard = self.start();
        f()
    }
}

/// RAII guard from [`Timer::start`]; records on drop.
#[derive(Debug)]
#[must_use = "a dropped TimerGuard records immediately; bind it with `let _guard = ...`"]
pub struct TimerGuard {
    #[cfg(feature = "telemetry")]
    timer: Timer,
    #[cfg(feature = "telemetry")]
    start: std::time::Instant,
}

impl Drop for TimerGuard {
    fn drop(&mut self) {
        #[cfg(feature = "telemetry")]
        self.timer.observe(self.start.elapsed());
    }
}

/// Looks up (or registers) the counter `name`.
#[allow(unused_variables)]
#[must_use]
pub fn counter(name: &'static str) -> Counter {
    Counter {
        #[cfg(feature = "telemetry")]
        cell: imp::intern(&imp::REGISTRY.counters, name),
    }
}

/// Looks up (or registers) the gauge `name`.
#[allow(unused_variables)]
#[must_use]
pub fn gauge(name: &'static str) -> Gauge {
    Gauge {
        #[cfg(feature = "telemetry")]
        cell: imp::intern(&imp::REGISTRY.gauges, name),
    }
}

/// Looks up (or registers) the timer `name`.
#[allow(unused_variables)]
#[must_use]
pub fn timer(name: &'static str) -> Timer {
    Timer {
        #[cfg(feature = "telemetry")]
        cell: imp::intern(&imp::REGISTRY.timers, name),
    }
}

/// Frozen statistics of one timer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimerStats {
    /// Observations recorded.
    pub count: u64,
    /// Summed wall time, milliseconds.
    pub total_ms: f64,
    /// Shortest observation, milliseconds (0 when `count == 0`).
    pub min_ms: f64,
    /// Longest observation, milliseconds (0 when `count == 0`).
    pub max_ms: f64,
}

/// A point-in-time copy of the whole registry.
///
/// Serializes to the schema documented in `docs/OBSERVABILITY.md`:
///
/// ```json
/// {
///   "telemetry": true,
///   "counters": {"solver.factor": 1},
///   "gauges": {"solver.sparse.fill_nnz": 1234},
///   "timers": {"grid_dc.solve_time": {"count": 5, "total_ms": 1.2, "min_ms": 0.1, "max_ms": 0.9}}
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// `false` when the workspace was compiled without `telemetry` —
    /// the maps are then empty by construction, not because nothing ran.
    pub enabled: bool,
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Timer statistics by name.
    pub timers: BTreeMap<String, TimerStats>,
}

impl MetricsSnapshot {
    /// Shorthand counter lookup (0 when absent).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Serializes to a [`Json`] object (names sorted, schema above).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let counters = self
            .counters
            .iter()
            .map(|(k, &v)| (k.clone(), Json::from(v)))
            .collect();
        let gauges = self
            .gauges
            .iter()
            .map(|(k, &v)| (k.clone(), Json::from(v)))
            .collect();
        let timers = self
            .timers
            .iter()
            .map(|(k, t)| {
                (
                    k.clone(),
                    Json::object([
                        ("count", Json::from(t.count)),
                        ("total_ms", Json::from(t.total_ms)),
                        ("min_ms", Json::from(t.min_ms)),
                        ("max_ms", Json::from(t.max_ms)),
                    ]),
                )
            })
            .collect();
        Json::object([
            ("telemetry", Json::from(self.enabled)),
            ("counters", Json::Obj(counters)),
            ("gauges", Json::Obj(gauges)),
            ("timers", Json::Obj(timers)),
        ])
    }

    /// Rebuilds a snapshot from [`MetricsSnapshot::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns a description of the first schema violation.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let enabled = v
            .get("telemetry")
            .and_then(Json::as_bool)
            .ok_or("missing boolean `telemetry`")?;
        let obj = |key: &str| -> Result<&[(String, Json)], String> {
            v.get(key)
                .and_then(Json::as_object)
                .ok_or(format!("missing object `{key}`"))
        };
        let mut counters = BTreeMap::new();
        for (k, val) in obj("counters")? {
            counters.insert(
                k.clone(),
                val.as_u64().ok_or(format!("counter `{k}` not a count"))?,
            );
        }
        let mut gauges = BTreeMap::new();
        for (k, val) in obj("gauges")? {
            gauges.insert(
                k.clone(),
                val.as_f64().ok_or(format!("gauge `{k}` not a number"))?,
            );
        }
        let mut timers = BTreeMap::new();
        for (k, val) in obj("timers")? {
            let field = |f: &str| -> Result<f64, String> {
                val.get(f)
                    .and_then(Json::as_f64)
                    .ok_or(format!("timer `{k}` missing `{f}`"))
            };
            timers.insert(
                k.clone(),
                TimerStats {
                    count: val
                        .get("count")
                        .and_then(Json::as_u64)
                        .ok_or(format!("timer `{k}` missing `count`"))?,
                    total_ms: field("total_ms")?,
                    min_ms: field("min_ms")?,
                    max_ms: field("max_ms")?,
                },
            );
        }
        Ok(Self {
            enabled,
            counters,
            gauges,
            timers,
        })
    }
}

/// Copies the registry into a [`MetricsSnapshot`].
#[must_use]
pub fn snapshot() -> MetricsSnapshot {
    #[cfg(feature = "telemetry")]
    {
        const NS_PER_MS: f64 = 1.0e6;
        #[allow(clippy::cast_precision_loss)]
        let ms = |ns: u64| ns as f64 / NS_PER_MS;
        let counters = imp::REGISTRY
            .counters
            .lock()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(&k, v)| (k.to_owned(), v.load(imp::RELAXED)))
            .collect();
        let gauges = imp::REGISTRY
            .gauges
            .lock()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(&k, v)| (k.to_owned(), f64::from_bits(v.load(imp::RELAXED))))
            .collect();
        let timers = imp::REGISTRY
            .timers
            .lock()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(&k, t)| {
                let count = t.count.load(imp::RELAXED);
                (
                    k.to_owned(),
                    TimerStats {
                        count,
                        total_ms: ms(t.total_ns.load(imp::RELAXED)),
                        min_ms: if count == 0 {
                            0.0
                        } else {
                            ms(t.min_ns.load(imp::RELAXED))
                        },
                        max_ms: ms(t.max_ns.load(imp::RELAXED)),
                    },
                )
            })
            .collect();
        MetricsSnapshot {
            enabled: true,
            counters,
            gauges,
            timers,
        }
    }
    #[cfg(not(feature = "telemetry"))]
    MetricsSnapshot::default()
}

/// Empties the registry (counters, gauges, and timers all forgotten).
///
/// Handles interned before a reset keep recording into cells that are
/// no longer in the registry; re-intern after resetting. Intended for
/// tests and for bracketing a measured region in a benchmark binary.
pub fn reset() {
    #[cfg(feature = "telemetry")]
    {
        imp::REGISTRY
            .counters
            .lock()
            .expect("metrics registry poisoned")
            .clear();
        imp::REGISTRY
            .gauges
            .lock()
            .expect("metrics registry poisoned")
            .clear();
        imp::REGISTRY
            .timers
            .lock()
            .expect("metrics registry poisoned")
            .clear();
    }
}

/// The registry is process-global; every test touching it serializes on
/// this lock (shared with the `trace` module's tests).
#[cfg(test)]
pub(crate) mod testutil {
    use std::sync::{Mutex, MutexGuard};

    static TEST_LOCK: Mutex<()> = Mutex::new(());

    pub fn lock() -> MutexGuard<'static, ()> {
        TEST_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::lock;
    use super::*;

    #[test]
    fn snapshot_json_round_trips() {
        let _guard = lock();
        reset();
        counter("t.counter").add(7);
        gauge("t.gauge").set(-2.5e-3);
        timer("t.timer").observe(Duration::from_micros(1500));
        let snap = snapshot();
        let text = snap.to_json().to_pretty_string();
        let back = MetricsSnapshot::from_json(&crate::json::parse(&text).unwrap()).unwrap();
        assert_eq!(snap, back);
        reset();
    }

    #[test]
    fn from_json_rejects_schema_violations() {
        for text in [
            "{}",
            r#"{"telemetry": true, "counters": {}, "gauges": {}}"#,
            r#"{"telemetry": true, "counters": {"a": -1}, "gauges": {}, "timers": {}}"#,
            r#"{"telemetry": true, "counters": {}, "gauges": {}, "timers": {"t": {}}}"#,
        ] {
            let v = crate::json::parse(text).unwrap();
            assert!(MetricsSnapshot::from_json(&v).is_err(), "{text}");
        }
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn counters_sum_across_threads() {
        let _guard = lock();
        reset();
        let c = counter("t.parallel");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(snapshot().counter("t.parallel"), 4000);
        reset();
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn timer_stats_accumulate() {
        let _guard = lock();
        reset();
        let t = timer("t.accum");
        t.observe(Duration::from_millis(2));
        t.observe(Duration::from_millis(6));
        t.time(|| std::hint::black_box(3 + 4));
        let stats = snapshot().timers["t.accum"];
        assert_eq!(stats.count, 3);
        assert!(stats.total_ms >= 8.0);
        assert!(stats.min_ms <= 2.0 && stats.max_ms >= 6.0);
        assert!(stats.min_ms <= stats.max_ms);
        reset();
    }

    #[cfg(not(feature = "telemetry"))]
    #[test]
    fn disabled_snapshot_is_empty() {
        counter("t.ignored").inc();
        let snap = snapshot();
        assert!(!snap.enabled);
        assert!(snap.counters.is_empty());
    }
}
