//! A process-global, rayon-safe metrics registry.
//!
//! Three metric kinds cover what the solver stack needs:
//!
//! * **Counters** — monotone event counts (`solver.factor`,
//!   `sweep.points`). Atomic `fetch_add`, so totals are identical no
//!   matter how a rayon fan-out interleaves — the determinism tests
//!   compare serial and parallel snapshots for equality.
//! * **Gauges** — last-written values (`solver.sparse.fill_nnz`,
//!   `sweep.points_per_sec`) that also track the min/max ever written,
//!   so an oscillating quantity (the Picard residual, say) is visible
//!   post-hoc even though only the final value survives. Not
//!   deterministic under parallelism by nature; use for descriptive,
//!   not asserted, quantities.
//! * **Timers** — wall-time accumulators (count / total / min / max)
//!   fed by [`Timer::observe`] or a [`TimerGuard`]. Every observation
//!   also lands in a lock-free log-linear histogram
//!   ([`crate::histogram`]), so snapshots carry p50/p90/p99 within a
//!   documented relative-error bound. Counts are deterministic;
//!   durations obviously are not.
//!
//! Handles are cheap clones of `Arc`ed atomic cells; look one up once
//! (`metrics::counter("name")` takes a short registry lock) and record
//! lock-free afterwards. [`snapshot`] freezes the registry into a
//! [`MetricsSnapshot`] that serializes through [`crate::json`] (the
//! workspace serde is a no-op shim), and [`reset`] clears it — tests
//! bracket measured regions with `reset()` … `snapshot()`.
//!
//! With the `telemetry` feature off every recording call is an empty
//! inline function, handles are zero-sized, and [`snapshot`] returns
//! `enabled: false` with empty maps.

use std::collections::BTreeMap;
use std::time::Duration;

use crate::json::Json;

#[cfg(feature = "telemetry")]
mod imp {
    use std::collections::BTreeMap;
    use std::sync::{Arc, LazyLock, Mutex, PoisonError};

    use crate::histogram::AtomicHistogram;
    use crate::sync::{AtomicU64, Ordering};

    /// Timer accumulator cell (nanosecond resolution) plus the
    /// log-linear distribution of every observation.
    #[derive(Debug)]
    pub struct TimerCell {
        pub count: AtomicU64,
        pub total_ns: AtomicU64,
        pub min_ns: AtomicU64,
        pub max_ns: AtomicU64,
        pub hist: AtomicHistogram,
    }

    impl Default for TimerCell {
        fn default() -> Self {
            Self {
                count: AtomicU64::new(0),
                total_ns: AtomicU64::new(0),
                // fetch_min seed: the first observation always wins.
                min_ns: AtomicU64::new(u64::MAX),
                max_ns: AtomicU64::new(0),
                hist: AtomicHistogram::default(),
            }
        }
    }

    /// Gauge cell: last-write value plus running min/max over every
    /// write (`sets == 0` means never written).
    ///
    /// min/max use an order-preserving bijection from `f64` to `u64`
    /// ([`ordered_bits`]) so `fetch_min`/`fetch_max` work lock-free.
    #[derive(Debug)]
    pub struct GaugeCell {
        pub value: AtomicU64,
        pub min: AtomicU64,
        pub max: AtomicU64,
        pub sets: AtomicU64,
    }

    impl Default for GaugeCell {
        fn default() -> Self {
            Self {
                value: AtomicU64::new(0.0_f64.to_bits()),
                min: AtomicU64::new(u64::MAX),
                max: AtomicU64::new(u64::MIN),
                sets: AtomicU64::new(0),
            }
        }
    }

    /// Maps `f64` onto `u64` preserving the total order of finite
    /// values (the standard sign-flip trick), so atomic integer
    /// min/max implement float min/max.
    pub fn ordered_bits(v: f64) -> u64 {
        let bits = v.to_bits();
        if bits >> 63 == 1 {
            !bits
        } else {
            bits | (1 << 63)
        }
    }

    /// Inverse of [`ordered_bits`].
    pub fn from_ordered_bits(bits: u64) -> f64 {
        f64::from_bits(if bits >> 63 == 1 {
            bits & !(1 << 63)
        } else {
            !bits
        })
    }

    #[derive(Debug, Default)]
    pub struct Registry {
        pub counters: Mutex<BTreeMap<&'static str, Arc<AtomicU64>>>,
        pub gauges: Mutex<BTreeMap<&'static str, Arc<GaugeCell>>>,
        pub timers: Mutex<BTreeMap<&'static str, Arc<TimerCell>>>,
    }

    pub static REGISTRY: LazyLock<Registry> = LazyLock::new(Registry::default);

    /// Locks a registry map, recovering from poisoning: the maps hold
    /// plain `Arc`s, so a panic mid-insert cannot leave them in a state
    /// worse than missing one entry, and telemetry must never take the
    /// process down with it.
    pub fn lock_map<'a, T>(
        map: &'a Mutex<BTreeMap<&'static str, Arc<T>>>,
    ) -> std::sync::MutexGuard<'a, BTreeMap<&'static str, Arc<T>>> {
        map.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn intern<T: Default>(
        map: &Mutex<BTreeMap<&'static str, Arc<T>>>,
        name: &'static str,
    ) -> Arc<T> {
        Arc::clone(lock_map(map).entry(name).or_default())
    }

    // SAFETY(ordering): every cell in this registry is an independent
    // statistic (count, total, min, max, bucket) mutated only through
    // RMW operations, and readers (`snapshot`) tolerate tearing
    // *between* cells — a snapshot taken mid-update may pair a count
    // with a slightly older total, which the schema documents as a
    // point-in-time approximation. No cell's value is used to publish
    // another memory location, so no acquire/release edge is needed;
    // the loom models in tests/loom.rs stress exactness of the totals
    // and monotonicity of concurrent snapshots.
    pub const RELAXED: Ordering = Ordering::Relaxed;
}

/// A monotone event counter.
///
/// Increments are atomic and order-independent, so totals are
/// deterministic under rayon fan-outs.
#[derive(Debug, Clone)]
pub struct Counter {
    #[cfg(feature = "telemetry")]
    cell: std::sync::Arc<crate::sync::AtomicU64>,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[allow(unused_variables)]
    pub fn add(&self, n: u64) {
        #[cfg(feature = "telemetry")]
        self.cell.fetch_add(n, imp::RELAXED);
    }
}

/// A last-value-wins gauge that also tracks the min/max ever written.
#[derive(Debug, Clone)]
pub struct Gauge {
    #[cfg(feature = "telemetry")]
    cell: std::sync::Arc<imp::GaugeCell>,
}

impl Gauge {
    /// Stores `value` (last write wins) and folds it into the running
    /// min/max, so an oscillating series leaves a visible envelope.
    #[allow(unused_variables)]
    pub fn set(&self, value: f64) {
        #[cfg(feature = "telemetry")]
        {
            self.cell.value.store(value.to_bits(), imp::RELAXED);
            let ordered = imp::ordered_bits(value);
            self.cell.min.fetch_min(ordered, imp::RELAXED);
            self.cell.max.fetch_max(ordered, imp::RELAXED);
            self.cell.sets.fetch_add(1, imp::RELAXED);
        }
    }
}

/// A wall-time accumulator (count / total / min / max).
#[derive(Debug, Clone)]
pub struct Timer {
    #[cfg(feature = "telemetry")]
    cell: std::sync::Arc<imp::TimerCell>,
}

impl Timer {
    /// Records one observation.
    #[allow(unused_variables)]
    pub fn observe(&self, elapsed: Duration) {
        #[cfg(feature = "telemetry")]
        {
            let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
            self.cell.count.fetch_add(1, imp::RELAXED);
            self.cell.total_ns.fetch_add(ns, imp::RELAXED);
            self.cell.min_ns.fetch_min(ns, imp::RELAXED);
            self.cell.max_ns.fetch_max(ns, imp::RELAXED);
            self.cell.hist.record(ns);
        }
    }

    /// Starts a guard that records the elapsed wall time when dropped.
    pub fn start(&self) -> TimerGuard {
        TimerGuard {
            #[cfg(feature = "telemetry")]
            timer: self.clone(),
            #[cfg(feature = "telemetry")]
            start: std::time::Instant::now(),
        }
    }

    /// Times one closure, recording its wall time.
    pub fn time<T>(&self, f: impl FnOnce() -> T) -> T {
        let _guard = self.start();
        f()
    }
}

/// RAII guard from [`Timer::start`]; records on drop.
#[derive(Debug)]
#[must_use = "a dropped TimerGuard records immediately; bind it with `let _guard = ...`"]
pub struct TimerGuard {
    #[cfg(feature = "telemetry")]
    timer: Timer,
    #[cfg(feature = "telemetry")]
    start: std::time::Instant,
}

impl Drop for TimerGuard {
    fn drop(&mut self) {
        #[cfg(feature = "telemetry")]
        self.timer.observe(self.start.elapsed());
    }
}

/// Looks up (or registers) the counter `name`.
#[allow(unused_variables)]
#[must_use]
pub fn counter(name: &'static str) -> Counter {
    Counter {
        #[cfg(feature = "telemetry")]
        cell: imp::intern(&imp::REGISTRY.counters, name),
    }
}

/// Looks up (or registers) the gauge `name`.
#[allow(unused_variables)]
#[must_use]
pub fn gauge(name: &'static str) -> Gauge {
    Gauge {
        #[cfg(feature = "telemetry")]
        cell: imp::intern(&imp::REGISTRY.gauges, name),
    }
}

/// Looks up (or registers) the timer `name`.
#[allow(unused_variables)]
#[must_use]
pub fn timer(name: &'static str) -> Timer {
    Timer {
        #[cfg(feature = "telemetry")]
        cell: imp::intern(&imp::REGISTRY.timers, name),
    }
}

/// Frozen statistics of one timer.
///
/// The quantiles come from the timer's log-linear histogram
/// ([`crate::histogram`]) and are accurate to within its documented
/// relative-error bound (`1/32`), not exact order statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimerStats {
    /// Observations recorded.
    pub count: u64,
    /// Summed wall time, milliseconds.
    pub total_ms: f64,
    /// Shortest observation, milliseconds (0 when `count == 0`).
    pub min_ms: f64,
    /// Longest observation, milliseconds (0 when `count == 0`).
    pub max_ms: f64,
    /// Median observation, milliseconds (histogram estimate).
    pub p50_ms: f64,
    /// 90th-percentile observation, milliseconds (histogram estimate).
    pub p90_ms: f64,
    /// 99th-percentile observation, milliseconds (histogram estimate).
    pub p99_ms: f64,
}

/// Frozen statistics of one gauge: the last value written plus the
/// envelope of every write, so an oscillating series (`coupled.residual`
/// bouncing between iterations, say) cannot hide behind its final value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaugeStats {
    /// The last value written.
    pub value: f64,
    /// Smallest value ever written (`value` when written once, 0 when
    /// never written).
    pub min: f64,
    /// Largest value ever written (same conventions as `min`).
    pub max: f64,
}

impl GaugeStats {
    /// Stats of a gauge written exactly once (min = max = value) —
    /// also the parse of a legacy bare-number gauge.
    #[must_use]
    pub fn single(value: f64) -> Self {
        Self {
            value,
            min: value,
            max: value,
        }
    }
}

/// A point-in-time copy of the whole registry.
///
/// Serializes to the schema documented in `docs/OBSERVABILITY.md`:
///
/// ```json
/// {
///   "telemetry": true,
///   "counters": {"solver.factor": 1},
///   "gauges": {"solver.sparse.fill_nnz": {"value": 1234.0, "min": 980.0, "max": 1234.0}},
///   "timers": {"grid_dc.solve_time": {"count": 5, "total_ms": 1.2, "min_ms": 0.1,
///              "max_ms": 0.9, "p50_ms": 0.2, "p90_ms": 0.8, "p99_ms": 0.9}}
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// `false` when the workspace was compiled without `telemetry` —
    /// the maps are then empty by construction, not because nothing ran.
    pub enabled: bool,
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge statistics (last value + min/max envelope) by name.
    pub gauges: BTreeMap<String, GaugeStats>,
    /// Timer statistics by name.
    pub timers: BTreeMap<String, TimerStats>,
}

impl MetricsSnapshot {
    /// Shorthand counter lookup (0 when absent).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Serializes to a [`Json`] object (names sorted, schema above).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let counters = self
            .counters
            .iter()
            .map(|(k, &v)| (k.clone(), Json::from(v)))
            .collect();
        let gauges = self
            .gauges
            .iter()
            .map(|(k, g)| {
                (
                    k.clone(),
                    Json::object([
                        ("value", Json::from(g.value)),
                        ("min", Json::from(g.min)),
                        ("max", Json::from(g.max)),
                    ]),
                )
            })
            .collect();
        let timers = self
            .timers
            .iter()
            .map(|(k, t)| {
                (
                    k.clone(),
                    Json::object([
                        ("count", Json::from(t.count)),
                        ("total_ms", Json::from(t.total_ms)),
                        ("min_ms", Json::from(t.min_ms)),
                        ("max_ms", Json::from(t.max_ms)),
                        ("p50_ms", Json::from(t.p50_ms)),
                        ("p90_ms", Json::from(t.p90_ms)),
                        ("p99_ms", Json::from(t.p99_ms)),
                    ]),
                )
            })
            .collect();
        Json::object([
            ("telemetry", Json::from(self.enabled)),
            ("counters", Json::Obj(counters)),
            ("gauges", Json::Obj(gauges)),
            ("timers", Json::Obj(timers)),
        ])
    }

    /// Rebuilds a snapshot from [`MetricsSnapshot::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns a description of the first schema violation.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let enabled = v
            .get("telemetry")
            .and_then(Json::as_bool)
            .ok_or("missing boolean `telemetry`")?;
        let obj = |key: &str| -> Result<&[(String, Json)], String> {
            v.get(key)
                .and_then(Json::as_object)
                .ok_or(format!("missing object `{key}`"))
        };
        let mut counters = BTreeMap::new();
        for (k, val) in obj("counters")? {
            counters.insert(
                k.clone(),
                val.as_u64().ok_or(format!("counter `{k}` not a count"))?,
            );
        }
        let mut gauges = BTreeMap::new();
        for (k, val) in obj("gauges")? {
            // A bare number is the pre-histogram schema (no envelope
            // was tracked); parse it as a single write so old
            // BENCH_*.json baselines stay readable.
            let stats = match val.as_f64() {
                Some(v) => GaugeStats::single(v),
                None => {
                    let field = |f: &str| -> Result<f64, String> {
                        val.get(f)
                            .and_then(Json::as_f64)
                            .ok_or(format!("gauge `{k}` missing `{f}`"))
                    };
                    GaugeStats {
                        value: field("value")?,
                        min: field("min")?,
                        max: field("max")?,
                    }
                }
            };
            gauges.insert(k.clone(), stats);
        }
        let mut timers = BTreeMap::new();
        for (k, val) in obj("timers")? {
            let field = |f: &str| -> Result<f64, String> {
                val.get(f)
                    .and_then(Json::as_f64)
                    .ok_or(format!("timer `{k}` missing `{f}`"))
            };
            // Quantiles default to 0 when absent, so pre-histogram
            // snapshots parse (their emitters never wrote p50/p90/p99).
            let quantile = |f: &str| -> Result<f64, String> {
                match val.get(f) {
                    None => Ok(0.0),
                    Some(v) => v.as_f64().ok_or(format!("timer `{k}` bad `{f}`")),
                }
            };
            timers.insert(
                k.clone(),
                TimerStats {
                    count: val
                        .get("count")
                        .and_then(Json::as_u64)
                        .ok_or(format!("timer `{k}` missing `count`"))?,
                    total_ms: field("total_ms")?,
                    min_ms: field("min_ms")?,
                    max_ms: field("max_ms")?,
                    p50_ms: quantile("p50_ms")?,
                    p90_ms: quantile("p90_ms")?,
                    p99_ms: quantile("p99_ms")?,
                },
            );
        }
        Ok(Self {
            enabled,
            counters,
            gauges,
            timers,
        })
    }
}

/// Copies the registry into a [`MetricsSnapshot`].
#[must_use]
pub fn snapshot() -> MetricsSnapshot {
    #[cfg(feature = "telemetry")]
    {
        const NS_PER_MS: f64 = 1.0e6;
        #[allow(clippy::cast_precision_loss)]
        let ms = |ns: u64| ns as f64 / NS_PER_MS;
        let counters = imp::lock_map(&imp::REGISTRY.counters)
            .iter()
            .map(|(&k, v)| (k.to_owned(), v.load(imp::RELAXED)))
            .collect();
        let gauges = imp::lock_map(&imp::REGISTRY.gauges)
            .iter()
            .map(|(&k, g)| {
                let value = f64::from_bits(g.value.load(imp::RELAXED));
                let stats = if g.sets.load(imp::RELAXED) == 0 {
                    GaugeStats {
                        value,
                        min: 0.0,
                        max: 0.0,
                    }
                } else {
                    GaugeStats {
                        value,
                        min: imp::from_ordered_bits(g.min.load(imp::RELAXED)),
                        max: imp::from_ordered_bits(g.max.load(imp::RELAXED)),
                    }
                };
                (k.to_owned(), stats)
            })
            .collect();
        let timers = imp::lock_map(&imp::REGISTRY.timers)
            .iter()
            .map(|(&k, t)| {
                let count = t.count.load(imp::RELAXED);
                let hist = t.hist.snapshot();
                (
                    k.to_owned(),
                    TimerStats {
                        count,
                        total_ms: ms(t.total_ns.load(imp::RELAXED)),
                        min_ms: if count == 0 {
                            0.0
                        } else {
                            ms(t.min_ns.load(imp::RELAXED))
                        },
                        max_ms: ms(t.max_ns.load(imp::RELAXED)),
                        p50_ms: hist.quantile(0.5) / NS_PER_MS,
                        p90_ms: hist.quantile(0.9) / NS_PER_MS,
                        p99_ms: hist.quantile(0.99) / NS_PER_MS,
                    },
                )
            })
            .collect();
        MetricsSnapshot {
            enabled: true,
            counters,
            gauges,
            timers,
        }
    }
    #[cfg(not(feature = "telemetry"))]
    MetricsSnapshot::default()
}

/// Empties the registry (counters, gauges, and timers all forgotten).
///
/// Handles interned before a reset keep recording into cells that are
/// no longer in the registry; re-intern after resetting. Intended for
/// tests and for bracketing a measured region in a benchmark binary.
pub fn reset() {
    #[cfg(feature = "telemetry")]
    {
        imp::lock_map(&imp::REGISTRY.counters).clear();
        imp::lock_map(&imp::REGISTRY.gauges).clear();
        imp::lock_map(&imp::REGISTRY.timers).clear();
    }
}

/// The registry is process-global; every test touching it serializes on
/// this lock (shared with the `trace` module's tests).
#[cfg(test)]
pub(crate) mod testutil {
    use std::sync::{Mutex, MutexGuard};

    static TEST_LOCK: Mutex<()> = Mutex::new(());

    pub fn lock() -> MutexGuard<'static, ()> {
        TEST_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::lock;
    use super::*;

    #[test]
    fn snapshot_json_round_trips() {
        let _guard = lock();
        reset();
        counter("t.counter").add(7);
        gauge("t.gauge").set(-2.5e-3);
        timer("t.timer").observe(Duration::from_micros(1500));
        let snap = snapshot();
        let text = snap.to_json().to_pretty_string();
        let back = MetricsSnapshot::from_json(&crate::json::parse(&text).unwrap()).unwrap();
        assert_eq!(snap, back);
        reset();
    }

    #[test]
    fn from_json_rejects_schema_violations() {
        for text in [
            "{}",
            r#"{"telemetry": true, "counters": {}, "gauges": {}}"#,
            r#"{"telemetry": true, "counters": {"a": -1}, "gauges": {}, "timers": {}}"#,
            r#"{"telemetry": true, "counters": {}, "gauges": {}, "timers": {"t": {}}}"#,
        ] {
            let v = crate::json::parse(text).unwrap();
            assert!(MetricsSnapshot::from_json(&v).is_err(), "{text}");
        }
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn counters_sum_across_threads() {
        let _guard = lock();
        reset();
        let c = counter("t.parallel");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(snapshot().counter("t.parallel"), 4000);
        reset();
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn timer_stats_accumulate() {
        let _guard = lock();
        reset();
        let t = timer("t.accum");
        t.observe(Duration::from_millis(2));
        t.observe(Duration::from_millis(6));
        t.time(|| std::hint::black_box(3 + 4));
        let stats = snapshot().timers["t.accum"];
        assert_eq!(stats.count, 3);
        assert!(stats.total_ms >= 8.0);
        assert!(stats.min_ms <= 2.0 && stats.max_ms >= 6.0);
        assert!(stats.min_ms <= stats.max_ms);
        // Histogram quantiles are monotone and bracketed by min/max
        // (up to the documented 1/32 relative error).
        let slack = 1.0 + crate::histogram::RELATIVE_ERROR_BOUND;
        assert!(stats.p50_ms <= stats.p90_ms && stats.p90_ms <= stats.p99_ms);
        assert!(stats.p99_ms <= stats.max_ms * slack, "{stats:?}");
        assert!(stats.p50_ms * slack >= stats.min_ms, "{stats:?}");
        reset();
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn gauges_track_their_envelope() {
        let _guard = lock();
        reset();
        let g = gauge("t.envelope");
        for v in [3.0, -2.5, 10.0, 0.5] {
            g.set(v);
        }
        let stats = snapshot().gauges["t.envelope"];
        assert_eq!(stats.value, 0.5, "last write wins");
        assert_eq!(stats.min, -2.5, "the dip is not forgotten");
        assert_eq!(stats.max, 10.0, "nor the spike");
        reset();
    }

    #[test]
    fn legacy_bare_number_gauges_parse() {
        let text = r#"{"telemetry": true, "counters": {},
                       "gauges": {"old.gauge": 4.5},
                       "timers": {"old.timer": {"count": 1, "total_ms": 2.0,
                                  "min_ms": 2.0, "max_ms": 2.0}}}"#;
        let snap = MetricsSnapshot::from_json(&crate::json::parse(text).unwrap()).unwrap();
        assert_eq!(snap.gauges["old.gauge"], GaugeStats::single(4.5));
        assert_eq!(snap.timers["old.timer"].p99_ms, 0.0, "quantiles default");
    }

    #[cfg(not(feature = "telemetry"))]
    #[test]
    fn disabled_snapshot_is_empty() {
        counter("t.ignored").inc();
        let snap = snapshot();
        assert!(!snap.enabled);
        assert!(snap.counters.is_empty());
    }
}
